//! Property-based tests: every generated circuit is structurally valid,
//! deterministic, and survives a BLIF round-trip unchanged.

use proptest::prelude::*;
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::{blif, verilog, Signal};

fn spec_strategy() -> impl Strategy<Value = RandomDagSpec> {
    (2usize..25, 1usize..30, any::<u64>(), 0u8..95, 0.0..2.0f64).prop_flat_map(
        |(depth, inputs, seed, back, spine)| {
            (depth..depth + 200).prop_map(move |cells| RandomDagSpec {
                name: "prop".into(),
                cells,
                inputs,
                depth,
                seed,
                back_jump_pct: back,
                spine_extra_load: spine,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn random_dag_always_valid(spec in spec_strategy()) {
        let c = generate::random_dag(&spec);
        prop_assert!(c.validate().is_ok());
        prop_assert_eq!(c.num_gates(), spec.cells);
        prop_assert_eq!(c.num_inputs(), spec.inputs);
        // The slot-0 chain pins the depth exactly.
        prop_assert_eq!(c.depth(), spec.depth);
        prop_assert!(!c.outputs().is_empty());
    }

    #[test]
    fn random_dag_deterministic(spec in spec_strategy()) {
        prop_assert_eq!(generate::random_dag(&spec), generate::random_dag(&spec));
    }

    #[test]
    fn outputs_are_exactly_the_sinks(spec in spec_strategy()) {
        let c = generate::random_dag(&spec);
        let fanouts = c.fanouts();
        for (id, _) in c.gates() {
            prop_assert_eq!(
                fanouts[id.index()].is_empty(),
                c.is_output(id),
                "gate {} sink/output mismatch", id
            );
        }
    }

    #[test]
    fn gate_fanins_precede_gate(spec in spec_strategy()) {
        // Topological storage invariant.
        let c = generate::random_dag(&spec);
        for (id, gate) in c.gates() {
            for &sig in &gate.inputs {
                if let Signal::Gate(src) = sig {
                    prop_assert!(src.index() < id.index());
                }
            }
        }
    }

    #[test]
    fn blif_roundtrip_random_dag(spec in spec_strategy()) {
        let c = generate::random_dag(&spec);
        let text = blif::to_blif(&c);
        let back = blif::parse(&text).expect("roundtrip parses");
        prop_assert_eq!(back.num_gates(), c.num_gates());
        prop_assert_eq!(back.num_inputs(), c.num_inputs());
        prop_assert_eq!(back.outputs().len(), c.outputs().len());
        prop_assert_eq!(back.depth(), c.depth());
        // Same multiset of gate kinds.
        let mut a: Vec<_> = c.gates().map(|(_, g)| g.kind).collect();
        let mut b: Vec<_> = back.gates().map(|(_, g)| g.kind).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn verilog_roundtrip_random_dag(spec in spec_strategy()) {
        let c = generate::random_dag(&spec);
        let text = verilog::to_verilog(&c);
        let back = verilog::parse(&text).expect("roundtrip parses");
        prop_assert_eq!(back.num_gates(), c.num_gates());
        prop_assert_eq!(back.num_inputs(), c.num_inputs());
        prop_assert_eq!(back.outputs().len(), c.outputs().len());
        prop_assert_eq!(back.depth(), c.depth());
    }

    #[test]
    fn levels_consistent_with_depth(spec in spec_strategy()) {
        let c = generate::random_dag(&spec);
        let levels = c.levels();
        prop_assert_eq!(levels.iter().copied().max().unwrap(), c.depth());
        prop_assert!(levels.iter().all(|&l| l >= 1));
    }
}
