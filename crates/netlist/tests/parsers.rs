//! Parser contract battery: round-trips and malformed-input diagnostics.
//!
//! Two obligations are pinned here for every text format the crate reads
//! (BLIF, ISCAS-85, structural Verilog):
//!
//! 1. **Round-trip + elaboration**: serialising a known-good circuit and
//!    parsing it back yields a structurally equivalent circuit that passes
//!    `Circuit::validate` and comes out of the `sgs-analyze` stage-1
//!    linters with zero diagnostics.
//! 2. **Malformed input**: truncated or garbled text fails with a
//!    *structured* error whose message carries the **line number** of the
//!    offending construct (`"line N: ..."` with the correct `N`), so a
//!    user editing a thousand-line netlist is pointed at the right spot.

use sgs_analyze::stage1;
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::{blif, iscas, verilog, Circuit, Library, NetlistError};

fn lib() -> Library {
    Library::paper_default()
}

/// Reference circuits covering tree, reconvergent and random shapes.
fn specimens() -> Vec<Circuit> {
    vec![
        generate::tree7(),
        generate::ripple_carry_adder(4),
        generate::random_dag(&RandomDagSpec {
            name: "parsers_dag".to_string(),
            cells: 35,
            inputs: 7,
            depth: 6,
            seed: 17,
            ..Default::default()
        }),
    ]
}

/// Structural equivalence strong enough for round-trip checks: same
/// counts, same depth, same multiset of gate kinds.
fn assert_same_structure(a: &Circuit, b: &Circuit) {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input count");
    assert_eq!(a.num_gates(), b.num_gates(), "gate count");
    assert_eq!(a.outputs().len(), b.outputs().len(), "output count");
    assert_eq!(a.depth(), b.depth(), "logic depth");
    let mut ka: Vec<_> = a.gates().map(|(_, g)| g.kind).collect();
    let mut kb: Vec<_> = b.gates().map(|(_, g)| g.kind).collect();
    ka.sort();
    kb.sort();
    assert_eq!(ka, kb, "gate-kind multiset");
}

/// A well-formed circuit must elaborate stage-1 clean: `validate` passes
/// and the structural linters have nothing to say.
fn assert_stage1_clean(c: &Circuit) {
    c.validate().expect("round-tripped circuit validates");
    let diags = stage1::circuit_lints(c, &lib());
    assert!(
        diags.is_empty(),
        "stage-1 lints on well-formed circuit: {diags:?}"
    );
}

/// Unwraps a parse failure into its message, asserting the structured
/// variant and the `"line N:"` prefix with the *correct* line number.
fn parse_error_at_line(res: Result<Circuit, NetlistError>, line: usize) -> String {
    match res {
        Err(NetlistError::Parse(msg)) => {
            let want = format!("line {line}:");
            assert!(
                msg.starts_with(&want),
                "expected `{want}` prefix, got: {msg}"
            );
            msg
        }
        other => panic!("expected NetlistError::Parse, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Round trips: parse → elaborate → stage-1 clean.
// ---------------------------------------------------------------------------

#[test]
fn iscas_roundtrip_elaborates_stage1_clean() {
    for c in specimens() {
        let back = iscas::parse(&iscas::to_iscas(&c)).expect("iscas round-trip parses");
        assert_same_structure(&c, &back);
        assert_stage1_clean(&back);
    }
}

#[test]
fn verilog_roundtrip_elaborates_stage1_clean() {
    for c in specimens() {
        let back = verilog::parse(&verilog::to_verilog(&c)).expect("verilog round-trip parses");
        assert_same_structure(&c, &back);
        assert_stage1_clean(&back);
    }
}

#[test]
fn blif_roundtrip_elaborates_stage1_clean() {
    for c in specimens() {
        let text = blif::to_blif(&c);
        // The raw-text linters see nothing wrong with our own output...
        let raw = stage1::raw_netlist_lints(&text);
        assert!(raw.is_empty(), "raw BLIF lints on own output: {raw:?}");
        // ...and neither do the structural linters after elaboration.
        let back = blif::parse(&text).expect("blif round-trip parses");
        assert_same_structure(&c, &back);
        assert_stage1_clean(&back);
    }
}

#[test]
fn cross_format_chain_preserves_structure() {
    // iscas → verilog → blif → back: three serialisers in a row must not
    // lose structure or introduce lint findings.
    let c = generate::ripple_carry_adder(3);
    let via_iscas = iscas::parse(&iscas::to_iscas(&c)).unwrap();
    let via_verilog = verilog::parse(&verilog::to_verilog(&via_iscas)).unwrap();
    let via_blif = blif::parse(&blif::to_blif(&via_verilog)).unwrap();
    assert_same_structure(&c, &via_blif);
    assert_stage1_clean(&via_blif);
}

// ---------------------------------------------------------------------------
// Malformed ISCAS-85: structured errors with line numbers.
// ---------------------------------------------------------------------------

#[test]
fn iscas_malformed_definition_reports_line() {
    let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND a, b\n";
    let msg = parse_error_at_line(iscas::parse(text), 4);
    assert!(msg.contains("malformed definition"), "{msg}");
    assert!(msg.contains('y'), "{msg}");
}

#[test]
fn iscas_unsupported_gate_reports_line() {
    let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\n\ny = XNOR(a, b)\n";
    let msg = parse_error_at_line(iscas::parse(text), 6);
    assert!(msg.contains("unsupported gate `XNOR`"), "{msg}");
}

#[test]
fn iscas_garbled_line_reports_line() {
    let text = "INPUT(a)\nOUTPUT(y)\n%%% not iscas at all\ny = NOT(a)\n";
    let msg = parse_error_at_line(iscas::parse(text), 3);
    assert!(msg.contains("unrecognised line"), "{msg}");
}

#[test]
fn iscas_undefined_fanin_reports_definition_line() {
    // The error points at the *definition* that references the ghost
    // signal, not at end-of-file.
    let text = "INPUT(a)\nOUTPUT(y)\n# comment\nn1 = NOT(a)\ny = NAND(n1, ghost)\n";
    let msg = parse_error_at_line(iscas::parse(text), 5);
    assert!(msg.contains("`ghost` feeding `y`"), "{msg}");
}

#[test]
fn iscas_undefined_output_reports_declaration_line() {
    let text = "INPUT(a)\nOUTPUT(z)\ny = NOT(a)\n";
    let msg = parse_error_at_line(iscas::parse(text), 2);
    assert!(msg.contains("output `z` is never defined"), "{msg}");
}

#[test]
fn iscas_truncated_file_reports_line() {
    // File cut off mid-definition: the right-hand side never opens its
    // parenthesis list.
    let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NA";
    let msg = parse_error_at_line(iscas::parse(text), 4);
    assert!(msg.contains("malformed definition of `y`"), "{msg}");
}

// ---------------------------------------------------------------------------
// Malformed Verilog: structured errors with line numbers.
// ---------------------------------------------------------------------------

#[test]
fn verilog_behavioural_construct_reports_line() {
    let text = "module bad (a, y);\n  input a;\n  output y;\n  assign y = ~a;\nendmodule\n";
    let msg = parse_error_at_line(verilog::parse(text), 4);
    assert!(msg.contains("behavioural construct `assign`"), "{msg}");
}

#[test]
fn verilog_unknown_gate_reports_line() {
    let text =
        "module bad (a, y);\n  input a;\n  output y;\n  XNOR9 g1 (.A(a), .Y(y));\nendmodule\n";
    let msg = parse_error_at_line(verilog::parse(text), 4);
    assert!(msg.contains("unknown gate type `XNOR9`"), "{msg}");
}

#[test]
fn verilog_block_comment_does_not_shift_line_numbers() {
    // The multi-line block comment spans lines 2-4; the bad instance sits
    // on line 7 and must be reported there, not three lines early.
    let text = "module bad (a, y);\n  /* multi\n     line\n     comment */\n  input a;\n  output y;\n  FROB g1 (.A(a), .Y(y));\nendmodule\n";
    let msg = parse_error_at_line(verilog::parse(text), 7);
    assert!(msg.contains("unknown gate type `FROB`"), "{msg}");
}

#[test]
fn verilog_undriven_net_reports_instance_line() {
    let text =
        "module bad (a, y);\n  input a;\n  output y;\n  INV g1 (.A(ghost), .Y(y));\nendmodule\n";
    let msg = parse_error_at_line(verilog::parse(text), 4);
    assert!(msg.contains("`ghost` feeding `g1`"), "{msg}");
}

#[test]
fn verilog_undriven_output_reports_declaration_line() {
    let text = "module bad (a, y);\n  input a;\n  output y;\nendmodule\n";
    let msg = parse_error_at_line(verilog::parse(text), 3);
    assert!(msg.contains("output `y` is never driven"), "{msg}");
}

#[test]
fn verilog_truncated_instance_reports_line() {
    // File ends mid-instance (no output port, no semicolon, no
    // endmodule) — a classic truncated download.
    let text = "module bad (a, y);\n  input a;\n  output y;\n  INV g1 (.A(a)";
    let msg = parse_error_at_line(verilog::parse(text), 4);
    assert!(!msg.is_empty());
}
