//! Combinational circuit DAG: gates, signals, topology queries.

use crate::library::GateKind;
use std::error::Error;
use std::fmt;

/// Identifier of a gate within a [`Circuit`] (dense, `0..num_gates`).
///
/// Gates are stored in topological order, so `GateId` order is a valid
/// evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub usize);

impl GateId {
    /// The dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A signal source: either a primary input or a gate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Primary input with dense index `0..num_inputs`.
    Pi(usize),
    /// Output of a gate.
    Gate(GateId),
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Instance name (unique within the circuit).
    pub name: String,
    /// Logic kind, fixing electrical parameters.
    pub kind: GateKind,
    /// Fan-in signals, length equal to `kind.arity()`.
    pub inputs: Vec<Signal>,
    /// Extra output load beyond the library defaults (e.g. long wire).
    pub extra_load: f64,
}

/// Errors raised while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// Gate fan-in count does not match the kind's arity.
    ArityMismatch {
        /// Offending gate name.
        gate: String,
        /// Expected fan-ins.
        expected: usize,
        /// Provided fan-ins.
        got: usize,
    },
    /// A signal refers to a gate or input that does not exist (yet).
    UnknownSignal {
        /// Offending gate name.
        gate: String,
    },
    /// Two gates or inputs share a name.
    DuplicateName(String),
    /// The circuit has no primary outputs.
    NoOutputs,
    /// A primary output refers to a missing gate.
    BadOutput(usize),
    /// The circuit has no gates.
    Empty,
    /// The netlist contains a combinational cycle (BLIF input only; builder
    /// circuits are acyclic by construction).
    Cycle(String),
    /// BLIF text could not be parsed.
    Parse(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                gate,
                expected,
                got,
            } => {
                write!(f, "gate `{gate}` expects {expected} inputs, got {got}")
            }
            NetlistError::UnknownSignal { gate } => {
                write!(f, "gate `{gate}` references an unknown signal")
            }
            NetlistError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            NetlistError::NoOutputs => write!(f, "circuit has no primary outputs"),
            NetlistError::BadOutput(i) => write!(f, "output {i} refers to a missing gate"),
            NetlistError::Empty => write!(f, "circuit has no gates"),
            NetlistError::Cycle(n) => write!(f, "combinational cycle through `{n}`"),
            NetlistError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl Error for NetlistError {}

/// An immutable combinational circuit.
///
/// Gates are stored in topological order: every gate's fan-ins are primary
/// inputs or gates with a smaller [`GateId`]. Construct one with
/// [`CircuitBuilder`] or the constructors in [`crate::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    name: String,
    input_names: Vec<String>,
    gates: Vec<Gate>,
    outputs: Vec<GateId>,
}

impl Circuit {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Number of gates (the paper's "#cells").
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Primary input names.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0]
    }

    /// All gates in topological order.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates.iter().enumerate().map(|(i, g)| (GateId(i), g))
    }

    /// Primary outputs (each the output of a gate).
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Whether `id` drives a primary output.
    pub fn is_output(&self, id: GateId) -> bool {
        self.outputs.contains(&id)
    }

    /// For each gate, the list of gates it drives (fan-out), computed fresh.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut out = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for &s in &g.inputs {
                if let Signal::Gate(src) = s {
                    out[src.0].push(GateId(i));
                }
            }
        }
        out
    }

    /// Logic level of each gate: primary inputs are level 0, a gate is one
    /// above its deepest fan-in.
    pub fn levels(&self) -> Vec<usize> {
        let mut lvl = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let mut m = 0;
            for &s in &g.inputs {
                if let Signal::Gate(src) = s {
                    m = m.max(lvl[src.0]);
                }
            }
            lvl[i] = m + 1;
        }
        lvl
    }

    /// The logic depth (maximum gate level).
    pub fn depth(&self) -> usize {
        self.levels().into_iter().max().unwrap_or(0)
    }

    /// Structural validation; builder-made circuits always pass, BLIF input
    /// is checked after elaboration.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.gates.is_empty() {
            return Err(NetlistError::Empty);
        }
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        for (i, g) in self.gates.iter().enumerate() {
            if g.inputs.len() != g.kind.arity() {
                return Err(NetlistError::ArityMismatch {
                    gate: g.name.clone(),
                    expected: g.kind.arity(),
                    got: g.inputs.len(),
                });
            }
            for &s in &g.inputs {
                let ok = match s {
                    Signal::Pi(p) => p < self.input_names.len(),
                    // Topological storage: fan-ins must precede the gate.
                    Signal::Gate(src) => src.0 < i,
                };
                if !ok {
                    return Err(NetlistError::UnknownSignal {
                        gate: g.name.clone(),
                    });
                }
            }
        }
        for &o in &self.outputs {
            if o.0 >= self.gates.len() {
                return Err(NetlistError::BadOutput(o.0));
            }
        }
        Ok(())
    }

    /// Constructs a circuit from raw parts, validating the result.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if the parts do not form a valid,
    /// topologically ordered netlist.
    pub fn from_parts(
        name: String,
        input_names: Vec<String>,
        gates: Vec<Gate>,
        outputs: Vec<GateId>,
    ) -> Result<Self, NetlistError> {
        let c = Circuit {
            name,
            input_names,
            gates,
            outputs,
        };
        c.validate()?;
        Ok(c)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} gates, {} outputs, depth {}",
            self.name,
            self.num_inputs(),
            self.num_gates(),
            self.outputs.len(),
            self.depth()
        )
    }
}

/// Incremental, always-acyclic circuit construction.
///
/// ```
/// use sgs_netlist::{CircuitBuilder, GateKind};
/// # fn main() -> Result<(), sgs_netlist::NetlistError> {
/// let mut b = CircuitBuilder::new("half_adder");
/// let a = b.add_input("a");
/// let c = b.add_input("b");
/// let s = b.add_gate(GateKind::Xor2, "sum", &[a, c])?;
/// let k = b.add_gate(GateKind::And2, "carry", &[a, c])?;
/// b.mark_output(s)?;
/// b.mark_output(k)?;
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_gates(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    input_names: Vec<String>,
    gates: Vec<Gate>,
    outputs: Vec<GateId>,
    names: std::collections::HashSet<String>,
}

impl CircuitBuilder {
    /// Starts an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            input_names: Vec::new(),
            gates: Vec::new(),
            outputs: Vec::new(),
            names: std::collections::HashSet::new(),
        }
    }

    /// Adds a primary input and returns its signal.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name (an input name clash is a programming
    /// error in generators; BLIF input goes through its own checks).
    pub fn add_input(&mut self, name: impl Into<String>) -> Signal {
        let name = name.into();
        assert!(self.names.insert(name.clone()), "duplicate name `{name}`");
        self.input_names.push(name);
        Signal::Pi(self.input_names.len() - 1)
    }

    /// Adds a gate fed by existing signals; returns its output signal.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the fan-in count is wrong,
    /// [`NetlistError::UnknownSignal`] if a fan-in does not exist, or
    /// [`NetlistError::DuplicateName`] on a name clash.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        name: impl Into<String>,
        inputs: &[Signal],
    ) -> Result<Signal, NetlistError> {
        let name = name.into();
        if inputs.len() != kind.arity() {
            return Err(NetlistError::ArityMismatch {
                gate: name,
                expected: kind.arity(),
                got: inputs.len(),
            });
        }
        for &s in inputs {
            let ok = match s {
                Signal::Pi(p) => p < self.input_names.len(),
                Signal::Gate(g) => g.0 < self.gates.len(),
            };
            if !ok {
                return Err(NetlistError::UnknownSignal { gate: name });
            }
        }
        if !self.names.insert(name.clone()) {
            return Err(NetlistError::DuplicateName(name));
        }
        self.gates.push(Gate {
            name,
            kind,
            inputs: inputs.to_vec(),
            extra_load: 0.0,
        });
        Ok(Signal::Gate(GateId(self.gates.len() - 1)))
    }

    /// Marks a gate output as a primary output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadOutput`] if the signal is a primary input
    /// (primary inputs cannot feed outputs directly in this model) or an
    /// unknown gate.
    pub fn mark_output(&mut self, signal: Signal) -> Result<(), NetlistError> {
        match signal {
            Signal::Gate(g) if g.0 < self.gates.len() => {
                if !self.outputs.contains(&g) {
                    self.outputs.push(g);
                }
                Ok(())
            }
            Signal::Gate(g) => Err(NetlistError::BadOutput(g.0)),
            Signal::Pi(p) => Err(NetlistError::BadOutput(p)),
        }
    }

    /// Adds extra output load to the most recently added gate.
    ///
    /// # Panics
    ///
    /// Panics if no gate has been added yet.
    pub fn set_extra_load(&mut self, gate: Signal, load: f64) {
        if let Signal::Gate(g) = gate {
            self.gates[g.0].extra_load = load;
        } else {
            panic!("extra load applies to gates only");
        }
    }

    /// Finalises the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Empty`] or [`NetlistError::NoOutputs`] for
    /// degenerate circuits.
    pub fn build(self) -> Result<Circuit, NetlistError> {
        Circuit::from_parts(self.name, self.input_names, self.gates, self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gate() -> Circuit {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let g1 = b.add_gate(GateKind::Nand2, "g1", &[a, c]).unwrap();
        let g2 = b.add_gate(GateKind::Inv, "g2", &[g1]).unwrap();
        b.mark_output(g2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let c = two_gate();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.outputs(), &[GateId(1)]);
        assert_eq!(c.gate(GateId(0)).kind, GateKind::Nand2);
        c.validate().unwrap();
    }

    #[test]
    fn levels_and_depth() {
        let c = two_gate();
        assert_eq!(c.levels(), vec![1, 2]);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn fanouts() {
        let c = two_gate();
        let f = c.fanouts();
        assert_eq!(f[0], vec![GateId(1)]);
        assert!(f[1].is_empty());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a");
        let err = b.add_gate(GateKind::Nand2, "g", &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_signal_rejected() {
        let mut b = CircuitBuilder::new("t");
        let err = b
            .add_gate(GateKind::Inv, "g", &[Signal::Gate(GateId(7))])
            .unwrap_err();
        assert!(matches!(err, NetlistError::UnknownSignal { .. }));
    }

    #[test]
    fn duplicate_gate_name_rejected() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a");
        b.add_gate(GateKind::Inv, "g", &[a]).unwrap();
        let err = b.add_gate(GateKind::Inv, "g", &[a]).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateName("g".into()));
    }

    #[test]
    fn no_outputs_rejected() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a");
        b.add_gate(GateKind::Inv, "g", &[a]).unwrap();
        assert_eq!(b.build().unwrap_err(), NetlistError::NoOutputs);
    }

    #[test]
    fn pi_as_output_rejected() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a");
        assert!(b.mark_output(a).is_err());
    }

    #[test]
    fn empty_rejected() {
        let b = CircuitBuilder::new("t");
        assert_eq!(b.build().unwrap_err(), NetlistError::Empty);
    }

    #[test]
    fn duplicate_output_dedup() {
        let mut b = CircuitBuilder::new("t");
        let a = b.add_input("a");
        let g = b.add_gate(GateKind::Inv, "g", &[a]).unwrap();
        b.mark_output(g).unwrap();
        b.mark_output(g).unwrap();
        assert_eq!(b.build().unwrap().outputs().len(), 1);
    }

    #[test]
    fn display_mentions_counts() {
        let c = two_gate();
        let s = format!("{c}");
        assert!(s.contains("2 gates"));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            NetlistError::NoOutputs,
            NetlistError::Empty,
            NetlistError::DuplicateName("x".into()),
            NetlistError::Cycle("y".into()),
            NetlistError::Parse("z".into()),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
