//! Structural Verilog subset reader and writer.
//!
//! Covers the gate-level netlist style synthesis tools emit: one module,
//! `input`/`output`/`wire` declarations, and primitive instantiations of
//! this crate's [`GateKind`]s with named or positional connections:
//!
//! ```verilog
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire n1;
//!   NAND2 g1 (.A(a), .B(b), .Y(n1));
//!   INV g2 (.A(n1), .Y(y));
//! endmodule
//! ```
//!
//! Port convention: inputs `A`, `B`, `C`, `D` in fan-in order, output `Y`.
//! `//` line comments and `/* */` block comments are stripped;
//! instantiation order is arbitrary (a topological sort runs at
//! elaboration). Behavioural constructs (`always`, `assign`, vectors,
//! parameters) are out of scope and rejected.

use crate::circuit::{Circuit, CircuitBuilder, NetlistError, Signal};
use crate::library::GateKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses a structural-Verilog-subset string into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for unsupported constructs,
/// [`NetlistError::Cycle`] for combinational loops.
///
/// ```
/// use sgs_netlist::verilog;
/// let text = "
/// module tiny (a, b, y);
///   input a, b;
///   output y;
///   wire n1;
///   NAND2 g1 (.A(a), .B(b), .Y(n1));
///   INV g2 (.A(n1), .Y(y));
/// endmodule
/// ";
/// let c = verilog::parse(text)?;
/// assert_eq!(c.num_gates(), 2);
/// # Ok::<(), sgs_netlist::NetlistError>(())
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let cleaned = strip_comments(text);

    let mut module = String::from("verilog");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    struct Inst {
        kind: GateKind,
        name: String,
        fanins: Vec<String>,
        out: String,
        line: usize,
    }
    let mut insts: Vec<Inst> = Vec::new();

    // Statements split on `;`; `line` tracks where each statement *starts*
    // (after leading whitespace), for error reporting.
    let mut line = 1usize;
    for stmt in cleaned.split(';') {
        let trimmed = stmt.trim();
        let leading_ws = &stmt[..stmt.len() - stmt.trim_start().len()];
        let ln = line + leading_ws.matches('\n').count();
        line += stmt.matches('\n').count();
        let stmt = trimmed;
        if stmt.is_empty() || stmt == "endmodule" {
            continue;
        }
        // `endmodule` may be glued to the last statement when the file
        // lacks a trailing semicolon.
        let stmt = stmt.strip_suffix("endmodule").unwrap_or(stmt).trim();
        if stmt.is_empty() {
            continue;
        }
        let (head, rest) = stmt.split_once(char::is_whitespace).unwrap_or((stmt, ""));
        match head {
            "module" => {
                let name = rest.split(['(', ' ', '\t', '\n']).next().unwrap_or("");
                if !name.is_empty() {
                    module = name.to_string();
                }
            }
            "input" => inputs.extend(parse_name_list(rest)),
            "output" => outputs.extend(parse_name_list(rest).into_iter().map(|n| (n, ln))),
            "wire" => {} // declarations carry no structure we need
            "assign" | "always" | "reg" | "parameter" | "initial" => {
                return Err(NetlistError::Parse(format!(
                    "line {ln}: behavioural construct `{head}` is not supported"
                )));
            }
            kind_name => {
                let kind = kind_from_name(kind_name).ok_or_else(|| {
                    NetlistError::Parse(format!("line {ln}: unknown gate type `{kind_name}`"))
                })?;
                let (inst_name, conns) =
                    parse_instance(rest, kind_name).map_err(|e| at_line(ln, e))?;
                let (fanins, out) =
                    resolve_ports(kind, &conns, &inst_name).map_err(|e| at_line(ln, e))?;
                insts.push(Inst {
                    kind,
                    name: inst_name,
                    fanins,
                    out,
                    line: ln,
                });
            }
        }
    }

    // Topological order over instances (Kahn).
    let mut by_out: HashMap<&str, usize> = HashMap::new();
    for (i, inst) in insts.iter().enumerate() {
        if by_out.insert(inst.out.as_str(), i).is_some() {
            return Err(NetlistError::DuplicateName(inst.out.clone()));
        }
    }
    let mut indeg = vec![0usize; insts.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); insts.len()];
    for (i, inst) in insts.iter().enumerate() {
        for f in &inst.fanins {
            if let Some(&src) = by_out.get(f.as_str()) {
                indeg[i] += 1;
                dependents[src].push(i);
            } else if !inputs.iter().any(|n| n == f) {
                return Err(NetlistError::Parse(format!(
                    "line {}: net `{f}` feeding `{}` is neither an input nor driven",
                    inst.line, inst.name
                )));
            }
        }
    }
    let mut ready: Vec<usize> = (0..insts.len()).filter(|&i| indeg[i] == 0).collect();
    let mut topo = Vec::with_capacity(insts.len());
    while let Some(i) = ready.pop() {
        topo.push(i);
        for &d in &dependents[i] {
            indeg[d] -= 1;
            if indeg[d] == 0 {
                ready.push(d);
            }
        }
    }
    if topo.len() != insts.len() {
        let stuck = insts
            .iter()
            .enumerate()
            .find(|(i, _)| indeg[*i] > 0)
            .map(|(_, inst)| inst.name.clone())
            .unwrap_or_default();
        return Err(NetlistError::Cycle(stuck));
    }

    // Elaborate.
    let mut b = CircuitBuilder::new(module);
    let mut sig: HashMap<String, Signal> = HashMap::new();
    for i in &inputs {
        if sig.contains_key(i) {
            return Err(NetlistError::DuplicateName(i.clone()));
        }
        sig.insert(i.clone(), b.add_input(i.clone()));
    }
    for &i in &topo {
        let inst = &insts[i];
        let fanin_sigs: Vec<Signal> = inst.fanins.iter().map(|f| sig[f.as_str()]).collect();
        // The gate is named by its output net, so BLIF and downstream
        // reporting see stable names; the instance name is kept when the
        // output net collides with an input name (cannot happen for valid
        // netlists, but be safe).
        let s = b.add_gate(inst.kind, inst.out.clone(), &fanin_sigs)?;
        sig.insert(inst.out.clone(), s);
    }
    for (o, ln) in &outputs {
        let s = *sig.get(o).ok_or_else(|| {
            NetlistError::Parse(format!("line {ln}: output `{o}` is never driven"))
        })?;
        b.mark_output(s)?;
    }
    b.build()
}

/// Strips `/* */` and `//` comments while preserving every newline, so
/// byte positions in the result map to the original line numbers that
/// parse errors report.
fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("/*") {
        out.push_str(&rest[..pos]);
        match rest[pos..].find("*/") {
            Some(end) => {
                // Keep the newlines the block comment spanned.
                out.extend(rest[pos..pos + end + 2].chars().filter(|&c| c == '\n'));
                rest = &rest[pos + end + 2..];
            }
            None => {
                out.extend(rest[pos..].chars().filter(|&c| c == '\n'));
                rest = "";
                break;
            }
        }
    }
    out.push_str(rest);
    out.lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Prefixes `line N:` onto a [`NetlistError::Parse`] message (other
/// variants carry a bare name and pass through).
fn at_line(ln: usize, e: NetlistError) -> NetlistError {
    match e {
        NetlistError::Parse(msg) => NetlistError::Parse(format!("line {ln}: {msg}")),
        other => other,
    }
}

fn parse_name_list(rest: &str) -> Vec<String> {
    rest.split(',')
        .map(|t| t.trim().to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

/// One port connection: optional port name (None for positional) and net.
type Connection = (Option<String>, String);

/// Parses `name ( .A(x), .B(y), .Y(z) )` or `name (z, x, y)`.
fn parse_instance(rest: &str, kind_name: &str) -> Result<(String, Vec<Connection>), NetlistError> {
    let open = rest
        .find('(')
        .ok_or_else(|| NetlistError::Parse(format!("malformed instantiation of `{kind_name}`")))?;
    let name = rest[..open].trim().to_string();
    if name.is_empty() {
        return Err(NetlistError::Parse(format!(
            "instance of `{kind_name}` has no name"
        )));
    }
    let close = rest
        .rfind(')')
        .ok_or_else(|| NetlistError::Parse(format!("unterminated port list on `{name}`")))?;
    let body = &rest[open + 1..close];
    let mut conns = Vec::new();
    for item in body.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if let Some(stripped) = item.strip_prefix('.') {
            let (port, net) = stripped.split_once('(').ok_or_else(|| {
                NetlistError::Parse(format!("malformed connection `{item}` on `{name}`"))
            })?;
            let net = net.trim_end_matches(')').trim();
            conns.push((Some(port.trim().to_string()), net.to_string()));
        } else {
            conns.push((None, item.to_string()));
        }
    }
    Ok((name, conns))
}

/// Maps connections to (fan-in nets in A..D order, output net).
fn resolve_ports(
    kind: GateKind,
    conns: &[Connection],
    inst: &str,
) -> Result<(Vec<String>, String), NetlistError> {
    let arity = kind.arity();
    let named = conns.iter().any(|(p, _)| p.is_some());
    if named {
        let mut fanins = vec![None; arity];
        let mut out = None;
        for (port, net) in conns {
            let port = port.as_deref().ok_or_else(|| {
                NetlistError::Parse(format!("`{inst}` mixes named and positional connections"))
            })?;
            match port {
                "Y" => out = Some(net.clone()),
                p => {
                    let idx = match p {
                        "A" => 0,
                        "B" => 1,
                        "C" => 2,
                        "D" => 3,
                        _ => {
                            return Err(NetlistError::Parse(format!(
                                "unknown port `{p}` on `{inst}`"
                            )))
                        }
                    };
                    if idx >= arity {
                        return Err(NetlistError::Parse(format!(
                            "port `{p}` exceeds the arity of `{inst}`"
                        )));
                    }
                    fanins[idx] = Some(net.clone());
                }
            }
        }
        let out =
            out.ok_or_else(|| NetlistError::Parse(format!("`{inst}` has no Y connection")))?;
        let fanins: Option<Vec<String>> = fanins.into_iter().collect();
        let fanins = fanins.ok_or_else(|| {
            NetlistError::Parse(format!("`{inst}` is missing an input connection"))
        })?;
        Ok((fanins, out))
    } else {
        // Positional: Y first, then A..D (the common primitive convention).
        if conns.len() != arity + 1 {
            return Err(NetlistError::Parse(format!(
                "`{inst}` has {} connections, expected {}",
                conns.len(),
                arity + 1
            )));
        }
        let out = conns[0].1.clone();
        let fanins = conns[1..].iter().map(|(_, n)| n.clone()).collect();
        Ok((fanins, out))
    }
}

fn kind_from_name(name: &str) -> Option<GateKind> {
    GateKind::all()
        .iter()
        .copied()
        .find(|k| k.to_string() == name)
}

/// Serialises a circuit to the structural-Verilog subset understood by
/// [`parse`]; `parse(to_verilog(c))` round-trips the structure and gate
/// kinds.
pub fn to_verilog(c: &Circuit) -> String {
    let net_of = |sig: Signal| -> String {
        match sig {
            Signal::Pi(p) => c.input_names()[p].clone(),
            Signal::Gate(g) => c.gate(g).name.clone(),
        }
    };
    let mut s = String::new();
    let out_names: Vec<String> = c
        .outputs()
        .iter()
        .map(|&o| c.gate(o).name.clone())
        .collect();
    let mut ports: Vec<String> = c.input_names().to_vec();
    ports.extend(out_names.iter().cloned());
    let _ = writeln!(s, "module {} ({});", c.name(), ports.join(", "));
    let _ = writeln!(s, "  input {};", c.input_names().join(", "));
    let _ = writeln!(s, "  output {};", out_names.join(", "));
    let internal: Vec<String> = c
        .gates()
        .filter(|(id, _)| !c.is_output(*id))
        .map(|(_, g)| g.name.clone())
        .collect();
    if !internal.is_empty() {
        let _ = writeln!(s, "  wire {};", internal.join(", "));
    }
    for (i, (_, g)) in c.gates().enumerate() {
        let mut conns: Vec<String> = g
            .inputs
            .iter()
            .enumerate()
            .map(|(k, &sig)| format!(".{}({})", ["A", "B", "C", "D"][k], net_of(sig)))
            .collect();
        conns.push(format!(".Y({})", g.name));
        let _ = writeln!(s, "  {} u{} ({});", g.kind, i, conns.join(", "));
    }
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn parse_minimal_named() {
        let text = "
module tiny (a, b, y);
  input a, b;
  output y;
  wire n1;
  NAND2 g1 (.A(a), .B(b), .Y(n1));
  INV g2 (.A(n1), .Y(y));
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_inputs(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn parse_positional_and_out_of_order() {
        // g2 declared before its fan-in driver; positional ports (Y first).
        let text = "
module ooo (a, y);
  input a;
  output y;
  wire n1;
  INV g2 (y, n1);
  INV g1 (n1, a);
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn comments_stripped() {
        let text = "
// top comment
module m (a, y); /* block
   spanning lines */
  input a;
  output y;
  INV g (.A(a), .Y(y)); // trailing
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn roundtrip_structures() {
        for circuit in [
            generate::tree7(),
            generate::fig2(),
            generate::ripple_carry_adder(3),
            generate::array_multiplier(3),
        ] {
            let text = to_verilog(&circuit);
            let back = parse(&text).unwrap();
            assert_eq!(back.num_gates(), circuit.num_gates(), "{}", circuit.name());
            assert_eq!(back.num_inputs(), circuit.num_inputs());
            assert_eq!(back.outputs().len(), circuit.outputs().len());
            assert_eq!(back.depth(), circuit.depth());
            let mut a: Vec<_> = circuit.gates().map(|(_, g)| g.kind).collect();
            let mut b: Vec<_> = back.gates().map(|(_, g)| g.kind).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn behavioural_rejected() {
        let text = "module m (a, y); input a; output y; assign y = ~a; endmodule";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }

    #[test]
    fn unknown_gate_rejected() {
        let text = "module m (a, y); input a; output y; FOO g (.A(a), .Y(y)); endmodule";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }

    #[test]
    fn cycle_rejected() {
        let text = "
module loopy (a, y);
  input a;
  output y;
  wire n1, n2;
  INV g1 (.A(n2), .Y(n1));
  INV g2 (.A(n1), .Y(n2));
  INV g3 (.A(n2), .Y(y));
endmodule
";
        assert!(matches!(parse(text), Err(NetlistError::Cycle(_))));
    }

    #[test]
    fn undriven_net_rejected() {
        let text = "module m (a, y); input a; output y; INV g (.A(ghost), .Y(y)); endmodule";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }

    #[test]
    fn missing_connection_rejected() {
        let text = "module m (a, y); input a; output y; NAND2 g (.A(a), .Y(y)); endmodule";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }

    #[test]
    fn duplicate_driver_rejected() {
        let text = "
module m (a, y);
  input a;
  output y;
  INV g1 (.A(a), .Y(y));
  INV g2 (.A(a), .Y(y));
endmodule
";
        assert!(matches!(parse(text), Err(NetlistError::DuplicateName(_))));
    }
}
