//! ISCAS-85 netlist format reader and writer.
//!
//! The third classic benchmark interchange format (alongside BLIF and
//! structural Verilog), used by the c17/c432/.../c6288 circuits:
//!
//! ```text
//! # comment
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(5)
//! 4 = NAND(1, 2)
//! 5 = NOT(4)
//! ```
//!
//! Gate names map to [`GateKind`] as `NOT -> Inv`, `BUFF -> Buf`,
//! `NAND/NOR` by arity (2-4), `AND -> And2`, `OR -> Or2`, `XOR -> Xor2`.
//! Wider NAND/NOR nodes than the library carries are rejected (the ISCAS
//! circuits use up to 9-input gates; remap those through
//! [`crate::blif`]'s decomposing importer if needed). Definitions may
//! appear in any order; cycles are rejected.

use crate::circuit::{Circuit, CircuitBuilder, NetlistError, Signal};
use crate::library::GateKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses an ISCAS-85 netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed text or unsupported gate
/// types/arities, [`NetlistError::Cycle`] for combinational loops.
///
/// ```
/// use sgs_netlist::iscas;
/// let text = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// n1 = NAND(a, b)
/// y = NOT(n1)
/// ";
/// let c = iscas::parse(text)?;
/// assert_eq!(c.num_gates(), 2);
/// # Ok::<(), sgs_netlist::NetlistError>(())
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    struct Node {
        kind: GateKind,
        fanins: Vec<String>,
        line: usize,
    }
    let mut nodes: HashMap<String, Node> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("INPUT(") {
            let name = rest.trim_end_matches(')').trim();
            inputs.push(name.to_string());
        } else if let Some(rest) = line.strip_prefix("OUTPUT(") {
            let name = rest.trim_end_matches(')').trim();
            outputs.push((name.to_string(), ln));
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let out = lhs.trim().to_string();
            let rhs = rhs.trim();
            let open = rhs.find('(').ok_or_else(|| {
                NetlistError::Parse(format!("line {ln}: malformed definition of `{out}`"))
            })?;
            let func = rhs[..open].trim().to_uppercase();
            let body = rhs[open + 1..].trim_end_matches(')');
            let fanins: Vec<String> = body
                .split(',')
                .map(|t| t.trim().to_string())
                .filter(|t| !t.is_empty())
                .collect();
            let kind = kind_for(&func, fanins.len()).ok_or_else(|| {
                NetlistError::Parse(format!(
                    "line {ln}: unsupported gate `{func}` with {} inputs at `{out}`",
                    fanins.len()
                ))
            })?;
            let node = Node {
                kind,
                fanins,
                line: ln,
            };
            if nodes.insert(out.clone(), node).is_some() {
                return Err(NetlistError::DuplicateName(out));
            }
            order.push(out);
        } else {
            return Err(NetlistError::Parse(format!(
                "line {ln}: unrecognised line `{line}`"
            )));
        }
    }

    // Kahn topological sort (definitions may be out of order).
    let mut indeg: HashMap<&str, usize> = HashMap::new();
    let mut dependents: HashMap<&str, Vec<&str>> = HashMap::new();
    for name in &order {
        let mut deg = 0;
        for f in &nodes[name].fanins {
            if nodes.contains_key(f.as_str()) {
                deg += 1;
                dependents
                    .entry(f.as_str())
                    .or_default()
                    .push(name.as_str());
            } else if !inputs.iter().any(|i| i == f) {
                return Err(NetlistError::Parse(format!(
                    "line {}: signal `{f}` feeding `{name}` is neither an input nor defined",
                    nodes[name].line
                )));
            }
        }
        indeg.insert(name.as_str(), deg);
    }
    let mut ready: Vec<&str> = order
        .iter()
        .map(String::as_str)
        .filter(|n| indeg[n] == 0)
        .collect();
    let mut topo: Vec<&str> = Vec::with_capacity(order.len());
    while let Some(n) = ready.pop() {
        topo.push(n);
        if let Some(deps) = dependents.get(n) {
            for &d in deps {
                let e = indeg.get_mut(d).expect("dependent is a node");
                *e -= 1;
                if *e == 0 {
                    ready.push(d);
                }
            }
        }
    }
    if topo.len() != order.len() {
        let stuck = order
            .iter()
            .find(|n| indeg[n.as_str()] > 0)
            .cloned()
            .unwrap_or_default();
        return Err(NetlistError::Cycle(stuck));
    }

    let mut b = CircuitBuilder::new("iscas");
    let mut sig: HashMap<String, Signal> = HashMap::new();
    for i in &inputs {
        if sig.contains_key(i) {
            return Err(NetlistError::DuplicateName(i.clone()));
        }
        sig.insert(i.clone(), b.add_input(i.clone()));
    }
    for name in topo {
        let node = &nodes[name];
        let fanin_sigs: Vec<Signal> = node.fanins.iter().map(|f| sig[f.as_str()]).collect();
        let s = b.add_gate(node.kind, name, &fanin_sigs)?;
        sig.insert(name.to_string(), s);
    }
    for (o, ln) in &outputs {
        let s = *sig.get(o).ok_or_else(|| {
            NetlistError::Parse(format!("line {ln}: output `{o}` is never defined"))
        })?;
        b.mark_output(s)?;
    }
    b.build()
}

fn kind_for(func: &str, arity: usize) -> Option<GateKind> {
    match (func, arity) {
        ("NOT" | "INV", 1) => Some(GateKind::Inv),
        ("BUFF" | "BUF", 1) => Some(GateKind::Buf),
        ("NAND", 2) => Some(GateKind::Nand2),
        ("NAND", 3) => Some(GateKind::Nand3),
        ("NAND", 4) => Some(GateKind::Nand4),
        ("NOR", 2) => Some(GateKind::Nor2),
        ("NOR", 3) => Some(GateKind::Nor3),
        ("AND", 2) => Some(GateKind::And2),
        ("OR", 2) => Some(GateKind::Or2),
        ("XOR", 2) => Some(GateKind::Xor2),
        _ => None,
    }
}

fn func_for(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Inv => "NOT",
        GateKind::Buf => "BUFF",
        GateKind::Nand2 | GateKind::Nand3 | GateKind::Nand4 => "NAND",
        GateKind::Nor2 | GateKind::Nor3 => "NOR",
        GateKind::And2 => "AND",
        GateKind::Or2 => "OR",
        GateKind::Xor2 => "XOR",
    }
}

/// Serialises a circuit to ISCAS-85 text; `parse(to_iscas(c))` round-trips
/// the structure and gate kinds.
pub fn to_iscas(c: &Circuit) -> String {
    let net_of = |sig: Signal| -> String {
        match sig {
            Signal::Pi(p) => c.input_names()[p].clone(),
            Signal::Gate(g) => c.gate(g).name.clone(),
        }
    };
    let mut s = String::new();
    let _ = writeln!(s, "# {}", c.name());
    for i in c.input_names() {
        let _ = writeln!(s, "INPUT({i})");
    }
    for &o in c.outputs() {
        let _ = writeln!(s, "OUTPUT({})", c.gate(o).name);
    }
    for (_, g) in c.gates() {
        let ins: Vec<String> = g.inputs.iter().map(|&x| net_of(x)).collect();
        let _ = writeln!(s, "{} = {}({})", g.name, func_for(g.kind), ins.join(", "));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    /// The genuine ISCAS-85 c17 netlist (6 NAND2 gates).
    const C17: &str = "
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let c = parse(C17).unwrap();
        c.validate().unwrap();
        assert_eq!(c.num_inputs(), 5);
        assert_eq!(c.num_gates(), 6);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.depth(), 3);
        for (_, g) in c.gates() {
            assert_eq!(g.kind, GateKind::Nand2);
        }
    }

    #[test]
    fn c17_reconverges_through_shared_gates() {
        // Gate 11 fans out to 16 and 19, and 16 to both outputs — the
        // structure the statistical analyses care about survives import.
        let c = parse(C17).unwrap();
        let fanouts = c.fanouts();
        let g11 = c.gates().find(|(_, g)| g.name == "11").unwrap().0;
        let g16 = c.gates().find(|(_, g)| g.name == "16").unwrap().0;
        assert_eq!(fanouts[g11.index()].len(), 2);
        assert_eq!(fanouts[g16.index()].len(), 2);
    }

    #[test]
    fn out_of_order_definitions() {
        let text = "
INPUT(a)
OUTPUT(y)
y = NOT(n1)
n1 = NOT(a)
";
        let c = parse(text).unwrap();
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn roundtrip_structures() {
        for circuit in [generate::tree7(), generate::ripple_carry_adder(3)] {
            let text = to_iscas(&circuit);
            let back = parse(&text).unwrap();
            assert_eq!(back.num_gates(), circuit.num_gates());
            assert_eq!(back.num_inputs(), circuit.num_inputs());
            assert_eq!(back.outputs().len(), circuit.outputs().len());
            assert_eq!(back.depth(), circuit.depth());
            let mut a: Vec<_> = circuit.gates().map(|(_, g)| g.kind).collect();
            let mut b: Vec<_> = back.gates().map(|(_, g)| g.kind).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn wide_gate_rejected() {
        let text = "
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
y = NAND(a, b, c, d, e)
";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }

    #[test]
    fn cycle_rejected() {
        let text = "
INPUT(a)
OUTPUT(y)
x = NOT(y)
y = NOT(x)
";
        assert!(matches!(parse(text), Err(NetlistError::Cycle(_))));
    }

    #[test]
    fn unknown_signal_rejected() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }
}
