//! Gate-level combinational netlists for statistical gate sizing.
//!
//! Provides the circuit substrate the DATE 2000 gate-sizing paper operates
//! on:
//!
//! * [`circuit`] — a combinational DAG of sized gates with primary inputs
//!   and outputs, topological ordering, levelisation and fan-out queries;
//! * [`library`] — the sizable-gate delay model of Berkelaar & Jess 1990
//!   used by the paper (Eq. 14): `t = t_int + c (C_load + sum C_in S_i) / S`;
//! * [`blif`] — a BLIF-subset reader/writer so real MCNC benchmark netlists
//!   (apex1, apex2, k2) can be dropped in when available;
//! * [`verilog`] — a structural-Verilog-subset reader/writer for the
//!   gate-level netlists synthesis tools emit;
//! * [`iscas`] — an ISCAS-85 reader/writer (the c17/.../c6288 benchmark
//!   format);
//! * [`generate`] — deterministic constructors for the paper's example
//!   circuits (Fig. 2, the Fig. 3 tree) and seeded synthetic benchmark
//!   circuits matched to the paper's cell counts, used because the original
//!   MCNC netlists are not redistributable here.
//!
//! # Example
//!
//! ```
//! use sgs_netlist::generate;
//! let tree = generate::tree7();
//! assert_eq!(tree.num_gates(), 7);
//! assert_eq!(tree.outputs().len(), 1);
//! ```

pub mod blif;
pub mod circuit;
pub mod generate;
pub mod iscas;
pub mod library;
pub mod verilog;

pub use circuit::{Circuit, CircuitBuilder, Gate, GateId, NetlistError, Signal};
pub use library::{GateKind, GateParams, Library};
