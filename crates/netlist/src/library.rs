//! The sizable-gate delay model (Berkelaar & Jess 1990, paper Eq. 14).
//!
//! A gate's mean propagation delay as a function of its speed factor `S` is
//!
//! ```text
//! t(S) = t_int + c * (C_load + sum_i C_in,i * S_i) / S
//! ```
//!
//! where `t_int` is the internal (size-invariant) delay, `C_load` the wiring
//! capacitance at the output, `C_in,i` the input capacitance of driven gate
//! `i` (which scales with *that* gate's speed factor `S_i`), and `c` a
//! technology constant converting capacitance to delay. The gate-delay
//! standard deviation is tied to the mean, `sigma_t = sigma_factor * t`
//! (0.25 in all the paper's experiments), and `1 <= S <= s_limit`
//! (`s_limit = 3` in the paper).

use std::fmt;

/// The logic function / footprint of a gate, fixing its electrical
/// parameters in a [`Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
}

impl GateKind {
    /// Number of logic inputs this gate kind expects.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Inv | GateKind::Buf => 1,
            GateKind::Nand2 | GateKind::Nor2 | GateKind::And2 | GateKind::Or2 | GateKind::Xor2 => 2,
            GateKind::Nand3 | GateKind::Nor3 => 3,
            GateKind::Nand4 => 4,
        }
    }

    /// All kinds, in a stable order.
    pub fn all() -> &'static [GateKind] {
        &[
            GateKind::Inv,
            GateKind::Buf,
            GateKind::Nand2,
            GateKind::Nand3,
            GateKind::Nand4,
            GateKind::Nor2,
            GateKind::Nor3,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Xor2,
        ]
    }

    /// A NAND kind of the given arity (1 maps to [`GateKind::Inv`]).
    ///
    /// # Panics
    ///
    /// Panics for arity 0 or greater than 4.
    pub fn nand_of_arity(n: usize) -> GateKind {
        match n {
            1 => GateKind::Inv,
            2 => GateKind::Nand2,
            3 => GateKind::Nand3,
            4 => GateKind::Nand4,
            _ => panic!("no NAND gate of arity {n}"),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Inv => "INV",
            GateKind::Buf => "BUF",
            GateKind::Nand2 => "NAND2",
            GateKind::Nand3 => "NAND3",
            GateKind::Nand4 => "NAND4",
            GateKind::Nor2 => "NOR2",
            GateKind::Nor3 => "NOR3",
            GateKind::And2 => "AND2",
            GateKind::Or2 => "OR2",
            GateKind::Xor2 => "XOR2",
        };
        f.write_str(s)
    }
}

/// Per-kind electrical parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateParams {
    /// Internal, size-invariant delay `t_int`.
    pub t_int: f64,
    /// Input (gate-oxide) capacitance `C_in` at unit size.
    pub c_in: f64,
}

/// A cell library: electrical parameters per [`GateKind`] plus the global
/// constants of the sizing model.
///
/// The default library is calibrated (see `sgs-bench`) so the paper's
/// 7-NAND tree circuit lands near Table 2's delay range (`mu` about 7.4
/// unsized, about 5.4 fully sized).
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    /// Technology constant `c` converting capacitance to delay.
    pub c: f64,
    /// `sigma_t = sigma_factor * mu_t` (0.25 in the paper).
    pub sigma_factor: f64,
    /// Upper bound on every speed factor (`limit` in the paper; 3.0 there).
    pub s_limit: f64,
    /// Default wiring capacitance at a gate output.
    pub wire_load: f64,
    /// Additional capacitance on primary outputs (pads / next stage).
    pub po_load: f64,
    params: Vec<(GateKind, GateParams)>,
}

impl Library {
    /// The calibrated default library (see crate docs).
    pub fn paper_default() -> Self {
        let p = |t_int: f64, c_in: f64| GateParams { t_int, c_in };
        Library {
            c: 1.0,
            sigma_factor: 0.25,
            s_limit: 3.0,
            wire_load: 0.55,
            po_load: 1.15,
            params: vec![
                (GateKind::Inv, p(0.65, 0.45)),
                (GateKind::Buf, p(0.8, 0.45)),
                (GateKind::Nand2, p(0.9, 0.6)),
                (GateKind::Nand3, p(1.1, 0.7)),
                (GateKind::Nand4, p(1.25, 0.8)),
                (GateKind::Nor2, p(1.0, 0.65)),
                (GateKind::Nor3, p(1.25, 0.75)),
                (GateKind::And2, p(1.15, 0.6)),
                (GateKind::Or2, p(1.25, 0.65)),
                (GateKind::Xor2, p(1.55, 0.85)),
            ],
        }
    }

    /// Parameters for a gate kind.
    ///
    /// # Panics
    ///
    /// Panics if the kind is not in the library (the default library covers
    /// all kinds).
    pub fn params(&self, kind: GateKind) -> GateParams {
        self.params
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| panic!("gate kind {kind} not in library"))
    }

    /// Overrides the parameters for one gate kind (builder-style).
    pub fn with_params(mut self, kind: GateKind, params: GateParams) -> Self {
        if let Some(slot) = self.params.iter_mut().find(|(k, _)| *k == kind) {
            slot.1 = params;
        } else {
            self.params.push((kind, params));
        }
        self
    }

    /// Overrides the maximum speed factor (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `s_limit < 1`.
    pub fn with_s_limit(mut self, s_limit: f64) -> Self {
        assert!(s_limit >= 1.0, "s_limit must be >= 1");
        self.s_limit = s_limit;
        self
    }

    /// Overrides the sigma/mean factor (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_factor` is negative.
    pub fn with_sigma_factor(mut self, sigma_factor: f64) -> Self {
        assert!(sigma_factor >= 0.0, "sigma_factor must be >= 0");
        self.sigma_factor = sigma_factor;
        self
    }
}

impl Default for Library {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(GateKind::Inv.arity(), 1);
        assert_eq!(GateKind::Nand2.arity(), 2);
        assert_eq!(GateKind::Nand4.arity(), 4);
        for &k in GateKind::all() {
            assert!(k.arity() >= 1 && k.arity() <= 4);
        }
    }

    #[test]
    fn default_library_covers_all_kinds() {
        let lib = Library::default();
        for &k in GateKind::all() {
            let p = lib.params(k);
            assert!(p.t_int > 0.0 && p.c_in > 0.0);
        }
        assert_eq!(lib.sigma_factor, 0.25);
        assert_eq!(lib.s_limit, 3.0);
    }

    #[test]
    fn with_params_overrides() {
        let lib = Library::default().with_params(
            GateKind::Inv,
            GateParams {
                t_int: 9.0,
                c_in: 8.0,
            },
        );
        assert_eq!(lib.params(GateKind::Inv).t_int, 9.0);
        assert_eq!(lib.params(GateKind::Nand2).t_int, 0.9);
    }

    #[test]
    fn nand_of_arity() {
        assert_eq!(GateKind::nand_of_arity(1), GateKind::Inv);
        assert_eq!(GateKind::nand_of_arity(4), GateKind::Nand4);
    }

    #[test]
    #[should_panic(expected = "no NAND gate of arity")]
    fn nand_of_arity_rejects_large() {
        let _ = GateKind::nand_of_arity(9);
    }

    #[test]
    fn display_nonempty() {
        for &k in GateKind::all() {
            assert!(!format!("{k}").is_empty());
        }
    }
}
