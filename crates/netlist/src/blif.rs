//! BLIF-subset reader and writer.
//!
//! Supports the structural subset needed to import mapped combinational
//! MCNC benchmarks: `.model`, `.inputs`, `.outputs`, `.names`, `.end`,
//! line continuations (`\`) and comments (`#`). Cover rows under `.names`
//! are skipped — gate sizing only needs topology and gate footprints, not
//! logic functions. Latches and subcircuits are rejected.
//!
//! A `.names` block with `k` inputs maps to the NAND-family gate of arity
//! `k` ([`GateKind::nand_of_arity`]); wider blocks are decomposed into a
//! balanced tree of 4/2-input gates. The writer emits a
//! `# sgs-kind <KIND>` comment before each `.names` block, which the reader
//! uses to restore exact gate kinds, so `write -> parse` round-trips a
//! circuit.

use crate::circuit::{Circuit, CircuitBuilder, NetlistError, Signal};
use crate::library::GateKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses a BLIF-subset string into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for unsupported constructs or malformed
/// text, [`NetlistError::Cycle`] for combinational loops.
///
/// ```
/// use sgs_netlist::blif;
/// let text = "\
/// .model tiny
/// .inputs a b
/// .outputs y
/// .names a b n1
/// 11 1
/// .names n1 y
/// 0 1
/// .end
/// ";
/// let c = blif::parse(text)?;
/// assert_eq!(c.num_gates(), 2);
/// # Ok::<(), sgs_netlist::NetlistError>(())
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let mut model = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    // name -> (fanin names, kind hint)
    struct Node {
        fanins: Vec<String>,
        kind: Option<GateKind>,
    }
    let mut nodes: HashMap<String, Node> = HashMap::new();
    let mut order: Vec<String> = Vec::new(); // declaration order of gates
    let mut pending_kind: Option<GateKind> = None;

    // Join continuation lines first.
    let mut logical_lines: Vec<String> = Vec::new();
    let mut acc = String::new();
    for raw in text.lines() {
        let line = raw.trim_end();
        if let Some(stripped) = line.strip_suffix('\\') {
            acc.push_str(stripped);
            acc.push(' ');
        } else {
            acc.push_str(line);
            logical_lines.push(std::mem::take(&mut acc));
        }
    }
    if !acc.trim().is_empty() {
        logical_lines.push(acc);
    }

    for line in &logical_lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            // Kind annotation written by `to_blif`.
            let mut it = comment.split_whitespace();
            if it.next() == Some("sgs-kind") {
                pending_kind = it.next().and_then(kind_from_str);
            }
            continue;
        }
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("non-empty line has a token");
        match head {
            ".model" => {
                if let Some(n) = tokens.next() {
                    model = n.to_string();
                }
            }
            ".inputs" => inputs.extend(tokens.map(str::to_string)),
            ".outputs" => outputs.extend(tokens.map(str::to_string)),
            ".names" => {
                let names: Vec<String> = tokens.map(str::to_string).collect();
                if names.is_empty() {
                    return Err(NetlistError::Parse(".names with no signals".into()));
                }
                let out = names.last().expect("nonempty").clone();
                let fanins = names[..names.len() - 1].to_vec();
                if fanins.is_empty() {
                    // Constant node: unsupported for sizing.
                    return Err(NetlistError::Parse(format!(
                        "constant .names node `{out}` is not supported"
                    )));
                }
                if nodes
                    .insert(
                        out.clone(),
                        Node {
                            fanins,
                            kind: pending_kind.take(),
                        },
                    )
                    .is_some()
                {
                    return Err(NetlistError::DuplicateName(out));
                }
                order.push(out);
            }
            ".end" => break,
            ".latch" | ".subckt" | ".gate" | ".mlatch" => {
                return Err(NetlistError::Parse(format!(
                    "unsupported BLIF construct `{head}`"
                )));
            }
            _ if head.starts_with('.') => {
                return Err(NetlistError::Parse(format!(
                    "unknown BLIF directive `{head}`"
                )));
            }
            // Anything else is a cover row ("11 1" etc.) — topology only,
            // skip it.
            _ => {}
        }
    }

    // Kahn topological sort over gate nodes.
    let mut indeg: HashMap<&str, usize> = HashMap::new();
    let mut dependents: HashMap<&str, Vec<&str>> = HashMap::new();
    for name in &order {
        let node = &nodes[name];
        let mut deg = 0;
        for f in &node.fanins {
            if nodes.contains_key(f.as_str()) {
                deg += 1;
                dependents
                    .entry(f.as_str())
                    .or_default()
                    .push(name.as_str());
            } else if !inputs.iter().any(|i| i == f) {
                return Err(NetlistError::Parse(format!(
                    "signal `{f}` feeding `{name}` is neither an input nor a gate"
                )));
            }
        }
        indeg.insert(name.as_str(), deg);
    }
    let mut ready: Vec<&str> = order
        .iter()
        .map(String::as_str)
        .filter(|n| indeg[n] == 0)
        .collect();
    let mut topo: Vec<&str> = Vec::with_capacity(order.len());
    while let Some(n) = ready.pop() {
        topo.push(n);
        if let Some(deps) = dependents.get(n) {
            for &d in deps {
                let e = indeg.get_mut(d).expect("dependent is a node");
                *e -= 1;
                if *e == 0 {
                    ready.push(d);
                }
            }
        }
    }
    if topo.len() != order.len() {
        let stuck = order
            .iter()
            .find(|n| !topo.contains(&n.as_str()))
            .cloned()
            .unwrap_or_default();
        return Err(NetlistError::Cycle(stuck));
    }

    // Elaborate into a CircuitBuilder, decomposing wide nodes.
    let mut b = CircuitBuilder::new(model);
    let mut sig: HashMap<String, Signal> = HashMap::new();
    for i in &inputs {
        if sig.contains_key(i) {
            return Err(NetlistError::DuplicateName(i.clone()));
        }
        sig.insert(i.clone(), b.add_input(i.clone()));
    }
    for name in topo {
        let node = &nodes[name];
        let fanin_sigs: Vec<Signal> = node.fanins.iter().map(|f| sig[f.as_str()]).collect();
        let out_sig = elaborate_node(&mut b, name, node.kind, &fanin_sigs)?;
        sig.insert(name.to_string(), out_sig);
    }
    for o in &outputs {
        let s = *sig
            .get(o)
            .ok_or_else(|| NetlistError::Parse(format!("output `{o}` is never defined")))?;
        b.mark_output(s)?;
    }
    b.build()
}

/// Adds one logical node, decomposing fan-in wider than 4 into a balanced
/// tree of NAND4/NAND2 gates named `<name>`, `<name>__t0`, `<name>__t1`, ...
fn elaborate_node(
    b: &mut CircuitBuilder,
    name: &str,
    kind: Option<GateKind>,
    fanins: &[Signal],
) -> Result<Signal, NetlistError> {
    if fanins.len() <= 4 {
        let k = match kind {
            Some(k) if k.arity() == fanins.len() => k,
            _ => GateKind::nand_of_arity(fanins.len()),
        };
        return b.add_gate(k, name, fanins);
    }
    let mut frontier: Vec<Signal> = fanins.to_vec();
    let mut tmp = 0usize;
    while frontier.len() > 4 {
        let mut next = Vec::with_capacity(frontier.len() / 4 + 1);
        for chunk in frontier.chunks(4) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                let g = b.add_gate(
                    GateKind::nand_of_arity(chunk.len()),
                    format!("{name}__t{tmp}"),
                    chunk,
                )?;
                tmp += 1;
                next.push(g);
            }
        }
        frontier = next;
    }
    b.add_gate(GateKind::nand_of_arity(frontier.len()), name, &frontier)
}

fn kind_from_str(s: &str) -> Option<GateKind> {
    GateKind::all().iter().copied().find(|k| k.to_string() == s)
}

/// Serialises a circuit to the BLIF subset understood by [`parse`].
///
/// Cover rows are emitted as the all-ones AND row, which preserves topology
/// (what sizing needs) but not logic functions; gate kinds are preserved
/// via `# sgs-kind` comments.
pub fn to_blif(c: &Circuit) -> String {
    let mut s = String::new();
    let _ = writeln!(s, ".model {}", c.name());
    let _ = writeln!(s, ".inputs {}", c.input_names().join(" "));
    let out_names: Vec<&str> = c
        .outputs()
        .iter()
        .map(|&g| c.gate(g).name.as_str())
        .collect();
    let _ = writeln!(s, ".outputs {}", out_names.join(" "));
    for (_, g) in c.gates() {
        let mut names: Vec<&str> = g
            .inputs
            .iter()
            .map(|&sig| match sig {
                Signal::Pi(p) => c.input_names()[p].as_str(),
                Signal::Gate(src) => c.gate(src).name.as_str(),
            })
            .collect();
        names.push(g.name.as_str());
        let _ = writeln!(s, "# sgs-kind {}", g.kind);
        let _ = writeln!(s, ".names {}", names.join(" "));
        let _ = writeln!(s, "{} 1", "1".repeat(g.inputs.len()));
    }
    s.push_str(".end\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn parse_minimal() {
        let text = "\
.model tiny
.inputs a b
.outputs y
.names a b n1
11 1
.names n1 y
0 1
.end
";
        let c = parse(text).unwrap();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn parse_out_of_order_names() {
        // y is declared before its fan-in n1.
        let text = "\
.model ooo
.inputs a
.outputs y
.names n1 y
1 1
.names a n1
1 1
.end
";
        let c = parse(text).unwrap();
        assert_eq!(c.num_gates(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn roundtrip_preserves_structure() {
        for circuit in [
            generate::tree7(),
            generate::fig2(),
            generate::ripple_carry_adder(4),
        ] {
            let text = to_blif(&circuit);
            let back = parse(&text).unwrap();
            assert_eq!(back.num_gates(), circuit.num_gates());
            assert_eq!(back.num_inputs(), circuit.num_inputs());
            assert_eq!(back.outputs().len(), circuit.outputs().len());
            assert_eq!(back.depth(), circuit.depth());
            // Kinds preserved via annotations.
            let kinds: Vec<_> = circuit.gates().map(|(_, g)| g.kind).collect();
            let back_kinds: Vec<_> = back.gates().map(|(_, g)| g.kind).collect();
            let mut a = kinds.clone();
            let mut b = back_kinds.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn wide_names_decomposed() {
        let text = "\
.model wide
.inputs a b c d e f g h i
.outputs y
.names a b c d e f g h i y
111111111 1
.end
";
        let c = parse(text).unwrap();
        c.validate().unwrap();
        // 9 inputs -> tree of NAND gates; output gate exists and all gate
        // arities are <= 4.
        assert!(c.num_gates() >= 3);
        for (_, g) in c.gates() {
            assert!(g.inputs.len() <= 4);
        }
    }

    #[test]
    fn cycle_detected() {
        // x depends on y and y depends on x.
        let text = "\
.model loopy
.inputs a
.outputs y
.names y x
1 1
.names x y
1 1
.end
";
        let err = parse(text).unwrap_err();
        assert!(matches!(err, NetlistError::Cycle(_)), "got {err:?}");
    }

    #[test]
    fn latch_rejected() {
        let text = ".model l\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }

    #[test]
    fn undriven_signal_rejected() {
        let text = "\
.model u
.inputs a
.outputs y
.names ghost y
1 1
.end
";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }

    #[test]
    fn undefined_output_rejected() {
        let text = ".model u\n.inputs a\n.outputs nope\n.names a y\n1 1\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }

    #[test]
    fn continuation_lines() {
        let text = "\
.model cont
.inputs a \\
b
.outputs y
.names a b y
11 1
.end
";
        let c = parse(text).unwrap();
        assert_eq!(c.num_inputs(), 2);
    }
}
