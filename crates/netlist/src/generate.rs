//! Circuit constructors: the paper's example circuits plus deterministic
//! synthetic benchmarks.
//!
//! The DATE 2000 paper evaluates on three MCNC benchmark circuits (apex1 =
//! 982 cells, apex2 = 117 cells, k2 = 1692 cells). Those netlists are not
//! redistributable here, so [`benchmark_suite`] generates seeded random
//! DAGs matched to the paper's cell counts and approximate logic depths —
//! the two properties the paper's conclusions (solvability at scale,
//! relative behaviour of objectives) actually depend on. Real BLIF
//! netlists can be used instead via [`crate::blif`].

use crate::circuit::{Circuit, CircuitBuilder, Signal};
use crate::library::GateKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 7-NAND tree circuit of the paper's Figure 3.
///
/// Gates are named `A`..`G` in the paper's order: leaves `A, B` feed `C`;
/// leaves `D, E` feed `F`; `C, F` feed the single output `G`. Table 2 and
/// Table 3 of the paper are measured on this circuit.
///
/// ```
/// use sgs_netlist::generate::tree7;
/// let c = tree7();
/// assert_eq!(c.num_gates(), 7);
/// assert_eq!(c.depth(), 3);
/// ```
pub fn tree7() -> Circuit {
    let mut b = CircuitBuilder::new("tree7");
    let pis: Vec<Signal> = (0..8).map(|i| b.add_input(format!("i{i}"))).collect();
    let a = b
        .add_gate(GateKind::Nand2, "A", &[pis[0], pis[1]])
        .expect("valid");
    let bb = b
        .add_gate(GateKind::Nand2, "B", &[pis[2], pis[3]])
        .expect("valid");
    let c = b.add_gate(GateKind::Nand2, "C", &[a, bb]).expect("valid");
    let d = b
        .add_gate(GateKind::Nand2, "D", &[pis[4], pis[5]])
        .expect("valid");
    let e = b
        .add_gate(GateKind::Nand2, "E", &[pis[6], pis[7]])
        .expect("valid");
    let f = b.add_gate(GateKind::Nand2, "F", &[d, e]).expect("valid");
    let g = b.add_gate(GateKind::Nand2, "G", &[c, f]).expect("valid");
    b.mark_output(g).expect("valid");
    b.build().expect("tree7 is a valid circuit")
}

/// The 4-gate example circuit of the paper's Figure 2 / Section 5.
///
/// Inputs `a, b, c`; gates `A, B, C` each drive gate `D`; primary outputs
/// are `C` and `D`, matching the sizing formulation written out in the
/// paper's Eq. 18.
pub fn fig2() -> Circuit {
    let mut b = CircuitBuilder::new("fig2");
    let a_in = b.add_input("a");
    let b_in = b.add_input("b");
    let c_in = b.add_input("c");
    let ga = b
        .add_gate(GateKind::Nand2, "A", &[a_in, b_in])
        .expect("valid");
    let gb = b
        .add_gate(GateKind::Nand2, "B", &[b_in, c_in])
        .expect("valid");
    let gc = b
        .add_gate(GateKind::Nand2, "C", &[a_in, c_in])
        .expect("valid");
    let gd = b
        .add_gate(GateKind::Nand3, "D", &[ga, gb, gc])
        .expect("valid");
    b.mark_output(gc).expect("valid");
    b.mark_output(gd).expect("valid");
    b.build().expect("fig2 is a valid circuit")
}

/// A balanced NAND2 tree with the given number of levels
/// (`2^levels - 1` gates, `2^levels` inputs), single output.
///
/// # Panics
///
/// Panics if `levels` is 0 or greater than 20.
pub fn nand_tree(levels: u32) -> Circuit {
    assert!((1..=20).contains(&levels), "levels must be in 1..=20");
    let mut b = CircuitBuilder::new(format!("nand_tree_{levels}"));
    let n_leaves = 1usize << levels;
    let mut frontier: Vec<Signal> = (0..n_leaves)
        .map(|i| b.add_input(format!("i{i}")))
        .collect();
    let mut idx = 0usize;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len() / 2);
        for pair in frontier.chunks(2) {
            let g = b
                .add_gate(GateKind::Nand2, format!("n{idx}"), &[pair[0], pair[1]])
                .expect("valid");
            idx += 1;
            next.push(g);
        }
        frontier = next;
    }
    b.mark_output(frontier[0]).expect("valid");
    b.build().expect("nand tree is a valid circuit")
}

/// A chain of `n` inverters — the simplest path-delay sanity circuit.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn inverter_chain(n: usize) -> Circuit {
    assert!(n > 0, "chain length must be positive");
    let mut b = CircuitBuilder::new(format!("inv_chain_{n}"));
    let mut s = b.add_input("in");
    for i in 0..n {
        s = b
            .add_gate(GateKind::Inv, format!("inv{i}"), &[s])
            .expect("valid");
    }
    b.mark_output(s).expect("valid");
    b.build().expect("chain is a valid circuit")
}

/// A ripple-carry adder over `bits` bits (5 gates per full adder), a
/// realistic structured workload for the examples.
///
/// # Panics
///
/// Panics if `bits` is 0.
pub fn ripple_carry_adder(bits: usize) -> Circuit {
    assert!(bits > 0, "adder width must be positive");
    let mut b = CircuitBuilder::new(format!("rca_{bits}"));
    let a: Vec<Signal> = (0..bits).map(|i| b.add_input(format!("a{i}"))).collect();
    let y: Vec<Signal> = (0..bits).map(|i| b.add_input(format!("b{i}"))).collect();
    let mut carry = b.add_input("cin");
    for i in 0..bits {
        let x1 = b
            .add_gate(GateKind::Xor2, format!("x1_{i}"), &[a[i], y[i]])
            .expect("valid");
        let sum = b
            .add_gate(GateKind::Xor2, format!("sum{i}"), &[x1, carry])
            .expect("valid");
        let c1 = b
            .add_gate(GateKind::And2, format!("c1_{i}"), &[a[i], y[i]])
            .expect("valid");
        let c2 = b
            .add_gate(GateKind::And2, format!("c2_{i}"), &[x1, carry])
            .expect("valid");
        carry = b
            .add_gate(GateKind::Or2, format!("cout{i}"), &[c1, c2])
            .expect("valid");
        b.mark_output(sum).expect("valid");
    }
    b.mark_output(carry).expect("valid");
    b.build().expect("adder is a valid circuit")
}

/// A carry-save array multiplier over `bits x bits` operands — the
/// largest structured workload in the generator set (about
/// `bits^2 + 5 bits (bits-1)` gates with deep reconvergent carry paths).
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn array_multiplier(bits: usize) -> Circuit {
    assert!(bits >= 2, "multiplier width must be at least 2");
    let mut b = CircuitBuilder::new(format!("mul_{bits}"));
    let a: Vec<Signal> = (0..bits).map(|i| b.add_input(format!("a{i}"))).collect();
    let y: Vec<Signal> = (0..bits).map(|i| b.add_input(format!("b{i}"))).collect();

    // Partial products.
    let mut pp = vec![vec![None; bits]; bits];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &yj) in y.iter().enumerate() {
            pp[i][j] = Some(
                b.add_gate(GateKind::And2, format!("pp_{i}_{j}"), &[ai, yj])
                    .expect("valid"),
            );
        }
    }

    // Row-by-row carry-save reduction with full adders.
    let full_adder = |b: &mut CircuitBuilder,
                      name: String,
                      x: Signal,
                      yy: Signal,
                      z: Signal|
     -> (Signal, Signal) {
        let t = b
            .add_gate(GateKind::Xor2, format!("{name}_t"), &[x, yy])
            .expect("valid");
        let s = b
            .add_gate(GateKind::Xor2, format!("{name}_s"), &[t, z])
            .expect("valid");
        let c1 = b
            .add_gate(GateKind::And2, format!("{name}_c1"), &[x, yy])
            .expect("valid");
        let c2 = b
            .add_gate(GateKind::And2, format!("{name}_c2"), &[t, z])
            .expect("valid");
        let c = b
            .add_gate(GateKind::Or2, format!("{name}_c"), &[c1, c2])
            .expect("valid");
        (s, c)
    };

    // Accumulate row i into the running sum/carry vectors.
    let mut sum: Vec<Option<Signal>> = (0..2 * bits).map(|_| None).collect();
    for (j, slot) in sum.iter_mut().take(bits).enumerate() {
        *slot = pp[0][j];
    }
    // Indices i, j are partial-product matrix coordinates; iterator forms
    // would obscure the row/column structure.
    #[allow(clippy::needless_range_loop)]
    for i in 1..bits {
        let mut carry: Option<Signal> = None;
        for j in 0..bits {
            let pos = i + j;
            let p = pp[i][j].expect("partial product exists");
            match (sum[pos], carry) {
                (None, None) => sum[pos] = Some(p),
                (Some(sv), None) => {
                    let s = b
                        .add_gate(GateKind::Xor2, format!("ha_s_{i}_{j}"), &[sv, p])
                        .expect("valid");
                    let c = b
                        .add_gate(GateKind::And2, format!("ha_c_{i}_{j}"), &[sv, p])
                        .expect("valid");
                    sum[pos] = Some(s);
                    carry = Some(c);
                }
                (Some(sv), Some(cv)) => {
                    let (s, c) = full_adder(&mut b, format!("fa_{i}_{j}"), sv, p, cv);
                    sum[pos] = Some(s);
                    carry = Some(c);
                }
                (None, Some(cv)) => {
                    let s = b
                        .add_gate(GateKind::Xor2, format!("hb_s_{i}_{j}"), &[p, cv])
                        .expect("valid");
                    let c = b
                        .add_gate(GateKind::And2, format!("hb_c_{i}_{j}"), &[p, cv])
                        .expect("valid");
                    sum[pos] = Some(s);
                    carry = Some(c);
                }
            }
        }
        if let Some(cv) = carry {
            let pos = i + bits;
            sum[pos] = match sum[pos] {
                None => Some(cv),
                Some(sv) => {
                    let s = b
                        .add_gate(GateKind::Xor2, format!("fin_s_{i}"), &[sv, cv])
                        .expect("valid");
                    Some(s)
                }
            };
        }
    }
    for slot in sum.into_iter().flatten() {
        b.mark_output(slot).expect("valid");
    }
    b.build().expect("multiplier is a valid circuit")
}

/// Parameters for [`random_dag`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomDagSpec {
    /// Circuit name.
    pub name: String,
    /// Number of gates to generate (the paper's "#cells").
    pub cells: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Target logic depth (number of levels the cells are spread over).
    pub depth: usize,
    /// RNG seed; the same spec always yields the same circuit.
    pub seed: u64,
    /// Probability (percent, 0-95) that a fan-in's source level steps one
    /// level further back, applied repeatedly (geometric). Low values keep
    /// fan-ins local (long parallel paths, like the default 35); high
    /// values (e.g. 85) spread fan-ins across many earlier levels, which
    /// shortens typical paths and lets a loaded spine dominate timing.
    pub back_jump_pct: u8,
    /// Extra output load on one designated source-to-sink path (the
    /// "spine"). A positive value makes one critical path dominate, which
    /// reproduces the single-dominant-path sigma/mu ratios of real mapped
    /// benchmarks; 0 leaves the DAG's many balanced near-critical paths,
    /// whose statistical max crushes sigma far below real circuits'.
    pub spine_extra_load: f64,
}

impl Default for RandomDagSpec {
    fn default() -> Self {
        RandomDagSpec {
            name: "random_dag".into(),
            cells: 100,
            inputs: 16,
            depth: 10,
            seed: 0,
            back_jump_pct: 35,
            spine_extra_load: 0.0,
        }
    }
}

/// Generates a seeded random levelised combinational DAG.
///
/// Cells are spread over `depth` levels; each gate draws its first fan-in
/// from the immediately preceding level (guaranteeing the target depth is
/// realised) and remaining fan-ins from earlier levels or primary inputs,
/// biased toward recent levels, which yields fan-out distributions similar
/// to mapped combinational benchmarks. Gates with no fan-out become primary
/// outputs.
///
/// # Panics
///
/// Panics if `cells < depth`, `depth == 0`, or `inputs == 0`.
pub fn random_dag(spec: &RandomDagSpec) -> Circuit {
    assert!(spec.depth > 0, "depth must be positive");
    assert!(spec.inputs > 0, "need at least one input");
    assert!(spec.cells >= spec.depth, "cells must be >= depth");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = CircuitBuilder::new(spec.name.clone());
    let pis: Vec<Signal> = (0..spec.inputs)
        .map(|i| b.add_input(format!("pi{i}")))
        .collect();

    // Spread cells across levels: slightly wider early levels, at least one
    // gate per level.
    let mut per_level = vec![1usize; spec.depth];
    let mut remaining = spec.cells - spec.depth;
    let mut li = 0usize;
    while remaining > 0 {
        per_level[li % spec.depth] += 1;
        li += 1;
        remaining -= 1;
    }

    let mut levels: Vec<Vec<Signal>> = Vec::with_capacity(spec.depth);
    let mut gate_idx = 0usize;
    for (lvl, &count) in per_level.iter().enumerate() {
        let mut this_level = Vec::with_capacity(count);
        for slot in 0..count {
            // The first gate of every level forms the loaded "spine" path.
            let on_spine = slot == 0 && spec.spine_extra_load > 0.0;
            let arity = match rng.gen_range(0..100) {
                0..=14 => 1,
                15..=64 => 2,
                65..=89 => 3,
                _ => 4,
            };
            let kind = match (arity, rng.gen_range(0..10)) {
                (1, 0..=7) => GateKind::Inv,
                (1, _) => GateKind::Buf,
                (2, 0..=5) => GateKind::Nand2,
                (2, 6..=7) => GateKind::Nor2,
                (2, 8) => GateKind::And2,
                (2, _) => GateKind::Or2,
                (3, 0..=6) => GateKind::Nand3,
                (3, _) => GateKind::Nor3,
                _ => GateKind::Nand4,
            };
            let mut fanins = Vec::with_capacity(arity);
            // The slot-0 gates of consecutive levels form a chain, which
            // pins the circuit's logic depth to `spec.depth` exactly (and
            // carries the spine load when one is requested). All other
            // fan-ins are drawn from recent levels or primary inputs, so
            // typical paths are shorter than the chain.
            if slot == 0 {
                if lvl == 0 {
                    fanins.push(pis[rng.gen_range(0..pis.len())]);
                } else {
                    fanins.push(levels[lvl - 1][0]);
                }
            }
            // Remaining fan-ins: biased toward recent levels, falling back
            // to PIs, avoiding duplicate sources within one gate.
            for _ in fanins.len()..arity {
                let s = loop {
                    let cand = if lvl == 0 || rng.gen_range(0..100) < 25 {
                        pis[rng.gen_range(0..pis.len())]
                    } else {
                        // Geometric-ish bias: step back a few levels.
                        let mut back = 1usize;
                        while back < lvl
                            && rng.gen_range(0..100) < i32::from(spec.back_jump_pct.min(95))
                        {
                            back += 1;
                        }
                        let l = &levels[lvl - back];
                        l[rng.gen_range(0..l.len())]
                    };
                    if !fanins.contains(&cand) {
                        break cand;
                    }
                    // Duplicate source: very small levels can make all
                    // candidates collide; fall back to any distinct PI.
                    if pis.len() > fanins.len() {
                        continue;
                    }
                    break cand;
                };
                fanins.push(s);
            }
            // Dedup may still have failed in pathological tiny circuits;
            // shrink the gate rather than wire the same net twice.
            fanins.dedup();
            let kind = if fanins.len() == kind.arity() {
                kind
            } else {
                GateKind::nand_of_arity(fanins.len())
            };
            let g = b
                .add_gate(kind, format!("g{gate_idx}"), &fanins)
                .expect("generator invariants uphold builder rules");
            if on_spine {
                b.set_extra_load(g, spec.spine_extra_load);
            }
            gate_idx += 1;
            this_level.push(g);
        }
        levels.push(this_level);
    }

    // Every gate with no fan-out becomes a primary output: build once with
    // all gates marked, then restrict the output list to the sinks.
    let all_gates: Vec<Signal> = levels.into_iter().flatten().collect();
    for &g in &all_gates {
        b.mark_output(g).expect("gate signals are valid outputs");
    }
    let circuit = b.build().expect("generator produces valid circuits");
    let fanouts = circuit.fanouts();
    let sinks: Vec<crate::circuit::GateId> = circuit
        .gates()
        .map(|(id, _)| id)
        .filter(|id| fanouts[id.index()].is_empty())
        .collect();
    Circuit::from_parts(
        circuit.name().to_string(),
        circuit.input_names().to_vec(),
        circuit.gates().map(|(_, g)| g.clone()).collect(),
        sinks,
    )
    .expect("sink outputs keep the circuit valid")
}

/// The three synthetic stand-ins for the paper's Table 1 benchmarks,
/// matched in cell count and approximate depth: `apex1` (982 cells),
/// `apex2` (117 cells), `k2` (1692 cells).
pub fn benchmark_suite() -> Vec<Circuit> {
    vec![
        random_dag(&RandomDagSpec {
            name: "apex1".into(),
            cells: 982,
            inputs: 45,
            depth: 47,
            seed: 0xA9E71,
            back_jump_pct: 92,
            spine_extra_load: 0.25,
        }),
        random_dag(&RandomDagSpec {
            name: "apex2".into(),
            cells: 117,
            inputs: 39,
            depth: 10,
            seed: 0xA9E72,
            back_jump_pct: 92,
            spine_extra_load: 0.15,
        }),
        random_dag(&RandomDagSpec {
            name: "k2".into(),
            cells: 1692,
            inputs: 46,
            depth: 47,
            seed: 0x0042,
            back_jump_pct: 92,
            spine_extra_load: 0.25,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree7_shape() {
        let c = tree7();
        c.validate().unwrap();
        assert_eq!(c.num_gates(), 7);
        assert_eq!(c.num_inputs(), 8);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.outputs().len(), 1);
        // Paper's naming: gates A..G in order, G the output.
        let names: Vec<&str> = c.gates().map(|(_, g)| g.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C", "D", "E", "F", "G"]);
    }

    #[test]
    fn fig2_shape() {
        let c = fig2();
        c.validate().unwrap();
        assert_eq!(c.num_gates(), 4);
        assert_eq!(c.outputs().len(), 2);
        // D is fed by A, B and C.
        let d = c.gates().find(|(_, g)| g.name == "D").unwrap().1;
        assert_eq!(d.inputs.len(), 3);
    }

    #[test]
    fn nand_tree_counts() {
        for levels in 1..=6 {
            let c = nand_tree(levels);
            c.validate().unwrap();
            assert_eq!(c.num_gates(), (1 << levels) - 1);
            assert_eq!(c.depth() as u32, levels);
        }
    }

    #[test]
    fn chain_depth() {
        let c = inverter_chain(17);
        assert_eq!(c.num_gates(), 17);
        assert_eq!(c.depth(), 17);
    }

    #[test]
    fn multiplier_valid() {
        for bits in [2usize, 4, 6] {
            let c = array_multiplier(bits);
            c.validate().unwrap();
            assert_eq!(c.num_inputs(), 2 * bits);
            assert!(c.num_gates() >= bits * bits);
            assert!(c.depth() >= bits);
            assert!(!c.outputs().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn multiplier_rejects_width_one() {
        let _ = array_multiplier(1);
    }

    #[test]
    fn adder_valid() {
        let c = ripple_carry_adder(8);
        c.validate().unwrap();
        assert_eq!(c.num_gates(), 40);
        assert_eq!(c.outputs().len(), 9);
    }

    #[test]
    fn random_dag_matches_spec() {
        let spec = RandomDagSpec {
            name: "r".into(),
            cells: 200,
            inputs: 16,
            depth: 12,
            seed: 7,
            ..Default::default()
        };
        let c = random_dag(&spec);
        c.validate().unwrap();
        assert_eq!(c.num_gates(), 200);
        assert_eq!(c.num_inputs(), 16);
        assert_eq!(c.depth(), 12);
        assert!(!c.outputs().is_empty());
    }

    #[test]
    fn random_dag_deterministic() {
        let spec = RandomDagSpec {
            name: "r".into(),
            cells: 150,
            inputs: 10,
            depth: 9,
            seed: 99,
            ..Default::default()
        };
        assert_eq!(random_dag(&spec), random_dag(&spec));
        let other = RandomDagSpec {
            seed: 100,
            ..spec.clone()
        };
        assert_ne!(random_dag(&spec), random_dag(&other));
    }

    #[test]
    fn random_dag_outputs_are_sinks() {
        let c = random_dag(&RandomDagSpec {
            name: "r".into(),
            cells: 300,
            inputs: 20,
            depth: 15,
            seed: 3,
            ..Default::default()
        });
        let fanouts = c.fanouts();
        for &o in c.outputs() {
            assert!(fanouts[o.index()].is_empty(), "output {o} has fan-out");
        }
        // Conversely every sink is an output.
        for (id, _) in c.gates() {
            if fanouts[id.index()].is_empty() {
                assert!(c.is_output(id));
            }
        }
    }

    #[test]
    fn benchmark_suite_cell_counts() {
        let suite = benchmark_suite();
        let counts: Vec<(String, usize)> = suite
            .iter()
            .map(|c| (c.name().to_string(), c.num_gates()))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("apex1".to_string(), 982),
                ("apex2".to_string(), 117),
                ("k2".to_string(), 1692)
            ]
        );
        for c in &suite {
            c.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "cells must be >= depth")]
    fn random_dag_rejects_thin() {
        let _ = random_dag(&RandomDagSpec {
            name: "x".into(),
            cells: 3,
            inputs: 2,
            depth: 9,
            seed: 0,
            ..Default::default()
        });
    }
}
