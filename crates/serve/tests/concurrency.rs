//! Concurrency battery: session isolation, determinism and eviction
//! under racing clients.
//!
//! The contract under test:
//!
//! * clients of the **same** circuit share one warm session (exactly one
//!   cold miss no matter how many race to create it) and serialise
//!   through it — the racing run's answer *multiset* is bit-identical to
//!   a single-threaded replay of the same requests, because the session
//!   worker processes an identical job sequence either way;
//! * clients of **distinct** circuits get distinct parallel sessions,
//!   and each session's answer is unaffected by the others (equal to a
//!   single-threaded control run, bit for bit);
//! * LRU eviction mid-traffic degrades to a correct cold re-solve: a
//!   session evicted between two requests answers the second with
//!   exactly the bits a fresh solve produces, and jobs already queued on
//!   an evicted session are still answered (the worker drains before it
//!   retires).
//!
//! Bit-identity leans on shortest-round-trip `f64` formatting: equal
//! response text (after stripping the per-request id prefix) implies
//! equal bits. The battery never enables the process-global metrics
//! registry; it asserts on response bodies (`session_hit`) instead.

use sgs_serve::{Client, Server, ServerConfig};
use sgs_trace::json::{parse_json, Json};

/// Per-session request body for a small generated DAG (distinct `seed`
/// per logical session; same seed → same session).
fn dag_body(seed: u64) -> String {
    format!(
        r#"{{"circuit":{{"generate":{{"name":"conc{seed}","cells":16,"inputs":5,"depth":4,"seed":{seed}}}}},"objective":"area","spec":{{"max_mean":30.0}}}}"#
    )
}

/// The response body with the volatile `request_id` prefix stripped —
/// what is left is exactly the session's answer, safe to compare bit for
/// bit across requests.
fn result_tail(body: &str) -> &str {
    body.split_once(",\"objective\"")
        .or_else(|| body.split_once(",\"mu\""))
        .unwrap_or_else(|| panic!("not a result body: {body}"))
        .1
}

/// Drops the `session_hit` flag from a result tail: it is assigned at
/// checkout time (arrival order), not processing order, so it is the one
/// field that may legitimately permute differently from the job sequence
/// under racing clients.
fn strip_session_hit(tail: &str) -> String {
    tail.replace(",\"session_hit\":true", "")
        .replace(",\"session_hit\":false", "")
}

fn session_hit(body: &str) -> bool {
    parse_json(body.trim())
        .expect("response parses")
        .get("session_hit")
        .map(|v| *v == Json::Bool(true))
        .expect("session_hit present")
}

/// Solves `body` once on a fresh connection and returns the response
/// body, asserting success.
fn solve_once(addr: std::net::SocketAddr, body: &str) -> String {
    let mut c = Client::connect(addr).expect("connect");
    let resp = c.post("/solve", body).expect("solve");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    resp.body
}

#[test]
fn racing_clients_of_one_circuit_share_a_session_and_match_a_replay() {
    const CLIENTS: usize = 8;

    // Single-threaded control: the same 8 identical solves in sequence.
    // The session worker sees cold, warm, warm, ... — exactly the job
    // sequence the racing run serialises to.
    let control: Vec<String> = {
        let server = Server::start(ServerConfig::default(), None).expect("bind");
        let mut c = Client::connect(server.addr()).expect("connect");
        let out = (0..CLIENTS)
            .map(|_| {
                let resp = c.post("/solve", &dag_body(42)).expect("solve");
                assert_eq!(resp.status, 200, "body: {}", resp.body);
                resp.body
            })
            .collect();
        server.shutdown();
        out
    };

    let server = Server::start(
        ServerConfig {
            workers: CLIENTS,
            queue_capacity: 4 * CLIENTS,
            ..ServerConfig::default()
        },
        None,
    )
    .expect("bind");
    let addr = server.addr();
    let racing: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(move || solve_once(addr, &dag_body(42))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    // Exactly one request created the session; everyone else found it warm.
    let misses = racing.iter().filter(|b| !session_hit(b)).count();
    assert_eq!(misses, 1, "exactly one cold miss among {CLIENTS} racers");
    assert_eq!(server.sessions_live(), 1, "one circuit, one session");

    // Thread arrival order is scheduler noise, but the processed job
    // sequence is the control's: the answer multisets must match bit for
    // bit (request ids stripped).
    let mut racing_tails: Vec<String> = racing
        .iter()
        .map(|b| strip_session_hit(result_tail(b)))
        .collect();
    let mut control_tails: Vec<String> = control
        .iter()
        .map(|b| strip_session_hit(result_tail(b)))
        .collect();
    racing_tails.sort_unstable();
    control_tails.sort_unstable();
    assert_eq!(
        racing_tails, control_tails,
        "racing answers must be a permutation of the sequential replay"
    );
    server.shutdown();
}

#[test]
fn distinct_circuits_run_isolated_parallel_sessions() {
    const SESSIONS: u64 = 6;

    // Single-threaded control run: each circuit solved cold, one at a time.
    let control: Vec<String> = {
        let server = Server::start(ServerConfig::default(), None).expect("bind");
        let out = (0..SESSIONS)
            .map(|i| solve_once(server.addr(), &dag_body(100 + i)))
            .collect();
        server.shutdown();
        out
    };

    // Racing run: all circuits solved concurrently against one daemon.
    let server = Server::start(
        ServerConfig {
            workers: SESSIONS as usize,
            queue_capacity: 4 * SESSIONS as usize,
            session_capacity: SESSIONS as usize,
            ..ServerConfig::default()
        },
        None,
    )
    .expect("bind");
    let addr = server.addr();
    let racing: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|i| scope.spawn(move || solve_once(addr, &dag_body(100 + i))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    assert_eq!(
        server.sessions_live(),
        SESSIONS as usize,
        "one session per circuit"
    );

    // Parallelism must not leak between sessions: every racing answer
    // equals its single-threaded control, bit for bit.
    for (i, (r, c)) in racing.iter().zip(&control).enumerate() {
        assert_eq!(
            result_tail(r),
            result_tail(c),
            "session {i} diverged from its single-threaded control"
        );
    }
    server.shutdown();
}

#[test]
fn warm_sequences_replay_identically_across_daemons() {
    // The same solve → what_if → solve → what_if sequence replayed cold
    // on two separate daemons must transcript identically: session state
    // is a function of the request sequence alone.
    let base = dag_body(7);
    let probe = format!(
        "{}{}",
        base.strip_suffix('}').expect("object body"),
        r#","changes":[{"gate":3,"size":2.5}]}"#
    );
    let run = || -> Vec<String> {
        let server = Server::start(ServerConfig::default(), None).expect("bind");
        let mut c = Client::connect(server.addr()).expect("connect");
        let mut out = Vec::new();
        for _ in 0..2 {
            let r = c.post("/solve", &dag_body(7)).expect("solve");
            assert_eq!(r.status, 200, "body: {}", r.body);
            out.push(r.body);
            let r = c.post("/what_if", &probe).expect("what_if");
            assert_eq!(r.status, 200, "body: {}", r.body);
            out.push(r.body);
        }
        server.shutdown();
        out
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            result_tail(x),
            result_tail(y),
            "replay must transcript identically"
        );
    }
}

#[test]
fn eviction_mid_session_degrades_to_a_correct_cold_resolve() {
    // Capacity 1: every circuit change evicts the previous session.
    let server = Server::start(
        ServerConfig {
            session_capacity: 1,
            ..ServerConfig::default()
        },
        None,
    )
    .expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");

    let first = c.post("/solve", &dag_body(500)).expect("cold solve");
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert!(!session_hit(&first.body));

    // Touch a different circuit: evicts session 500.
    let other = c.post("/solve", &dag_body(501)).expect("other circuit");
    assert_eq!(other.status, 200, "body: {}", other.body);
    assert_eq!(server.sessions_live(), 1, "capacity-1 store");

    // Back to 500: must be a cold re-solve (miss) with exactly the bits
    // of the first cold solve — eviction loses warmth, never answers.
    let again = c.post("/solve", &dag_body(500)).expect("cold re-solve");
    assert_eq!(again.status, 200, "body: {}", again.body);
    assert!(!session_hit(&again.body), "evicted session must re-create");
    assert_eq!(
        result_tail(&again.body),
        result_tail(&first.body),
        "cold re-solve after eviction must reproduce the original bits"
    );
    server.shutdown();
}

#[test]
fn eviction_races_with_inflight_jobs_without_losing_answers() {
    // One thread hammers circuit A while another cycles B/C through a
    // capacity-1 store, evicting A constantly. Every A request must still
    // answer 200, and every *cold* A answer must carry exactly the bits
    // of the first cold solve — eviction may cost warmth, never
    // correctness or answers.
    let server = Server::start(
        ServerConfig {
            workers: 4,
            session_capacity: 1,
            queue_capacity: 32,
            ..ServerConfig::default()
        },
        None,
    )
    .expect("bind");
    let addr = server.addr();

    std::thread::scope(|scope| {
        let victim = scope.spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let mut cold_tails: Vec<String> = Vec::new();
            for _ in 0..10 {
                let r = c.post("/solve", &dag_body(600)).expect("victim solve");
                assert_eq!(r.status, 200, "body: {}", r.body);
                if !session_hit(&r.body) {
                    cold_tails.push(result_tail(&r.body).to_string());
                }
            }
            cold_tails
        });
        let evictor = scope.spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            for i in 0..10u64 {
                let r = c
                    .post("/solve", &dag_body(601 + (i % 2)))
                    .expect("evictor solve");
                assert_eq!(r.status, 200, "body: {}", r.body);
            }
        });
        let cold_tails = victim.join().expect("victim survives");
        evictor.join().expect("evictor survives");
        assert!(
            !cold_tails.is_empty(),
            "capacity-1 store under pressure must produce cold re-solves"
        );
        for (i, t) in cold_tails.iter().enumerate() {
            assert_eq!(
                t, &cold_tails[0],
                "cold re-solve {i} changed under eviction pressure"
            );
        }
    });
    server.shutdown();
}
