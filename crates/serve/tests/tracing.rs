//! Request-tracing contract battery: `/debug/traces`, Chrome export,
//! access log, and the single request-id allocator.
//!
//! Runs against real sockets like `protocol.rs`. The process-global
//! metrics registry stays untouched (other test binaries own it); these
//! tests assert on response bodies, the trace ring and the access log.

use sgs_serve::{Client, Server, ServerConfig};
use sgs_trace::chrome::validate_chrome;
use sgs_trace::json::{parse_json, validate_jsonl, Json};

fn client(server: &Server) -> Client {
    Client::connect(server.addr()).expect("connect to the daemon")
}

const TREE7_SOLVE: &str =
    r#"{"circuit":{"builtin":"tree7"},"objective":"area","spec":{"max_mean":9.0}}"#;

#[test]
fn debug_traces_lists_recent_requests_newest_first() {
    let server = Server::start(ServerConfig::default(), None).expect("bind");
    let mut c = client(&server);
    let solve = c.post("/solve", TREE7_SOLVE).expect("solve");
    assert_eq!(solve.status, 200, "{}", solve.body);
    let health = c.get("/health").expect("health");
    assert_eq!(health.status, 200);

    let resp = c.get("/debug/traces").expect("summary");
    assert_eq!(resp.status, 200, "{}", resp.body);
    // The summary is itself one JSONL-valid line.
    validate_jsonl(&resp.body).expect("summary line validates");
    let v = parse_json(resp.body.trim()).expect("summary parses");
    assert_eq!(v.get("event").and_then(Json::as_str), Some("trace_summary"));
    let traces = match v.get("traces") {
        Some(Json::Arr(a)) => a,
        other => panic!("traces must be an array, got {other:?}"),
    };
    assert!(traces.len() >= 2, "at least solve + health retained");
    // Newest first: strictly decreasing request ids.
    let ids: Vec<f64> = traces
        .iter()
        .map(|t| t.get("request_id").and_then(Json::as_f64).unwrap())
        .collect();
    assert!(
        ids.windows(2).all(|w| w[0] > w[1]),
        "summaries must be newest-first: {ids:?}"
    );
    // The /solve entry carries split queue waits and a session id.
    let solve_entry = traces
        .iter()
        .find(|t| t.get("route").and_then(Json::as_str) == Some("/solve"))
        .expect("a /solve trace is retained");
    for key in [
        "status",
        "seconds",
        "admission_wait_seconds",
        "session_wait_seconds",
        "spans",
    ] {
        assert!(
            solve_entry.get(key).and_then(Json::as_f64).is_some(),
            "summary entry needs numeric {key:?}: {}",
            resp.body
        );
    }
    assert_eq!(
        solve_entry
            .get("session_hit")
            .map(|b| *b == Json::Bool(false)),
        Some(true),
        "first solve is a session miss"
    );
    let secs = solve_entry.get("seconds").and_then(Json::as_f64).unwrap();
    let adm = solve_entry
        .get("admission_wait_seconds")
        .and_then(Json::as_f64)
        .unwrap();
    let sess = solve_entry
        .get("session_wait_seconds")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(secs > 0.0 && adm >= 0.0 && sess >= 0.0);
    assert!(
        adm + sess <= secs,
        "waits cannot exceed the request wall time"
    );
    server.shutdown();
}

#[test]
fn debug_trace_export_is_valid_chrome_trace_with_solver_spans() {
    let server = Server::start(ServerConfig::default(), None).expect("bind");
    let mut c = client(&server);
    let solve = c.post("/solve", TREE7_SOLVE).expect("solve");
    assert_eq!(solve.status, 200, "{}", solve.body);
    let id = parse_json(solve.body.trim())
        .expect("solve body parses")
        .get("request_id")
        .and_then(Json::as_f64)
        .expect("solve echoes its request id") as u64;

    let resp = c.get(&format!("/debug/traces/{id}")).expect("export");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let summary = validate_chrome(&resp.body).expect("export is a valid Chrome trace");
    assert!(summary.pairs >= 3, "expected nested spans, got {summary:?}");
    assert!(
        summary.coverage.unwrap_or(0.0) >= 0.95,
        "spans must cover >=95% of the request: {summary:?}"
    );
    // The solver's own phase spans propagated through the session worker
    // into this request's tree.
    for name in ["\"handle\"", "\"solve\"", "\"auglag\""] {
        assert!(
            resp.body.contains(name),
            "export should contain a {name} span: {}",
            resp.body
        );
    }
    server.shutdown();
}

#[test]
fn debug_trace_errors_are_structured() {
    let server = Server::start(ServerConfig::default(), None).expect("bind");
    let mut c = client(&server);

    let missing = c.get("/debug/traces/999999").expect("missing id");
    assert_eq!(missing.status, 404, "{}", missing.body);
    let v = parse_json(missing.body.trim()).expect("error parses");
    assert_eq!(v.get("code").and_then(Json::as_str), Some("E_NOT_FOUND"));

    let bad = c.get("/debug/traces/not-a-number").expect("bad id");
    assert_eq!(bad.status, 400, "{}", bad.body);
    let v = parse_json(bad.body.trim()).expect("error parses");
    assert_eq!(v.get("code").and_then(Json::as_str), Some("E_BAD_FIELD"));

    let post = c.post("/debug/traces", "{}").expect("wrong method");
    assert_eq!(post.status, 405, "{}", post.body);
    server.shutdown();
}

#[test]
fn disabled_tracing_still_answers_debug_traces() {
    let server = Server::start(
        ServerConfig {
            trace_capacity: 0,
            ..ServerConfig::default()
        },
        None,
    )
    .expect("bind");
    let mut c = client(&server);
    let _ = c.get("/health").expect("health");
    let resp = c.get("/debug/traces").expect("summary");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v = parse_json(resp.body.trim()).expect("summary parses");
    assert_eq!(v.get("capacity").and_then(Json::as_f64), Some(0.0));
    assert_eq!(v.get("count").and_then(Json::as_f64), Some(0.0));
    server.shutdown();
}

#[test]
fn access_log_is_jsonl_clean_with_unique_request_ids() {
    let dir = std::env::temp_dir().join(format!("sgs_access_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log_path = dir.join("access.jsonl");
    let server = Server::start(
        ServerConfig {
            access_log: Some(log_path.clone()),
            ..ServerConfig::default()
        },
        None,
    )
    .expect("bind");
    let mut c = client(&server);
    let mut body_ids = Vec::new();
    let solve = c.post("/solve", TREE7_SOLVE).expect("solve");
    assert_eq!(solve.status, 200);
    body_ids.push(id_of(&solve.body));
    let health = c.get("/health").expect("health");
    body_ids.push(id_of(&health.body));
    // An error response carries a daemon-unique id too.
    let nope = c.get("/no-such-route").expect("404");
    assert_eq!(nope.status, 404);
    body_ids.push(id_of(&nope.body));
    drop(c);
    server.shutdown();

    let text = std::fs::read_to_string(&log_path).expect("access log written");
    let summary = validate_jsonl(&text).expect("access log is JSONL-clean");
    assert_eq!(
        summary.count("access"),
        body_ids.len(),
        "one access event per completed request: {text}"
    );
    let mut logged: Vec<u64> = text.lines().map(id_of).collect();
    logged.sort_unstable();
    let mut expected = body_ids.clone();
    expected.sort_unstable();
    assert_eq!(logged, expected, "access log ids match response ids");
    logged.dedup();
    assert_eq!(
        logged.len(),
        body_ids.len(),
        "request ids are daemon-unique"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Extracts the echoed `request_id` from a response body or log line.
fn id_of(body: &str) -> u64 {
    parse_json(body.trim())
        .expect("body parses")
        .get("request_id")
        .and_then(Json::as_f64)
        .expect("body echoes request_id") as u64
}
