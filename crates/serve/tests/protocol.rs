//! Protocol contract battery for the `sgs-serve` daemon.
//!
//! Pins the wire contract end-to-end over real sockets:
//!
//! * every failure — malformed HTTP framing, bad JSON, bad fields,
//!   unusable circuits, unknown routes, wrong methods, truncated bodies,
//!   stalled peers, saturation — answers a structured single-line JSON
//!   error with a **stable** `E_*` code and the assigned request id, and
//!   every such body validates through `sgs_trace::json::validate_jsonl`;
//! * the server survives each abuse: a follow-up `/health` on a fresh
//!   connection must still answer `200`;
//! * admission control is observable: with a busy worker pool and a full
//!   queue, the overflow connection gets `429` + `Retry-After`, and a
//!   queued connection is still served once the pool frees up.
//!
//! The battery never enables the process-global metrics registry (other
//! test binaries own that contract); it asserts on response bodies only.

use sgs_serve::{Client, Response, Server, ServerConfig};
use sgs_trace::json::{parse_json, validate_jsonl, Json};
use std::time::Duration;

fn start_default() -> Server {
    Server::start(ServerConfig::default(), None).expect("bind an ephemeral port")
}

fn client(server: &Server) -> Client {
    Client::connect(server.addr()).expect("connect to the daemon")
}

/// Asserts a structured error response: status, stable code, JSONL-valid
/// body with an `"event":"error"` tag and a request id.
fn assert_error(resp: &Response, status: u16, code: &str) {
    assert_eq!(resp.status, status, "body: {}", resp.body);
    let summary = validate_jsonl(&resp.body).expect("error body must validate as JSONL");
    assert_eq!(summary.count("error"), 1, "body: {}", resp.body);
    let v = parse_json(resp.body.trim()).expect("error body parses");
    assert_eq!(
        v.get("code").and_then(Json::as_str),
        Some(code),
        "body: {}",
        resp.body
    );
    assert_eq!(
        v.get("status").and_then(Json::as_f64),
        Some(f64::from(status))
    );
    assert!(
        v.get("request_id").and_then(Json::as_f64).is_some(),
        "every error echoes the request id: {}",
        resp.body
    );
    assert!(
        v.get("message").and_then(Json::as_str).is_some(),
        "every error carries a human-readable message"
    );
}

/// The server must keep serving after whatever the test just did to it.
fn assert_alive(server: &Server) {
    let resp = client(server).get("/health").expect("health after abuse");
    assert_eq!(resp.status, 200, "server must survive: {}", resp.body);
    let v = parse_json(resp.body.trim()).expect("health parses");
    assert_eq!(v.get("event").and_then(Json::as_str), Some("health"));
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
}

#[test]
fn health_answers_and_validates() {
    let server = start_default();
    let resp = client(&server).get("/health").expect("GET /health");
    assert_eq!(resp.status, 200);
    let summary = validate_jsonl(&resp.body).expect("health body is JSONL");
    assert_eq!(summary.count("health"), 1);
    let v = parse_json(resp.body.trim()).expect("health parses");
    assert_eq!(v.get("sessions_live").and_then(Json::as_f64), Some(0.0));
    server.shutdown();
}

#[test]
fn malformed_request_lines_get_400() {
    let server = start_default();
    for raw in [
        "GARBAGE\r\n\r\n",
        "GET\r\n\r\n",
        "GET /health\r\n\r\n",
        "GET /health HTTP/2.0\r\n\r\n",
        "GET /health SPDY/3\r\n\r\n",
    ] {
        let resp = client(&server)
            .send_raw(raw.as_bytes())
            .unwrap_or_else(|e| panic!("no response to {raw:?}: {e}"));
        assert_error(&resp, 400, "E_BAD_REQUEST_LINE");
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn malformed_headers_get_400() {
    let server = start_default();
    let resp = client(&server)
        .send_raw(b"GET /health HTTP/1.1\r\nthis header has no colon\r\n\r\n")
        .expect("response to a colonless header");
    assert_error(&resp, 400, "E_BAD_HEADER");
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn post_without_content_length_gets_411() {
    let server = start_default();
    let resp = client(&server)
        .send_raw(b"POST /solve HTTP/1.1\r\nHost: sgs\r\n\r\n")
        .expect("response to a lengthless POST");
    assert_error(&resp, 411, "E_LENGTH_REQUIRED");

    // Chunked transfer encoding is deliberately unsupported.
    let resp = client(&server)
        .send_raw(b"POST /solve HTTP/1.1\r\nHost: sgs\r\nTransfer-Encoding: chunked\r\n\r\n")
        .expect("response to a chunked POST");
    assert_error(&resp, 411, "E_LENGTH_REQUIRED");
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_declared_body_gets_413_without_reading_it() {
    let cfg = ServerConfig {
        limits: sgs_serve::http::Limits {
            max_body: 1024,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(cfg, None).expect("bind");
    // Declare far more than the limit but send nothing: the server must
    // reject on the declaration alone instead of buffering.
    let resp = client(&server)
        .send_raw(b"POST /solve HTTP/1.1\r\nHost: sgs\r\nContent-Length: 1000000\r\n\r\n")
        .expect("response to an oversized declaration");
    assert_error(&resp, 413, "E_BODY_TOO_LARGE");
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn mid_body_disconnect_gets_truncated_body() {
    let server = start_default();
    let mut c = client(&server);
    // Declare 100 bytes, deliver 10, then half-close: the server sees EOF
    // mid-body and must still answer on the open read half.
    let resp = c
        .send_partial_body(
            b"POST /solve HTTP/1.1\r\nHost: sgs\r\nContent-Length: 100\r\n\r\n{\"circuit\"",
        )
        .expect("response after half-close");
    assert_error(&resp, 400, "E_TRUNCATED_BODY");
    let v = parse_json(resp.body.trim()).expect("parses");
    let msg = v.get("message").and_then(Json::as_str).unwrap_or_default();
    assert!(
        msg.contains("10 of 100"),
        "message should count delivered bytes: {msg:?}"
    );
    assert_alive(&server);
    server.shutdown();
}

/// Extension trait hanging the half-close helper off [`Client`] so the
/// disconnect test reads naturally.
trait HalfClose {
    fn send_partial_body(&mut self, raw: &[u8]) -> std::io::Result<Response>;
}

impl HalfClose for Client {
    fn send_partial_body(&mut self, raw: &[u8]) -> std::io::Result<Response> {
        self.write_raw(raw)?;
        self.finish_writes()?;
        self.read_response()
    }
}

#[test]
fn stalled_peer_gets_408() {
    let cfg = ServerConfig {
        read_timeout: Duration::from_millis(150),
        ..Default::default()
    };
    let server = Server::start(cfg, None).expect("bind");
    // A partial request line with no terminator: the server must give up
    // after its read timeout and name the stall.
    let resp = client(&server)
        .send_raw(b"GET /hea")
        .expect("response after the stall expires");
    assert_error(&resp, 408, "E_TIMEOUT");
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn bad_json_and_bad_fields_get_400() {
    let server = start_default();
    let mut c = client(&server);
    let cases: &[(&str, &str)] = &[
        ("this is not json", "E_BAD_JSON"),
        ("{\"circuit\":", "E_BAD_JSON"),
        ("[1,2,3]", "E_BAD_FIELD"),
        ("{}", "E_BAD_FIELD"),
        (r#"{"circuit":{}}"#, "E_BAD_FIELD"),
        (r#"{"circuit":{"builtin":7}}"#, "E_BAD_FIELD"),
        (
            r#"{"circuit":{"builtin":"tree7"},"objective":"fastest"}"#,
            "E_BAD_FIELD",
        ),
        (
            r#"{"circuit":{"builtin":"tree7"},"objective":{"mean_plus_k_sigma":-3}}"#,
            "E_BAD_FIELD",
        ),
        (
            r#"{"circuit":{"builtin":"tree7"},"spec":{"max_mean":-1.0}}"#,
            "E_BAD_FIELD",
        ),
        (
            r#"{"circuit":{"generate":{"cells":0,"inputs":0,"depth":0}}}"#,
            "E_CIRCUIT",
        ),
    ];
    for (body, code) in cases {
        let resp = c
            .post("/solve", body)
            .unwrap_or_else(|e| panic!("no response to {body:?}: {e}"));
        assert_error(&resp, 400, code);
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn unusable_blif_answers_circuit_error_from_the_session() {
    let server = start_default();
    let resp = client(&server)
        .post(
            "/solve",
            r#"{"circuit":{"blif":".model broken\n.inputs a\n.outputs z\nnot a gate line\n.end"}}"#,
        )
        .expect("response to broken BLIF");
    assert_error(&resp, 400, "E_CIRCUIT");
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn unknown_routes_get_404_naming_the_known_ones() {
    let server = start_default();
    let resp = client(&server).get("/nope").expect("GET /nope");
    assert_error(&resp, 404, "E_NOT_FOUND");
    let v = parse_json(resp.body.trim()).expect("parses");
    let msg = v.get("message").and_then(Json::as_str).unwrap_or_default();
    for route in [
        "/health", "/metrics", "/solve", "/resolve", "/what_if", "/analyze",
    ] {
        assert!(msg.contains(route), "404 should list {route}: {msg:?}");
    }
    server.shutdown();
}

#[test]
fn wrong_methods_get_405_with_allow() {
    let server = start_default();
    let resp = client(&server).post("/health", "{}").expect("POST /health");
    assert_error(&resp, 405, "E_METHOD_NOT_ALLOWED");
    assert_eq!(resp.header("Allow"), Some("GET"));

    let resp = client(&server).get("/solve").expect("GET /solve");
    assert_error(&resp, 405, "E_METHOD_NOT_ALLOWED");
    assert_eq!(resp.header("Allow"), Some("POST"));
    server.shutdown();
}

#[test]
fn infeasible_deadline_answers_422_and_keeps_the_session() {
    let server = start_default();
    let mut c = client(&server);
    // Feasible first: establishes warm state.
    let ok = c
        .post(
            "/solve",
            r#"{"circuit":{"builtin":"tree7"},"objective":"area","spec":{"max_mean":9.0}}"#,
        )
        .expect("feasible solve");
    assert_eq!(ok.status, 200, "body: {}", ok.body);
    // An absurd deadline cannot be met at any size: the solver reports
    // failure as a structured 422, not a panic or a 500.
    let bad = c
        .post("/resolve", r#"{"circuit":{"builtin":"tree7"},"objective":"area","spec":{"max_mean":9.0},"deadline":1e-6}"#)
        .expect("infeasible resolve");
    assert_error(&bad, 422, "E_SOLVER");
    // The session survives with its last accepted state: the original
    // deadline still solves on the same connection.
    let again = c
        .post(
            "/solve",
            r#"{"circuit":{"builtin":"tree7"},"objective":"area","spec":{"max_mean":9.0}}"#,
        )
        .expect("re-solve after failure");
    assert_eq!(again.status, 200, "body: {}", again.body);
    let v = parse_json(again.body.trim()).expect("parses");
    assert_eq!(v.get("session_hit"), Some(&Json::Bool(true)));
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_and_honours_connection_close() {
    let server = start_default();
    let mut c = client(&server);
    for _ in 0..5 {
        let resp = c.get("/health").expect("keep-alive health");
        assert_eq!(resp.status, 200);
    }
    // `Connection: close` must be honoured: the response arrives, then
    // the server closes instead of waiting for another request.
    let resp = c
        .send_raw(b"GET /health HTTP/1.1\r\nHost: sgs\r\nConnection: close\r\n\r\n")
        .expect("final response");
    assert_eq!(resp.status, 200);
    let eof = c.read_response();
    assert!(eof.is_err(), "server must close after Connection: close");
    server.shutdown();
}

#[test]
fn request_ids_increase_across_requests() {
    let server = start_default();
    let mut c = client(&server);
    let id = |resp: &Response| {
        parse_json(resp.body.trim())
            .expect("parses")
            .get("request_id")
            .and_then(Json::as_f64)
            .expect("request id present")
    };
    let a = id(&c.get("/health").expect("first"));
    let b = id(&c.get("/health").expect("second"));
    assert!(b > a, "ids must increase: {a} then {b}");
    server.shutdown();
}

#[test]
fn metrics_route_speaks_prometheus() {
    let server = start_default();
    let resp = client(&server).get("/metrics").expect("GET /metrics");
    assert_eq!(resp.status, 200);
    assert!(
        resp.body.contains("# TYPE"),
        "exposition must carry TYPE comments: {}",
        &resp.body[..resp.body.len().min(200)]
    );
    server.shutdown();
}

#[test]
fn saturated_queue_answers_429_and_recovers() {
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, None).expect("bind");

    // Occupy the only worker: after this response it sits in the
    // keep-alive read on `busy`'s connection.
    let mut busy = client(&server);
    assert_eq!(busy.get("/health").expect("occupy worker").status, 200);

    // Fill the one queue slot. Write the request now so it is served the
    // moment the worker frees up; do not read yet.
    let mut queued = client(&server);
    queued
        .write_raw(b"GET /health HTTP/1.1\r\nHost: sgs\r\n\r\n")
        .expect("queue a request");
    // The acceptor only learns about the connection when it arrives, and
    // the accept loop is fast; give it a beat to enqueue.
    std::thread::sleep(Duration::from_millis(100));

    // The overflow connection must be rejected inline by the acceptor.
    let resp = client(&server).get("/health").expect("overflow answered");
    assert_error(&resp, 429, "E_SATURATED");
    assert_eq!(resp.header("Retry-After"), Some("1"));

    // Free the worker: closing the busy connection ends its keep-alive
    // loop, and the queued connection must then be served.
    drop(busy);
    let served = queued.read_response().expect("queued connection served");
    assert_eq!(served.status, 200, "body: {}", served.body);
    server.shutdown();
}
