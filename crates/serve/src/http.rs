//! Hand-rolled HTTP/1.1 framing over blocking `std::net` streams.
//!
//! The build environment is offline, so there is no tokio/hyper: this
//! module implements exactly the subset the service needs — request-line +
//! headers + `Content-Length`-framed bodies, keep-alive connections, and
//! hard limits on every dimension an untrusted peer controls (line
//! length, header count, body size). Anything outside that subset is
//! answered with a structured 4xx ([`crate::error`]) rather than a panic:
//! the per-connection loop in `server.rs` must survive arbitrary bytes.

use crate::error::{self, ServeError};
use std::io::{self, BufRead, Write};

/// Hard limits on untrusted request dimensions.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum request-line / header-line length in bytes.
    pub max_line: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum declared body length in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_line: 8192,
            max_headers: 64,
            max_body: 4 * 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), verbatim.
    pub method: String,
    /// Request path (query strings are not used by this protocol).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body (empty when none was declared).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange (`Connection: close`).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of one read attempt on a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed (or idled past the read timeout) **between**
    /// requests — a normal keep-alive end, nothing to answer.
    Closed,
}

/// Whether an I/O error is a read-timeout expiry (platform-dependent
/// kind).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one CRLF- (or bare-LF-) terminated line with a length cap.
///
/// Returns `Ok(None)` on clean EOF before any byte of the line.
fn read_line(
    r: &mut impl BufRead,
    limits: &Limits,
    what: &str,
    code: &'static str,
) -> Result<Option<String>, ServeError> {
    let mut buf = Vec::new();
    loop {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if is_timeout(&e) => {
                if buf.is_empty() {
                    return Ok(None); // idle keep-alive expiry
                }
                return Err(ServeError::new(
                    408,
                    error::E_TIMEOUT,
                    format!("peer stalled mid-{what}"),
                ));
            }
            Err(e) => {
                return Err(ServeError::bad_request(
                    code,
                    format!("read error mid-{what}: {e}"),
                ))
            }
        };
        if chunk.is_empty() {
            // EOF. Clean only if nothing of this line arrived yet.
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(ServeError::bad_request(
                code,
                format!("connection closed mid-{what}"),
            ));
        }
        let nl = chunk.iter().position(|&b| b == b'\n');
        let take = nl.map_or(chunk.len(), |i| i + 1);
        buf.extend_from_slice(&chunk[..take]);
        r.consume(take);
        if buf.len() > limits.max_line {
            return Err(ServeError::bad_request(
                code,
                format!("{what} exceeds {} bytes", limits.max_line),
            ));
        }
        if nl.is_some() {
            while matches!(buf.last(), Some(b'\n' | b'\r')) {
                buf.pop();
            }
            return String::from_utf8(buf)
                .map(Some)
                .map_err(|_| ServeError::bad_request(code, format!("{what} is not UTF-8")));
        }
    }
}

/// Reads one request from a keep-alive connection.
///
/// # Errors
///
/// Any [`ServeError`] here is a protocol failure the caller should try to
/// answer with its structured body, then drop the connection (framing is
/// no longer trustworthy).
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<ReadOutcome, ServeError> {
    // --- Request line. ------------------------------------------------
    let Some(line) = read_line(r, limits, "request line", error::E_BAD_REQUEST_LINE)? else {
        return Ok(ReadOutcome::Closed);
    };
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ServeError::bad_request(
                error::E_BAD_REQUEST_LINE,
                format!("malformed request line {line:?}"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ServeError::bad_request(
            error::E_BAD_REQUEST_LINE,
            format!("unsupported protocol version {version:?}"),
        ));
    }

    // --- Headers. -----------------------------------------------------
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(r, limits, "header", error::E_BAD_HEADER)? else {
            return Err(ServeError::bad_request(
                error::E_BAD_HEADER,
                "connection closed before end of headers",
            ));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ServeError::bad_request(
                error::E_BAD_HEADER,
                format!("more than {} header lines", limits.max_headers),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::bad_request(
                error::E_BAD_HEADER,
                format!("header line without ':': {line:?}"),
            ));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    // --- Body framing. ------------------------------------------------
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ServeError::new(
            411,
            error::E_LENGTH_REQUIRED,
            "chunked transfer encoding is not supported; send Content-Length",
        ));
    }
    let declared = match req.header("content-length") {
        Some(v) => Some(v.parse::<usize>().map_err(|_| {
            ServeError::bad_request(error::E_BAD_HEADER, format!("bad Content-Length {v:?}"))
        })?),
        None => None,
    };
    let len = match (req.method.as_str(), declared) {
        ("POST" | "PUT" | "PATCH", None) => {
            return Err(ServeError::new(
                411,
                error::E_LENGTH_REQUIRED,
                format!("{} requests must declare Content-Length", req.method),
            ));
        }
        (_, None) => 0,
        (_, Some(n)) => n,
    };
    if len > limits.max_body {
        return Err(ServeError::new(
            413,
            error::E_BODY_TOO_LARGE,
            format!(
                "declared body of {len} bytes exceeds limit {}",
                limits.max_body
            ),
        ));
    }
    let mut req = req;
    req.body = read_exact_body(r, len)?;
    Ok(ReadOutcome::Request(req))
}

/// Reads exactly `len` body bytes, classifying shortfalls.
fn read_exact_body(r: &mut impl BufRead, len: usize) -> Result<Vec<u8>, ServeError> {
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(ServeError::bad_request(
                    error::E_TRUNCATED_BODY,
                    format!("connection closed after {filled} of {len} body bytes"),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                return Err(ServeError::new(
                    408,
                    error::E_TIMEOUT,
                    format!("peer stalled after {filled} of {len} body bytes"),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(ServeError::bad_request(
                    error::E_TRUNCATED_BODY,
                    format!("read error after {filled} of {len} body bytes: {e}"),
                ));
            }
        }
    }
    Ok(body)
}

/// Writes one response with `Content-Length` framing.
///
/// # Errors
///
/// Propagates I/O failures (the peer may already be gone; callers treat
/// that as a dropped connection, never a panic).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        ServeError::reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<ReadOutcome, ServeError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let ReadOutcome::Request(req) = parse(raw).unwrap() else {
            panic!("expected a request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.body, b"{\"a\"");
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn clean_eof_is_closed_not_an_error() {
        assert!(matches!(parse(b"").unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn truncated_request_line_is_a_bad_request() {
        let e = parse(b"GET /heal").unwrap_err();
        assert_eq!((e.status, e.code), (400, error::E_BAD_REQUEST_LINE));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for raw in [
            &b"FOO\r\n\r\n"[..],
            b"GET  HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/9.9\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            let e = parse(raw).unwrap_err();
            assert_eq!((e.status, e.code), (400, error::E_BAD_REQUEST_LINE));
        }
    }

    #[test]
    fn post_without_content_length_needs_length() {
        let e = parse(b"POST /solve HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!((e.status, e.code), (411, error::E_LENGTH_REQUIRED));
    }

    #[test]
    fn oversized_declared_body_is_rejected_without_reading_it() {
        let raw = b"POST /s HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
        let e = parse(raw).unwrap_err();
        // 99999999999 overflows nothing (fits usize) but exceeds max_body.
        assert_eq!((e.status, e.code), (413, error::E_BODY_TOO_LARGE));
    }

    #[test]
    fn truncated_body_is_classified() {
        let raw = b"POST /s HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let e = parse(raw).unwrap_err();
        assert_eq!((e.status, e.code), (400, error::E_TRUNCATED_BODY));
        assert!(e.message.contains("3 of 10"), "{}", e.message);
    }

    #[test]
    fn header_flood_is_capped() {
        let mut raw = b"GET /h HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            raw.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let e = parse(&raw).unwrap_err();
        assert_eq!((e.status, e.code), (400, error::E_BAD_HEADER));
    }

    #[test]
    fn oversized_line_is_capped() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 10000));
        let e = parse(&raw).unwrap_err();
        assert_eq!((e.status, e.code), (400, error::E_BAD_REQUEST_LINE));
    }

    #[test]
    fn chunked_encoding_is_refused() {
        let raw = b"POST /s HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let e = parse(raw).unwrap_err();
        assert_eq!((e.status, e.code), (411, error::E_LENGTH_REQUIRED));
    }

    #[test]
    fn response_writer_frames_correctly() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            "{}\n",
            false,
            &[("Retry-After", "1".to_string())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }
}
