//! `sgs_serve` — run the sizing daemon.
//!
//! ```text
//! sgs_serve [--addr HOST:PORT] [--workers N] [--queue N] [--sessions N]
//!           [--trace FILE.jsonl] [--trace-capacity N] [--access-log FILE]
//! ```
//!
//! Binds (default `127.0.0.1:7878`), prints `listening on <addr>` and
//! serves until killed. The process-global metrics registry is enabled so
//! `GET /metrics` exposes live Prometheus counters. `--trace-capacity`
//! sets how many completed request traces `GET /debug/traces` retains
//! (0 disables request tracing); `--access-log` appends one JSONL
//! `"access"` event per completed request.

use sgs_serve::server::{Server, ServerConfig};
use sgs_trace::{JsonlSink, TraceSink};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> &'static str {
    "usage: sgs_serve [--addr HOST:PORT] [--workers N] [--queue N] [--sessions N] [--trace FILE.jsonl] [--trace-capacity N] [--access-log FILE]"
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut trace_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        let parsed: Result<(), String> = match arg.as_str() {
            "--addr" => value("--addr").map(|v| cfg.addr = v),
            "--workers" => value("--workers").and_then(|v| {
                v.parse()
                    .map(|n| cfg.workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--queue" => value("--queue").and_then(|v| {
                v.parse()
                    .map(|n| cfg.queue_capacity = n)
                    .map_err(|e| format!("--queue: {e}"))
            }),
            "--sessions" => value("--sessions").and_then(|v| {
                v.parse()
                    .map(|n| cfg.session_capacity = n)
                    .map_err(|e| format!("--sessions: {e}"))
            }),
            "--trace" => value("--trace").map(|v| trace_path = Some(v)),
            "--trace-capacity" => value("--trace-capacity").and_then(|v| {
                v.parse()
                    .map(|n| cfg.trace_capacity = n)
                    .map_err(|e| format!("--trace-capacity: {e}"))
            }),
            "--access-log" => value("--access-log").map(|v| cfg.access_log = Some(v.into())),
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("sgs_serve: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }

    sgs_metrics::enable();
    let sink: Option<Arc<dyn TraceSink + Send + Sync>> = match &trace_path {
        None => None,
        Some(path) => match JsonlSink::create(path) {
            Ok(s) => Some(Arc::new(s)),
            Err(e) => {
                eprintln!("sgs_serve: cannot open trace file {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let server = match Server::start(cfg, sink) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sgs_serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    // Serve until killed: the acceptor owns the listener; parking the
    // main thread forever is the std-only idle loop.
    loop {
        std::thread::park();
    }
}
