//! Wire protocol: request-body parsing, canonical session identity and
//! JSON response builders.
//!
//! Every request body is a single JSON object. The circuit + objective +
//! delay-spec *variant* form the session identity ([`SessionSpec::key`]):
//! the deadline **value** is deliberately excluded, because
//! [`sgs_core::Resolver::resolve_spec`] moves the deadline inside an
//! existing formulation — two requests that differ only in `d` belong to
//! the same warm session. All response bodies are single-line JSON with a
//! top-level `"event"` tag so they validate through
//! [`sgs_trace::json::validate_jsonl`], exactly like trace records.
//!
//! Numbers use Rust's shortest-round-trip `f64` formatting; parsing the
//! decimal string back recovers the identical bits, which is what the
//! differential oracle in `tests/integration_serve.rs` pins.

use crate::error::{self, ServeError};
use sgs_analyze::Report;
use sgs_core::{DelaySpec, Objective, ResolveOutcome, WhatIfReport};
use sgs_netlist::{blif, generate, Circuit, GateId};
use sgs_trace::json::Json;
use std::fmt::Write as _;

/// Appends a JSON string literal (quoted, escaped) to `s`.
///
/// Mirrors the escaping of the `sgs-trace` JSONL writer so every body we
/// emit round-trips through its validator.
pub(crate) fn push_json_string(s: &mut String, val: &str) {
    s.push('"');
    for ch in val.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Appends an `f64` in shortest-round-trip form (non-finite values use
/// the `sgs-trace` string escapes).
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(s, "{v}");
    } else if v.is_nan() {
        s.push_str("\"NaN\"");
    } else if v > 0.0 {
        s.push_str("\"Infinity\"");
    } else {
        s.push_str("\"-Infinity\"");
    }
}

/// FNV-1a 64-bit over a byte string — the session-key hash.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Where the circuit of a session comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitSource {
    /// Inline BLIF text.
    Blif(String),
    /// A named builtin (`tree7`, `fig2`, `rca8`, ...).
    Builtin(String),
    /// A seeded random DAG, fully specified so the identical circuit is
    /// regenerated on every session miss.
    Generate(generate::RandomDagSpec),
}

/// The session-defining part of a request: circuit + formulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Circuit source.
    pub source: CircuitSource,
    /// Sizing objective.
    pub objective: Objective,
    /// Delay constraint (the deadline value inside it is mutable per
    /// request via `resolve`, and excluded from the session identity).
    pub spec: DelaySpec,
}

fn bad_field(msg: impl Into<String>) -> ServeError {
    ServeError::bad_request(error::E_BAD_FIELD, msg)
}

fn get_f64(obj: &Json, key: &str) -> Result<Option<f64>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => match v.as_f64() {
            Some(x) if x.is_finite() => Ok(Some(x)),
            _ => Err(bad_field(format!("\"{key}\" must be a finite number"))),
        },
    }
}

fn req_f64(obj: &Json, key: &str, what: &str) -> Result<f64, ServeError> {
    get_f64(obj, key)?.ok_or_else(|| bad_field(format!("{what} requires a \"{key}\" number")))
}

fn get_usize(obj: &Json, key: &str) -> Result<Option<usize>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => match v.as_f64() {
            Some(x) if x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= 2.0_f64.powi(53) =>
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Ok(Some(x as usize))
            }
            _ => Err(bad_field(format!(
                "\"{key}\" must be a non-negative integer"
            ))),
        },
    }
}

impl SessionSpec {
    /// Parses a session spec from a parsed request body.
    ///
    /// # Errors
    ///
    /// [`error::E_BAD_FIELD`] on missing/ill-typed fields,
    /// [`error::E_CIRCUIT`] on an unusable circuit payload.
    pub fn parse(body: &Json) -> Result<Self, ServeError> {
        let Json::Obj(_) = body else {
            return Err(bad_field("request body must be a JSON object"));
        };
        let circuit = body
            .get("circuit")
            .ok_or_else(|| bad_field("missing \"circuit\" object"))?;
        let source = Self::parse_source(circuit)?;
        let objective = Self::parse_objective(body.get("objective"))?;
        let spec = Self::parse_spec(body.get("spec"))?;
        Ok(SessionSpec {
            source,
            objective,
            spec,
        })
    }

    fn parse_source(v: &Json) -> Result<CircuitSource, ServeError> {
        if let Some(text) = v.get("blif").map(|b| {
            b.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad_field("\"circuit.blif\" must be a string"))
        }) {
            return Ok(CircuitSource::Blif(text?));
        }
        if let Some(name) = v.get("builtin").map(|b| {
            b.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad_field("\"circuit.builtin\" must be a string"))
        }) {
            let name = name?;
            // Validate the name eagerly so the session store never caches
            // a key that can only ever fail to build.
            build_builtin(&name)?;
            return Ok(CircuitSource::Builtin(name));
        }
        if let Some(g) = v.get("generate") {
            let mut spec = generate::RandomDagSpec::default();
            if let Some(name) = g.get("name") {
                spec.name = name
                    .as_str()
                    .ok_or_else(|| bad_field("\"generate.name\" must be a string"))?
                    .to_string();
            }
            if let Some(n) = get_usize(g, "cells")? {
                spec.cells = n;
            }
            if let Some(n) = get_usize(g, "inputs")? {
                spec.inputs = n;
            }
            if let Some(n) = get_usize(g, "depth")? {
                spec.depth = n;
            }
            if let Some(n) = get_usize(g, "seed")? {
                spec.seed = n as u64;
            }
            if let Some(n) = get_usize(g, "back_jump_pct")? {
                spec.back_jump_pct =
                    u8::try_from(n).map_err(|_| bad_field("\"back_jump_pct\" out of range"))?;
            }
            if let Some(x) = get_f64(g, "spine_extra_load")? {
                spec.spine_extra_load = x;
            }
            // Pre-validate everything `generate::random_dag` would panic
            // on — a panic would take a session worker down with it.
            if spec.depth == 0 || spec.inputs == 0 || spec.cells < spec.depth {
                return Err(ServeError::bad_request(
                    error::E_CIRCUIT,
                    "generate needs depth >= 1, inputs >= 1 and cells >= depth",
                ));
            }
            if spec.cells > 50_000 {
                return Err(ServeError::bad_request(
                    error::E_CIRCUIT,
                    "generate.cells exceeds the service limit of 50000",
                ));
            }
            if spec.back_jump_pct > 95 || !(0.0..=1e6).contains(&spec.spine_extra_load) {
                return Err(ServeError::bad_request(
                    error::E_CIRCUIT,
                    "generate.back_jump_pct must be 0-95 and spine_extra_load in [0, 1e6]",
                ));
            }
            return Ok(CircuitSource::Generate(spec));
        }
        Err(bad_field(
            "\"circuit\" must carry one of \"blif\", \"builtin\" or \"generate\"",
        ))
    }

    fn parse_objective(v: Option<&Json>) -> Result<Objective, ServeError> {
        let Some(v) = v else {
            return Ok(Objective::Area);
        };
        if let Some(s) = v.as_str() {
            return match s {
                "area" => Ok(Objective::Area),
                "mean" => Ok(Objective::MeanDelay),
                other => Err(bad_field(format!(
                    "unknown objective {other:?}; expected \"area\", \"mean\" or {{\"mean_plus_k_sigma\": k}}"
                ))),
            };
        }
        if let Some(k) = get_f64(v, "mean_plus_k_sigma")? {
            if !(0.0..=100.0).contains(&k) {
                return Err(bad_field("objective k must be in [0, 100]"));
            }
            return Ok(Objective::MeanPlusKSigma(k));
        }
        Err(bad_field(
            "objective must be \"area\", \"mean\" or {\"mean_plus_k_sigma\": k}",
        ))
    }

    fn parse_spec(v: Option<&Json>) -> Result<DelaySpec, ServeError> {
        let Some(v) = v else {
            return Ok(DelaySpec::None);
        };
        if let Some(s) = v.as_str() {
            return match s {
                "none" => Ok(DelaySpec::None),
                other => Err(bad_field(format!(
                    "unknown spec {other:?}; expected \"none\", {{\"max_mean\": d}} or {{\"max_mean_plus_k_sigma\": {{\"k\": k, \"d\": d}}}}"
                ))),
            };
        }
        if let Some(d) = get_f64(v, "max_mean")? {
            if d <= 0.0 {
                return Err(bad_field("spec deadline must be positive"));
            }
            return Ok(DelaySpec::MaxMean(d));
        }
        if let Some(mks) = v.get("max_mean_plus_k_sigma") {
            let k = req_f64(mks, "k", "max_mean_plus_k_sigma")?;
            let d = req_f64(mks, "d", "max_mean_plus_k_sigma")?;
            if d <= 0.0 || !(0.0..=100.0).contains(&k) {
                return Err(bad_field("spec needs d > 0 and k in [0, 100]"));
            }
            return Ok(DelaySpec::MaxMeanPlusKSigma { k, d });
        }
        Err(bad_field(
            "spec must be \"none\", {\"max_mean\": d} or {\"max_mean_plus_k_sigma\": {\"k\": k, \"d\": d}}",
        ))
    }

    /// Canonical identity string: circuit content + objective + spec
    /// *variant*. Deadline values are excluded (see module docs); the
    /// sigma multiplier `k` **is** included because it changes the
    /// formulation's structure, not just a cap constant.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        match &self.source {
            CircuitSource::Blif(text) => {
                s.push_str("blif:");
                s.push_str(text);
            }
            CircuitSource::Builtin(name) => {
                s.push_str("builtin:");
                s.push_str(name);
            }
            CircuitSource::Generate(g) => {
                let _ = write!(
                    s,
                    "generate:{}:{}:{}:{}:{}:{}:{}",
                    g.name, g.cells, g.inputs, g.depth, g.seed, g.back_jump_pct, g.spine_extra_load
                );
            }
        }
        match &self.objective {
            Objective::Area => s.push_str("|obj=area"),
            Objective::MeanDelay => s.push_str("|obj=mean"),
            Objective::MeanPlusKSigma(k) => {
                let _ = write!(s, "|obj=mean_plus_k_sigma:{k}");
            }
            other => {
                let _ = write!(s, "|obj={other}");
            }
        }
        match &self.spec {
            DelaySpec::None => s.push_str("|spec=none"),
            DelaySpec::MaxMean(_) => s.push_str("|spec=max_mean"),
            DelaySpec::MaxMeanPlusKSigma { k, .. } => {
                let _ = write!(s, "|spec=max_mean_plus_k_sigma:{k}");
            }
            other => {
                let _ = write!(s, "|spec={other}");
            }
        }
        s
    }

    /// The 64-bit session key (FNV-1a of [`SessionSpec::canonical`]).
    #[must_use]
    pub fn key(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// The deadline carried inside the spec, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<f64> {
        match &self.spec {
            DelaySpec::MaxMean(d) | DelaySpec::MaxMeanPlusKSigma { d, .. } => Some(*d),
            _ => None,
        }
    }

    /// Builds (or regenerates) the circuit this spec describes.
    ///
    /// # Errors
    ///
    /// [`error::E_CIRCUIT`] when the payload does not elaborate.
    pub fn build_circuit(&self) -> Result<Circuit, ServeError> {
        match &self.source {
            CircuitSource::Blif(text) => blif::parse(text).map_err(|e| {
                ServeError::bad_request(error::E_CIRCUIT, format!("BLIF parse failed: {e}"))
            }),
            CircuitSource::Builtin(name) => build_builtin(name),
            CircuitSource::Generate(spec) => Ok(generate::random_dag(spec)),
        }
    }
}

fn build_builtin(name: &str) -> Result<Circuit, ServeError> {
    match name {
        "tree7" => Ok(generate::tree7()),
        "fig2" => Ok(generate::fig2()),
        "rca8" => Ok(generate::ripple_carry_adder(8)),
        "rca16" => Ok(generate::ripple_carry_adder(16)),
        "mult4" => Ok(generate::array_multiplier(4)),
        other => Err(ServeError::bad_request(
            error::E_CIRCUIT,
            format!("unknown builtin circuit {other:?}; known: tree7, fig2, rca8, rca16, mult4"),
        )),
    }
}

/// Parses a `[{"gate": g, "size": s}, ...]` change list from a body
/// field. Range-checking against the circuit happens in the session
/// worker, which owns the circuit.
///
/// # Errors
///
/// [`error::E_BAD_FIELD`] on structural problems or sizes outside
/// `[1, 1e6]`.
pub fn parse_changes(body: &Json, field: &str) -> Result<Vec<(GateId, f64)>, ServeError> {
    let v = body
        .get(field)
        .ok_or_else(|| bad_field(format!("missing \"{field}\" array")))?;
    let Json::Arr(items) = v else {
        return Err(bad_field(format!("\"{field}\" must be an array")));
    };
    let mut changes = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let gate = get_usize(item, "gate")?
            .ok_or_else(|| bad_field(format!("{field}[{i}] needs a \"gate\" integer")))?;
        let size = req_f64(item, "size", &format!("{field}[{i}]"))?;
        if !(1.0..=1e6).contains(&size) {
            return Err(bad_field(format!(
                "{field}[{i}].size must be in [1, 1e6], got {size}"
            )));
        }
        changes.push((GateId(gate), size));
    }
    Ok(changes)
}

/// Builds the `solve_result` body for a successful solve / re-solve.
#[must_use]
pub fn solve_result_json(request_id: u64, out: &ResolveOutcome, session_hit: bool) -> String {
    let r = &out.result;
    let mut s = String::with_capacity(256 + 16 * r.s.len());
    let _ = write!(
        s,
        "{{\"event\":\"solve_result\",\"request_id\":{request_id}"
    );
    s.push_str(",\"objective\":");
    push_f64(&mut s, r.objective);
    s.push_str(",\"area\":");
    push_f64(&mut s, r.area);
    s.push_str(",\"mu\":");
    push_f64(&mut s, r.delay.mean());
    s.push_str(",\"sigma\":");
    push_f64(&mut s, r.delay.sigma());
    let _ = write!(
        s,
        ",\"outer_iterations\":{},\"inner_iterations\":{},\"warm_start_hit\":{},\"gates_recomputed\":{},\"session_hit\":{session_hit}",
        r.outer_iterations, r.inner_iterations, out.warm_start_hit, out.gates_recomputed
    );
    s.push_str(",\"sizes\":[");
    for (i, v) in r.s.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_f64(&mut s, *v);
    }
    s.push_str("]}\n");
    s
}

/// Builds the `what_if_result` body for an evaluation-only probe.
#[must_use]
pub fn what_if_result_json(request_id: u64, report: &WhatIfReport, session_hit: bool) -> String {
    let mut s = String::with_capacity(192);
    let _ = write!(
        s,
        "{{\"event\":\"what_if_result\",\"request_id\":{request_id}"
    );
    s.push_str(",\"mu\":");
    push_f64(&mut s, report.delay.mean());
    s.push_str(",\"sigma\":");
    push_f64(&mut s, report.delay.sigma());
    s.push_str(",\"objective\":");
    push_f64(&mut s, report.objective);
    s.push_str(",\"spec_violation\":");
    push_f64(&mut s, report.spec_violation);
    let _ = writeln!(
        s,
        ",\"gates_recomputed\":{},\"session_hit\":{session_hit}}}",
        report.stats.gates_recomputed
    );
    s
}

/// Builds the `analyze_result` body: summary counts plus every
/// diagnostic inlined as a nested object.
#[must_use]
pub fn analyze_result_json(request_id: u64, report: &Report) -> String {
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"event\":\"analyze_result\",\"request_id\":{request_id},\"clean\":{},\"errors\":{},\"warnings\":{}",
        report.is_clean(),
        report.num_errors(),
        report.num_warnings()
    );
    s.push_str(",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(d.to_json().trim_end());
    }
    s.push_str("]}\n");
    s
}

/// Builds the `health` body.
#[must_use]
pub fn health_json(request_id: u64, sessions_live: usize) -> String {
    format!(
        "{{\"event\":\"health\",\"request_id\":{request_id},\"status\":\"ok\",\"sessions_live\":{sessions_live}}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_trace::json::{parse_json, validate_jsonl};

    fn spec_of(body: &str) -> Result<SessionSpec, ServeError> {
        SessionSpec::parse(&parse_json(body).expect("test body must be JSON"))
    }

    #[test]
    fn parses_builtin_with_full_formulation() {
        let s = spec_of(
            r#"{"circuit":{"builtin":"tree7"},"objective":"area",
                "spec":{"max_mean_plus_k_sigma":{"k":3,"d":9.5}}}"#,
        )
        .unwrap();
        assert_eq!(s.source, CircuitSource::Builtin("tree7".into()));
        assert_eq!(s.objective, Objective::Area);
        assert_eq!(s.spec, DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 9.5 });
        assert_eq!(s.deadline(), Some(9.5));
        assert_eq!(s.build_circuit().unwrap().num_gates(), 7);
    }

    #[test]
    fn defaults_are_area_unconstrained() {
        let s = spec_of(r#"{"circuit":{"builtin":"fig2"}}"#).unwrap();
        assert_eq!(s.objective, Objective::Area);
        assert_eq!(s.spec, DelaySpec::None);
        assert_eq!(s.deadline(), None);
    }

    #[test]
    fn session_key_ignores_deadline_but_not_k() {
        let a = spec_of(r#"{"circuit":{"builtin":"tree7"},"spec":{"max_mean":6.0}}"#).unwrap();
        let b = spec_of(r#"{"circuit":{"builtin":"tree7"},"spec":{"max_mean":9.0}}"#).unwrap();
        assert_eq!(a.key(), b.key(), "deadline moves must stay in-session");
        assert_eq!(a.canonical(), b.canonical());

        let k1 = spec_of(
            r#"{"circuit":{"builtin":"tree7"},"spec":{"max_mean_plus_k_sigma":{"k":1,"d":9}}}"#,
        )
        .unwrap();
        let k3 = spec_of(
            r#"{"circuit":{"builtin":"tree7"},"spec":{"max_mean_plus_k_sigma":{"k":3,"d":9}}}"#,
        )
        .unwrap();
        assert_ne!(k1.key(), k3.key(), "k changes the formulation");
    }

    #[test]
    fn generate_sources_are_fully_pinned() {
        let s = spec_of(
            r#"{"circuit":{"generate":{"name":"x","cells":40,"inputs":8,"depth":5,"seed":7}}}"#,
        )
        .unwrap();
        let c1 = s.build_circuit().unwrap();
        let c2 = s.build_circuit().unwrap();
        assert_eq!(c1.num_gates(), 40);
        assert_eq!(c2.num_gates(), 40);
        assert!(s.canonical().contains("generate:x:40:8:5:7:35:0"));
    }

    #[test]
    fn invalid_payloads_map_to_stable_codes() {
        for (body, code) in [
            (r#"[1,2,3]"#, error::E_BAD_FIELD),
            (r#"{}"#, error::E_BAD_FIELD),
            (r#"{"circuit":{}}"#, error::E_BAD_FIELD),
            (r#"{"circuit":{"builtin":"nope"}}"#, error::E_CIRCUIT),
            (
                r#"{"circuit":{"builtin":"tree7"},"objective":"speed"}"#,
                error::E_BAD_FIELD,
            ),
            (
                r#"{"circuit":{"builtin":"tree7"},"spec":{"max_mean":-1}}"#,
                error::E_BAD_FIELD,
            ),
            (
                r#"{"circuit":{"generate":{"cells":2,"depth":5}}}"#,
                error::E_CIRCUIT,
            ),
            (
                r#"{"circuit":{"generate":{"cells":99999999}}}"#,
                error::E_CIRCUIT,
            ),
        ] {
            let e = spec_of(body).unwrap_err();
            assert_eq!(e.code, code, "body {body}");
            assert_eq!(e.status, 400, "body {body}");
        }
    }

    #[test]
    fn change_lists_parse_and_validate() {
        let body =
            parse_json(r#"{"changes":[{"gate":0,"size":2.5},{"gate":3,"size":1}]}"#).unwrap();
        let c = parse_changes(&body, "changes").unwrap();
        assert_eq!(c, vec![(GateId(0), 2.5), (GateId(3), 1.0)]);

        for bad in [
            r#"{"changes":{"gate":0,"size":2}}"#,
            r#"{"changes":[{"gate":-1,"size":2}]}"#,
            r#"{"changes":[{"gate":0,"size":0.5}]}"#,
            r#"{"changes":[{"gate":0}]}"#,
            r#"{}"#,
        ] {
            let e = parse_changes(&parse_json(bad).unwrap(), "changes").unwrap_err();
            assert_eq!(e.code, error::E_BAD_FIELD, "body {bad}");
        }
    }

    #[test]
    fn response_bodies_validate_as_jsonl() {
        let health = health_json(3, 2);
        let summary = validate_jsonl(&health).unwrap();
        assert_eq!(summary.count("health"), 1);

        let report = sgs_analyze::analyze(
            &generate::tree7(),
            &sgs_netlist::Library::paper_default(),
            &Objective::Area,
            &DelaySpec::MaxMean(9.0),
            &sgs_analyze::AnalyzerOptions::default(),
        );
        let body = analyze_result_json(9, &report);
        let summary = validate_jsonl(&body).unwrap();
        assert_eq!(summary.count("analyze_result"), 1);
        let v = parse_json(body.trim()).unwrap();
        assert!(v.get("clean").is_some());
    }

    #[test]
    fn f64_round_trips_exactly() {
        let vals = [1.0 / 3.0, 6.25, 1e-17, f64::MIN_POSITIVE, 12_345.678_901];
        for v in vals {
            let mut s = String::new();
            push_f64(&mut s, v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }
}
