//! Sizing-as-a-service: a std-only HTTP/1.1 + JSON daemon over the
//! warm-resolve engine.
//!
//! The paper's central practical claim is that its statistical sizing
//! formulation is fast enough to sit *inside* an interactive loop —
//! Section 5 reports per-circuit solve times in seconds. This crate
//! completes that loop: a designer (or another tool) keeps a circuit
//! **session** open against the daemon and iterates deadline and size
//! what-ifs against warm [`sgs_core::Resolver`] state, paying the cold
//! solve once.
//!
//! Layering (each module documents its half of the contract):
//!
//! * [`http`] — hand-rolled HTTP/1.1 framing with hard limits; no
//!   external dependencies, works offline;
//! * [`proto`] — request parsing, canonical session identity (circuit +
//!   objective + spec variant, deadline excluded), response builders.
//!   Every body is single-line JSON with an `"event"` tag, so transcripts
//!   validate via [`sgs_trace::json::validate_jsonl`];
//! * [`error`] — the stable wire error-code table;
//! * [`session`] — one worker thread per live circuit owning the warm
//!   resolver; an LRU store maps session keys to workers;
//! * [`server`] — acceptor, bounded admission queue (backpressure via
//!   `429` + `Retry-After`), connection-worker pool, routing, metrics
//!   and tracing;
//! * [`client`] — the minimal blocking client the tests and the
//!   `serve_load` generator use.
//!
//! # Example
//!
//! ```
//! use sgs_serve::client::Client;
//! use sgs_serve::server::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default(), None)?;
//! let mut client = Client::connect(server.addr())?;
//! let resp = client.post(
//!     "/solve",
//!     r#"{"circuit":{"builtin":"tree7"},"objective":"area",
//!         "spec":{"max_mean":9.0}}"#,
//! )?;
//! assert_eq!(resp.status, 200);
//! assert!(resp.body.contains("\"event\":\"solve_result\""));
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod error;
pub mod http;
pub mod proto;
pub mod server;
pub mod session;

pub use client::{Client, Response};
pub use error::ServeError;
pub use server::{Server, ServerConfig};
