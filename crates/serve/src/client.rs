//! Minimal blocking HTTP client for tests and the load generator.
//!
//! Deliberately tiny: connect, send one request, read one
//! `Content-Length`-framed response. Keep-alive is supported by reusing
//! the same [`Client`] for several calls. Not a general HTTP client —
//! exactly the subset the daemon speaks.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends a `GET` and reads the response.
    ///
    /// # Errors
    ///
    /// I/O or framing failures (e.g. the server closed mid-response).
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        let head = format!("GET {path} HTTP/1.1\r\nHost: sgs\r\n\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a `POST` with a JSON body and reads the response.
    ///
    /// # Errors
    ///
    /// I/O or framing failures.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: sgs\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Writes raw bytes verbatim (malformed-request tests), then tries to
    /// read a response.
    ///
    /// # Errors
    ///
    /// I/O or framing failures.
    pub fn send_raw(&mut self, raw: &[u8]) -> std::io::Result<Response> {
        self.write_raw(raw)?;
        self.read_response()
    }

    /// Writes raw bytes without reading a response — for tests that need
    /// to leave a request in flight (queued connections, half-closes).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_raw(&mut self, raw: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(raw)?;
        self.writer.flush()
    }

    /// Half-closes the write side (the server sees EOF mid-request) while
    /// keeping the read side open for the error response.
    ///
    /// # Errors
    ///
    /// Propagates shutdown failures.
    pub fn finish_writes(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }

    /// Reads one framed response.
    ///
    /// # Errors
    ///
    /// `InvalidData` on malformed framing, `UnexpectedEof` when the
    /// server closed instead of answering.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed without a response",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line {line:?}")))?;
        let mut headers = Vec::new();
        loop {
            let mut h = String::new();
            if self.reader.read_line(&mut h)? == 0 {
                return Err(bad("EOF inside headers"));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                headers.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("response without Content-Length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}
