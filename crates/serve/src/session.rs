//! Warm-session store: one dedicated worker thread per live circuit.
//!
//! [`sgs_core::Resolver`] borrows its `Circuit` and `Library`, so a
//! long-lived warm session cannot be boxed into a shared struct without
//! self-references. Instead each session is a **worker thread** that owns
//! circuit, library and resolver on its stack and serves jobs from an
//! `mpsc` channel. The channel doubles as the session lock: concurrent
//! clients of the *same* circuit serialise naturally in queue order,
//! while distinct circuits run on distinct threads in parallel.
//!
//! Eviction is equally channel-shaped: the store drops its `Sender`, the
//! worker drains whatever jobs were already queued and exits. A later
//! request for the same key re-creates the session cold — a correct
//! (fresh-solve) answer, just slower.

use crate::error::{self, ServeError};
use crate::proto::{self, SessionSpec};
use sgs_core::{Resolver, SizeError, Sizer};
use sgs_netlist::{GateId, Library};
use sgs_trace::request::{RequestContext, SPAN_SESSION_WAIT};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// One operation a session worker can perform.
#[derive(Debug, Clone)]
pub enum Op {
    /// Solve (cold) or warm-verify; when `deadline` differs from the
    /// session's current deadline this becomes a warm deadline move.
    Solve {
        /// Deadline carried by the request's spec, if any.
        deadline: Option<f64>,
    },
    /// Warm deadline what-if: move the cap to `d`, re-solve warm.
    ResolveSpec {
        /// The new deadline.
        d: f64,
    },
    /// Warm size what-if: pin the listed gates, re-solve the rest warm.
    ResolveSizes {
        /// `(gate, size)` pins.
        changes: Vec<(GateId, f64)>,
    },
    /// Evaluation-only probe: apply sizes, report delay/objective without
    /// re-optimising. Note this **moves the session's working point**
    /// (the paper's incremental-SSTA usage): later warm solves restart
    /// from the probed sizes' feasible point.
    WhatIf {
        /// `(gate, size)` perturbations.
        changes: Vec<(GateId, f64)>,
    },
}

/// One unit of work sent to a session worker.
pub struct Job {
    /// Server-assigned request id, echoed in the response body.
    pub request_id: u64,
    /// What to do.
    pub op: Op,
    /// Whether this request found the session warm (echoed in the body).
    pub session_hit: bool,
    /// Where the rendered response body (or error) goes. Rendezvous
    /// channel: the server thread blocks here until the worker answers.
    pub reply: SyncSender<Result<String, ServeError>>,
    /// The originating request's trace context, when request tracing is
    /// on. The worker records its queue wait and op span into it; the
    /// rendezvous reply means all recording finishes before the server
    /// thread completes the trace.
    pub ctx: Option<Arc<RequestContext>>,
    /// When the server thread enqueued this job (session-queue wait
    /// starts here).
    pub queued_at: Instant,
}

struct Entry {
    tx: Sender<Job>,
    canonical: String,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// LRU store of live sessions, keyed by [`SessionSpec::key`].
pub struct SessionStore {
    capacity: usize,
    inner: Mutex<Inner>,
}

/// What a checkout learned: the session's job channel and whether it was
/// already warm.
pub struct Checkout {
    /// Clone of the session's job channel.
    pub tx: Sender<Job>,
    /// `false` when this request created (or re-created) the session.
    pub session_hit: bool,
    /// The session key (hex-rendered into trace records).
    pub key: u64,
}

impl SessionStore {
    /// Creates a store evicting least-recently-used sessions beyond
    /// `capacity` (which must be at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SessionStore {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// Number of live sessions.
    #[must_use]
    pub fn live(&self) -> usize {
        self.inner.lock().expect("session store poisoned").map.len()
    }

    /// Finds the warm session for `spec` or spawns a cold one, evicting
    /// the least-recently-used session when at capacity.
    pub fn checkout(&self, spec: &SessionSpec) -> Checkout {
        let key = spec.key();
        let canonical = spec.canonical();
        let mut inner = self.inner.lock().expect("session store poisoned");
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(entry) = inner.map.get_mut(&key) {
            if entry.canonical == canonical {
                entry.last_used = tick;
                sgs_metrics::incr(sgs_metrics::Counter::ServeSessionHits);
                return Checkout {
                    tx: entry.tx.clone(),
                    session_hit: true,
                    key,
                };
            }
            // FNV collision between distinct formulations: the newcomer
            // wins the slot (dropping the Sender retires the old worker).
            inner.map.remove(&key);
            sgs_metrics::incr(sgs_metrics::Counter::ServeSessionEvictions);
        }

        while inner.map.len() >= self.capacity {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map has an LRU entry");
            inner.map.remove(&lru);
            sgs_metrics::incr(sgs_metrics::Counter::ServeSessionEvictions);
        }

        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let worker_spec = spec.clone();
        thread::Builder::new()
            .name(format!("sgs-session-{key:016x}"))
            .spawn(move || run_session(&worker_spec, &rx))
            .expect("spawning a session worker");
        inner.map.insert(
            key,
            Entry {
                tx: tx.clone(),
                canonical,
                last_used: tick,
            },
        );
        sgs_metrics::incr(sgs_metrics::Counter::ServeSessionMisses);
        #[allow(clippy::cast_precision_loss)]
        sgs_metrics::set_gauge(
            sgs_metrics::Gauge::ServeSessionsLive,
            inner.map.len() as f64,
        );
        Checkout {
            tx,
            session_hit: false,
            key,
        }
    }
}

fn solver_error(e: &SizeError) -> ServeError {
    ServeError::new(422, error::E_SOLVER, e.to_string())
}

fn check_range(changes: &[(GateId, f64)], num_gates: usize) -> Result<(), ServeError> {
    for (g, _) in changes {
        if g.index() >= num_gates {
            return Err(ServeError::bad_request(
                error::E_BAD_FIELD,
                format!(
                    "gate {} out of range (circuit has {num_gates} gates)",
                    g.index()
                ),
            ));
        }
    }
    Ok(())
}

/// The session worker body: builds the circuit once, then serves jobs
/// until every `Sender` clone is dropped (eviction or server shutdown).
fn run_session(spec: &SessionSpec, rx: &Receiver<Job>) {
    let lib = Library::paper_default();
    let circuit = match spec.build_circuit() {
        Ok(c) => c,
        Err(e) => {
            // The payload validated at parse time but failed to
            // elaborate (e.g. BLIF text referencing undefined nets):
            // answer every queued job with the error, then retire.
            while let Ok(job) = rx.recv() {
                let _ = job.reply.send(Err(e.clone()));
            }
            return;
        }
    };
    let num_gates = circuit.num_gates();
    let mut resolver: Resolver<'_> = Sizer::new(&circuit, &lib)
        .objective(spec.objective.clone())
        .delay_spec(spec.spec.clone())
        .resolver();
    let mut current_deadline = spec.deadline();
    let has_deadline_spec = current_deadline.is_some();

    while let Ok(job) = rx.recv() {
        let picked_up = Instant::now();
        let wait = picked_up
            .checked_duration_since(job.queued_at)
            .unwrap_or_default()
            .as_secs_f64();
        sgs_metrics::observe(sgs_metrics::HistId::ServeSessionWaitSeconds, wait);
        let req = job.ctx.as_deref();
        if let Some(c) = req {
            c.record_span(SPAN_SESSION_WAIT, job.queued_at, picked_up);
        }
        let op_open = req.map(|c| (c, c.open(op_name(&job.op))));
        let reply = match &job.op {
            Op::Solve { deadline } => {
                let moved = deadline.is_some() && *deadline != current_deadline;
                let out = if moved {
                    let d = deadline.expect("moved implies a deadline");
                    // The engine's deadline moves even when the re-solve
                    // fails (the warm start keeps the last *accepted*
                    // solution); track what the engine has, or a retry at
                    // the old deadline would wrongly skip the move back.
                    current_deadline = Some(d);
                    resolver.resolve_spec_traced(d, req)
                } else {
                    resolver.solve_traced(req)
                };
                out.map(|o| proto::solve_result_json(job.request_id, &o, job.session_hit))
                    .map_err(|e| solver_error(&e))
            }
            Op::ResolveSpec { d } => {
                if !has_deadline_spec {
                    Err(ServeError::bad_request(
                        error::E_BAD_FIELD,
                        "resolve with \"deadline\" needs a session whose spec has a deadline",
                    ))
                } else {
                    // As above: the engine's deadline moves even on failure.
                    current_deadline = Some(*d);
                    resolver
                        .resolve_spec_traced(*d, req)
                        .map(|o| proto::solve_result_json(job.request_id, &o, job.session_hit))
                        .map_err(|e| solver_error(&e))
                }
            }
            Op::ResolveSizes { changes } => check_range(changes, num_gates).and_then(|()| {
                resolver
                    .resolve_sizes_traced(changes, req)
                    .map(|o| proto::solve_result_json(job.request_id, &o, job.session_hit))
                    .map_err(|e| solver_error(&e))
            }),
            Op::WhatIf { changes } => check_range(changes, num_gates).map(|()| {
                let report = resolver.what_if_traced(changes, req);
                proto::what_if_result_json(job.request_id, &report, job.session_hit)
            }),
        };
        if let Some((c, open)) = op_open {
            c.close(open);
        }
        // A vanished client (dropped reply receiver) is not the session's
        // problem; keep serving the queue.
        let _ = job.reply.send(reply);
    }
}

/// The op's span name in the request trace.
fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Solve { .. } => "solve",
        Op::ResolveSpec { .. } => "resolve_spec",
        Op::ResolveSizes { .. } => "resolve_sizes",
        Op::WhatIf { .. } => "what_if",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_trace::json::parse_json;
    use std::sync::mpsc::sync_channel;

    fn spec(body: &str) -> SessionSpec {
        SessionSpec::parse(&parse_json(body).unwrap()).unwrap()
    }

    fn ask(tx: &Sender<Job>, op: Op, hit: bool) -> Result<String, ServeError> {
        let (reply, rx) = sync_channel(0);
        tx.send(Job {
            request_id: 1,
            op,
            session_hit: hit,
            reply,
            ctx: None,
            queued_at: Instant::now(),
        })
        .expect("worker alive");
        rx.recv().expect("worker answers")
    }

    #[test]
    fn checkout_hits_warm_sessions_and_ignores_deadline() {
        let store = SessionStore::new(4);
        let a = spec(r#"{"circuit":{"builtin":"tree7"},"spec":{"max_mean":9.0}}"#);
        let b = spec(r#"{"circuit":{"builtin":"tree7"},"spec":{"max_mean":6.5}}"#);
        let c1 = store.checkout(&a);
        assert!(!c1.session_hit);
        let c2 = store.checkout(&b);
        assert!(c2.session_hit, "deadline-only change must stay warm");
        assert_eq!(c1.key, c2.key);
        assert_eq!(store.live(), 1);
    }

    #[test]
    fn lru_eviction_keeps_capacity() {
        let store = SessionStore::new(2);
        let mk = |n: u64| {
            spec(&format!(
                r#"{{"circuit":{{"generate":{{"cells":10,"inputs":4,"depth":3,"seed":{n}}}}}}}"#
            ))
        };
        store.checkout(&mk(1));
        store.checkout(&mk(2));
        store.checkout(&mk(1)); // refresh 1 → 2 is now LRU
        store.checkout(&mk(3)); // evicts 2
        assert_eq!(store.live(), 2);
        assert!(store.checkout(&mk(1)).session_hit);
        assert!(!store.checkout(&mk(2)).session_hit, "2 was evicted");
    }

    #[test]
    fn worker_solves_and_stays_warm() {
        let store = SessionStore::new(2);
        let s =
            spec(r#"{"circuit":{"builtin":"tree7"},"objective":"area","spec":{"max_mean":9.0}}"#);
        let co = store.checkout(&s);
        let body = ask(
            &co.tx,
            Op::Solve {
                deadline: Some(9.0),
            },
            co.session_hit,
        )
        .unwrap();
        let v = parse_json(body.trim()).unwrap();
        assert_eq!(
            v.get("event").and_then(sgs_trace::json::Json::as_str),
            Some("solve_result")
        );
        // Deadline move through the same worker: warm re-solve.
        let body2 = ask(&co.tx, Op::ResolveSpec { d: 8.0 }, true).unwrap();
        let v2 = parse_json(body2.trim()).unwrap();
        assert_eq!(
            v2.get("warm_start_hit")
                .map(|b| *b == sgs_trace::json::Json::Bool(true)),
            Some(true)
        );
    }

    #[test]
    fn out_of_range_gates_answer_bad_field_not_panic() {
        let store = SessionStore::new(2);
        let s = spec(r#"{"circuit":{"builtin":"tree7"}}"#);
        let co = store.checkout(&s);
        let err = ask(
            &co.tx,
            Op::WhatIf {
                changes: vec![(GateId(999), 2.0)],
            },
            false,
        )
        .unwrap_err();
        assert_eq!(err.code, error::E_BAD_FIELD);
        // The worker survived: a valid probe still answers.
        let ok = ask(
            &co.tx,
            Op::WhatIf {
                changes: vec![(GateId(0), 2.0)],
            },
            true,
        );
        assert!(ok.is_ok());
    }
}
