//! Structured wire errors with stable machine-readable codes.
//!
//! Every failed request is answered with a single-line JSON object
//! carrying a top-level `"event":"error"` tag (the same convention as
//! `sgs-trace` JSONL records, so error bodies round-trip through
//! [`sgs_trace::json::validate_jsonl`]), the HTTP status, a **stable**
//! short code from the table in `DESIGN.md` §17, and a human-readable
//! message. Codes are part of the protocol contract — the battery in
//! `tests/protocol.rs` pins them.

use std::fmt;

/// `400` — the request line was missing, truncated or malformed.
pub const E_BAD_REQUEST_LINE: &str = "E_BAD_REQUEST_LINE";
/// `400` — a header line was malformed or exceeded the configured limits.
pub const E_BAD_HEADER: &str = "E_BAD_HEADER";
/// `411` — a body-carrying request without a `Content-Length` header
/// (chunked transfer encoding is deliberately unsupported).
pub const E_LENGTH_REQUIRED: &str = "E_LENGTH_REQUIRED";
/// `413` — the declared body length exceeds the server's limit.
pub const E_BODY_TOO_LARGE: &str = "E_BODY_TOO_LARGE";
/// `400` — the connection closed (or the declared length lied) before the
/// full body arrived.
pub const E_TRUNCATED_BODY: &str = "E_TRUNCATED_BODY";
/// `408` — the peer stalled mid-request past the read timeout.
pub const E_TIMEOUT: &str = "E_TIMEOUT";
/// `400` — the body is not valid JSON.
pub const E_BAD_JSON: &str = "E_BAD_JSON";
/// `400` — the JSON is well-formed but a required field is missing, has
/// the wrong type, or carries an out-of-range value.
pub const E_BAD_FIELD: &str = "E_BAD_FIELD";
/// `400` — the circuit payload failed to parse or elaborate.
pub const E_CIRCUIT: &str = "E_CIRCUIT";
/// `404` — unknown route.
pub const E_NOT_FOUND: &str = "E_NOT_FOUND";
/// `405` — known route, unsupported method (the response names the
/// allowed method in an `Allow` header).
pub const E_METHOD_NOT_ALLOWED: &str = "E_METHOD_NOT_ALLOWED";
/// `422` — the formulation is valid but the solver could not satisfy it
/// (e.g. an infeasibly tight deadline). The session keeps its last
/// accepted warm state.
pub const E_SOLVER: &str = "E_SOLVER";
/// `429` — the admission queue is full; retry after the `Retry-After`
/// interval.
pub const E_SATURATED: &str = "E_SATURATED";
/// `500` — an internal invariant failed (e.g. a session worker died).
pub const E_INTERNAL: &str = "E_INTERNAL";

/// One structured request failure: HTTP status, stable code, detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// HTTP status code (4xx/5xx).
    pub status: u16,
    /// Stable machine-readable code (`E_*`, see module docs).
    pub code: &'static str,
    /// Human-readable one-line detail.
    pub message: String,
}

impl ServeError {
    /// Builds an error from its parts.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ServeError {
            status,
            code,
            message: message.into(),
        }
    }

    /// `400 Bad Request` shorthand.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        ServeError::new(400, code, message)
    }

    /// Renders the single-line JSON error body for this failure.
    ///
    /// The body validates as one JSONL line with an `"event":"error"` tag
    /// and echoes the request id assigned by the server.
    #[must_use]
    pub fn to_json(&self, request_id: u64) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"event\":\"error\",\"request_id\":");
        s.push_str(&request_id.to_string());
        s.push_str(",\"status\":");
        s.push_str(&self.status.to_string());
        s.push_str(",\"code\":\"");
        s.push_str(self.code); // codes are static identifiers, no escaping
        s.push_str("\",\"message\":");
        crate::proto::push_json_string(&mut s, &self.message);
        s.push_str("}\n");
        s
    }

    /// Canonical HTTP reason phrase for a status code this server emits.
    #[must_use]
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            411 => "Length Required",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_trace::json::{parse_json, validate_jsonl, Json};

    #[test]
    fn error_bodies_validate_as_jsonl() {
        let e = ServeError::bad_request(E_BAD_JSON, "byte 3: expected ':'");
        let body = e.to_json(17);
        let summary = validate_jsonl(&body).expect("error body must be valid JSONL");
        assert_eq!(summary.count("error"), 1);
        let v = parse_json(body.trim()).unwrap();
        assert_eq!(v.get("code").and_then(Json::as_str), Some(E_BAD_JSON));
        assert_eq!(v.get("status").and_then(Json::as_f64), Some(400.0));
        assert_eq!(v.get("request_id").and_then(Json::as_f64), Some(17.0));
    }

    #[test]
    fn messages_with_quotes_escape_cleanly() {
        let e = ServeError::new(422, E_SOLVER, "status \"diverged\"\nc_norm 1.0");
        let v = parse_json(e.to_json(0).trim()).unwrap();
        assert_eq!(
            v.get("message").and_then(Json::as_str),
            Some("status \"diverged\"\nc_norm 1.0")
        );
    }

    #[test]
    fn reasons_cover_every_emitted_status() {
        for s in [200u16, 400, 404, 405, 408, 411, 413, 422, 429, 500] {
            assert_ne!(ServeError::reason(s), "Unknown", "status {s}");
        }
    }
}
