//! The daemon: acceptor, bounded admission queue, worker pool, routing.
//!
//! Concurrency model — three thread kinds:
//!
//! 1. the **acceptor** pulls connections off the listener. When the
//!    admission queue is full it answers `429` + `Retry-After` inline
//!    and closes — backpressure, not unbounded buffering;
//! 2. a fixed pool of **connection workers** pops queued connections and
//!    runs the keep-alive request loop (parse → route → respond).
//!    Connection workers never size; they forward to
//! 3. **session workers** ([`crate::session`]), one per live circuit,
//!    which own the warm [`sgs_core::Resolver`] state.
//!
//! Every request gets a monotonically increasing id, echoed in the
//! response body, recorded as a `serve_request` trace event and timed
//! into the per-route `serve_*_seconds` histograms.

use crate::error::{self, ServeError};
use crate::http::{self, Limits, ReadOutcome, Request};
use crate::proto::{self, SessionSpec};
use crate::session::{Job, Op, SessionStore};
use sgs_trace::json::{push_json_f64, push_json_string};
use sgs_trace::request::{RequestContext, RequestTrace, SPAN_ADMISSION_WAIT};
use sgs_trace::{chrome, RingSink, TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Connection-worker pool size.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it get `429`.
    pub queue_capacity: usize,
    /// Maximum live warm sessions before LRU eviction.
    pub session_capacity: usize,
    /// HTTP framing limits.
    pub limits: Limits,
    /// Per-read socket timeout. Doubles as the keep-alive idle timeout:
    /// an idle connection is dropped after one quiet interval.
    pub read_timeout: Duration,
    /// Completed request traces retained for `GET /debug/traces` (the
    /// ring's drop-oldest capacity). `0` disables request tracing.
    pub trace_capacity: usize,
    /// JSONL access log (one `"access"` event per completed request);
    /// `None` disables it.
    pub access_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            session_capacity: 8,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            trace_capacity: 256,
            access_log: None,
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    store: SessionStore,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    ready: Condvar,
    shutdown: AtomicBool,
    next_request_id: AtomicU64,
    trace: Option<Arc<dyn TraceSink + Send + Sync>>,
    ring: Option<RingSink>,
    access: Option<Mutex<std::fs::File>>,
}

impl Shared {
    /// The single request-id allocator: every response path — routed
    /// requests, framing errors, inline 429 rejections — mints its
    /// daemon-unique id here.
    fn next_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether per-request contexts should be built at all.
    fn wants_request_trace(&self) -> bool {
        self.ring.is_some() || self.access.is_some()
    }

    /// Completes a request's trace: one access-log line, then retention
    /// in the ring (both best-effort — observability never fails the
    /// request it observes).
    fn finish_request(
        &self,
        ctx: &RequestContext,
        route: &str,
        status: u16,
        code: &str,
        session: &str,
        session_hit: bool,
    ) {
        let trace = ctx.finish(route, status, code, session, session_hit);
        if let Some(file) = &self.access {
            let mut line = String::with_capacity(192);
            line.push_str("{\"event\":\"access\",");
            line.push_str(&trace_fields(&trace));
            line.push_str("}\n");
            let mut f = file.lock().expect("access log poisoned");
            let _ = f.write_all(line.as_bytes());
        }
        if let Some(ring) = &self.ring {
            ring.push(trace);
        }
    }
}

/// The shared field set of access-log lines and `/debug/traces` summary
/// entries (an object body without the surrounding braces).
fn trace_fields(t: &RequestTrace) -> String {
    let mut s = String::with_capacity(160);
    let _ = write!(s, "\"request_id\":{},\"route\":", t.request_id);
    push_json_string(&mut s, &t.route);
    let _ = write!(s, ",\"status\":{},\"code\":", t.status);
    push_json_string(&mut s, &t.code);
    s.push_str(",\"session\":");
    push_json_string(&mut s, &t.session);
    let _ = write!(s, ",\"session_hit\":{},\"seconds\":", t.session_hit);
    push_json_f64(&mut s, t.total_seconds);
    s.push_str(",\"admission_wait_seconds\":");
    push_json_f64(&mut s, t.admission_wait_seconds);
    s.push_str(",\"session_wait_seconds\":");
    push_json_f64(&mut s, t.session_wait_seconds);
    let _ = write!(s, ",\"spans\":{}", t.spans.len());
    s
}

/// A running daemon. Dropping it without [`Server::shutdown`] leaves the
/// threads running for the life of the process.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor + worker pool and returns immediately.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener or creating the access log.
    pub fn start(
        cfg: ServerConfig,
        trace: Option<Arc<dyn TraceSink + Send + Sync>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let ring = (cfg.trace_capacity > 0).then(|| RingSink::new(cfg.trace_capacity));
        let access = match &cfg.access_log {
            Some(path) => Some(Mutex::new(std::fs::File::create(path)?)),
            None => None,
        };
        let shared = Arc::new(Shared {
            store: SessionStore::new(cfg.session_capacity),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_request_id: AtomicU64::new(1),
            trace,
            ring,
            access,
            cfg,
        });

        let mut workers = Vec::with_capacity(shared.cfg.workers);
        for i in 0..shared.cfg.workers.max(1) {
            let s = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sgs-serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawning a connection worker"),
            );
        }
        let s = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("sgs-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &s))
            .expect("spawning the acceptor");

        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Number of live warm sessions.
    #[must_use]
    pub fn sessions_live(&self) -> usize {
        self.shared.store.live()
    }

    /// Stops accepting, drains the queue, joins every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept() loose.
        let _ = TcpStream::connect(self.local_addr);
        self.shared.ready.notify_all();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor is gone; wake workers until each one observes
        // shutdown with an empty queue and exits.
        for w in self.workers.drain(..) {
            self.shared.ready.notify_all();
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let depth = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            if q.len() >= shared.cfg.queue_capacity {
                drop(q);
                reject_saturated(stream, shared);
                continue;
            }
            q.push_back((stream, Instant::now()));
            q.len()
        };
        #[allow(clippy::cast_precision_loss)]
        sgs_metrics::set_gauge(sgs_metrics::Gauge::ServeQueueDepth, depth as f64);
        shared.ready.notify_one();
    }
}

/// Answers `429 Too Many Requests` inline on the acceptor thread (cheap:
/// one write, no parsing) and closes.
fn reject_saturated(mut stream: TcpStream, shared: &Shared) {
    sgs_metrics::incr(sgs_metrics::Counter::ServeRejectedSaturated);
    sgs_metrics::incr(sgs_metrics::Counter::ServeRequests);
    sgs_metrics::incr(sgs_metrics::Counter::ServeErrors);
    let id = shared.next_id();
    let err = ServeError::new(
        429,
        error::E_SATURATED,
        "admission queue full; retry after the Retry-After interval",
    );
    let body = err.to_json(id);
    let _ = http::write_response(
        &mut stream,
        429,
        "application/json",
        &body,
        false,
        &[("Retry-After", "1".to_string())],
    );
    emit_trace(shared, id, "-", 429, error::E_SATURATED, "-", false, 0.0);
    if shared.wants_request_trace() {
        // A minimal trace: rejected before admission, so the whole
        // request is one empty-bodied span tree rooted at "now".
        let ctx = RequestContext::with_epoch(id, Instant::now());
        shared.finish_request(&ctx, "admission", 429, error::E_SATURATED, "-", false);
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(s) = q.pop_front() {
                    #[allow(clippy::cast_precision_loss)]
                    sgs_metrics::set_gauge(sgs_metrics::Gauge::ServeQueueDepth, q.len() as f64);
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.ready.wait(q).expect("queue poisoned");
            }
        };
        let Some((stream, enqueued)) = stream else {
            return;
        };
        handle_connection(stream, enqueued, shared);
    }
}

/// The keep-alive loop of one connection.
///
/// `enqueued` is the instant the acceptor queued the connection; the gap
/// between it and the first read is the **admission wait**, observed into
/// `serve_queue_wait_seconds` and recorded as the `admission_wait` span of
/// the connection's first request. Follow-on keep-alive requests have no
/// admission wait — their epoch is the instant their read began.
fn handle_connection(stream: TcpStream, enqueued: Instant, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let mut admission: Option<Instant> = Some(enqueued);
    loop {
        let read_begin = Instant::now();
        let outcome = http::read_request(&mut reader, &shared.cfg.limits);
        if matches!(outcome, Ok(ReadOutcome::Closed)) {
            // The peer hung up between requests: nothing was asked, so no
            // request id is minted and nothing is traced.
            return;
        }
        // There is an actual request (or a broken frame that gets an
        // answer): mint its id and settle its epoch.
        let id = shared.next_id();
        let read_end = Instant::now();
        let epoch = admission.take().unwrap_or(read_begin);
        let queue_wait = read_begin
            .checked_duration_since(epoch)
            .unwrap_or_default()
            .as_secs_f64();
        sgs_metrics::observe(sgs_metrics::HistId::ServeQueueWaitSeconds, queue_wait);
        let ctx = shared
            .wants_request_trace()
            .then(|| Arc::new(RequestContext::with_epoch(id, epoch)));
        if let Some(c) = &ctx {
            c.record_span(SPAN_ADMISSION_WAIT, epoch, read_begin);
            c.record_span("read", read_begin, read_end);
        }
        match outcome {
            Ok(ReadOutcome::Closed) => unreachable!("handled above"),
            Err(e) => {
                // Framing is broken; answer if the peer still listens,
                // then drop the connection.
                sgs_metrics::incr(sgs_metrics::Counter::ServeRequests);
                sgs_metrics::incr(sgs_metrics::Counter::ServeErrors);
                let body = e.to_json(id);
                let write_begin = Instant::now();
                let _ = http::write_response(
                    &mut stream,
                    e.status,
                    "application/json",
                    &body,
                    false,
                    &[],
                );
                emit_trace(shared, id, "-", e.status, e.code, "-", false, 0.0);
                if let Some(c) = &ctx {
                    c.record_span("write", write_begin, Instant::now());
                    shared.finish_request(c, "-", e.status, e.code, "-", false);
                }
                return;
            }
            Ok(ReadOutcome::Request(req)) => {
                let started = Instant::now();
                let handle_open = ctx.as_ref().map(|c| c.open("handle"));
                let answer = route_request(&req, id, shared, ctx.as_ref());
                if let (Some(c), Some(open)) = (&ctx, handle_open) {
                    c.close(open);
                }
                let seconds = started.elapsed().as_secs_f64();
                sgs_metrics::incr(sgs_metrics::Counter::ServeRequests);
                if answer.status >= 400 {
                    sgs_metrics::incr(sgs_metrics::Counter::ServeErrors);
                }
                if let Some(h) = answer.hist {
                    sgs_metrics::observe(h, seconds);
                }
                if let Some(route) = sgs_metrics::window::Route::for_path(&req.path) {
                    sgs_metrics::window::observe_route(route, seconds);
                }
                let keep_alive = !req.wants_close();
                let write_begin = Instant::now();
                let write_ok = http::write_response(
                    &mut stream,
                    answer.status,
                    "application/json",
                    &answer.body,
                    keep_alive,
                    &answer.extra_headers,
                )
                .is_ok();
                emit_trace(
                    shared,
                    id,
                    &req.path,
                    answer.status,
                    answer.code,
                    &answer.session,
                    answer.session_hit,
                    seconds,
                );
                if let Some(c) = &ctx {
                    c.record_span("write", write_begin, Instant::now());
                    shared.finish_request(
                        c,
                        &req.path,
                        answer.status,
                        answer.code,
                        &answer.session,
                        answer.session_hit,
                    );
                }
                if !keep_alive || !write_ok {
                    return;
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_trace(
    shared: &Shared,
    id: u64,
    route: &str,
    status: u16,
    code: &str,
    session: &str,
    session_hit: bool,
    seconds: f64,
) {
    if let Some(sink) = &shared.trace {
        sink.record(&TraceEvent::ServeRequest {
            id,
            route: route.to_string(),
            status,
            code: code.to_string(),
            session: session.to_string(),
            session_hit,
            seconds,
        });
    }
}

/// Everything needed to answer one routed request.
struct Answer {
    status: u16,
    body: String,
    code: &'static str,
    session: String,
    session_hit: bool,
    hist: Option<sgs_metrics::HistId>,
    extra_headers: Vec<(&'static str, String)>,
}

impl Answer {
    fn ok(body: String, session: String, session_hit: bool, hist: sgs_metrics::HistId) -> Answer {
        Answer {
            status: 200,
            body,
            code: "-",
            session,
            session_hit,
            hist: Some(hist),
            extra_headers: Vec::new(),
        }
    }

    fn err(id: u64, e: &ServeError) -> Answer {
        Answer {
            status: e.status,
            body: e.to_json(id),
            code: e.code,
            session: "-".to_string(),
            session_hit: false,
            hist: None,
            extra_headers: Vec::new(),
        }
    }
}

fn route_request(
    req: &Request,
    id: u64,
    shared: &Shared,
    ctx: Option<&Arc<RequestContext>>,
) -> Answer {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => Answer {
            status: 200,
            body: proto::health_json(id, shared.store.live()),
            code: "-",
            session: "-".to_string(),
            session_hit: false,
            hist: None,
            extra_headers: Vec::new(),
        },
        ("GET", "/metrics") => Answer {
            status: 200,
            body: metrics_exposition(shared),
            code: "-",
            session: "-".to_string(),
            session_hit: false,
            hist: None,
            extra_headers: Vec::new(),
        },
        ("GET", "/debug/traces") => traces_summary(id, shared),
        ("GET", p) if p.starts_with("/debug/traces/") => trace_export(id, p, shared),
        ("POST", "/solve" | "/resolve" | "/what_if" | "/analyze") => {
            match sizing_request(req, id, shared, ctx) {
                Ok(a) => a,
                Err(e) => Answer::err(id, &e),
            }
        }
        (_, "/health" | "/metrics") => method_not_allowed(id, "GET"),
        (_, p) if p == "/debug/traces" || p.starts_with("/debug/traces/") => {
            method_not_allowed(id, "GET")
        }
        (_, "/solve" | "/resolve" | "/what_if" | "/analyze") => method_not_allowed(id, "POST"),
        _ => Answer::err(
            id,
            &ServeError::new(
                404,
                error::E_NOT_FOUND,
                format!(
                    "no route {:?}; known: /health /metrics /debug/traces /solve /resolve /what_if /analyze",
                    req.path
                ),
            ),
        ),
    }
}

/// `GET /debug/traces`: one single-line JSON object summarising the
/// retained request traces, newest first. Works (with an empty list and
/// capacity 0) when tracing is disabled.
fn traces_summary(id: u64, shared: &Shared) -> Answer {
    let (capacity, entries) = match &shared.ring {
        Some(r) => (r.capacity(), r.recent()),
        None => (0, Vec::new()),
    };
    let mut body = format!(
        "{{\"event\":\"trace_summary\",\"request_id\":{id},\"capacity\":{capacity},\"count\":{},\"traces\":[",
        entries.len()
    );
    for (i, t) in entries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('{');
        body.push_str(&trace_fields(t));
        body.push('}');
    }
    body.push_str("]}\n");
    Answer {
        status: 200,
        body,
        code: "-",
        session: "-".to_string(),
        session_hit: false,
        hist: None,
        extra_headers: Vec::new(),
    }
}

/// `GET /debug/traces/<id>`: the retained trace as a Chrome trace-event
/// JSON document, loadable in Perfetto / `chrome://tracing`.
fn trace_export(id: u64, path: &str, shared: &Shared) -> Answer {
    let suffix = &path["/debug/traces/".len()..];
    let Ok(rid) = suffix.parse::<u64>() else {
        return Answer::err(
            id,
            &ServeError::bad_request(
                error::E_BAD_FIELD,
                format!("trace id {suffix:?} is not an unsigned integer"),
            ),
        );
    };
    match shared.ring.as_ref().and_then(|r| r.get(rid)) {
        Some(t) => {
            let mut body = chrome::request_to_chrome(&t);
            body.push('\n');
            Answer {
                status: 200,
                body,
                code: "-",
                session: "-".to_string(),
                session_hit: false,
                hist: None,
                extra_headers: Vec::new(),
            }
        }
        None => Answer::err(
            id,
            &ServeError::new(
                404,
                error::E_NOT_FOUND,
                format!("no retained trace for request {rid}; the ring keeps the most recent completed requests"),
            ),
        ),
    }
}

fn method_not_allowed(id: u64, allow: &'static str) -> Answer {
    let e = ServeError::new(
        405,
        error::E_METHOD_NOT_ALLOWED,
        format!("method not allowed; use {allow}"),
    );
    let mut a = Answer::err(id, &e);
    a.extra_headers.push(("Allow", allow.to_string()));
    a
}

fn metrics_exposition(shared: &Shared) -> String {
    let snap = sgs_metrics::snapshot(sgs_metrics::Metadata {
        bin: "sgs_serve".to_string(),
        circuit: "-".to_string(),
        git_sha: "unknown".to_string(),
        threads: shared.cfg.workers,
        timestamp: String::new(),
    });
    sgs_metrics::prom::to_prometheus(&snap)
}

/// The shared body of `/solve`, `/resolve`, `/what_if` and `/analyze`.
fn sizing_request(
    req: &Request,
    id: u64,
    shared: &Shared,
    ctx: Option<&Arc<RequestContext>>,
) -> Result<Answer, ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request(error::E_BAD_JSON, "request body is not UTF-8"))?;
    let body = sgs_trace::json::parse_json(text)
        .map_err(|e| ServeError::bad_request(error::E_BAD_JSON, format!("bad JSON: {e}")))?;
    let spec = SessionSpec::parse(&body)?;

    if req.path == "/analyze" {
        // Analysis is stateless: no session, no warm state to protect.
        // The span closes on the error path too, so a bad circuit spec
        // never leaves a dangling parent in the request tree.
        let open = ctx.map(|c| c.open("analyze"));
        let analyzed = spec.build_circuit().map(|circuit| {
            let lib = sgs_netlist::Library::paper_default();
            sgs_analyze::analyze(
                &circuit,
                &lib,
                &spec.objective,
                &spec.spec,
                &sgs_analyze::AnalyzerOptions::default(),
            )
        });
        if let (Some(c), Some(open)) = (ctx, open) {
            c.close(open);
        }
        let report = analyzed?;
        return Ok(Answer::ok(
            proto::analyze_result_json(id, &report),
            "-".to_string(),
            false,
            sgs_metrics::HistId::ServeAnalyzeSeconds,
        ));
    }

    let (op, hist) = match req.path.as_str() {
        "/solve" => (
            Op::Solve {
                deadline: spec.deadline(),
            },
            sgs_metrics::HistId::ServeSolveSeconds,
        ),
        "/resolve" => {
            let op = if body.get("deadline").is_some() {
                let d = match body.get("deadline").and_then(sgs_trace::json::Json::as_f64) {
                    Some(d) if d.is_finite() && d > 0.0 => d,
                    _ => {
                        return Err(ServeError::bad_request(
                            error::E_BAD_FIELD,
                            "\"deadline\" must be a positive finite number",
                        ))
                    }
                };
                Op::ResolveSpec { d }
            } else if body.get("sizes").is_some() {
                Op::ResolveSizes {
                    changes: proto::parse_changes(&body, "sizes")?,
                }
            } else {
                return Err(ServeError::bad_request(
                    error::E_BAD_FIELD,
                    "resolve needs either a \"deadline\" number or a \"sizes\" array",
                ));
            };
            (op, sgs_metrics::HistId::ServeResolveSeconds)
        }
        "/what_if" => (
            Op::WhatIf {
                changes: proto::parse_changes(&body, "changes")?,
            },
            sgs_metrics::HistId::ServeWhatIfSeconds,
        ),
        other => unreachable!("sizing_request only sees sizing routes, got {other}"),
    };

    let checkout = shared.store.checkout(&spec);
    let (reply_tx, reply_rx) = sync_channel(0);
    let job = Job {
        request_id: id,
        op,
        session_hit: checkout.session_hit,
        reply: reply_tx,
        ctx: ctx.cloned(),
        queued_at: Instant::now(),
    };
    let session = format!("{:016x}", checkout.key);
    checkout
        .tx
        .send(job)
        .map_err(|_| ServeError::new(500, error::E_INTERNAL, "session worker is gone"))?;
    let reply = reply_rx
        .recv()
        .map_err(|_| ServeError::new(500, error::E_INTERNAL, "session worker dropped the reply"))?;
    match reply {
        Ok(body) => Ok(Answer {
            status: 200,
            body,
            code: "-",
            session,
            session_hit: checkout.session_hit,
            hist: Some(hist),
            extra_headers: Vec::new(),
        }),
        Err(e) => {
            // Session-level failures still belong to this session in the
            // trace; rebuild the answer with the session id attached.
            let mut a = Answer::err(id, &e);
            a.session = session;
            a.session_hit = checkout.session_hit;
            Ok(a)
        }
    }
}
