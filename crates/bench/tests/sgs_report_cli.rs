//! Contract tests for the `sgs_report` binary: exit codes and messages
//! of `render`, `compare` and `lint` against synthetic snapshots.
//!
//! The snapshots are built programmatically with `sgs_metrics` types and
//! written to per-test temp directories, then doctored field-by-field to
//! provoke each contract clause: identical runs exit 0, an inflated p99
//! beyond the threshold exits 1 naming the offending metric, and
//! missing/extra metrics are reported as schema drift (exit 3), never as
//! a panic.

use sgs_metrics::hist::Histogram;
use sgs_metrics::{Metadata, PhaseSnap, Snapshot, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Command, Output};

fn report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sgs_report"))
        .args(args)
        .output()
        .expect("sgs_report spawns")
}

fn tmp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sgs_report_cli_{}_{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A realistic little snapshot: counters, a run_seconds gauge, one
/// timing histogram and a two-node phase tree.
fn sample_snapshot() -> Snapshot {
    let h = Histogram::new();
    for i in 0..40 {
        h.observe(0.01 + f64::from(i) * 1e-3);
    }
    let mut counters = BTreeMap::new();
    counters.insert("nlp_solves".to_string(), 1u64);
    counters.insert("nlp_evals_objective".to_string(), 321u64);
    counters.insert("alloc_bytes".to_string(), 1_000_000u64);
    let mut gauges = BTreeMap::new();
    gauges.insert("run_seconds".to_string(), 2.0);
    let mut hists = BTreeMap::new();
    hists.insert(
        "nlp_outer_seconds".to_string(),
        h.snapshot("nlp_outer_seconds"),
    );
    let mut phases = BTreeMap::new();
    phases.insert(
        "solve".to_string(),
        PhaseSnap {
            name: "solve".into(),
            parent: None,
            seconds: 1.9,
            count: 1,
        },
    );
    phases.insert(
        "auglag".to_string(),
        PhaseSnap {
            name: "auglag".into(),
            parent: Some("solve".into()),
            seconds: 1.5,
            count: 3,
        },
    );
    Snapshot {
        schema_version: SCHEMA_VERSION,
        meta: Metadata {
            bin: "size_blif".into(),
            circuit: "rdag40".into(),
            git_sha: "cafebabe".into(),
            threads: 2,
            timestamp: "1700000000".into(),
        },
        counters,
        gauges,
        hists,
        phases,
    }
}

fn write(dir: &std::path::Path, name: &str, snap: &Snapshot) -> String {
    let path = dir.join(name);
    std::fs::write(&path, snap.to_json()).expect("write snapshot");
    path.to_string_lossy().into_owned()
}

#[test]
fn identical_snapshots_compare_clean() {
    let dir = tmp_dir("identical");
    let snap = sample_snapshot();
    let a = write(&dir, "a.json", &snap);
    let b = write(&dir, "b.json", &snap);
    let out = report(&["compare", &a, &b]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("OK: no regressions"), "stdout: {stdout}");
}

#[test]
fn metadata_only_differences_compare_clean() {
    let dir = tmp_dir("metadata");
    let base = sample_snapshot();
    let mut new = sample_snapshot();
    new.meta.git_sha = "feedface".into();
    new.meta.timestamp = "1800000000".into();
    new.meta.threads = 8;
    let a = write(&dir, "a.json", &base);
    let b = write(&dir, "b.json", &new);
    let out = report(&["compare", &a, &b]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn inflated_p99_trips_gate_and_names_the_metric() {
    let dir = tmp_dir("p99");
    let base = sample_snapshot();
    let mut new = sample_snapshot();
    let h = new.hists.get_mut("nlp_outer_seconds").unwrap();
    h.p99 *= 10.0;
    h.max = h.max.max(h.p99);
    let a = write(&dir, "base.json", &base);
    let b = write(&dir, "new.json", &new);
    let out = report(&["compare", &a, &b, "--threshold=25%"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("nlp_outer_seconds.p99"),
        "regression must name the offending metric, got: {stderr}"
    );
}

#[test]
fn timing_within_threshold_passes_strict_counter_change_fails() {
    let dir = tmp_dir("policy");
    let base = sample_snapshot();

    // 20% slower wall-clock under a 25% threshold: fine.
    let mut slower = sample_snapshot();
    *slower.gauges.get_mut("run_seconds").unwrap() *= 1.2;
    let a = write(&dir, "a.json", &base);
    let b = write(&dir, "slower.json", &slower);
    assert_eq!(report(&["compare", &a, &b]).status.code(), Some(0));

    // A single extra objective evaluation is a strict metric: fails at
    // any threshold.
    let mut drifted = sample_snapshot();
    *drifted.counters.get_mut("nlp_evals_objective").unwrap() += 1;
    let c = write(&dir, "drifted.json", &drifted);
    let out = report(&["compare", &a, &c, "--threshold=900%"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains("nlp_evals_objective"), "stderr: {stderr}");
}

#[test]
fn missing_and_extra_metrics_are_drift_not_panics() {
    let dir = tmp_dir("drift");
    let base = sample_snapshot();
    let mut new = sample_snapshot();
    new.counters.remove("nlp_solves");
    new.counters.insert("brand_new_counter".to_string(), 7);
    let a = write(&dir, "a.json", &base);
    let b = write(&dir, "b.json", &new);
    let out = report(&["compare", &a, &b]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "stderr: {stderr}");
    assert!(stderr.contains("nlp_solves"), "stderr: {stderr}");
    assert!(stderr.contains("brand_new_counter"), "stderr: {stderr}");
}

#[test]
fn budget_flag_gates_on_absolute_ceilings() {
    let dir = tmp_dir("budget");
    let snap = sample_snapshot(); // alloc_bytes = 1_000_000
    let a = write(&dir, "a.json", &snap);
    let b = write(&dir, "b.json", &snap);

    // Identical runs, budget honoured: clean.
    let out = report(&["compare", &a, &b, "--budget", "alloc_bytes=2000000"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("budget ok"), "stdout: {stdout}");

    // Identical runs, budget exceeded: regression naming the metric,
    // even though baseline and new run agree bit-for-bit.
    let out = report(&["compare", &a, &b, "--budget=alloc_bytes=500000"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("alloc_bytes") && stderr.contains("budget"),
        "stderr: {stderr}"
    );

    // A budget on a metric the run does not report is schema drift.
    let out = report(&["compare", &a, &b, "--budget", "no_such=1"]);
    assert_eq!(out.status.code(), Some(3));

    // Malformed budgets are usage errors.
    assert_eq!(
        report(&["compare", &a, &b, "--budget", "alloc_bytes"])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(
        report(&["compare", &a, &b, "--budget=alloc_bytes=wat"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn render_prints_profile_and_counters() {
    let dir = tmp_dir("render");
    let snap = sample_snapshot();
    let a = write(&dir, "a.json", &snap);
    let out = report(&["render", &a]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for needle in [
        "size_blif",
        "rdag40",
        "solve",
        "auglag",
        "nlp_outer_seconds",
        "nlp_solves",
    ] {
        assert!(
            stdout.contains(needle),
            "render output missing {needle}: {stdout}"
        );
    }
}

#[test]
fn lint_accepts_valid_and_rejects_corrupt_snapshots() {
    let dir = tmp_dir("lint");
    let snap = sample_snapshot();
    let good = write(&dir, "good.json", &snap);
    let out = report(&["lint", &good]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    let mut corrupt = sample_snapshot();
    corrupt.hists.get_mut("nlp_outer_seconds").unwrap().count += 5;
    let bad = write(&dir, "bad.json", &corrupt);
    let out = report(&["lint", &bad]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains("bucket counts"), "stderr: {stderr}");
}

#[test]
fn malformed_input_and_bad_usage_error_cleanly() {
    let dir = tmp_dir("malformed");
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "this is not json").unwrap();
    let garbage = garbage.to_string_lossy().into_owned();

    // Not-JSON input: clean failure (exit 1), not a panic.
    assert_eq!(report(&["render", &garbage]).status.code(), Some(1));
    assert_eq!(report(&["lint", &garbage]).status.code(), Some(1));
    let snap = write(&dir, "ok.json", &sample_snapshot());
    assert_eq!(report(&["compare", &garbage, &snap]).status.code(), Some(1));

    // Usage errors: exit 2.
    assert_eq!(report(&[]).status.code(), Some(2));
    assert_eq!(report(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(report(&["compare", &snap]).status.code(), Some(2));
    assert_eq!(
        report(&["compare", &snap, &snap, "--threshold=nope"])
            .status
            .code(),
        Some(2)
    );
}
