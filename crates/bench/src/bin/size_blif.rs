//! Command-line statistical gate sizer for BLIF netlists.
//!
//! ```text
//! size_blif <netlist.blif> [--objective mu|mu+1s|mu+3s|area|sigma]
//!           [--deadline D [--confidence 0|1|3]] [--pin-mean D]
//!           [--reduced] [--analyze[=deny]] [--out sized.blif.tsv]
//!           [--trace run.jsonl] [--metrics run.json] [--metrics-prom run.prom]
//!           [--threads N] [--trace-ring]
//! ```
//!
//! Reads a mapped combinational BLIF netlist (e.g. a real MCNC benchmark,
//! which this repository cannot redistribute) or a structural Verilog
//! netlist (`.v`), sizes it under the statistical delay model, prints the
//! resulting delay distribution and area, and optionally writes a
//! `gate<TAB>speed-factor` table.

use sgs_bench::BenchArgs;
use sgs_core::{DelaySpec, Objective, Sizer, SolverChoice};
use sgs_netlist::{blif, Library};
use std::process::ExitCode;

// Allocation accounting for `--metrics` snapshots (the `alloc_calls` /
// `alloc_bytes` counters): two relaxed atomic adds per allocation on top
// of the system allocator.
#[global_allocator]
static GLOBAL: sgs_metrics::alloc::CountingAllocator = sgs_metrics::alloc::CountingAllocator;

fn usage() -> ExitCode {
    eprintln!(
        "usage: size_blif <netlist.blif> [--objective mu|mu+1s|mu+3s|area|sigma] \
         [--deadline D [--confidence 0|1|3]] [--pin-mean D] [--reduced] \
         [--analyze[=deny]] [--out FILE] [--trace FILE] [--metrics FILE] \
         [--metrics-prom FILE] [--threads N] [--trace-ring]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    sgs_metrics::alloc::mark_installed();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = match BenchArgs::extract("size_blif", &mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let trace = bench.trace();
    let Some(path) = args.first() else {
        return usage();
    };
    let mut objective = Objective::MeanPlusKSigma(3.0);
    let mut spec = DelaySpec::None;
    let mut deadline: Option<f64> = None;
    let mut confidence = 3.0f64;
    let mut reduced = false;
    let mut analyze: Option<bool> = None;
    let mut out: Option<String> = None;
    let mut trace_ring = false;

    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--objective" => {
                objective = match it.next().map(String::as_str) {
                    Some("mu") => Objective::MeanDelay,
                    Some("mu+1s") => Objective::MeanPlusKSigma(1.0),
                    Some("mu+3s") => Objective::MeanPlusKSigma(3.0),
                    Some("area") => Objective::Area,
                    Some("sigma") => Objective::Sigma,
                    _ => return usage(),
                };
            }
            "--deadline" => {
                deadline = it.next().and_then(|v| v.parse().ok());
                if deadline.is_none() {
                    return usage();
                }
            }
            "--confidence" => {
                confidence = match it.next().and_then(|v| v.parse::<u32>().ok()) {
                    Some(k @ (0 | 1 | 3)) => f64::from(k),
                    _ => return usage(),
                };
            }
            "--pin-mean" => match it.next().and_then(|v| v.parse().ok()) {
                Some(d) => spec = DelaySpec::ExactMean(d),
                None => return usage(),
            },
            "--reduced" => reduced = true,
            "--analyze" => analyze = Some(false),
            "--analyze=deny" => analyze = Some(true),
            "--out" => out = it.next().cloned(),
            "--trace-ring" => trace_ring = true,
            _ => return usage(),
        }
    }
    if let Some(d) = deadline {
        spec = if confidence == 0.0 {
            DelaySpec::MaxMean(d)
        } else {
            DelaySpec::MaxMeanPlusKSigma { k: confidence, d }
        };
    }

    let circuit = {
        let _ph = sgs_metrics::phase(sgs_metrics::Phase::Load);
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let parsed = if path.ends_with(".v") {
            sgs_netlist::verilog::parse(&text)
        } else {
            blif::parse(&text)
        };
        match parsed {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let lib = Library::paper_default();
    println!("{circuit}");
    {
        let _ph = sgs_metrics::phase(sgs_metrics::Phase::Baseline);
        let unit_speeds = vec![1.0; circuit.num_gates()];
        let baseline = sgs_ssta::ssta(&circuit, &lib, &unit_speeds);
        println!(
            "unsized: mu = {:.4}, sigma = {:.4}",
            baseline.delay.mean(),
            baseline.delay.sigma()
        );
    }

    let mut sizer = Sizer::new(&circuit, &lib)
        .objective(objective)
        .delay_spec(spec);
    if reduced {
        sizer = sizer.solver(SolverChoice::ReducedSpace);
    }
    let gate = analyze.map(|deny| sgs_analyze::AnalyzerGate {
        deny,
        verbose: true,
        ..Default::default()
    });
    if let Some(gate) = &gate {
        sizer = sizer.preflight(gate);
    }
    if let Some(sink) = trace.sink() {
        sizer = sizer.trace(sink);
    }
    // `--trace-ring`: attach the daemon's ring sink to the solve, turning
    // event recording on exactly as a traced sgs-serve request would —
    // without changing what is computed or counted. The CI overhead
    // budget gate runs this variant and holds its wall-clock to an
    // absolute ceiling against the untraced baseline.
    let ring = trace_ring.then(|| sgs_trace::RingSink::new(16));
    if let Some(r) = &ring {
        sizer = sizer.trace(r);
    }
    let solved = sizer.solve();
    if let Some(r) = &ring {
        println!("ring trace: {} sink events retained", r.events().len());
    }
    let result = match solved {
        Ok(r) => r,
        Err(e) => {
            trace.report(
                circuit.name(),
                &e.to_string(),
                f64::NAN,
                f64::NAN,
                f64::NAN,
                f64::NAN,
            );
            if let Err(e) = bench.finish(circuit.name()) {
                eprintln!("{e}");
            }
            eprintln!("sizing failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sized:   mu = {:.4}, sigma = {:.4}, mu + 3 sigma = {:.4}, area = {:.2} ({:.1}s)",
        result.delay.mean(),
        result.delay.sigma(),
        result.mean_plus_k_sigma(3.0),
        result.area,
        result.seconds
    );

    if let Some(out) = out {
        let _ph = sgs_metrics::phase(sgs_metrics::Phase::Emit);
        let mut body = String::from("# gate\tspeed_factor\n");
        for ((_, gate), s) in circuit.gates().zip(&result.s) {
            body.push_str(&format!("{}\t{:.6}\n", gate.name, s));
        }
        if let Err(e) = std::fs::write(&out, body) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote speed factors to {out}");
    }
    trace.report_with_evals(
        circuit.name(),
        "ok",
        result.objective,
        result.delay.mean(),
        result.delay.sigma(),
        result.area,
        result.evals.into(),
    );
    if let Err(e) = bench.finish(circuit.name()) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
