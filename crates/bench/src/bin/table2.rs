//! Regenerates **Table 2** of the paper: objective/constraint sweeps on
//! the 7-NAND tree circuit of Fig. 3.
//!
//! Rows: the (min area, min mu) range of the circuit, then for each pinned
//! mean delay in {5.8, 6.5, 7.2} the minimum-area, minimum-sigma and
//! maximum-sigma sizings. The default library is calibrated so the pinned
//! values of the paper fall inside our tree's feasible delay range, so the
//! paper's pins are used verbatim.
//!
//! Run with `cargo run -p sgs-bench --bin table2 --release`.

use sgs_bench::{print_table, BenchArgs, Row};
use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{generate, Library};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = BenchArgs::extract("table2", &mut args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let trace = bench.trace();
    if let Some(arg) = args.first() {
        eprintln!("unknown argument: {arg}");
        eprintln!(
            "usage: table2 [--trace=FILE] [--metrics=FILE] [--metrics-prom=FILE] [--threads=N]"
        );
        std::process::exit(2);
    }
    let circuit = generate::tree7();
    let lib = Library::paper_default();

    let mut rows = Vec::new();
    let run = |obj: Objective, spec: DelaySpec, label: (&str, String), paper| -> Row {
        let mut sizer = Sizer::new(&circuit, &lib).objective(obj).delay_spec(spec);
        if let Some(sink) = trace.sink() {
            sizer = sizer.trace(sink);
        }
        let r = sizer.solve().expect("tree-circuit sizing converges");
        trace.report_with_evals(
            &format!("tree7/{}", label.0),
            "ok",
            r.objective,
            r.delay.mean(),
            r.delay.sigma(),
            r.area,
            r.evals.into(),
        );
        Row {
            minimize: label.0.to_string(),
            constraint: label.1,
            mu: r.delay.mean(),
            sigma: r.delay.sigma(),
            sum_s: r.area,
            cpu: Some(r.seconds),
            paper,
        }
    };

    rows.push(run(
        Objective::Area,
        DelaySpec::None,
        ("min sum S", String::new()),
        Some((7.4, 0.811, 7.00)),
    ));
    rows.push(run(
        Objective::MeanDelay,
        DelaySpec::None,
        ("min mu_Tmax", String::new()),
        Some((5.4, 0.592, 21.00)),
    ));

    let paper_rows: [(f64, [(f64, f64); 3]); 3] = [
        // pinned mu -> paper (sigma, sum S) for (min area, min sigma, max sigma)
        (5.8, [(0.631, 14.73), (0.622, 15.66), (0.667, 19.22)]),
        (6.5, [(0.704, 9.54), (0.689, 10.20), (0.831, 15.51)]),
        (7.2, [(0.786, 7.21), (0.689, 7.25), (0.817, 9.08)]),
    ];
    for (pin, paper) in paper_rows {
        let objs = [
            ("min sum S", Objective::Area),
            ("min sigma_Tmax", Objective::Sigma),
            ("max sigma_Tmax", Objective::NegSigma),
        ];
        for ((label, obj), (p_sigma, p_area)) in objs.into_iter().zip(paper) {
            rows.push(run(
                obj,
                DelaySpec::ExactMean(pin),
                (label, format!("mu_Tmax = {pin}")),
                Some((pin, p_sigma, p_area)),
            ));
        }
    }

    print_table(
        "Table 2: results for the tree circuit (paper Fig. 3)",
        &rows,
    );
    if let Err(e) = bench.finish("tree7") {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
