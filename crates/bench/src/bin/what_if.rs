//! What-if query driver: scripted size perturbations answered by the
//! incremental SSTA engine, with a full-recompute A/B mode and an
//! incremental-vs-full benchmark.
//!
//! ```text
//! what_if <netlist.blif|.v> [--script FILE.json] [--queries N] [--seed S]
//!         [--full] [--table FILE] [--trace FILE]
//! what_if --bench [--queries N] [--out PATH] [--trace FILE]
//! ```
//!
//! Session mode applies a sequence of speed-factor perturbation steps
//! (from a JSON script, or `--queries N` deterministically generated
//! single-gate steps) and prints one row per step: step index, `mu_Tmax`
//! and `sigma_Tmax` to 17 significant digits. With `--full` every step is
//! answered by a from-scratch SSTA pass instead of the incremental
//! engine; the rows are **bit-identical** either way (that is the
//! incremental engine's contract), so CI diffs the two tables. Each step
//! also emits a `what_if_query` trace record carrying the per-query
//! latency and `gates_recomputed`.
//!
//! A JSON script is an array of steps; each step is one change object
//! `{"gate": <id>, "size": <speed factor>}` or an array of them.
//!
//! `--bench` times incremental vs full answers for the same query
//! sequences on the generated Table 1 suite (`apex2`, `apex1`, `k2`),
//! asserts bit-identity in the same run, adds a warm-started
//! deadline-re-solve demo, and writes `BENCH_incremental.json`.

use sgs_bench::script::{generated_steps, parse_script};
use sgs_bench::{BenchArgs, TraceArg};
use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{blif, generate, Circuit, GateId, Library};
use sgs_ssta::{ssta, IncrementalSsta};
use sgs_trace::TraceEvent;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: what_if <netlist.blif|.v> [--script FILE.json] [--queries N] [--seed S] \
         [--full] [--table FILE] [--trace FILE] [--metrics FILE] [--metrics-prom FILE]\n\
         \x20      what_if --bench [--queries N] [--out PATH] [--trace FILE] [--metrics FILE]"
    );
    ExitCode::from(2)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    if v.is_empty() {
        f64::NAN
    } else {
        v[v.len() / 2]
    }
}

/// One answered query: the post-step delay and its cost.
struct Answer {
    mu: f64,
    sigma: f64,
    gates_recomputed: usize,
    seconds: f64,
}

/// Answers every step incrementally (dirty cone only).
fn run_incremental(
    circuit: &Circuit,
    lib: &Library,
    s0: &[f64],
    steps: &[Vec<(GateId, f64)>],
) -> Vec<Answer> {
    let mut inc = IncrementalSsta::new(circuit, lib, s0);
    steps
        .iter()
        .map(|step| {
            let t = Instant::now();
            let stats = inc.apply(step);
            let seconds = t.elapsed().as_secs_f64();
            Answer {
                mu: inc.delay().mean(),
                sigma: inc.delay().sigma(),
                gates_recomputed: stats.gates_recomputed,
                seconds,
            }
        })
        .collect()
}

/// Answers every step with a from-scratch SSTA pass (the `--full` A/B
/// baseline).
fn run_full(
    circuit: &Circuit,
    lib: &Library,
    s0: &[f64],
    steps: &[Vec<(GateId, f64)>],
) -> Vec<Answer> {
    let mut s = s0.to_vec();
    steps
        .iter()
        .map(|step| {
            for &(g, v) in step {
                s[g.index()] = v;
            }
            let t = Instant::now();
            let report = ssta(circuit, lib, &s);
            let seconds = t.elapsed().as_secs_f64();
            Answer {
                mu: report.delay.mean(),
                sigma: report.delay.sigma(),
                gates_recomputed: circuit.num_gates(),
                seconds,
            }
        })
        .collect()
}

/// The 17-significant-digit per-step table both modes must reproduce
/// bit-identically.
fn render_table(circuit: &Circuit, answers: &[Answer]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# what_if circuit {} gates {} steps {}",
        circuit.name(),
        circuit.num_gates(),
        answers.len()
    );
    for (i, a) in answers.iter().enumerate() {
        let _ = writeln!(out, "{i:>4}  {:+.17e}  {:+.17e}", a.mu, a.sigma);
    }
    out
}

fn session(mut args: Vec<String>, trace: &TraceArg) -> ExitCode {
    let path = args.remove(0);
    let mut script: Option<String> = None;
    let mut queries = 20usize;
    let mut seed = 7u64;
    let mut full = false;
    let mut table: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--script" => script = it.next().cloned(),
            "--queries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => queries = n,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--full" => full = true,
            "--table" => table = it.next().cloned(),
            _ => return usage(),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = if path.ends_with(".v") {
        sgs_netlist::verilog::parse(&text)
    } else {
        blif::parse(&text)
    };
    let circuit = match parsed {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lib = Library::paper_default();
    let steps = match script {
        Some(file) => {
            let text = match std::fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_script(&text, circuit.num_gates()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bad script {file}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => generated_steps(&circuit, &lib, queries, seed),
    };

    let s0 = vec![1.0; circuit.num_gates()];
    let answers = if full {
        run_full(&circuit, &lib, &s0, &steps)
    } else {
        run_incremental(&circuit, &lib, &s0, &steps)
    };
    let tracer = trace.tracer();
    for (i, a) in answers.iter().enumerate() {
        tracer.emit(|| TraceEvent::WhatIfQuery {
            query: i,
            gates_recomputed: a.gates_recomputed as u64,
            full,
            seconds: a.seconds,
        });
    }

    let rendered = render_table(&circuit, &answers);
    print!("{rendered}");
    if let Some(file) = table {
        if let Err(e) = std::fs::write(&file, &rendered) {
            eprintln!("cannot write {file}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let total: usize = answers.iter().map(|a| a.gates_recomputed).sum();
    let lat_us: Vec<f64> = answers.iter().map(|a| a.seconds * 1e6).collect();
    println!(
        "# mode {}  gates_recomputed {total} (full-recompute equivalent {})  median latency {:.2} us",
        if full { "full" } else { "incremental" },
        circuit.num_gates() * answers.len(),
        median(lat_us),
    );
    trace.report(circuit.name(), "ok", f64::NAN, f64::NAN, f64::NAN, f64::NAN);
    ExitCode::SUCCESS
}

/// One circuit's incremental-vs-full A/B entry.
struct BenchEntry {
    circuit: String,
    gates: usize,
    queries: usize,
    median_incremental_us: f64,
    median_full_us: f64,
    median_speedup: f64,
    bit_identical: bool,
    mean_gates_recomputed: f64,
}

fn bench_circuit(circuit: &Circuit, lib: &Library, queries: usize) -> BenchEntry {
    let n = circuit.num_gates();
    let s0: Vec<f64> = (0..n).map(|i| 1.0 + 0.05 * (i % 37) as f64).collect();
    let steps = generated_steps(circuit, lib, queries, 0xC0FFEE ^ n as u64);
    let inc = run_incremental(circuit, lib, &s0, &steps);
    let full = run_full(circuit, lib, &s0, &steps);
    let bit_identical = inc
        .iter()
        .zip(&full)
        .all(|(a, b)| a.mu.to_bits() == b.mu.to_bits() && a.sigma.to_bits() == b.sigma.to_bits());
    let med_inc = median(inc.iter().map(|a| a.seconds * 1e6).collect());
    let med_full = median(full.iter().map(|a| a.seconds * 1e6).collect());
    BenchEntry {
        circuit: circuit.name().to_string(),
        gates: n,
        queries,
        median_incremental_us: med_inc,
        median_full_us: med_full,
        median_speedup: med_full / med_inc,
        bit_identical,
        mean_gates_recomputed: inc.iter().map(|a| a.gates_recomputed as f64).sum::<f64>()
            / queries as f64,
    }
}

/// One warm deadline re-solve record for the bench report.
struct ResolveRecord {
    deadline: f64,
    seconds: f64,
    outer_iterations: usize,
    warm_start_hit: bool,
    gates_recomputed: usize,
}

fn bench(args: Vec<String>) -> ExitCode {
    let mut queries = 200usize;
    let mut out_path = String::from("BENCH_incremental.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--queries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => queries = n,
                None => return usage(),
            },
            "--out" => match it.next().cloned() {
                Some(p) => out_path = p,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let lib = Library::paper_default();
    let suite = generate::benchmark_suite();
    let largest = suite
        .iter()
        .map(Circuit::num_gates)
        .max()
        .expect("non-empty suite");

    println!("incremental SSTA bench: {queries} single-gate queries per circuit");
    let mut entries = Vec::new();
    for c in &suite {
        let e = bench_circuit(c, &lib, queries);
        println!(
            "{:<8} {:>5} gates  incremental {:>8.2} us  full {:>9.2} us  speedup {:>7.1}x  \
             identical {}  mean cone {:.1} gates",
            e.circuit,
            e.gates,
            e.median_incremental_us,
            e.median_full_us,
            e.median_speedup,
            e.bit_identical,
            e.mean_gates_recomputed,
        );
        assert!(e.bit_identical, "incremental answers must be bit-identical");
        if e.gates == largest {
            assert!(
                e.median_speedup >= 5.0,
                "largest benchmark must see >= 5x median speedup, got {:.1}x",
                e.median_speedup
            );
        }
        entries.push(e);
    }

    // Warm-started deadline sweep on a 40-cell DAG (the committed rdag40
    // benchmark's generator twin): one cold solve, then tightening
    // re-solves carrying (x, lambda, rho).
    let rdag = generate::random_dag(&generate::RandomDagSpec {
        name: "rdag40".into(),
        cells: 40,
        inputs: 8,
        depth: 8,
        seed: 40,
        ..Default::default()
    });
    let baseline = ssta(&rdag, &lib, &vec![1.0; rdag.num_gates()]).delay.mean();
    let mut resolver = Sizer::new(&rdag, &lib)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMean(baseline * 0.95))
        .resolver();
    let t = Instant::now();
    let cold = resolver.solve().expect("cold rdag40 solve converges");
    let cold_seconds = t.elapsed().as_secs_f64();
    let mut resolves = Vec::new();
    for factor in [0.92, 0.89, 0.86] {
        let d = baseline * factor;
        let t = Instant::now();
        let out = resolver.resolve_spec(d).expect("warm re-solve converges");
        resolves.push(ResolveRecord {
            deadline: d,
            seconds: t.elapsed().as_secs_f64(),
            outer_iterations: out.result.outer_iterations,
            warm_start_hit: out.warm_start_hit,
            gates_recomputed: out.gates_recomputed,
        });
    }
    println!(
        "rdag40 resolve: cold {:.2}s ({} outer), then {}",
        cold_seconds,
        cold.result.outer_iterations,
        resolves
            .iter()
            .map(|r| format!(
                "D={:.2} {:.2}s ({} outer, warm {})",
                r.deadline, r.seconds, r.outer_iterations, r.warm_start_hit
            ))
            .collect::<Vec<_>>()
            .join(", "),
    );
    assert!(
        resolves.iter().all(|r| r.warm_start_hit),
        "every re-solve must accept the warm start"
    );

    let mut json = String::from("{\n");
    json.push_str(&sgs_bench::bench_metadata_json("what_if", "suite+rdag40"));
    let _ = writeln!(json, "  \"queries\": {queries},");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{}\", \"gates\": {}, \"queries\": {}, \
             \"median_incremental_us\": {:.3}, \"median_full_us\": {:.3}, \
             \"median_speedup\": {:.3}, \"bit_identical\": {}, \
             \"mean_gates_recomputed\": {:.3}}}{}",
            e.circuit,
            e.gates,
            e.queries,
            e.median_incremental_us,
            e.median_full_us,
            e.median_speedup,
            e.bit_identical,
            e.mean_gates_recomputed,
            if i + 1 < entries.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"resolve\": {{\"circuit\": \"rdag40\", \"gates\": {}, \
         \"cold_seconds\": {:.3}, \"cold_outer_iterations\": {}, \"resolves\": [",
        rdag.num_gates(),
        cold_seconds,
        cold.result.outer_iterations,
    );
    for (i, r) in resolves.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"deadline\": {:.4}, \"seconds\": {:.3}, \"outer_iterations\": {}, \
             \"warm_start_hit\": {}, \"gates_recomputed\": {}}}{}",
            r.deadline,
            r.seconds,
            r.outer_iterations,
            r.warm_start_hit,
            r.gates_recomputed,
            if i + 1 < resolves.len() { "," } else { "" },
        );
    }
    json.push_str("  ]}\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_args = match BenchArgs::extract("what_if", &mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let code = match args.first().map(String::as_str) {
        Some("--bench") => bench(args[1..].to_vec()),
        Some(_) => session(args, bench_args.trace()),
        None => usage(),
    };
    // Circuit set depends on the mode (named netlist or the Table 1
    // suite); the snapshot summarises the bin's whole run either way.
    if let Err(e) = bench_args.finish("what_if") {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    code
}
