//! Prints calibration data for the default library against the paper's
//! Table 2 anchor points (tree7: unsized mu 7.4 / sigma 0.811, min-delay
//! mu 5.4 / sigma 0.592 at area 21).
use sgs_bench::BenchArgs;
use sgs_core::{Objective, Sizer};
use sgs_netlist::{generate, Library};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = BenchArgs::extract("calibrate", &mut args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let trace = bench.trace();
    if let Some(arg) = args.first() {
        eprintln!("unknown argument: {arg}");
        eprintln!(
            "usage: calibrate [--trace=FILE] [--metrics=FILE] [--metrics-prom=FILE] [--threads=N]"
        );
        std::process::exit(2);
    }
    let c = generate::tree7();
    let lib = Library::paper_default();
    let s1 = vec![1.0; 7];
    let r1 = sgs_ssta::ssta(&c, &lib, &s1);
    println!(
        "unsized:   mu={:.3} sigma={:.3}  (paper 7.4 / 0.811)",
        r1.delay.mean(),
        r1.delay.sigma()
    );
    let s3 = vec![3.0; 7];
    let r3 = sgs_ssta::ssta(&c, &lib, &s3);
    println!(
        "all S=3:   mu={:.3} sigma={:.3}",
        r3.delay.mean(),
        r3.delay.sigma()
    );
    let mut sizer = Sizer::new(&c, &lib).objective(Objective::MeanDelay);
    if let Some(sink) = trace.sink() {
        sizer = sizer.trace(sink);
    }
    let rmin = sizer.solve().unwrap();
    trace.report_with_evals(
        "tree7",
        "ok",
        rmin.objective,
        rmin.delay.mean(),
        rmin.delay.sigma(),
        rmin.area,
        rmin.evals.into(),
    );
    println!(
        "min mu:    mu={:.3} sigma={:.3} area={:.2}  (paper 5.4 / 0.592 / 21.0)",
        rmin.delay.mean(),
        rmin.delay.sigma(),
        rmin.area
    );
    for b in generate::benchmark_suite() {
        let s = vec![1.0; b.num_gates()];
        let r = sgs_ssta::ssta(&b, &lib, &s);
        println!(
            "{:6} unsized: mu={:.2} sigma={:.3} cells={} depth={}",
            b.name(),
            r.delay.mean(),
            r.delay.sigma(),
            b.num_gates(),
            b.depth()
        );
    }
    if let Err(e) = bench.finish("tree7+suite") {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
