//! `serve_load` — scripted what-if load generator for the `sgs_serve`
//! daemon, and the CI gate producing `BENCH_serve.json`.
//!
//! ```text
//! serve_load [--sessions N] [--queries N] [--out PATH]
//!            [--access-log PATH] [--timeline PATH]
//! ```
//!
//! Two phases against in-process servers:
//!
//! 1. **Concurrency**: N client threads, each replaying a scripted
//!    session (cold solve → what-if probes → warm deadline re-solves →
//!    final warm solve) against its own generated circuit. Asserts zero
//!    failed requests, the expected cold/warm `session_hit` pattern and
//!    a warm fraction of at least 75%.
//! 2. **Eviction**: a capacity-4 server walked over 6 circuits twice,
//!    single-threaded. Every second-pass solve is a cold re-solve after
//!    LRU eviction and must be **bit-identical** to the first pass.
//!
//! Both phases run with deterministic request mixes, so every
//! `serve_*` counter and histogram count in the snapshot is exact and
//! compares strictly in CI; only `*_seconds` values are timing-like.
//! Client-side latency percentiles land in the spliced `"load"` block,
//! which the comparator ignores.
//!
//! The run also exercises the request-tracing surface: before the
//! concurrency server shuts down it fetches `GET /debug/traces`, checks
//! every retained summary's latency accounting, and validates a `/solve`
//! Chrome export end-to-end (`--timeline` writes it to disk). With
//! `--access-log` the daemon's JSONL access log is validated and its id
//! set checked for daemon-uniqueness after shutdown.

use sgs_bench::script::generated_steps;
use sgs_metrics::window;
use sgs_netlist::{generate, Library};
use sgs_serve::client::Client;
use sgs_serve::server::{Server, ServerConfig};
use sgs_ssta::ssta;
use sgs_trace::chrome::validate_chrome;
use sgs_trace::json::{parse_json, validate_jsonl, Json};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve_load [--sessions N] [--queries N] [--out PATH] [--access-log PATH] [--timeline PATH]"
    );
    ExitCode::from(2)
}

/// The generated circuit of session `i` (small enough that a cold solve
/// is milliseconds even with every session contending for one core).
fn session_dag(i: usize) -> generate::RandomDagSpec {
    generate::RandomDagSpec {
        name: format!("load{i}"),
        cells: 24,
        inputs: 6,
        depth: 5,
        seed: 1000 + i as u64,
        ..Default::default()
    }
}

fn circuit_json(spec: &generate::RandomDagSpec) -> String {
    format!(
        "{{\"generate\":{{\"name\":\"{}\",\"cells\":{},\"inputs\":{},\"depth\":{},\"seed\":{}}}}}",
        spec.name, spec.cells, spec.inputs, spec.depth, spec.seed
    )
}

/// One request's outcome, as seen by the client.
struct Sample {
    status: u16,
    session_hit: bool,
    seconds: f64,
}

/// Parses `status` + `session_hit` out of a response.
fn sample_of(status: u16, body: &str, seconds: f64) -> Sample {
    let hit = parse_json(body.trim())
        .ok()
        .and_then(|v| v.get("session_hit").map(|b| *b == Json::Bool(true)))
        .unwrap_or(false);
    Sample {
        status,
        session_hit: hit,
        seconds,
    }
}

/// POSTs with a bounded retry loop honouring `Retry-After` on `429`.
/// Saturation closes the connection, so each retry reconnects.
fn post_with_retry(
    addr: std::net::SocketAddr,
    client: &mut Client,
    path: &str,
    body: &str,
) -> Result<Sample, String> {
    for _ in 0..50 {
        let t = Instant::now();
        match client.post(path, body) {
            Ok(resp) if resp.status == 429 => {
                let secs: u64 = resp
                    .header("retry-after")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1);
                std::thread::sleep(std::time::Duration::from_secs(secs));
                *client = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
            }
            Ok(resp) => {
                return Ok(sample_of(
                    resp.status,
                    &resp.body,
                    t.elapsed().as_secs_f64(),
                ))
            }
            Err(e) => return Err(format!("{path}: {e}")),
        }
    }
    Err(format!("{path}: still saturated after 50 retries"))
}

/// One scripted session: the full request sequence of client `i`.
fn run_session(
    addr: std::net::SocketAddr,
    i: usize,
    queries: usize,
) -> Result<Vec<Sample>, String> {
    let spec = session_dag(i);
    let circuit = generate::random_dag(&spec);
    let lib = Library::paper_default();
    let baseline = ssta(&circuit, &lib, &vec![1.0; circuit.num_gates()])
        .delay
        .mean();
    let d0 = baseline * 0.97;
    let cjson = circuit_json(&spec);
    let base = format!("\"circuit\":{cjson},\"objective\":\"area\",\"spec\":{{\"max_mean\":{d0}}}");

    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut samples = Vec::with_capacity(queries + 4);

    // Cold solve.
    samples.push(post_with_retry(
        addr,
        &mut client,
        "/solve",
        &format!("{{{base}}}"),
    )?);
    // Evaluation-only probes (single-gate steps from the shared script
    // generator, the same steps `what_if --queries` would replay).
    for step in generated_steps(&circuit, &lib, queries, spec.seed) {
        let (g, v) = step[0];
        let body = format!(
            "{{{base},\"changes\":[{{\"gate\":{},\"size\":{v}}}]}}",
            g.index()
        );
        samples.push(post_with_retry(addr, &mut client, "/what_if", &body)?);
    }
    // Warm deadline re-solves (tightening), then a final warm solve back
    // at the original deadline.
    for factor in [0.95, 0.94] {
        let body = format!("{{{base},\"deadline\":{}}}", baseline * factor);
        samples.push(post_with_retry(addr, &mut client, "/resolve", &body)?);
    }
    samples.push(post_with_retry(
        addr,
        &mut client,
        "/solve",
        &format!("{{{base}}}"),
    )?);
    Ok(samples)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Phase 1: `sessions` concurrent scripted clients on distinct circuits.
fn concurrency_phase(
    sessions: usize,
    queries: usize,
    access_log: Option<&str>,
    timeline: Option<&str>,
) -> (Vec<Sample>, usize) {
    let server = Server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: sessions,
            queue_capacity: sessions * 2,
            session_capacity: sessions * 2,
            access_log: access_log.map(Into::into),
            ..ServerConfig::default()
        },
        None,
    )
    .expect("bind the load server");
    let addr = server.addr();

    let handles: Vec<_> = (0..sessions)
        .map(|i| std::thread::spawn(move || run_session(addr, i, queries)))
        .collect();
    let mut all = Vec::new();
    let mut failed = 0usize;
    for (i, h) in handles.into_iter().enumerate() {
        match h.join().expect("session thread panicked") {
            Ok(samples) => {
                assert!(
                    !samples[0].session_hit,
                    "session {i}: first request must be a cold miss"
                );
                assert!(
                    samples[1..].iter().all(|s| s.session_hit),
                    "session {i}: every later request must hit warm state"
                );
                failed += samples.iter().filter(|s| s.status != 200).count();
                all.extend(samples);
            }
            Err(e) => {
                eprintln!("session {i} failed: {e}");
                failed += 1;
            }
        }
    }
    let live = server.sessions_live();
    assert_eq!(live, sessions, "every session must stay live (no eviction)");
    trace_checks(addr, timeline);
    server.shutdown();
    (all, failed)
}

/// Exercises the tracing surface against the still-running concurrency
/// server: summaries account their waits, a `/solve` Chrome export
/// validates with high span coverage, and (optionally) lands on disk.
fn trace_checks(addr: std::net::SocketAddr, timeline: Option<&str>) {
    let mut c = Client::connect(addr).expect("connect for trace checks");
    let resp = c.get("/debug/traces").expect("GET /debug/traces");
    assert_eq!(resp.status, 200, "debug summary failed: {}", resp.body);
    validate_jsonl(&resp.body).expect("trace summary must be one clean JSONL line");
    let v = parse_json(resp.body.trim()).expect("trace summary parses");
    let traces = match v.get("traces") {
        Some(Json::Arr(a)) => a,
        other => panic!("trace summary needs a traces array, got {other:?}"),
    };
    assert!(!traces.is_empty(), "the load run must retain traces");
    let mut solve_id = None;
    for t in traces {
        let secs = t.get("seconds").and_then(Json::as_f64).expect("seconds");
        let adm = t
            .get("admission_wait_seconds")
            .and_then(Json::as_f64)
            .expect("admission wait");
        let sess = t
            .get("session_wait_seconds")
            .and_then(Json::as_f64)
            .expect("session wait");
        assert!(
            secs.is_finite() && adm >= 0.0 && sess >= 0.0 && adm + sess <= secs,
            "trace summary wait accounting broken: {t:?}"
        );
        if t.get("route").and_then(Json::as_str) == Some("/solve") && solve_id.is_none() {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let id = t.get("request_id").and_then(Json::as_f64).unwrap() as u64;
            solve_id = Some(id);
        }
    }
    let solve_id = solve_id.expect("a /solve trace is retained after the load");
    let export = c
        .get(&format!("/debug/traces/{solve_id}"))
        .expect("GET /debug/traces/<id>");
    assert_eq!(export.status, 200, "chrome export failed: {}", export.body);
    let summary = validate_chrome(&export.body).expect("chrome export must validate");
    assert!(
        summary.coverage.unwrap_or(0.0) >= 0.95,
        "solve trace spans cover too little of the request: {summary:?}"
    );
    println!(
        "traces: /solve request {solve_id} exported {} events ({} span pairs), coverage {:.1}%",
        summary.events,
        summary.pairs,
        summary.coverage.unwrap_or(0.0) * 100.0
    );
    if let Some(path) = timeline {
        std::fs::write(path, &export.body).expect("write the timeline export");
        println!("wrote {path}");
    }
}

/// Phase 2: eviction correctness on a capacity-4 server, single-threaded.
/// Returns whether the post-eviction cold re-solves were bit-identical.
fn eviction_phase() -> bool {
    const CIRCUITS: usize = 6;
    let server = Server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 8,
            session_capacity: 4,
            ..ServerConfig::default()
        },
        None,
    )
    .expect("bind the eviction server");
    let addr = server.addr();
    let lib = Library::paper_default();

    let mut first_pass: Vec<String> = Vec::with_capacity(CIRCUITS);
    let mut identical = true;
    for pass in 0..2 {
        for i in 0..CIRCUITS {
            let spec = generate::RandomDagSpec {
                name: format!("evict{i}"),
                seed: 2000 + i as u64,
                ..session_dag(i)
            };
            let circuit = generate::random_dag(&spec);
            let baseline = ssta(&circuit, &lib, &vec![1.0; circuit.num_gates()])
                .delay
                .mean();
            let body = format!(
                "{{\"circuit\":{},\"objective\":\"area\",\"spec\":{{\"max_mean\":{}}}}}",
                circuit_json(&spec),
                baseline * 0.97
            );
            let mut client = Client::connect(addr).expect("connect to eviction server");
            let resp = client.post("/solve", &body).expect("eviction-phase solve");
            assert_eq!(
                resp.status, 200,
                "eviction-phase solve failed: {}",
                resp.body
            );
            let v = parse_json(resp.body.trim()).expect("solve_result is JSON");
            assert_eq!(
                v.get("session_hit"),
                Some(&Json::Bool(false)),
                "capacity-4 store over 6 circuits must miss every time"
            );
            // Strip the request id (the only legitimately varying field)
            // before comparing passes bit-for-bit.
            let canon = resp
                .body
                .split_once(",\"objective\"")
                .map(|(_, rest)| rest.to_string())
                .expect("solve_result carries an objective");
            if pass == 0 {
                first_pass.push(canon);
            } else if first_pass[i] != canon {
                eprintln!("eviction: circuit {i} cold re-solve diverged");
                identical = false;
            }
        }
    }
    server.shutdown();
    identical
}

fn main() -> ExitCode {
    let mut sessions = 32usize;
    let mut queries = 8usize;
    let mut out_path = String::from("BENCH_serve.json");
    let mut access_log: Option<String> = None;
    let mut timeline: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sessions" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => sessions = n,
                _ => return usage(),
            },
            "--queries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => queries = n,
                _ => return usage(),
            },
            "--out" => match it.next().cloned() {
                Some(p) => out_path = p,
                None => return usage(),
            },
            "--access-log" => match it.next().cloned() {
                Some(p) => access_log = Some(p),
                None => return usage(),
            },
            "--timeline" => match it.next().cloned() {
                Some(p) => timeline = Some(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    // The bench artifact *is* a metrics snapshot: registry on for the
    // whole run, exactly like `sweep --bench`.
    sgs_metrics::reset();
    sgs_metrics::enable();
    let start = Instant::now();

    let (samples, failed) = concurrency_phase(
        sessions,
        queries,
        access_log.as_deref(),
        timeline.as_deref(),
    );
    let total = samples.len();
    let hits = samples.iter().filter(|s| s.session_hit).count();
    #[allow(clippy::cast_precision_loss)]
    let warm_fraction = hits as f64 / total as f64;
    let mut lat: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    lat.sort_by(f64::total_cmp);
    let (p50, p90, p99) = (
        percentile(&lat, 0.50),
        percentile(&lat, 0.90),
        percentile(&lat, 0.99),
    );
    println!(
        "concurrency: {sessions} sessions x {} requests, {failed} failed, warm {hits}/{total} \
         ({:.1}%), latency p50 {:.2} ms p90 {:.2} ms p99 {:.2} ms",
        total / sessions.max(1),
        warm_fraction * 100.0,
        p50 * 1e3,
        p90 * 1e3,
        p99 * 1e3,
    );
    assert_eq!(failed, 0, "the load run must not drop a single request");
    assert!(
        warm_fraction >= 0.75,
        "warm-session fraction {warm_fraction:.3} below the 75% contract"
    );

    let evict_identical = eviction_phase();
    println!(
        "eviction: 6 circuits x 2 passes through a capacity-4 store, cold re-solves identical: \
         {evict_identical}"
    );
    assert!(
        evict_identical,
        "post-eviction cold re-solves must be bit-identical"
    );

    // Per-route SLO sanity: every sizing route's sliding window has
    // finite, ordered quantiles over the run's traffic.
    let mut routes_json = String::new();
    for (i, route) in [
        window::Route::Solve,
        window::Route::Resolve,
        window::Route::WhatIf,
    ]
    .into_iter()
    .enumerate()
    {
        let q = window::route_quantiles(route)
            .unwrap_or_else(|| panic!("route {} saw no traffic", route.name()));
        assert!(
            q.p99.is_finite() && q.p50 <= q.p95 && q.p95 <= q.p99,
            "route {} quantiles broken: {q:?}",
            route.name()
        );
        println!(
            "route {}: {} requests, window p50 {:.2} ms p95 {:.2} ms p99 {:.2} ms",
            route.name(),
            q.count,
            q.p50 * 1e3,
            q.p95 * 1e3,
            q.p99 * 1e3,
        );
        if i > 0 {
            routes_json.push_str(", ");
        }
        let _ = write!(
            routes_json,
            "\"{}\": {{\"requests\": {}, \"p50_seconds\": {}, \"p95_seconds\": {}, \"p99_seconds\": {}}}",
            route.name(),
            q.count,
            q.p50,
            q.p95,
            q.p99
        );
    }

    // Queue-wait accounting: every non-rejected request observed exactly
    // one admission-queue wait, and every sizing job exactly one
    // session-queue wait.
    let queue_wait = sgs_metrics::hist_snapshot(sgs_metrics::HistId::ServeQueueWaitSeconds);
    let session_wait = sgs_metrics::hist_snapshot(sgs_metrics::HistId::ServeSessionWaitSeconds);
    let served = sgs_metrics::counter_value(sgs_metrics::Counter::ServeRequests)
        - sgs_metrics::counter_value(sgs_metrics::Counter::ServeRejectedSaturated);
    assert_eq!(
        queue_wait.count, served,
        "admission queue wait must be observed for every served request"
    );
    assert!(
        session_wait.count > 0 && session_wait.max.is_finite(),
        "session queue wait must be observed for sizing jobs"
    );
    println!(
        "queue waits: admission {} observations (max {:.2} ms), session {} observations (max {:.2} ms)",
        queue_wait.count,
        queue_wait.max * 1e3,
        session_wait.count,
        session_wait.max * 1e3,
    );

    if let Some(path) = &access_log {
        let text = std::fs::read_to_string(path).expect("read the access log back");
        let summary = validate_jsonl(&text).expect("access log must be JSONL-clean");
        let events = summary.count("access");
        // Every concurrency-phase request plus the two trace checks; 429
        // rejections (if the queue ever saturated) add theirs on top.
        assert!(
            events >= total + 2,
            "access log holds {events} events for {total}+2 requests"
        );
        let mut ids: Vec<u64> = text
            .lines()
            .map(|l| {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let id = parse_json(l)
                    .expect("access line parses")
                    .get("request_id")
                    .and_then(Json::as_f64)
                    .expect("access line has request_id") as u64;
                id
            })
            .collect();
        let lines = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), lines, "request ids must be daemon-unique");
        println!("access log: {events} events, all ids unique ({path})");
    }

    sgs_metrics::set_gauge(
        sgs_metrics::Gauge::RunSeconds,
        start.elapsed().as_secs_f64(),
    );
    let snap = sgs_metrics::snapshot(sgs_metrics::Metadata {
        bin: "serve_load".to_string(),
        circuit: "load_suite".to_string(),
        git_sha: sgs_bench::git_sha(),
        threads: sessions,
        timestamp: sgs_bench::run_timestamp(),
    });
    let mut json = snap
        .to_json()
        .strip_suffix("\n}\n")
        .expect("snapshot JSON ends with its root close")
        .to_string();
    let _ = write!(
        json,
        ",\n  \"load\": {{\n    \"sessions\": {sessions},\n    \"queries_per_session\": {queries},\n    \
         \"requests\": {total},\n    \"failed\": {failed},\n    \
         \"warm_fraction\": {warm_fraction},\n    \
         \"latency_p50_seconds\": {p50},\n    \"latency_p90_seconds\": {p90},\n    \
         \"latency_p99_seconds\": {p99},\n    \
         \"routes\": {{{routes_json}}},\n    \
         \"queue_wait\": {{\"count\": {}, \"p50_seconds\": {}, \"max_seconds\": {}}},\n    \
         \"session_wait\": {{\"count\": {}, \"p50_seconds\": {}, \"max_seconds\": {}}},\n    \
         \"eviction\": {{\"circuits\": 6, \"passes\": 2, \"capacity\": 4, \
         \"bit_identical\": {evict_identical}}}\n  }}\n}}\n",
        queue_wait.count,
        queue_wait.p50,
        queue_wait.max,
        session_wait.count,
        session_wait.p50,
        session_wait.max,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
