//! Prints the sizing formulation for the paper's Fig. 2 example circuit —
//! the NLP the paper writes out symbolically as Eq. 18 — together with its
//! solution for the paper's objective `min mu_Tmax + 3 sigma_Tmax`.
//!
//! Run with `cargo run -p sgs-bench --bin fig2_formulation`.

use sgs_bench::BenchArgs;
use sgs_core::problem::SizingProblem;
use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{generate, Library};
use sgs_nlp::NlpProblem;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = BenchArgs::extract("fig2_formulation", &mut args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let trace = bench.trace();
    if let Some(arg) = args.first() {
        eprintln!("unknown argument: {arg}");
        eprintln!(
            "usage: fig2_formulation [--trace=FILE] [--metrics=FILE] \
             [--metrics-prom=FILE] [--threads=N]"
        );
        std::process::exit(2);
    }
    let circuit = generate::fig2();
    let lib = Library::paper_default();
    let problem = SizingProblem::build(
        &circuit,
        &lib,
        Objective::MeanPlusKSigma(3.0),
        DelaySpec::None,
    );

    println!("\n## Paper Eq. 18: the Fig. 2 sizing formulation\n");
    println!("circuit: {circuit}");
    println!("objective: min mu_Tmax + 3 sigma_Tmax");
    println!("variables:   {}", problem.num_vars());
    println!("constraints: {}", problem.num_constraints());
    println!("jacobian nonzeros: {}", problem.jacobian_structure().len());
    println!(
        "hessian nonzeros (lower triangle): {}",
        problem.hessian_structure().len()
    );
    println!();
    println!("per gate: mu_t S = t_int S + c (C_load + sum C_in,j S_j)   [18d]");
    println!("          var_t = (0.25 mu_t)^2                            [18e]");
    println!("          (mu_U, var_U) = repeated 2-operand max           [18b]");
    println!("          mu_T = mu_U + mu_t, var_T = var_U + var_t        [18c]");
    println!(
        "          1 <= S <= {}                                      [18f]",
        lib.s_limit
    );

    let mut sizer = Sizer::new(&circuit, &lib).objective(Objective::MeanPlusKSigma(3.0));
    if let Some(sink) = trace.sink() {
        sizer = sizer.trace(sink);
    }
    let r = sizer.solve().expect("fig2 sizing converges");
    trace.report_with_evals(
        "fig2",
        "ok",
        r.objective,
        r.delay.mean(),
        r.delay.sigma(),
        r.area,
        r.evals.into(),
    );
    println!("\nsolution (99.8% of circuits meet this delay):");
    println!(
        "  mu_Tmax = {:.4}, sigma_Tmax = {:.4}, mu + 3 sigma = {:.4}",
        r.delay.mean(),
        r.delay.sigma(),
        r.mean_plus_k_sigma(3.0)
    );
    for ((_, gate), s) in circuit.gates().zip(&r.s) {
        println!("  S_{} = {:.3}", gate.name, s);
    }
    if let Err(e) = bench.finish("fig2") {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
