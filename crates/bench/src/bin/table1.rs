//! Regenerates **Table 1** of the paper: statistical sizing of the three
//! large benchmark circuits (apex1 = 982 cells, apex2 = 117 cells,
//! k2 = 1692 cells) under seven objective/constraint combinations.
//!
//! The original MCNC netlists are not redistributable, so seeded synthetic
//! circuits matched in cell count and logic depth stand in (see
//! `DESIGN.md`). Delay bounds are remapped so they sit at the same
//! relative position inside the achievable mean-delay range
//! `[min mu, unsized mu]` as the paper's bounds sit in *its* range — our
//! library's absolute delays and our synthetic circuits' speed-up ratios
//! differ from the paper's, and an absolute or unsized-ratio scaling can
//! land outside the feasible range entirely.
//!
//! Run with `cargo run -p sgs-bench --bin table1 --release` (takes tens of
//! minutes for all three circuits; pass a circuit name to run one).

use sgs_bench::{print_table, BenchArgs, Row};
use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{generate, Library};
use sgs_nlp::auglag::AugLagOptions;

struct PaperRef {
    d: f64,
    // (mu, sigma, sum S) per row, paper Table 1.
    rows: [(f64, f64, f64); 7],
}

fn paper_ref(name: &str) -> PaperRef {
    match name {
        "apex1" => PaperRef {
            d: 120.0,
            rows: [
                (173.72, 5.867, 982.0),
                (73.21, 2.099, 1989.0),
                (73.26, 1.972, 1949.0),
                (73.57, 1.701, 1843.0),
                (120.00, 2.950, 998.0),
                (117.16, 2.842, 1001.0),
                (112.07, 2.645, 1007.0),
            ],
        },
        "apex2" => PaperRef {
            d: 29.0,
            rows: [
                (31.50, 1.784, 117.0),
                (23.45, 1.419, 304.0),
                (23.48, 1.373, 294.0),
                (23.79, 1.202, 279.0),
                (29.00, 1.488, 123.0),
                (27.64, 1.365, 131.0),
                (25.47, 1.176, 154.0),
            ],
        },
        "k2" => PaperRef {
            d: 120.0,
            rows: [
                (183.98, 3.281, 1692.0),
                (75.00, 1.293, 3750.0),
                (75.02, 1.228, 3690.0),
                (75.23, 1.120, 3596.0),
                (120.00, 1.829, 1794.0),
                (118.27, 1.744, 1801.0),
                (115.10, 1.637, 1814.0),
            ],
        },
        other => panic!("unknown benchmark {other}"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = BenchArgs::extract("table1", &mut args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let trace = bench.trace();
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("unknown argument: {flag}");
        eprintln!(
            "usage: table1 [CIRCUIT] [--trace=FILE] [--metrics=FILE] \
             [--metrics-prom=FILE] [--threads=N]"
        );
        std::process::exit(2);
    }
    let only: Option<String> = args.first().cloned();
    let lib = Library::paper_default();

    for circuit in generate::benchmark_suite() {
        if let Some(name) = &only {
            if circuit.name() != name {
                continue;
            }
        }
        let pref = paper_ref(circuit.name());
        let n = circuit.num_gates();
        let base = sgs_ssta::ssta(&circuit, &lib, &vec![1.0; n]);
        // Place the deadline at the paper's relative position in the
        // feasible mean-delay range: frac = (D - mu_min) / (mu_unsized -
        // mu_min), taken from the paper's own numbers (rows 1 and 2).
        let probe = Sizer::new(&circuit, &lib)
            .objective(Objective::MeanDelay)
            .solver(sgs_core::SolverChoice::ReducedSpace)
            .solve()
            .expect("min-delay probe sizes");
        let frac = (pref.d - pref.rows[1].0) / (pref.rows[0].0 - pref.rows[1].0);
        let d = probe.delay.mean() + frac * (base.delay.mean() - probe.delay.mean());

        let mut rows = Vec::new();
        rows.push(Row {
            minimize: "min sum S".into(),
            constraint: String::new(),
            mu: base.delay.mean(),
            sigma: base.delay.sigma(),
            sum_s: n as f64,
            cpu: None,
            paper: Some(pref.rows[0]),
        });

        let al = AugLagOptions {
            max_outer: 8,
            ..Default::default()
        };
        let mut run = |obj: Objective, spec: DelaySpec, label: (&str, String), paper| {
            let mut sizer = Sizer::new(&circuit, &lib)
                .objective(obj)
                .delay_spec(spec)
                .al_options(al.clone());
            if let Some(sink) = trace.sink() {
                sizer = sizer.trace(sink);
            }
            let r = sizer
                .solve()
                .expect("benchmark sizing produces a usable point");
            trace.report_with_evals(
                &format!("{}/{}", circuit.name(), label.0),
                "ok",
                r.objective,
                r.delay.mean(),
                r.delay.sigma(),
                r.area,
                r.evals.into(),
            );
            rows.push(Row {
                minimize: label.0.to_string(),
                constraint: label.1,
                mu: r.delay.mean(),
                sigma: r.delay.sigma(),
                sum_s: r.area,
                cpu: Some(r.seconds),
                paper,
            });
        };

        run(
            Objective::MeanDelay,
            DelaySpec::None,
            ("min mu", String::new()),
            Some(pref.rows[1]),
        );
        run(
            Objective::MeanPlusKSigma(1.0),
            DelaySpec::None,
            ("min mu + sigma", String::new()),
            Some(pref.rows[2]),
        );
        run(
            Objective::MeanPlusKSigma(3.0),
            DelaySpec::None,
            ("min mu + 3 sigma", String::new()),
            Some(pref.rows[3]),
        );
        run(
            Objective::Area,
            DelaySpec::MaxMean(d),
            ("min sum S", format!("mu <= {d:.1}")),
            Some(pref.rows[4]),
        );
        run(
            Objective::Area,
            DelaySpec::MaxMeanPlusKSigma { k: 1.0, d },
            ("min sum S", format!("mu + sigma <= {d:.1}")),
            Some(pref.rows[5]),
        );
        run(
            Objective::Area,
            DelaySpec::MaxMeanPlusKSigma { k: 3.0, d },
            ("min sum S", format!("mu + 3 sigma <= {d:.1}")),
            Some(pref.rows[6]),
        );

        print_table(
            &format!(
                "Table 1 [{}]: {} cells, depth {}, deadline scaled {} -> {:.1}",
                circuit.name(),
                n,
                circuit.depth(),
                pref.d,
                d
            ),
            &rows,
        );
    }
    let circuits = only.unwrap_or_else(|| "apex1+apex2+k2".to_string());
    if let Err(e) = bench.finish(&circuits) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
