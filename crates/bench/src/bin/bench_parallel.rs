//! Parallel-engine benchmark: times the sequential vs the multi-threaded
//! Monte Carlo and SSTA paths on large circuits, verifies the parallel
//! results are bit-identical, and writes `BENCH_parallel.json`.
//!
//! Usage: `bench_parallel [--threads=N] [--samples=N] [--out=PATH]
//! [--trace=FILE] [--metrics=FILE] [--metrics-prom=FILE]`

use sgs_bench::BenchArgs;
use sgs_netlist::{generate, Circuit, Library};
use sgs_ssta::{monte_carlo, ssta, ssta_levelized, McOptions, McReport};
use std::fmt::Write as _;
use std::time::Instant;

struct Entry {
    circuit: String,
    gates: usize,
    samples: usize,
    mc_sequential_ms: f64,
    mc_parallel_ms: f64,
    mc_speedup: f64,
    bit_identical: bool,
    ssta_sequential_ms: f64,
    ssta_levelized_ms: f64,
}

fn time_mc(
    c: &Circuit,
    lib: &Library,
    s: &[f64],
    samples: usize,
    parallel: bool,
) -> (f64, McReport) {
    let opts = McOptions {
        samples,
        seed: 0xB0_0B5,
        criticality: true,
        parallel,
    };
    let t = Instant::now();
    let r = monte_carlo(c, lib, s, &opts);
    (t.elapsed().as_secs_f64() * 1e3, r)
}

fn identical(a: &McReport, b: &McReport) -> bool {
    a.delay.mean().to_bits() == b.delay.mean().to_bits()
        && a.delay.var().to_bits() == b.delay.var().to_bits()
        && a.samples().len() == b.samples().len()
        && a.samples()
            .iter()
            .zip(b.samples())
            .all(|(p, q)| p.to_bits() == q.to_bits())
        && a.criticality
            .iter()
            .zip(&b.criticality)
            .all(|(p, q)| p.to_bits() == q.to_bits())
}

fn bench_circuit(c: &Circuit, lib: &Library, samples: usize) -> Entry {
    let n = c.num_gates();
    let s: Vec<f64> = (0..n).map(|i| 1.0 + 0.05 * (i % 37) as f64).collect();

    let (seq_ms, seq) = time_mc(c, lib, &s, samples, false);
    let (par_ms, par) = time_mc(c, lib, &s, samples, true);

    let t = Instant::now();
    let a = ssta(c, lib, &s);
    let ssta_seq_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let b = ssta_levelized(c, lib, &s);
    let ssta_lev_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(
        (a.delay.mean() - b.delay.mean()).abs() < 1e-12,
        "levelized SSTA drifted"
    );

    Entry {
        circuit: c.name().to_string(),
        gates: n,
        samples,
        mc_sequential_ms: seq_ms,
        mc_parallel_ms: par_ms,
        mc_speedup: seq_ms / par_ms,
        bit_identical: identical(&seq, &par),
        ssta_sequential_ms: ssta_seq_ms,
        ssta_levelized_ms: ssta_lev_ms,
    }
}

fn usage(arg: &str) -> ! {
    eprintln!("invalid argument: {arg}");
    eprintln!(
        "usage: bench_parallel [--threads=N] [--samples=N] [--out=PATH] \
         [--trace=FILE] [--metrics=FILE] [--metrics-prom=FILE]"
    );
    std::process::exit(2)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = BenchArgs::extract("bench_parallel", &mut args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let trace = bench.trace();
    let mut samples = 100_000usize;
    let mut out_path = String::from("BENCH_parallel.json");
    for arg in args {
        if let Some(n) = arg.strip_prefix("--samples=") {
            samples = n.parse().unwrap_or_else(|_| usage(&arg));
        } else if let Some(p) = arg.strip_prefix("--out=") {
            out_path = p.to_string();
        } else {
            eprintln!("unknown argument: {arg}");
            usage(&arg);
        }
    }
    let threads = rayon::current_num_threads();
    println!("parallel engine bench: {threads} thread(s), {samples} MC samples");

    let lib = Library::paper_default();
    let circuits = [
        generate::ripple_carry_adder(128), // 641 gates, long carry chain
        generate::random_dag(&generate::RandomDagSpec {
            name: "dag2500".into(),
            cells: 2500, // crosses the levelized-SSTA parallel threshold
            inputs: 64,
            depth: 25,
            seed: 20,
            ..Default::default()
        }),
    ];

    let mut entries = Vec::new();
    for c in &circuits {
        // The big DAG gets fewer trials so the runner stays interactive.
        let n = if c.num_gates() > 1000 {
            samples / 2
        } else {
            samples
        };
        let e = bench_circuit(c, &lib, n);
        println!(
            "{:<12} {:>5} gates  {:>7} samples  MC seq {:>8.1} ms  par {:>8.1} ms  \
             speedup {:>5.2}x  identical {}  SSTA {:.2}/{:.2} ms",
            e.circuit,
            e.gates,
            e.samples,
            e.mc_sequential_ms,
            e.mc_parallel_ms,
            e.mc_speedup,
            e.bit_identical,
            e.ssta_sequential_ms,
            e.ssta_levelized_ms,
        );
        assert!(e.bit_identical, "parallel MC must be bit-identical");
        entries.push(e);
    }

    let mut json = String::from("{\n");
    json.push_str(&sgs_bench::bench_metadata_json(
        "bench_parallel",
        "rca128+dag2500",
    ));
    let _ = writeln!(json, "  \"threads\": {threads},");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"circuit\": \"{}\", \"gates\": {}, \"samples\": {}, \
             \"mc_sequential_ms\": {:.3}, \"mc_parallel_ms\": {:.3}, \"mc_speedup\": {:.3}, \
             \"bit_identical\": {}, \"ssta_sequential_ms\": {:.3}, \"ssta_levelized_ms\": {:.3}}}{}",
            e.circuit,
            e.gates,
            e.samples,
            e.mc_sequential_ms,
            e.mc_parallel_ms,
            e.mc_speedup,
            e.bit_identical,
            e.ssta_sequential_ms,
            e.ssta_levelized_ms,
            if i + 1 < entries.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
    for e in &entries {
        trace.report(&e.circuit, "ok", f64::NAN, f64::NAN, f64::NAN, f64::NAN);
    }
    if let Err(e) = bench.finish("rca128+dag2500") {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
