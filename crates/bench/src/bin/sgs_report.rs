//! Run-report renderer, cross-run regression comparator and snapshot
//! linter for `--metrics=FILE` snapshots.
//!
//! ```text
//! sgs_report render <metrics.json> [--trace run.jsonl]
//! sgs_report compare <base.json> <new.json> [--threshold=N%] [--slack=S] [--budget metric=max]...
//! sgs_report lint <metrics.json>...
//! sgs_report timeline <run.jsonl> [--out FILE]
//! sgs_report timeline-lint <chrome.json> [--min-coverage=F]
//! ```
//!
//! `render` prints the human-readable run report: provenance header,
//! hierarchical phase profile (total/self wall-clock per phase), latency
//! histogram tables and the counter/gauge summary; `--trace` additionally
//! aggregates the phase spans of a `--trace` JSONL file for
//! cross-checking the in-process profile against the trace's view.
//!
//! `compare` diffs two snapshots metric by metric: deterministic metrics
//! (iteration and evaluation counters, histogram counts) must match
//! exactly, timing-like metrics (`*_seconds`, `alloc_*`) may grow up to
//! the threshold. `--budget metric=max` additionally pins an absolute
//! ceiling on a counter or gauge of the *new* run (repeatable) — the
//! allocation gate uses it so the budget keeps holding even across
//! baseline regenerations. Exit codes: `0` clean, `1` regression, `3`
//! schema drift only (missing/extra metrics, version skew) — the CI
//! perf-regression gate against `benchmarks/baselines/`.
//!
//! `lint` validates snapshot files structurally (schema version, bucket
//! sums, quantile ordering, phase-parent closure) the way `trace_lint`
//! validates JSONL traces.
//!
//! `timeline` renders a whole run's `--trace` JSONL as a Chrome
//! trace-event file (loadable in Perfetto / `chrome://tracing`);
//! `timeline-lint` parses such a file back — from `timeline` or from the
//! daemon's `GET /debug/traces/<id>` — and asserts every begin/end span
//! pairs up, optionally enforcing a minimum request-span coverage.

use sgs_metrics::{compare, CompareOptions, Snapshot};
use sgs_trace::chrome;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sgs_report render <metrics.json> [--trace run.jsonl]\n\
         \x20      sgs_report compare <base.json> <new.json> [--threshold=N%] [--slack=S]\n\
         \x20              [--budget metric=max]...\n\
         \x20      sgs_report lint <metrics.json>...\n\
         \x20      sgs_report timeline <run.jsonl> [--out FILE]\n\
         \x20      sgs_report timeline-lint <chrome.json> [--min-coverage=F]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Snapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn render(args: &[String]) -> ExitCode {
    let mut snapshot_path: Option<&str> = None;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(p) = arg.strip_prefix("--trace=") {
            trace_path = Some(p.to_string());
        } else if arg == "--trace" {
            match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => return usage(),
            }
        } else if arg.starts_with("--") || snapshot_path.is_some() {
            return usage();
        } else {
            snapshot_path = Some(arg);
        }
    }
    let Some(path) = snapshot_path else {
        return usage();
    };
    let snap = match load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sgs_report: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spans = match &trace_path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("sgs_report: cannot read {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match sgs_metrics::report::aggregate_trace_spans(&text) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("sgs_report: {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    print!("{}", sgs_metrics::report::render(&snap, spans.as_ref()));
    ExitCode::SUCCESS
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut opts = CompareOptions::default();
    let mut budgets: Vec<compare::Budget> = Vec::new();
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(b) = arg.strip_prefix("--budget=") {
            match compare::parse_budget(b) {
                Ok(v) => budgets.push(v),
                Err(e) => {
                    eprintln!("sgs_report: {e}");
                    return usage();
                }
            }
        } else if arg == "--budget" {
            match it.next().map(|b| compare::parse_budget(b)) {
                Some(Ok(v)) => budgets.push(v),
                Some(Err(e)) => {
                    eprintln!("sgs_report: {e}");
                    return usage();
                }
                None => return usage(),
            }
        } else if let Some(t) = arg.strip_prefix("--threshold=") {
            match compare::parse_threshold(t) {
                Ok(v) => opts.threshold = v,
                Err(e) => {
                    eprintln!("sgs_report: {e}");
                    return usage();
                }
            }
        } else if arg == "--threshold" {
            match it.next().map(|t| compare::parse_threshold(t)) {
                Some(Ok(v)) => opts.threshold = v,
                _ => return usage(),
            }
        } else if let Some(s) = arg.strip_prefix("--slack=") {
            match s.parse() {
                Ok(v) => opts.absolute_slack = v,
                Err(_) => return usage(),
            }
        } else if arg.starts_with("--") {
            eprintln!("sgs_report: unknown flag {arg}");
            return usage();
        } else {
            paths.push(arg);
        }
    }
    let [base_path, new_path] = paths.as_slice() else {
        return usage();
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("sgs_report: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut outcome = compare::compare(&base, &new, &opts);
    compare::check_budgets(&new, &budgets, &mut outcome);
    println!(
        "comparing {base_path} ({}:{}) -> {new_path} ({}:{}), threshold {:.0}%, slack {}",
        base.meta.bin,
        base.meta.circuit,
        new.meta.bin,
        new.meta.circuit,
        opts.threshold * 100.0,
        opts.absolute_slack,
    );
    for line in &outcome.lines {
        println!("{line}");
    }
    if !outcome.drift.is_empty() {
        eprintln!("schema drift ({}):", outcome.drift.len());
        for d in &outcome.drift {
            eprintln!("  {d}");
        }
    }
    if !outcome.regressions.is_empty() {
        eprintln!("REGRESSIONS ({}):", outcome.regressions.len());
        for r in &outcome.regressions {
            eprintln!("  {r}");
        }
    } else if outcome.drift.is_empty() {
        println!(
            "OK: no regressions ({} improvement(s))",
            outcome.improvements.len()
        );
    }
    match u8::try_from(outcome.exit_code()) {
        Ok(code) => ExitCode::from(code),
        Err(_) => ExitCode::FAILURE,
    }
}

fn lint(args: &[String]) -> ExitCode {
    if args.is_empty() || args.iter().any(|a| a.starts_with("--")) {
        return usage();
    }
    let mut failed = false;
    for path in args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sgs_report: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        match Snapshot::lint(&text) {
            Ok(snap) => {
                let coverage = snap
                    .coverage()
                    .map_or("n/a".to_string(), |c| format!("{:.1}%", c * 100.0));
                println!(
                    "{path}: OK ({} counters, {} gauges, {} histograms, {} phases, coverage {})",
                    snap.counters.len(),
                    snap.gauges.len(),
                    snap.hists.len(),
                    snap.phases.len(),
                    coverage,
                );
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn timeline(args: &[String]) -> ExitCode {
    let mut input: Option<&str> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(p) = arg.strip_prefix("--out=") {
            out = Some(p.to_string());
        } else if arg == "--out" {
            match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage(),
            }
        } else if arg.starts_with("--") || input.is_some() {
            return usage();
        } else {
            input = Some(arg);
        }
    }
    let Some(path) = input else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sgs_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = match chrome::jsonl_to_chrome(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sgs_report: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(out_path) => {
            if let Err(e) = std::fs::write(&out_path, &rendered) {
                eprintln!("sgs_report: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out_path}");
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

fn timeline_lint(args: &[String]) -> ExitCode {
    let mut input: Option<&str> = None;
    let mut min_coverage: Option<f64> = None;
    for arg in args {
        if let Some(v) = arg.strip_prefix("--min-coverage=") {
            match v.parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => min_coverage = Some(f),
                _ => {
                    eprintln!("sgs_report: --min-coverage needs a fraction in [0, 1]");
                    return usage();
                }
            }
        } else if arg.starts_with("--") || input.is_some() {
            return usage();
        } else {
            input = Some(arg);
        }
    }
    let Some(path) = input else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sgs_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match chrome::validate_chrome(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let coverage = summary
        .coverage
        .map_or("n/a".to_string(), |c| format!("{:.1}%", c * 100.0));
    println!(
        "{path}: OK ({} events, {} span pairs, {} complete events, request coverage {coverage})",
        summary.events, summary.pairs, summary.complete,
    );
    if let Some(min) = min_coverage {
        let got = summary.coverage.unwrap_or(0.0);
        if got < min {
            eprintln!(
                "{path}: request-span coverage {:.3} below the required {min:.3}",
                got
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("render") => render(&args[1..]),
        Some("compare") => run_compare(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("timeline") => timeline(&args[1..]),
        Some("timeline-lint") => timeline_lint(&args[1..]),
        _ => usage(),
    }
}
