//! Pre-solve static analyzer for BLIF netlists and generated circuits.
//!
//! ```text
//! analyze_blif [<netlist.blif> | <circuit-name>]... [--suite] [--json]
//!              [--objective mu|mu+1s|mu+3s|area|sigma] [--deadline D]
//!              [--stages LIST] [--no-derivatives] [--raw-variance]
//!              [--metrics FILE] [--metrics-prom FILE]
//! ```
//!
//! Runs the four-stage `sgs-analyze` pipeline (structural netlist lints,
//! interval-arithmetic safety proofs, derivative-sparsity verification,
//! parallel write-plan race analysis) over each argument without a
//! single solver iteration. Arguments that name an existing file are
//! parsed as BLIF; otherwise they select a generated circuit (`tree7`,
//! `fig2`, `apex1`, `apex2`, `k2`, `adder<N>`, `chain<N>`,
//! `nandtree<N>`). `--suite` appends the paper's circuits (`tree7`,
//! `fig2` and the Table 1 stand-ins). `--stages 1,2,4` selects a subset
//! of stages (default: all). With `--json` every diagnostic is printed
//! as one JSONL object (sgs-trace conventions) followed by an
//! `analyze_report` summary line per circuit.
//!
//! Exits 1 if any analyzed circuit has an Error-severity finding — the
//! CI gate over `benchmarks/*.blif`.

use sgs_analyze::{analyze, analyze_blif_text, AnalyzerOptions, Report};
use sgs_bench::BenchArgs;
use sgs_core::{DelaySpec, Objective};
use sgs_netlist::{generate, Circuit, Library};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: analyze_blif [<netlist.blif> | tree7|fig2|apex1|apex2|k2|adder<N>|chain<N>|nandtree<N>]... \
         [--suite] [--json] [--objective mu|mu+1s|mu+3s|area|sigma] [--deadline D] \
         [--stages 1,2,3,4] [--no-derivatives] [--raw-variance] [--metrics FILE] \
         [--metrics-prom FILE]"
    );
    ExitCode::from(2)
}

fn generated(name: &str) -> Option<Circuit> {
    match name {
        "tree7" => return Some(generate::tree7()),
        "fig2" => return Some(generate::fig2()),
        "apex1" | "apex2" | "k2" => {
            return generate::benchmark_suite()
                .into_iter()
                .find(|c| c.name() == name)
        }
        _ => {}
    }
    if let Some(n) = name.strip_prefix("adder") {
        return n.parse().ok().map(generate::ripple_carry_adder);
    }
    if let Some(n) = name.strip_prefix("chain") {
        return n.parse().ok().map(generate::inverter_chain);
    }
    if let Some(n) = name.strip_prefix("nandtree") {
        return n.parse().ok().map(generate::nand_tree);
    }
    None
}

fn print_report(target: &str, report: &Report, json: bool) {
    if json {
        print!("{}", report.to_jsonl());
        println!(
            "{{\"event\":\"analyze_report\",\"circuit\":\"{}\",\"errors\":{},\"warnings\":{}}}",
            target,
            report.num_errors(),
            report.num_warnings()
        );
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "{target}: {} error(s), {} warning(s)",
            report.num_errors(),
            report.num_warnings()
        );
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = match BenchArgs::extract("analyze_blif", &mut args) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let json = args.iter().any(|a| a == "--json");
    let suite = args.iter().any(|a| a == "--suite");
    let mut opts = AnalyzerOptions::default();
    if args.iter().any(|a| a == "--no-derivatives") {
        opts.derivatives = false;
    }
    if args.iter().any(|a| a == "--raw-variance") {
        opts.assume_runtime_clamps = false;
    }
    let mut objective = Objective::MeanPlusKSigma(3.0);
    let mut spec = DelaySpec::None;
    let mut targets: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" | "--suite" | "--no-derivatives" | "--raw-variance" => {}
            "--objective" => {
                objective = match it.next().map(String::as_str) {
                    Some("mu") => Objective::MeanDelay,
                    Some("mu+1s") => Objective::MeanPlusKSigma(1.0),
                    Some("mu+3s") => Objective::MeanPlusKSigma(3.0),
                    Some("area") => Objective::Area,
                    Some("sigma") => Objective::Sigma,
                    _ => return usage(),
                };
            }
            "--deadline" => match it.next().and_then(|v| v.parse().ok()) {
                Some(d) => spec = DelaySpec::MaxMeanPlusKSigma { k: 3.0, d },
                None => return usage(),
            },
            "--stages" => {
                let Some(list) = it.next() else {
                    return usage();
                };
                opts.structural = false;
                opts.intervals = false;
                opts.derivatives = false;
                opts.plans = false;
                for stage in list.split(',') {
                    match stage.trim() {
                        "1" => opts.structural = true,
                        "2" => opts.intervals = true,
                        "3" => opts.derivatives = true,
                        "4" => opts.plans = true,
                        _ => return usage(),
                    }
                }
            }
            other if other.starts_with("--") => return usage(),
            other => targets.push(other.to_string()),
        }
    }
    if suite {
        for name in ["tree7", "fig2", "apex1", "apex2", "k2"] {
            targets.push(name.to_string());
        }
    }
    if targets.is_empty() {
        return usage();
    }

    let lib = Library::paper_default();
    let mut errors = 0usize;
    for target in &targets {
        let report = if std::path::Path::new(target).is_file() {
            let text = match std::fs::read_to_string(target) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("analyze_blif: cannot read {target}: {e}");
                    return ExitCode::from(2);
                }
            };
            analyze_blif_text(&text, &lib, &objective, &spec, &opts)
        } else if let Some(circuit) = generated(target) {
            analyze(&circuit, &lib, &objective, &spec, &opts)
        } else {
            eprintln!("analyze_blif: {target}: no such file or generated circuit");
            return usage();
        };
        print_report(target, &report, json);
        errors += report.num_errors();
    }
    if let Err(e) = bench.finish(&targets.join("+")) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if errors > 0 {
        eprintln!("analyze_blif: {errors} error-severity finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
