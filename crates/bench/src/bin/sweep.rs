//! Scenario sweep driver: area-vs-deadline Pareto frontiers, robustness
//! (mu + k sigma) sweeps and multi-corner frontiers over warm-started
//! `Resolver` sessions.
//!
//! ```text
//! sweep <netlist.blif|.v> [--points N] [--deadlines a,b,...] [--table FILE]
//! sweep --bench [--points N] [--out PATH]
//! sweep --lint FILE...
//! ```
//!
//! Session mode traces the frontier on a named netlist — over an
//! auto-derived grid ([`SweepEngine::deadline_frontier`]) or explicit
//! `--deadlines` — and prints one row per feasible point at 17
//! significant digits (the golden-table format, `--table` writes it to a
//! file).
//!
//! `--bench` traces the rdag40 frontier (the committed benchmark's
//! generator twin), asserts the frontier contract in-run — point count,
//! warm-interior fraction, dominance, a single infeasible-to-feasible
//! transition, the bitwise evaluation tier (reported values bit-identical
//! to a fresh SSTA at the accepted sizes) and sampled cold re-solve
//! agreement — then adds a k-sweep and a three-corner sweep and writes
//! `BENCH_sweep.json`: a schema-valid metrics snapshot (lint/compare
//! accept it directly) extended with `frontier` / `k_sweep` / `corners`
//! result blocks.
//!
//! `--lint` re-parses committed frontier tables and exits nonzero if any
//! violates dominance (deadlines not ascending, or area increasing as the
//! deadline relaxes) — the CI guard against committing a non-dominant
//! frontier.

use sgs_bench::BenchArgs;
use sgs_core::{Corner, DelaySpec, Frontier, Objective, Sizer, SweepConfig, SweepEngine};
use sgs_netlist::{blif, generate, Circuit, Library};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sweep <netlist.blif|.v> [--points N] [--deadlines a,b,...] [--table FILE] \
         [--trace FILE] [--metrics FILE] [--metrics-prom FILE]\n\
         \x20      sweep --bench [--points N] [--out PATH] [--trace FILE] [--metrics FILE]\n\
         \x20      sweep --lint FILE..."
    );
    ExitCode::from(2)
}

/// The 17-significant-digit frontier table (feasible points only; an
/// infeasible point has no `(area, mu, sigma)` to print). Shared by the
/// session printer, the golden test and the `--lint` parser.
fn render_table(name: &str, gates: usize, frontier: &Frontier) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# sweep circuit {name} gates {gates} points {} feasible {}",
        frontier.points.len(),
        frontier.feasible_count(),
    );
    let _ = writeln!(out, "# columns: deadline area mu sigma");
    for (i, p) in frontier.points.iter().filter(|p| p.feasible).enumerate() {
        let _ = writeln!(
            out,
            "point_{i:02}  {:+.17e}  {:+.17e}  {:+.17e}  {:+.17e}",
            p.deadline, p.area, p.mu, p.sigma
        );
    }
    out
}

/// A finite float as JSON, `null` otherwise (infeasible points carry
/// NaN values, which raw JSON cannot).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

fn parse_points(args: &mut Vec<String>) -> Result<Option<usize>, ()> {
    if let Some(i) = args.iter().position(|a| a == "--points") {
        if i + 1 >= args.len() {
            return Err(());
        }
        let n: usize = args[i + 1].parse().map_err(|_| ())?;
        args.drain(i..=i + 1);
        return Ok(Some(n));
    }
    Ok(None)
}

fn session(mut args: Vec<String>) -> ExitCode {
    let path = args.remove(0);
    let points = match parse_points(&mut args) {
        Ok(p) => p,
        Err(()) => return usage(),
    };
    let mut deadlines: Option<Vec<f64>> = None;
    let mut table: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deadlines" => match it.next() {
                Some(list) => {
                    let parsed: Result<Vec<f64>, _> =
                        list.split(',').map(str::parse::<f64>).collect();
                    match parsed {
                        Ok(ds) if !ds.is_empty() => deadlines = Some(ds),
                        _ => return usage(),
                    }
                }
                None => return usage(),
            },
            "--table" => table = it.next().cloned(),
            _ => return usage(),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = if path.ends_with(".v") {
        sgs_netlist::verilog::parse(&text)
    } else {
        blif::parse(&text)
    };
    let circuit = match parsed {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lib = Library::paper_default();
    let mut config = SweepConfig::default();
    if let Some(n) = points {
        config.points = n.max(2);
    }
    let engine = SweepEngine::new(&circuit, &lib).config(config);
    let traced = match deadlines {
        Some(ds) => engine.trace(&ds),
        None => engine.deadline_frontier(),
    };
    let frontier = match traced {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = frontier.check_dominance(1e-6) {
        eprintln!("frontier violates dominance: {e}");
        return ExitCode::FAILURE;
    }
    let rendered = render_table(circuit.name(), circuit.num_gates(), &frontier);
    print!("{rendered}");
    if let Some(file) = table {
        if let Err(e) = std::fs::write(&file, &rendered) {
            eprintln!("cannot write {file}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "# feasible {}  transitions {}  warm interior {:.0}%  refined {}",
        frontier.feasible_count(),
        frontier.transitions(),
        frontier.warm_interior_fraction() * 100.0,
        frontier.points.iter().filter(|p| p.refined).count(),
    );
    ExitCode::SUCCESS
}

/// The committed rdag40 benchmark's generator twin.
fn rdag40() -> Circuit {
    generate::random_dag(&generate::RandomDagSpec {
        name: "rdag40".into(),
        cells: 40,
        inputs: 8,
        depth: 8,
        seed: 40,
        ..Default::default()
    })
}

/// Serialises one frontier as a JSON points array (two-space indent
/// inside a named block).
fn frontier_json(frontier: &Frontier) -> String {
    let mut json = String::from("[\n");
    for (i, p) in frontier.points.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"deadline\": {}, \"feasible\": {}, \"refined\": {}, \
             \"cache_hit\": {}, \"warm_start_hit\": {}, \"area\": {}, \"mu\": {}, \
             \"sigma\": {}, \"outer_iterations\": {}, \"seconds\": {:.6}}}{}",
            json_num(p.deadline),
            p.feasible,
            p.refined,
            p.cache_hit,
            p.warm_start_hit,
            json_num(p.area),
            json_num(p.mu),
            json_num(p.sigma),
            p.outer_iterations,
            p.seconds,
            if i + 1 < frontier.points.len() {
                ","
            } else {
                ""
            },
        );
    }
    json.push_str("    ]");
    json
}

fn bench(mut args: Vec<String>) -> ExitCode {
    let points = match parse_points(&mut args) {
        Ok(p) => p.unwrap_or(14),
        Err(()) => return usage(),
    };
    let mut out_path = String::from("BENCH_sweep.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next().cloned() {
                Some(p) => out_path = p,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    // The bench artifact *is* a metrics snapshot, so the registry is on
    // for this mode regardless of --metrics.
    sgs_metrics::reset();
    sgs_metrics::enable();
    let start = Instant::now();
    let circuit = rdag40();
    let lib = Library::paper_default();
    let config = SweepConfig {
        points,
        ..SweepConfig::default()
    };
    let engine = SweepEngine::new(&circuit, &lib).config(config.clone());

    // --- Deadline frontier + the in-run frontier contract. ------------
    let frontier = engine.deadline_frontier().expect("rdag40 sweep converges");
    let feasible = frontier.feasible_count();
    assert!(
        feasible >= 12,
        "rdag40 frontier must trace >= 12 feasible points, got {feasible}"
    );
    let warm = frontier.warm_interior_fraction();
    assert!(
        warm >= 0.75,
        "need >= 75% of interior points warm-started, got {:.0}%",
        warm * 100.0
    );
    frontier.check_dominance(1e-6).expect("frontier dominance");
    assert!(
        frontier.transitions() <= 1,
        "more than one infeasible-to-feasible transition"
    );
    assert!(
        frontier.points.iter().any(|p| !p.feasible),
        "the below-minimum probe must be infeasible"
    );
    // Bitwise evaluation tier: every reported (mu, sigma, area) is
    // bit-identical to a from-scratch SSTA + sum(s) at the point's sizes.
    frontier
        .verify_evaluation(&circuit, &lib)
        .expect("warm frontier values bit-identical to fresh evaluation");
    // Solver tier: independent cold solves at sampled specs agree on
    // feasibility and area (different iterates of the same NLP — a small
    // relative tolerance, not bit-equality, is the contract here).
    let feasible_pts: Vec<_> = frontier.points.iter().filter(|p| p.feasible).collect();
    for idx in [0, feasible_pts.len() / 2, feasible_pts.len() - 1] {
        let p = feasible_pts[idx];
        let cold = Sizer::new(&circuit, &lib)
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(p.deadline))
            .solve()
            .expect("cold re-solve feasible at a swept deadline");
        let rel = (cold.area - p.area).abs() / (1.0 + p.area.abs());
        assert!(
            rel <= 5e-3,
            "cold re-solve at deadline {} disagrees: warm area {}, cold {}",
            p.deadline,
            p.area,
            cold.area
        );
    }
    println!(
        "rdag40 frontier: {} points ({} feasible, {} refined), warm interior {:.0}%",
        frontier.points.len(),
        feasible,
        frontier.points.iter().filter(|p| p.refined).count(),
        warm * 100.0,
    );

    // --- Robustness sweep. --------------------------------------------
    let ks = [0.0, 1.0, 2.0, 3.0];
    let k_points = engine.k_sweep(&ks).expect("rdag40 k-sweep converges");
    for w in k_points.windows(2) {
        assert!(
            w[1].objective >= w[0].objective - 1e-6 * (1.0 + w[0].objective.abs()),
            "V(k) must be non-decreasing"
        );
    }
    println!(
        "rdag40 k-sweep: {}",
        k_points
            .iter()
            .map(|p| format!("V({})={:.3}", p.k, p.objective))
            .collect::<Vec<_>>()
            .join("  "),
    );

    // --- Multi-corner frontier. ---------------------------------------
    let corners = [
        Corner::nominal(),
        Corner::scaled("slow", 1.15, 1.10),
        Corner::scaled("fast", 0.90, 0.95),
    ];
    let corner_engine = SweepEngine::new(&circuit, &lib).config(SweepConfig {
        points: (points / 2).max(6),
        ..config
    });
    let cf = corner_engine
        .corner_frontier(&corners)
        .expect("rdag40 corner sweep converges");
    cf.merged
        .check_dominance(1e-6)
        .expect("worst-corner frontier dominance");
    println!(
        "rdag40 corners: {} sessions, merged {} points ({} feasible)",
        cf.corners.len(),
        cf.merged.points.len(),
        cf.merged.feasible_count(),
    );

    // --- BENCH_sweep.json: metrics snapshot + result blocks. ----------
    sgs_metrics::set_gauge(
        sgs_metrics::Gauge::RunSeconds,
        start.elapsed().as_secs_f64(),
    );
    let snap = sgs_metrics::snapshot(sgs_metrics::Metadata {
        bin: "sweep".to_string(),
        circuit: "rdag40".to_string(),
        git_sha: sgs_bench::git_sha(),
        threads: rayon::current_num_threads(),
        timestamp: sgs_bench::run_timestamp(),
    });
    let mut json = snap
        .to_json()
        .strip_suffix("\n}\n")
        .expect("snapshot JSON ends with its root close")
        .to_string();
    json.push_str(",\n  \"frontier\": {\n    \"circuit\": \"rdag40\",\n    \"points\": ");
    json.push_str(&frontier_json(&frontier));
    json.push_str("\n  },\n  \"k_sweep\": [\n");
    for (i, p) in k_points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"k\": {}, \"objective\": {}, \"mu\": {}, \"sigma\": {}, \
             \"area\": {}, \"warm_start_hit\": {}}}{}",
            json_num(p.k),
            json_num(p.objective),
            json_num(p.mu),
            json_num(p.sigma),
            json_num(p.area),
            p.warm_start_hit,
            if i + 1 < k_points.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"corners\": [\n");
    for (i, t) in cf.corners.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"t_int_scale\": {}, \"c_in_scale\": {}, \
             \"feasible_points\": {}}}{}",
            t.corner.name,
            json_num(t.corner.t_int_scale),
            json_num(t.corner.c_in_scale),
            t.frontier.feasible_count(),
            if i + 1 < cf.corners.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

/// Parses a rendered frontier table and checks dominance: deadlines
/// strictly ascending, area non-increasing as the deadline relaxes.
fn lint_table(path: &str, text: &str) -> Result<(), String> {
    let mut rows: Vec<(f64, f64)> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() != 5 {
            return Err(format!(
                "{path}:{}: expected 5 columns, got {}",
                ln + 1,
                cols.len()
            ));
        }
        let deadline: f64 = cols[1]
            .parse()
            .map_err(|_| format!("{path}:{}: bad deadline {}", ln + 1, cols[1]))?;
        let area: f64 = cols[2]
            .parse()
            .map_err(|_| format!("{path}:{}: bad area {}", ln + 1, cols[2]))?;
        rows.push((deadline, area));
    }
    if rows.is_empty() {
        return Err(format!("{path}: no frontier rows"));
    }
    for w in rows.windows(2) {
        let (d0, a0) = w[0];
        let (d1, a1) = w[1];
        if d1 <= d0 {
            return Err(format!("{path}: deadlines not ascending ({d0} then {d1})"));
        }
        if a1 > a0 + 1e-6 * (1.0 + a0.abs()) {
            return Err(format!(
                "{path}: dominance violated — area rises from {a0} (deadline {d0}) \
                 to {a1} (deadline {d1})"
            ));
        }
    }
    Ok(())
}

fn lint(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        return usage();
    }
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        match lint_table(path, &text) {
            Ok(()) => println!("{path}: frontier dominant"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_args = match BenchArgs::extract("sweep", &mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let code = match args.first().map(String::as_str) {
        Some("--bench") => bench(args[1..].to_vec()),
        Some("--lint") => lint(&args[1..]),
        Some(_) => session(args),
        None => usage(),
    };
    if let Err(e) = bench_args.finish("sweep") {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    code
}
