//! Regenerates **Table 3** of the paper: the per-gate speed factors
//! `S_A..S_G` of the tree circuit for the three `mu_Tmax = 6.5`
//! experiments of Table 2 (min area, min sigma, max sigma).
//!
//! The paper's qualitative observations to reproduce: symmetric gates get
//! identical factors (groups {A, B, D, E} and {C, F}), speed factors grow
//! toward the output, min-sigma exaggerates that pattern (leaves at the
//! lower bound, output gate at the limit), and max-sigma deliberately
//! unbalances the two branches.
//!
//! Run with `cargo run -p sgs-bench --bin table3 --release`.

use sgs_bench::BenchArgs;
use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{generate, Library};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = BenchArgs::extract("table3", &mut args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let trace = bench.trace();
    if let Some(arg) = args.first() {
        eprintln!("unknown argument: {arg}");
        eprintln!(
            "usage: table3 [--trace=FILE] [--metrics=FILE] [--metrics-prom=FILE] [--threads=N]"
        );
        std::process::exit(2);
    }
    let circuit = generate::tree7();
    let lib = Library::paper_default();
    let pin = 6.5;

    println!("\n## Table 3: speed factors for the tree circuit at mu_Tmax = {pin}\n");
    println!(
        "{:<16} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "objective", "S_A", "S_B", "S_C", "S_D", "S_E", "S_F", "S_G"
    );
    println!("{}", "-".repeat(66));

    let paper: [(&str, [f64; 7]); 3] = [
        ("min sum S", [1.22, 1.22, 1.45, 1.22, 1.22, 1.45, 1.74]),
        ("min sigma", [1.00, 1.00, 2.01, 1.00, 1.00, 2.01, 3.00]),
        ("max sigma", [3.00, 1.00, 1.00, 3.00, 3.00, 3.00, 1.51]),
    ];
    let objs = [Objective::Area, Objective::Sigma, Objective::NegSigma];

    for ((label, paper_s), obj) in paper.into_iter().zip(objs) {
        let mut sizer = Sizer::new(&circuit, &lib)
            .objective(obj)
            .delay_spec(DelaySpec::ExactMean(pin));
        if let Some(sink) = trace.sink() {
            sizer = sizer.trace(sink);
        }
        let r = sizer.solve().expect("tree-circuit sizing converges");
        trace.report_with_evals(
            &format!("tree7/{label}"),
            "ok",
            r.objective,
            r.delay.mean(),
            r.delay.sigma(),
            r.area,
            r.evals.into(),
        );
        print!("{label:<16}");
        for si in &r.s {
            print!(" {si:>6.2}");
        }
        println!();
        print!("{:<16}", "  (paper)");
        for si in &paper_s {
            print!(" {si:>6.2}");
        }
        println!();
    }
    println!(
        "\nGate order A..G as in the paper's Fig. 3: {{A,B}} -> C, {{D,E}} -> F, {{C,F}} -> G."
    );
    if let Err(e) = bench.finish("tree7") {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
