//! Monte Carlo validation of the analytical statistical machinery —
//! the claims behind the paper's Section 3 and its yield statements
//! (mu covers 50% of circuits, mu + sigma 84.1%, mu + 3 sigma 99.8%).
//!
//! 1. The Clark max moments (paper Eq. 10/12/13) vs sampled moments on a
//!    grid of operand configurations.
//! 2. Whole-circuit SSTA vs Monte Carlo timing on the tree, an adder and
//!    the synthetic benchmarks.
//! 3. Measured yield at `mu + k sigma` for sized circuits vs the normal
//!    theory values.
//!
//! Run with `cargo run -p sgs-bench --bin validate_mc --release`.

use std::time::Instant;

use sgs_bench::BenchArgs;
use sgs_core::{Objective, Sizer};
use sgs_netlist::{generate, Library};
use sgs_ssta::{monte_carlo, monte_carlo_traced, ssta, McOptions};
use sgs_statmath::{clark, mc, Normal};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = BenchArgs::extract("validate_mc", &mut args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let trace = bench.trace();
    if let Some(arg) = args.first() {
        eprintln!("unknown argument: {arg}");
        eprintln!(
            "usage: validate_mc [--threads=N] [--trace=FILE] [--metrics=FILE] [--metrics-prom=FILE]"
        );
        std::process::exit(2);
    }
    println!("monte carlo threads: {}", rayon::current_num_threads());
    println!("\n## Clark max vs Monte Carlo (400k samples per case)\n");
    println!(
        "{:>8} {:>8} {:>8} {:>8} | {:>9} {:>9} | {:>9} {:>9}",
        "mu_a", "sig_a", "mu_b", "sig_b", "mu C", "mu MC", "sig C", "sig MC"
    );
    let cases = [
        (0.0, 1.0, 0.0, 1.0),
        (1.0, 1.0, 0.0, 2.0),
        (5.0, 0.5, 4.8, 0.6),
        (10.0, 2.0, 2.0, 0.5),
        (3.0, 0.1, 3.05, 0.12),
    ];
    for (i, &(ma, sa, mb, sb)) in cases.iter().enumerate() {
        let a = Normal::new(ma, sa);
        let b = Normal::new(mb, sb);
        let exact = clark::max(a, b);
        let est = mc::max_moments(a, b, 400_000, 7000 + i as u64);
        println!(
            "{:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4}",
            ma,
            sa,
            mb,
            sb,
            exact.mean(),
            est.mean(),
            exact.sigma(),
            est.sigma()
        );
    }

    let lib = Library::paper_default();
    println!("\n## Circuit-level SSTA vs Monte Carlo (40k trials)\n");
    println!(
        "{:<12} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>7} | {:>11}",
        "circuit", "cells", "mu SSTA", "mu MC", "sig SSTA", "sig MC", "err mu", "MC wall"
    );
    let mut circuits = vec![generate::tree7(), generate::ripple_carry_adder(8)];
    circuits.extend(generate::benchmark_suite());
    for c in &circuits {
        let s = vec![1.0; c.num_gates()];
        let a = ssta(c, &lib, &s);
        let t0 = Instant::now();
        let m = monte_carlo(
            c,
            &lib,
            &s,
            &McOptions {
                samples: 40_000,
                seed: 11,
                criticality: false,
                ..Default::default()
            },
        );
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<12} {:>6} | {:>9.3} {:>9.3} | {:>9.3} {:>9.3} | {:>6.2}% | {:>8.1} ms",
            c.name(),
            c.num_gates(),
            a.delay.mean(),
            m.delay.mean(),
            a.delay.sigma(),
            m.delay.sigma(),
            100.0 * (a.delay.mean() - m.delay.mean()) / m.delay.mean(),
            wall_ms
        );
    }

    println!("\n## Yield at mu + k sigma for a min(mu + 3 sigma)-sized tree\n");
    let c = generate::tree7();
    let mut sizer = Sizer::new(&c, &lib).objective(Objective::MeanPlusKSigma(3.0));
    if let Some(sink) = trace.sink() {
        sizer = sizer.trace(sink);
    }
    let r = sizer.solve().expect("tree sizing converges");
    let t0 = Instant::now();
    let m = monte_carlo_traced(
        &c,
        &lib,
        &r.s,
        &McOptions {
            samples: 200_000,
            seed: 12,
            criticality: false,
            ..Default::default()
        },
        trace.tracer(),
    );
    println!(
        "(200k trials in {:.1} ms)",
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "k", "deadline", "yield MC", "theory"
    );
    for (k, theory) in [(0.0, 0.5), (1.0, 0.841), (2.0, 0.977), (3.0, 0.998)] {
        let t = r.delay.mean_plus_k_sigma(k);
        println!(
            "{:>4.0} {:>12.4} {:>12.4} {:>12.3}",
            k,
            t,
            m.yield_at(t),
            theory
        );
    }
    trace.report_with_evals(
        "tree7",
        "ok",
        r.objective,
        r.delay.mean(),
        r.delay.sigma(),
        r.area,
        r.evals.into(),
    );
    if let Err(e) = bench.finish("tree7+suite") {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
