//! Validates a `--trace=FILE` JSONL trace emitted by the bench binaries.
//!
//! ```text
//! trace_lint <trace.jsonl> [--no-convergence]
//! ```
//!
//! Checks that every line is a well-formed single-object JSON record with
//! a known `"event"` tag, that at least one solver convergence record
//! (`outer_iteration`) is present (unless `--no-convergence` is given,
//! for traces of binaries that never invoke the NLP solver), and that the
//! trace ends with a final status record (`solve_done` or `run_report`).
//! Exits nonzero on any violation — the CI gate for trace integrity.

use sgs_trace::json::validate_jsonl;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_convergence = !args.iter().any(|a| a == "--no-convergence");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_lint <trace.jsonl> [--no-convergence]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_lint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match validate_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_lint: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (kind, n) in &summary.kinds {
        println!("{kind:<18} {n}");
    }
    let mut ok = true;
    if require_convergence && summary.count("outer_iteration") == 0 {
        eprintln!("trace_lint: {path}: no solver convergence records (outer_iteration)");
        ok = false;
    }
    if !summary.has_final_status() {
        eprintln!("trace_lint: {path}: no final status record (solve_done / run_report)");
        ok = false;
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!("{path}: OK ({} lines)", summary.lines);
    ExitCode::SUCCESS
}
