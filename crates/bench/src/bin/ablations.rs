//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Max fold order** — the paper folds multi-operand maxima
//!    left-to-right and names the explicit multi-operand max as future
//!    work; compare left fold, balanced fold and Monte Carlo truth.
//! 2. **Smoothing floor eps** — the degenerate-operand regularisation must
//!    not affect results across many orders of magnitude.
//! 3. **Sigma factor** — how the value of statistical sizing scales with
//!    the per-gate uncertainty level (0.25 in all the paper's runs).
//! 4. **Solver architecture** — full-space NLP vs reduced-space adjoint vs
//!    TILOS-style greedy on the same instance: objective quality and cost.
//! 5. **Independence vs canonical correlation handling** (the paper's
//!    future work) against Monte Carlo on a reconvergent DAG.
//!
//! Run with `cargo run -p sgs-bench --bin ablations --release`.

use sgs_bench::{BenchArgs, TraceArg};
use sgs_core::greedy::{greedy_size, GreedyOptions};
use sgs_core::{Objective, Sizer, SolverChoice};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::Library;
use sgs_ssta::canonical::ssta_canonical;
use sgs_ssta::{monte_carlo, ssta, McOptions};
use sgs_statmath::{clark, mc, Normal};
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = BenchArgs::extract("ablations", &mut args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let trace = bench.trace();
    if let Some(arg) = args.first() {
        eprintln!("unknown argument: {arg}");
        eprintln!(
            "usage: ablations [--threads=N] [--trace=FILE] [--metrics=FILE] [--metrics-prom=FILE]"
        );
        std::process::exit(2);
    }
    println!("monte carlo threads: {}", rayon::current_num_threads());
    fold_order();
    eps_sensitivity();
    sigma_factor_sweep();
    solver_comparison(trace);
    correlation_handling();
    trace.report("ablations", "ok", f64::NAN, f64::NAN, f64::NAN, f64::NAN);
    if let Err(e) = bench.finish("ablations") {
        eprintln!("{e}");
        std::process::exit(1);
    }
}

fn fold_order() {
    println!("\n## Ablation 1: multi-operand max fold order\n");
    println!(
        "{:>3} {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "k", "mu left", "mu balanced", "mu MC", "sig left", "sig balanced", "sig MC"
    );
    for k in [3usize, 5, 8, 12] {
        let ops: Vec<Normal> = (0..k)
            .map(|i| Normal::new(10.0 + 0.3 * (i % 4) as f64, 1.0 + 0.1 * i as f64))
            .collect();
        let left = clark::max_n(ops.clone()).unwrap();
        let balanced = balanced_fold(&ops);
        // Monte Carlo truth.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(k as u64);
        let (m, v) = mc::moments((0..300_000).map(|_| {
            ops.iter()
                .map(|o| mc::sample(*o, &mut rng))
                .fold(f64::NEG_INFINITY, f64::max)
        }));
        println!(
            "{:>3} {:>12.4} {:>12.4} {:>12.4} | {:>12.4} {:>12.4} {:>12.4}",
            k,
            left.mean(),
            balanced.mean(),
            m,
            left.sigma(),
            balanced.sigma(),
            v.sqrt()
        );
    }
    println!(
        "(both orders are within MC noise of each other; the paper's left fold loses nothing)"
    );
}

fn balanced_fold(ops: &[Normal]) -> Normal {
    if ops.len() == 1 {
        return ops[0];
    }
    let mid = ops.len() / 2;
    clark::max(balanced_fold(&ops[..mid]), balanced_fold(&ops[mid..]))
}

fn eps_sensitivity() {
    println!("\n## Ablation 2: smoothing floor eps\n");
    let circuit = generate::tree7();
    let lib = Library::paper_default();
    println!("{:>8} {:>12} {:>12}", "eps", "mu_Tmax", "sigma_Tmax");
    for eps in [1e-6, 1e-9, 1e-12] {
        // SSTA with explicit eps through the clark kernel.
        let s = vec![1.0; 7];
        let model = sgs_ssta::DelayModel::new(&circuit, &lib);
        let mut arr: Vec<Normal> = Vec::new();
        for (id, gate) in circuit.gates() {
            let u = gate
                .inputs
                .iter()
                .map(|&sig| match sig {
                    sgs_netlist::Signal::Pi(_) => Normal::certain(0.0),
                    sgs_netlist::Signal::Gate(g) => arr[g.index()],
                })
                .reduce(|a, b| clark::max_eps(a, b, eps))
                .unwrap();
            arr.push(u + model.gate_delay(id, &s));
        }
        let d = arr[circuit.outputs()[0].index()];
        println!("{eps:>8.0e} {:>12.8} {:>12.8}", d.mean(), d.sigma());
    }
    println!(
        "(results identical to ~9 digits: the floor only matters at exactly-degenerate operands)"
    );
}

fn sigma_factor_sweep() {
    println!("\n## Ablation 3: per-gate uncertainty level (paper uses 0.25)\n");
    let circuit = generate::tree7();
    println!(
        "{:>6} | {:>10} {:>10} | {:>14} {:>14} | {:>9}",
        "kappa", "mu(min mu)", "sig(min mu)", "m3s(min mu)", "m3s(min m3s)", "gain %"
    );
    for kappa in [0.1, 0.25, 0.4] {
        let lib = Library::paper_default().with_sigma_factor(kappa);
        let a = Sizer::new(&circuit, &lib)
            .objective(Objective::MeanDelay)
            .solve()
            .expect("sizes");
        let b = Sizer::new(&circuit, &lib)
            .objective(Objective::MeanPlusKSigma(3.0))
            .solve()
            .expect("sizes");
        let gain = 100.0 * (a.mean_plus_k_sigma(3.0) - b.mean_plus_k_sigma(3.0))
            / a.mean_plus_k_sigma(3.0);
        println!(
            "{kappa:>6.2} | {:>10.3} {:>10.3} | {:>14.3} {:>14.3} | {:>9.3}",
            a.delay.mean(),
            a.delay.sigma(),
            a.mean_plus_k_sigma(3.0),
            b.mean_plus_k_sigma(3.0),
            gain
        );
    }
    println!("(the robust objective's edge over plain min-mu grows with the uncertainty level)");
}

fn solver_comparison(trace: &TraceArg) {
    println!("\n## Ablation 4: solver architecture on apex2 (min mu + 3 sigma)\n");
    let circuit = generate::benchmark_suite().remove(1);
    let lib = Library::paper_default();
    println!(
        "{:<22} {:>14} {:>10} {:>12}",
        "solver", "objective", "area", "seconds"
    );
    let t = Instant::now();
    let mut sizer = Sizer::new(&circuit, &lib).objective(Objective::MeanPlusKSigma(3.0));
    if let Some(sink) = trace.sink() {
        sizer = sizer.trace(sink);
    }
    let full = sizer.solve().expect("sizes");
    println!(
        "{:<22} {:>14.4} {:>10.1} {:>12.2}",
        "full-space NLP",
        full.mean_plus_k_sigma(3.0),
        full.area,
        t.elapsed().as_secs_f64()
    );
    let t = Instant::now();
    let red = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanPlusKSigma(3.0))
        .solver(SolverChoice::ReducedSpace)
        .solve()
        .expect("sizes");
    println!(
        "{:<22} {:>14.4} {:>10.1} {:>12.2}",
        "reduced-space adjoint",
        red.mean_plus_k_sigma(3.0),
        red.area,
        t.elapsed().as_secs_f64()
    );
    let t = Instant::now();
    let greedy = greedy_size(
        &circuit,
        &lib,
        &Objective::MeanPlusKSigma(3.0),
        &GreedyOptions::default(),
    );
    println!(
        "{:<22} {:>14.4} {:>10.1} {:>12.2}  ({} metric evals)",
        "greedy (TILOS-style)",
        greedy.metric,
        greedy.s.iter().sum::<f64>(),
        t.elapsed().as_secs_f64(),
        greedy.evaluations
    );
}

fn correlation_handling() {
    println!("\n## Ablation 5: independence vs canonical correlation (paper's future work)\n");
    let lib = Library::paper_default();
    println!(
        "{:<10} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>11}",
        "circuit", "mu ind", "mu canon", "mu MC", "sig ind", "sig canon", "sig MC", "MC wall"
    );
    for (name, cells, depth, seed) in [
        ("sparse", 120usize, 10usize, 5u64),
        ("dense", 300, 12, 7),
        ("wide", 400, 8, 9),
    ] {
        let c = generate::random_dag(&RandomDagSpec {
            name: name.into(),
            cells,
            inputs: 10,
            depth,
            seed,
            ..Default::default()
        });
        let s = vec![1.5; c.num_gates()];
        let ind = ssta(&c, &lib, &s).delay;
        let can = ssta_canonical(&c, &lib, &s).delay_normal();
        let t0 = Instant::now();
        let mc = monte_carlo(
            &c,
            &lib,
            &s,
            &McOptions {
                samples: 50_000,
                seed: 3,
                criticality: false,
                ..Default::default()
            },
        )
        .delay;
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<10} | {:>9.3} {:>9.3} {:>9.3} | {:>9.3} {:>9.3} {:>9.3} | {:>8.1} ms",
            name,
            ind.mean(),
            can.mean(),
            mc.mean(),
            ind.sigma(),
            can.sigma(),
            mc.sigma(),
            wall_ms
        );
    }
    println!("(canonical tracking removes most of the independence bias on reconvergent DAGs)");
}
