//! Shared helpers for the table-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table of the DATE 2000
//! paper (see `DESIGN.md` for the experiment index); this crate holds the
//! row model and formatting they share, plus the `--trace=FILE` support
//! ([`TraceArg`]) every binary accepts.

use sgs_trace::{EvalReport, JsonlSink, RunReport, TraceEvent, TraceSink, Tracer};
use std::time::Instant;

pub mod script;

/// Removes every occurrence of `--NAME=VALUE` / `--NAME VALUE` from
/// `args` (the last occurrence wins) and returns the value, or an error
/// when the flag is present without an operand.
fn take_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let eq = format!("{name}=");
    let mut val = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&eq) {
            val = Some(v.to_string());
            args.remove(i);
        } else if args[i] == name {
            if i + 1 >= args.len() {
                return Err(format!("{name} needs an operand"));
            }
            val = Some(args[i + 1].clone());
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
    Ok(val)
}

/// The flags every bench binary accepts, shared so they parse (and error)
/// identically everywhere:
///
/// * `--trace=FILE` — JSONL event trace ([`TraceArg`]).
/// * `--metrics=FILE` — enables the [`sgs_metrics`] registry and writes a
///   versioned snapshot on [`BenchArgs::finish`].
/// * `--metrics-prom=FILE` — same registry, Prometheus text exposition.
/// * `--threads=N` — sizes the global rayon pool before any work runs.
///
/// All four are stripped from the argument list; binaries then treat any
/// remaining unknown flag as a usage error instead of silently ignoring
/// it. Without `--metrics`/`--metrics-prom` the registry stays disabled
/// and the instrumented code paths cost a relaxed atomic load each.
pub struct BenchArgs {
    trace: TraceArg,
    metrics_path: Option<String>,
    prom_path: Option<String>,
    start: Instant,
    bin: &'static str,
}

impl BenchArgs {
    /// Strips the shared flags from `args`, builds the rayon pool and
    /// enables the metrics registry as requested.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a flag without an operand, an
    /// unparsable `--threads` value, or an unwritable trace file.
    pub fn extract(bin: &'static str, args: &mut Vec<String>) -> Result<Self, String> {
        let trace = TraceArg::extract(bin, args)?;
        let metrics_path = take_flag(args, "--metrics")?;
        let prom_path = take_flag(args, "--metrics-prom")?;
        if let Some(n) = take_flag(args, "--threads")? {
            let n: usize = n
                .parse()
                .map_err(|_| format!("--threads needs a positive integer, got {n}"))?;
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .ok();
        }
        if metrics_path.is_some() || prom_path.is_some() {
            sgs_metrics::reset();
            sgs_metrics::enable();
        }
        Ok(BenchArgs {
            trace,
            metrics_path,
            prom_path,
            start: Instant::now(),
            bin,
        })
    }

    /// The composed `--trace` support (sink, tracer, run report).
    pub fn trace(&self) -> &TraceArg {
        &self.trace
    }

    /// Whether a metrics snapshot or Prometheus dump was requested.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_path.is_some() || self.prom_path.is_some()
    }

    /// Sets the run-wall-clock gauge, snapshots the registry and writes
    /// the requested output files. A no-op without
    /// `--metrics`/`--metrics-prom`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when an output file cannot be
    /// written.
    pub fn finish(&self, circuit: &str) -> Result<(), String> {
        if !self.metrics_enabled() {
            return Ok(());
        }
        sgs_metrics::set_gauge(
            sgs_metrics::Gauge::RunSeconds,
            self.start.elapsed().as_secs_f64(),
        );
        let snap = sgs_metrics::snapshot(sgs_metrics::Metadata {
            bin: self.bin.to_string(),
            circuit: circuit.to_string(),
            git_sha: git_sha(),
            threads: rayon::current_num_threads(),
            timestamp: run_timestamp(),
        });
        if let Some(p) = &self.metrics_path {
            std::fs::write(p, snap.to_json())
                .map_err(|e| format!("cannot write metrics snapshot {p}: {e}"))?;
        }
        if let Some(p) = &self.prom_path {
            std::fs::write(p, sgs_metrics::prom::to_prometheus(&snap))
                .map_err(|e| format!("cannot write Prometheus dump {p}: {e}"))?;
        }
        Ok(())
    }
}

/// The commit under test: `GITHUB_SHA` (CI), then `GIT_SHA` (local
/// override), then `"unknown"`. Passed into the snapshot metadata so the
/// library layer never shells out to git.
pub fn git_sha() -> String {
    std::env::var("GITHUB_SHA")
        .or_else(|_| std::env::var("GIT_SHA"))
        .unwrap_or_else(|_| "unknown".to_string())
}

/// The shared metadata block every `BENCH_*.json` artifact embeds, so all
/// benchmark outputs carry the same provenance fields as metrics
/// snapshots: `"schema_version": 1,` followed by a `"metadata"` object
/// with bin, circuit set, git sha, thread count and timestamp. Returned
/// pre-indented two spaces with a trailing comma, ready to open a
/// top-level JSON object with.
pub fn bench_metadata_json(bin: &str, circuit: &str) -> String {
    format!(
        "  \"schema_version\": {},\n  \"metadata\": {{\"bin\": \"{bin}\", \"circuit\": \"{circuit}\", \
         \"git_sha\": \"{}\", \"threads\": {}, \"timestamp\": \"{}\"}},\n",
        sgs_metrics::SCHEMA_VERSION,
        git_sha(),
        rayon::current_num_threads(),
        run_timestamp(),
    )
}

/// Seconds since the Unix epoch as a decimal string, honouring
/// `SOURCE_DATE_EPOCH` for reproducible runs. Metadata only — cross-run
/// comparison ignores it.
pub fn run_timestamp() -> String {
    if let Ok(t) = std::env::var("SOURCE_DATE_EPOCH") {
        return t;
    }
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs().to_string())
        .unwrap_or_else(|_| "0".to_string())
}

/// `--trace=FILE` support shared by the bench binaries: strips the flag
/// from the argument list, opens a [`JsonlSink`], and emits the final
/// [`RunReport`] record. Without the flag everything is a disabled-tracer
/// no-op, so instrumented binaries cost nothing extra by default.
pub struct TraceArg {
    bin: &'static str,
    sink: Option<JsonlSink>,
    start: Instant,
    clamps_start: u64,
}

impl TraceArg {
    /// Removes `--trace=FILE` / `--trace FILE` from `args` (all
    /// occurrences; the last wins) and opens the sink.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the flag has no file operand
    /// or the file cannot be created.
    pub fn extract(bin: &'static str, args: &mut Vec<String>) -> Result<Self, String> {
        let mut path: Option<String> = None;
        let mut i = 0;
        while i < args.len() {
            if let Some(p) = args[i].strip_prefix("--trace=") {
                path = Some(p.to_string());
                args.remove(i);
            } else if args[i] == "--trace" {
                if i + 1 >= args.len() {
                    return Err("--trace needs a file operand".to_string());
                }
                path = Some(args[i + 1].clone());
                args.drain(i..=i + 1);
            } else {
                i += 1;
            }
        }
        let sink = match path {
            Some(p) => Some(
                JsonlSink::create(&p).map_err(|e| format!("cannot create trace file {p}: {e}"))?,
            ),
            None => None,
        };
        Ok(TraceArg {
            bin,
            sink,
            start: Instant::now(),
            clamps_start: sgs_statmath::clark::var_clamp_count(),
        })
    }

    /// The sink, for drivers that hold one (e.g. `Sizer::trace`).
    pub fn sink(&self) -> Option<&dyn TraceSink> {
        self.sink.as_ref().map(|s| s as &dyn TraceSink)
    }

    /// A tracer handle; disabled when `--trace` was not given.
    pub fn tracer(&self) -> Tracer<'_> {
        match &self.sink {
            Some(s) => Tracer::new(s),
            None => Tracer::none(),
        }
    }

    /// Emits a [`RunReport`] (with zeroed eval counts) and flushes.
    pub fn report(
        &self,
        circuit: &str,
        status: &str,
        objective: f64,
        mu: f64,
        sigma: f64,
        area: f64,
    ) {
        self.report_with_evals(
            circuit,
            status,
            objective,
            mu,
            sigma,
            area,
            EvalReport::default(),
        );
    }

    /// Emits a [`RunReport`] carrying solver eval counts and flushes.
    #[allow(clippy::too_many_arguments)]
    pub fn report_with_evals(
        &self,
        circuit: &str,
        status: &str,
        objective: f64,
        mu: f64,
        sigma: f64,
        area: f64,
        evals: EvalReport,
    ) {
        let t = self.tracer();
        t.emit(|| {
            TraceEvent::Run(RunReport {
                bin: self.bin.to_string(),
                circuit: circuit.to_string(),
                status: status.to_string(),
                objective,
                mu,
                sigma,
                area,
                seconds: self.start.elapsed().as_secs_f64(),
                evals,
                clark_var_clamps: sgs_statmath::clark::var_clamp_count()
                    .saturating_sub(self.clamps_start),
            })
        });
        t.flush();
    }
}

/// One row of a paper-style results table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Objective column ("min sum S", "min mu", ...).
    pub minimize: String,
    /// Constraint column (may be empty).
    pub constraint: String,
    /// `mu_Tmax` at the solution.
    pub mu: f64,
    /// `sigma_Tmax` at the solution.
    pub sigma: f64,
    /// Area `sum S_i` at the solution.
    pub sum_s: f64,
    /// Solver wall-clock seconds (`None` for closed-form rows).
    pub cpu: Option<f64>,
    /// The paper's reported `(mu, sigma, sum S)` for this row, if any.
    pub paper: Option<(f64, f64, f64)>,
}

/// Prints a table of rows with a paper-comparison block.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n## {title}\n");
    println!(
        "{:<28} {:<32} {:>8} {:>8} {:>8} {:>9} | {:>8} {:>8} {:>8}",
        "minimize", "constraint", "mu", "sigma", "sum S", "CPU [s]", "mu*", "sigma*", "sum S*"
    );
    println!("{}", "-".repeat(130));
    for r in rows {
        let cpu = r.cpu.map_or(String::from("-"), |s| format!("{s:.2}"));
        let (pm, ps, pa) = r
            .paper
            .map(|(a, b, c)| (format!("{a:.2}"), format!("{b:.3}"), format!("{c:.2}")))
            .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
        println!(
            "{:<28} {:<32} {:>8.2} {:>8.3} {:>8.2} {:>9} | {:>8} {:>8} {:>8}",
            r.minimize, r.constraint, r.mu, r.sigma, r.sum_s, cpu, pm, ps, pa
        );
    }
    println!("\n(*) columns: values reported in the paper (their library/hosts; shapes, not absolutes, are comparable)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_arg_extracts_and_removes_flag() {
        let dir = std::env::temp_dir().join("sgs_trace_arg_test.jsonl");
        let mut args: Vec<String> = vec![
            "circuit.blif".into(),
            format!("--trace={}", dir.display()),
            "--reduced".into(),
        ];
        let t = TraceArg::extract("test_bin", &mut args).unwrap();
        assert_eq!(
            args,
            vec!["circuit.blif".to_string(), "--reduced".to_string()]
        );
        assert!(t.sink().is_some());
        assert!(t.tracer().enabled());
        t.report("c", "ok", 1.0, 2.0, 0.5, 7.0);
        let text = std::fs::read_to_string(&dir).unwrap();
        let summary = sgs_trace::json::validate_jsonl(&text).unwrap();
        assert_eq!(summary.count("run_report"), 1);
        assert!(summary.has_final_status());
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn trace_arg_absent_is_disabled() {
        let mut args: Vec<String> = vec!["x".into()];
        let t = TraceArg::extract("test_bin", &mut args).unwrap();
        assert!(t.sink().is_none());
        assert!(!t.tracer().enabled());
        t.report("c", "ok", 1.0, 2.0, 0.5, 7.0); // must be a no-op
    }

    #[test]
    fn trace_arg_missing_operand_errors() {
        let mut args: Vec<String> = vec!["--trace".into()];
        assert!(TraceArg::extract("test_bin", &mut args).is_err());
    }

    #[test]
    fn print_does_not_panic() {
        print_table(
            "t",
            &[Row {
                minimize: "min mu".into(),
                constraint: String::new(),
                mu: 1.0,
                sigma: 0.1,
                sum_s: 7.0,
                cpu: Some(0.5),
                paper: Some((1.1, 0.12, 7.0)),
            }],
        );
    }
}
