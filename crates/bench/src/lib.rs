//! Shared helpers for the table-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table of the DATE 2000
//! paper (see `DESIGN.md` for the experiment index); this crate holds the
//! row model and formatting they share.

/// One row of a paper-style results table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Objective column ("min sum S", "min mu", ...).
    pub minimize: String,
    /// Constraint column (may be empty).
    pub constraint: String,
    /// `mu_Tmax` at the solution.
    pub mu: f64,
    /// `sigma_Tmax` at the solution.
    pub sigma: f64,
    /// Area `sum S_i` at the solution.
    pub sum_s: f64,
    /// Solver wall-clock seconds (`None` for closed-form rows).
    pub cpu: Option<f64>,
    /// The paper's reported `(mu, sigma, sum S)` for this row, if any.
    pub paper: Option<(f64, f64, f64)>,
}

/// Prints a table of rows with a paper-comparison block.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n## {title}\n");
    println!(
        "{:<28} {:<32} {:>8} {:>8} {:>8} {:>9} | {:>8} {:>8} {:>8}",
        "minimize", "constraint", "mu", "sigma", "sum S", "CPU [s]", "mu*", "sigma*", "sum S*"
    );
    println!("{}", "-".repeat(130));
    for r in rows {
        let cpu = r.cpu.map_or(String::from("-"), |s| format!("{s:.2}"));
        let (pm, ps, pa) = r
            .paper
            .map(|(a, b, c)| (format!("{a:.2}"), format!("{b:.3}"), format!("{c:.2}")))
            .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
        println!(
            "{:<28} {:<32} {:>8.2} {:>8.3} {:>8.2} {:>9} | {:>8} {:>8} {:>8}",
            r.minimize, r.constraint, r.mu, r.sigma, r.sum_s, cpu, pm, ps, pa
        );
    }
    println!("\n(*) columns: values reported in the paper (their library/hosts; shapes, not absolutes, are comparable)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_does_not_panic() {
        print_table(
            "t",
            &[Row {
                minimize: "min mu".into(),
                constraint: String::new(),
                mu: 1.0,
                sigma: 0.1,
                sum_s: 7.0,
                cpu: Some(0.5),
                paper: Some((1.1, 0.12, 7.0)),
            }],
        );
    }
}
