//! Scripted what-if sessions: parsing and deterministic generation.
//!
//! A *script* is a sequence of perturbation steps; each step is a batch
//! of `(gate, speed-factor)` changes applied together. The `what_if`
//! binary replays scripts against the incremental SSTA engine, and the
//! `serve_load` generator replays them against a running `sgs_serve`
//! daemon — both share this module so a script file means exactly the
//! same thing in either harness.
//!
//! The JSON form is an array of steps, each one change object
//! `{"gate": <id>, "size": <speed factor>}` or an array of them.

use sgs_netlist::{Circuit, GateId, Library};
use sgs_trace::json::{parse_json, Json};

/// splitmix64 step — the repository's stock deterministic generator.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)`.
pub fn unit(state: &mut u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let v = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    v
}

/// `n` deterministic single-gate perturbation steps: uniformly chosen
/// gates moved to uniform speed factors inside the library's size box.
#[must_use]
pub fn generated_steps(
    circuit: &Circuit,
    lib: &Library,
    n: usize,
    seed: u64,
) -> Vec<Vec<(GateId, f64)>> {
    let gates = circuit.num_gates();
    let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
    (0..n)
        .map(|_| {
            #[allow(clippy::cast_possible_truncation)]
            let g = (splitmix64(&mut state) % gates as u64) as usize;
            let v = 1.0 + unit(&mut state) * (lib.s_limit - 1.0);
            vec![(GateId(g), v)]
        })
        .collect()
}

/// Parses a perturbation script: a JSON array of steps, each one change
/// object or an array of change objects.
///
/// # Errors
///
/// A description of the first structural problem: non-array root, missing
/// or non-numeric fields, out-of-range gate ids, sizes below 1 or
/// non-finite.
pub fn parse_script(text: &str, num_gates: usize) -> Result<Vec<Vec<(GateId, f64)>>, String> {
    let change = |v: &Json| -> Result<(GateId, f64), String> {
        let gate = v
            .get("gate")
            .and_then(Json::as_f64)
            .ok_or_else(|| "change needs a numeric \"gate\"".to_string())?;
        let size = v
            .get("size")
            .and_then(Json::as_f64)
            .ok_or_else(|| "change needs a numeric \"size\"".to_string())?;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let gate = gate as usize;
        if gate >= num_gates {
            return Err(format!(
                "gate {gate} out of range (circuit has {num_gates})"
            ));
        }
        if !size.is_finite() || size < 1.0 {
            return Err(format!("size {size} must be finite and >= 1"));
        }
        Ok((GateId(gate), size))
    };
    let Json::Arr(steps) = parse_json(text)? else {
        return Err("script must be a JSON array of steps".to_string());
    };
    steps
        .iter()
        .map(|step| match step {
            Json::Arr(changes) => changes.iter().map(change).collect(),
            obj => Ok(vec![change(obj)?]),
        })
        .collect()
}

/// Renders a step list back to the JSON script form [`parse_script`]
/// accepts (each step an array of change objects). The round-trip is
/// exact: sizes print in shortest-round-trip form.
#[must_use]
pub fn render_script(steps: &[Vec<(GateId, f64)>]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("[");
    for (i, step) in steps.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        for (j, (g, v)) in step.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"gate\":{},\"size\":{v}}}", g.index());
        }
        s.push(']');
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::generate;

    #[test]
    fn generated_steps_are_deterministic_and_in_box() {
        let c = generate::tree7();
        let lib = Library::paper_default();
        let a = generated_steps(&c, &lib, 50, 7);
        let b = generated_steps(&c, &lib, 50, 7);
        assert_eq!(a, b, "same seed, same steps");
        assert_ne!(a, generated_steps(&c, &lib, 50, 8), "seed matters");
        for step in &a {
            assert_eq!(step.len(), 1);
            let (g, v) = step[0];
            assert!(g.index() < c.num_gates());
            assert!((1.0..=lib.s_limit).contains(&v), "{v}");
        }
    }

    #[test]
    fn parses_single_and_batched_steps() {
        let steps = parse_script(
            r#"[{"gate":0,"size":2.0},[{"gate":1,"size":1.5},{"gate":2,"size":3.0}]]"#,
            7,
        )
        .unwrap();
        assert_eq!(
            steps,
            vec![
                vec![(GateId(0), 2.0)],
                vec![(GateId(1), 1.5), (GateId(2), 3.0)],
            ]
        );
    }

    #[test]
    fn rejects_malformed_scripts() {
        for (text, needle) in [
            (r#"{"gate":0,"size":2}"#, "array"),
            (r#"[{"size":2}]"#, "gate"),
            (r#"[{"gate":0}]"#, "size"),
            (r#"[{"gate":99,"size":2}]"#, "out of range"),
            (r#"[{"gate":0,"size":0.5}]"#, ">= 1"),
            (r#"[{"gate":0,"size":"NaN"}]"#, "finite"),
            ("not json", "byte"),
        ] {
            let err = parse_script(text, 7).unwrap_err();
            assert!(err.contains(needle), "script {text} gave {err:?}");
        }
    }

    #[test]
    fn render_round_trips_exactly() {
        let c = generate::tree7();
        let lib = Library::paper_default();
        let steps = generated_steps(&c, &lib, 20, 3);
        let text = render_script(&steps);
        let back = parse_script(&text, c.num_gates()).unwrap();
        assert_eq!(steps, back, "render/parse must be lossless");
    }
}
