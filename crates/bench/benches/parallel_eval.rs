//! Parallel-engine micro-benchmarks: the multi-threaded Monte Carlo and
//! levelized SSTA paths against their sequential counterparts, and the
//! grouped (Clark-pair-sharing) NLP derivative assembly that dominates
//! solver cost. Results are bit-identical between the compared paths by
//! construction, so any delta is pure wall-clock.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sgs_core::{DelaySpec, Objective, SizingProblem};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::Library;
use sgs_nlp::NlpProblem;
use sgs_ssta::{monte_carlo, ssta, ssta_levelized, McOptions};

fn speeds(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + 0.05 * (i % 37) as f64).collect()
}

fn bench_mc_and_ssta(c: &mut Criterion) {
    let lib = Library::paper_default();
    let circuit = generate::ripple_carry_adder(64);
    let s = speeds(circuit.num_gates());
    let mut g = c.benchmark_group("parallel_eval");
    g.sample_size(10);
    for (name, parallel) in [("mc_sequential", false), ("mc_parallel", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                monte_carlo(
                    black_box(&circuit),
                    &lib,
                    &s,
                    &McOptions {
                        samples: 4000,
                        seed: 1,
                        criticality: false,
                        parallel,
                    },
                )
            })
        });
    }
    g.bench_function("ssta_sequential", |b| {
        b.iter(|| ssta(black_box(&circuit), &lib, &s))
    });
    g.bench_function("ssta_levelized", |b| {
        b.iter(|| ssta_levelized(black_box(&circuit), &lib, &s))
    });
    g.finish();
}

fn bench_nlp_assembly(c: &mut Criterion) {
    let lib = Library::paper_default();
    let circuit = generate::random_dag(&RandomDagSpec {
        name: "nlp-bench".into(),
        cells: 150,
        inputs: 16,
        depth: 10,
        seed: 7,
        ..Default::default()
    });
    let p = SizingProblem::build(
        &circuit,
        &lib,
        Objective::MeanPlusKSigma(3.0),
        DelaySpec::None,
    );
    let x = p.initial_point(&speeds(circuit.num_gates()));
    let lambda = vec![0.5; p.num_constraints()];
    let mut con = vec![0.0; p.num_constraints()];
    let mut jac = vec![0.0; p.jacobian_structure().len()];
    let mut hes = vec![0.0; p.hessian_structure().len()];
    let mut g = c.benchmark_group("nlp_assembly");
    g.bench_function("constraints", |b| {
        b.iter(|| p.constraints(black_box(&x), &mut con))
    });
    g.bench_function("jacobian_values", |b| {
        b.iter(|| p.jacobian_values(black_box(&x), &mut jac))
    });
    g.bench_function("hessian_values", |b| {
        b.iter(|| p.hessian_values(black_box(&x), 1.0, &lambda, &mut hes))
    });
    g.finish();
}

criterion_group!(benches, bench_mc_and_ssta, bench_nlp_assembly);
criterion_main!(benches);
