//! Statistical STA throughput across circuit sizes, against the
//! deterministic STA and Monte Carlo alternatives.
//!
//! The paper's argument for the analytical method is precisely this
//! comparison: repeated delay evaluation inside an optimiser needs the
//! analytical propagation (linear-time, like deterministic STA), not
//! Monte Carlo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::Library;
use sgs_ssta::{monte_carlo, ssta, sta_deterministic, McOptions};

fn bench_ssta(c: &mut Criterion) {
    let lib = Library::paper_default();
    let mut g = c.benchmark_group("ssta");
    g.sample_size(20);
    for cells in [100usize, 400, 1600] {
        let circuit = generate::random_dag(&RandomDagSpec {
            name: format!("sweep{cells}"),
            cells,
            inputs: 32,
            depth: (cells as f64).sqrt() as usize,
            seed: 9,
            ..Default::default()
        });
        let s = vec![1.5; cells];
        g.bench_with_input(BenchmarkId::new("analytical", cells), &cells, |b, _| {
            b.iter(|| ssta(&circuit, &lib, &s))
        });
        g.bench_with_input(BenchmarkId::new("deterministic", cells), &cells, |b, _| {
            b.iter(|| sta_deterministic(&circuit, &lib, &s, 3.0))
        });
        g.bench_with_input(BenchmarkId::new("monte_carlo_1k", cells), &cells, |b, _| {
            b.iter(|| {
                monte_carlo(
                    &circuit,
                    &lib,
                    &s,
                    &McOptions {
                        samples: 1000,
                        seed: 1,
                        criticality: false,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ssta);
criterion_main!(benches);
