//! Micro-benchmarks for the statistical-max kernel — the operation the
//! whole method leans on (every SSTA arrival and every NLP constraint
//! evaluation calls it). Compares plain moments, moments + gradient,
//! moments + Hessian, and the hyper-dual reference path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sgs_statmath::clark::{self, DEFAULT_EPS};
use sgs_statmath::{mc, Normal};

fn bench_clark(c: &mut Criterion) {
    let mut g = c.benchmark_group("clark_max");
    let args = (5.0f64, 2.0f64, 4.5f64, 1.5f64);

    g.bench_function("moments", |b| {
        b.iter(|| {
            clark::max(
                Normal::from_mean_var(black_box(args.0), black_box(args.1)),
                Normal::from_mean_var(black_box(args.2), black_box(args.3)),
            )
        })
    });
    g.bench_function("gradient", |b| {
        b.iter(|| {
            clark::max_grad(
                black_box(args.0),
                black_box(args.1),
                black_box(args.2),
                black_box(args.3),
                DEFAULT_EPS,
            )
        })
    });
    g.bench_function("hessian_closed_form", |b| {
        b.iter(|| {
            clark::max_hess(
                black_box(args.0),
                black_box(args.1),
                black_box(args.2),
                black_box(args.3),
                DEFAULT_EPS,
            )
        })
    });
    g.bench_function("hessian_hyper_dual", |b| {
        b.iter(|| {
            clark::max_hess_dual(
                black_box(args.0),
                black_box(args.1),
                black_box(args.2),
                black_box(args.3),
                DEFAULT_EPS,
            )
        })
    });
    // The sampling alternative the paper rejects as too slow for repeated
    // evaluation inside an optimiser (here at a modest 10k samples).
    g.bench_function("monte_carlo_10k", |b| {
        b.iter(|| {
            mc::max_moments(
                Normal::from_mean_var(args.0, args.1),
                Normal::from_mean_var(args.2, args.3),
                10_000,
                42,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_clark);
criterion_main!(benches);
