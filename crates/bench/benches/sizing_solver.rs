//! End-to-end sizing solver benchmarks: full-space (paper's formulation,
//! LANCELOT-family solver) vs reduced-space (adjoint + projected L-BFGS)
//! across circuit sizes — the ablation behind the repository's solver
//! architecture — plus NLP-problem assembly and derivative evaluation
//! costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgs_core::problem::SizingProblem;
use sgs_core::{DelaySpec, Objective, Sizer, SolverChoice};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::Library;
use sgs_nlp::NlpProblem;

fn circuit(cells: usize) -> sgs_netlist::Circuit {
    generate::random_dag(&RandomDagSpec {
        name: format!("solve{cells}"),
        cells,
        inputs: 24,
        depth: (cells / 8).max(4),
        seed: 13,
        back_jump_pct: 85,
        spine_extra_load: 0.3,
    })
}

fn bench_solvers(c: &mut Criterion) {
    let lib = Library::paper_default();
    let mut g = c.benchmark_group("sizing_solve");
    g.sample_size(10);
    for cells in [30usize, 120] {
        let circ = circuit(cells);
        g.bench_with_input(BenchmarkId::new("full_space", cells), &cells, |b, _| {
            b.iter(|| {
                Sizer::new(&circ, &lib)
                    .objective(Objective::MeanPlusKSigma(3.0))
                    .solve()
                    .expect("sizes")
            })
        });
        g.bench_with_input(BenchmarkId::new("reduced_space", cells), &cells, |b, _| {
            b.iter(|| {
                Sizer::new(&circ, &lib)
                    .objective(Objective::MeanPlusKSigma(3.0))
                    .solver(SolverChoice::ReducedSpace)
                    .solve()
                    .expect("sizes")
            })
        });
    }
    g.finish();
}

fn bench_problem_eval(c: &mut Criterion) {
    let lib = Library::paper_default();
    let circ = circuit(400);
    let p = SizingProblem::build(&circ, &lib, Objective::MeanPlusKSigma(3.0), DelaySpec::None);
    let x = p.initial_point(&vec![1.5; 400]);
    let jn = p.jacobian_structure().len();
    let hn = p.hessian_structure().len();
    let m = p.num_constraints();
    let lambda = vec![0.5; m];

    let mut g = c.benchmark_group("nlp_eval_400_cells");
    g.bench_function("build", |b| {
        b.iter(|| {
            SizingProblem::build(&circ, &lib, Objective::MeanPlusKSigma(3.0), DelaySpec::None)
        })
    });
    g.bench_function("constraints", |b| {
        let mut cvals = vec![0.0; m];
        b.iter(|| p.constraints(&x, &mut cvals))
    });
    g.bench_function("jacobian", |b| {
        let mut vals = vec![0.0; jn];
        b.iter(|| p.jacobian_values(&x, &mut vals))
    });
    g.bench_function("hessian", |b| {
        let mut vals = vec![0.0; hn];
        b.iter(|| p.hessian_values(&x, 1.0, &lambda, &mut vals))
    });
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_problem_eval);
criterion_main!(benches);
