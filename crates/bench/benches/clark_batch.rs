//! Micro-benchmarks for the batched Clark-max kernel against a scalar
//! loop over `max_eps`/`max_grad` — the comparison that justifies the
//! batch layer of the SSTA level sweep. The kernel is bit-identical to
//! the scalar path per lane (see `proptest_batch.rs`), so any speedup
//! here is free: it comes from hoisting the erf/exp evaluations into
//! separate passes and amortising the loop bookkeeping, not from
//! reordering arithmetic.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sgs_statmath::clark::{self, ClarkGrad, DEFAULT_EPS};
use sgs_statmath::Normal;

/// Deterministic operand vectors in sizing-realistic ranges (no RNG —
/// the exact values only need to be stable and non-degenerate).
fn operands(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut mu_a = Vec::with_capacity(n);
    let mut var_a = Vec::with_capacity(n);
    let mut mu_b = Vec::with_capacity(n);
    let mut var_b = Vec::with_capacity(n);
    for i in 0..n {
        let x = i as f64;
        mu_a.push(5.0 + (x * 0.7).sin() * 3.0);
        var_a.push(1.0 + (x * 0.3).cos().abs());
        mu_b.push(4.5 + (x * 1.1).cos() * 3.0);
        var_b.push(0.8 + (x * 0.5).sin().abs());
    }
    (mu_a, var_a, mu_b, var_b)
}

fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("clark_batch");
    for &n in &[16usize, 256, 4096] {
        let (mu_a, var_a, mu_b, var_b) = operands(n);
        let mut out_mu = vec![0.0; n];
        let mut out_var = vec![0.0; n];

        g.bench_with_input(BenchmarkId::new("moments_scalar_loop", n), &n, |b, _| {
            b.iter(|| {
                for i in 0..n {
                    let r = clark::max_eps(
                        Normal::from_mean_var(black_box(mu_a[i]), black_box(var_a[i])),
                        Normal::from_mean_var(black_box(mu_b[i]), black_box(var_b[i])),
                        DEFAULT_EPS,
                    );
                    out_mu[i] = r.mean();
                    out_var[i] = r.var();
                }
                black_box(&out_mu);
            })
        });
        g.bench_with_input(BenchmarkId::new("moments_batch", n), &n, |b, _| {
            b.iter(|| {
                clark::max_batch(
                    black_box(&mu_a),
                    black_box(&var_a),
                    black_box(&mu_b),
                    black_box(&var_b),
                    DEFAULT_EPS,
                    &mut out_mu,
                    &mut out_var,
                );
                black_box(&out_mu);
            })
        });

        let mut grads = vec![
            ClarkGrad {
                mu: 0.0,
                var: 0.0,
                dmu: [0.0; 4],
                dvar: [0.0; 4],
            };
            n
        ];
        g.bench_with_input(BenchmarkId::new("grad_scalar_loop", n), &n, |b, _| {
            b.iter(|| {
                for i in 0..n {
                    grads[i] = clark::max_grad(
                        black_box(mu_a[i]),
                        black_box(var_a[i]),
                        black_box(mu_b[i]),
                        black_box(var_b[i]),
                        DEFAULT_EPS,
                    );
                }
                black_box(&grads);
            })
        });
        g.bench_with_input(BenchmarkId::new("grad_batch", n), &n, |b, _| {
            b.iter(|| {
                clark::max_grad_batch(
                    black_box(&mu_a),
                    black_box(&var_a),
                    black_box(&mu_b),
                    black_box(&var_b),
                    DEFAULT_EPS,
                    &mut grads,
                );
                black_box(&grads);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
