//! Property-based solver tests on problems with known closed-form
//! solutions: separable box-constrained quadratics (solution = clamped
//! unconstrained minimiser) and randomly rotated equality-constrained
//! quadratics (solution via KKT).

use proptest::prelude::*;
use sgs_nlp::lbfgs::{self, GradFn, LbfgsOptions};
use sgs_nlp::tr::{self, SmoothFn, TrOptions};
use sgs_nlp::NlpProblem;

/// Separable quadratic `sum_i w_i (x_i - c_i)^2` over a box.
#[derive(Debug, Clone)]
struct SepQuad {
    w: Vec<f64>,
    c: Vec<f64>,
}

impl SmoothFn for SepQuad {
    fn n(&self) -> usize {
        self.w.len()
    }
    fn value(&mut self, x: &[f64]) -> f64 {
        x.iter()
            .zip(&self.w)
            .zip(&self.c)
            .map(|((xi, wi), ci)| wi * (xi - ci) * (xi - ci))
            .sum()
    }
    fn grad(&mut self, x: &[f64], g: &mut [f64]) {
        for i in 0..x.len() {
            g[i] = 2.0 * self.w[i] * (x[i] - self.c[i]);
        }
    }
    fn prepare_hess(&mut self, _x: &[f64]) {}
    fn hess_vec(&mut self, v: &[f64], out: &mut [f64]) {
        for i in 0..v.len() {
            out[i] = 2.0 * self.w[i] * v[i];
        }
    }
}

impl GradFn for SepQuad {
    fn n(&self) -> usize {
        self.w.len()
    }
    fn value(&mut self, x: &[f64]) -> f64 {
        SmoothFn::value(self, x)
    }
    fn grad(&mut self, x: &[f64], g: &mut [f64]) {
        SmoothFn::grad(self, x, g)
    }
}

fn quad_instance() -> impl Strategy<Value = (SepQuad, Vec<f64>, Vec<f64>, Vec<f64>)> {
    (1usize..8).prop_flat_map(|n| {
        (
            prop::collection::vec(0.1..10.0f64, n),   // weights
            prop::collection::vec(-10.0..10.0f64, n), // centers
            prop::collection::vec(-5.0..0.0f64, n),   // lower
            prop::collection::vec(0.0..5.0f64, n),    // upper
            prop::collection::vec(-3.0..3.0f64, n),   // start
        )
            .prop_map(|(w, c, l, u, x0)| (SepQuad { w, c }, l, u, x0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn tr_solves_separable_box_quadratics((q, l, u, x0) in quad_instance()) {
        let mut f = q.clone();
        // tol is bounded by the model-reduction noise floor: near the
        // optimum the achievable decrease is ~pg^2 / w, which hits machine
        // epsilon around pg ~ 1e-7 for O(1) function values.
        let r = tr::minimize(&mut f, &x0, &l, &u, &TrOptions { tol: 1e-7, ..Default::default() });
        prop_assert!(r.converged || r.pg_norm < 1e-6, "{r:?}");
        for i in 0..q.c.len() {
            let want = q.c[i].max(l[i]).min(u[i]); // clamped minimiser
            prop_assert!((r.x[i] - want).abs() < 1e-6, "x[{i}] = {} want {want}", r.x[i]);
        }
    }

    #[test]
    fn lbfgs_solves_separable_box_quadratics((q, l, u, x0) in quad_instance()) {
        let mut f = q.clone();
        let r = lbfgs::minimize(&mut f, &x0, &l, &u, &LbfgsOptions { tol: 1e-9, max_iter: 2000, memory: 8 });
        prop_assert!(r.converged, "{r:?}");
        for i in 0..q.c.len() {
            let want = q.c[i].max(l[i]).min(u[i]);
            prop_assert!((r.x[i] - want).abs() < 1e-5, "x[{i}] = {} want {want}", r.x[i]);
        }
    }
}

/// `min (x - c)' (x - c) s.t. a' x = b`, solution `x* = c + a (b - a'c) /
/// (a'a)`, free bounds.
#[derive(Debug, Clone)]
struct EqQuad {
    c: Vec<f64>,
    a: Vec<f64>,
    b: f64,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl NlpProblem for EqQuad {
    fn num_vars(&self) -> usize {
        self.c.len()
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&self.lo, &self.hi)
    }
    fn objective(&self, x: &[f64]) -> f64 {
        x.iter()
            .zip(&self.c)
            .map(|(xi, ci)| (xi - ci) * (xi - ci))
            .sum()
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        for i in 0..x.len() {
            g[i] = 2.0 * (x[i] - self.c[i]);
        }
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = x.iter().zip(&self.a).map(|(xi, ai)| xi * ai).sum::<f64>() - self.b;
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        (0..self.c.len()).map(|i| (0, i)).collect()
    }
    fn jacobian_values(&self, _x: &[f64], vals: &mut [f64]) {
        vals.copy_from_slice(&self.a);
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        (0..self.c.len()).map(|i| (i, i)).collect()
    }
    fn hessian_values(&self, _x: &[f64], sigma: f64, _l: &[f64], vals: &mut [f64]) {
        for v in vals.iter_mut() {
            *v = 2.0 * sigma;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn auglag_solves_projection_onto_hyperplane(
        n in 1usize..7,
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random instance from the seed.
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // ~[-1, 1)
        };
        let c: Vec<f64> = (0..n).map(|_| 5.0 * next()).collect();
        let mut a: Vec<f64> = (0..n).map(|_| next()).collect();
        // Keep the constraint well-conditioned.
        let norm = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 0.3 {
            a[0] += 1.0;
        }
        let b = 3.0 * next();
        let p = EqQuad {
            c: c.clone(),
            a: a.clone(),
            b,
            lo: vec![f64::NEG_INFINITY; n],
            hi: vec![f64::INFINITY; n],
        };
        let r = sgs_nlp::solve(&p, &vec![0.0; n], &sgs_nlp::AugLagOptions::default());
        prop_assert!(r.status.is_success(), "{:?}", r.status);
        let aa: f64 = a.iter().map(|v| v * v).sum();
        let ac: f64 = a.iter().zip(&c).map(|(ai, ci)| ai * ci).sum();
        let t = (b - ac) / aa;
        for i in 0..n {
            let want = c[i] + a[i] * t;
            prop_assert!((r.x[i] - want).abs() < 1e-4, "x[{i}] = {} want {want}", r.x[i]);
        }
    }
}
