//! Warm-start contract battery.
//!
//! Pins the two halves of the [`sgs_nlp::WarmStart`] contract: a warm
//! start from a converged point re-verifies optimality in at most one
//! outer iteration at the same objective, and a warm start taken from a
//! poisoned (NaN) previous result is *rejected* — the solve falls back to
//! the cold start and matches it bit for bit instead of diverging.

use sgs_nlp::auglag::SolveStatus;
use sgs_nlp::test_problems::{Hs28, Hs48, Hs7, PoisonAfter, ProductBound, SumToOne};
use sgs_nlp::{
    solve, solve_cached, solve_warm, solve_warm_traced, AugLagOptions, CachedProblem, NlpProblem,
    WarmStart,
};
use sgs_trace::{MemorySink, TraceEvent, Tracer};

fn assert_bit_identical(a: &sgs_nlp::SolveResult, b: &sgs_nlp::SolveResult) {
    assert_eq!(a.status, b.status);
    let abits: Vec<u64> = a.x.iter().map(|v| v.to_bits()).collect();
    let bbits: Vec<u64> = b.x.iter().map(|v| v.to_bits()).collect();
    assert_eq!(abits, bbits, "iterates differ");
    assert_eq!(a.f.to_bits(), b.f.to_bits(), "objectives differ");
    assert_eq!(a.evals, b.evals, "evaluation counts differ");
    assert_eq!(a.outer_iterations, b.outer_iterations);
}

#[test]
fn warm_restart_from_converged_point_takes_at_most_one_outer_iteration() {
    fn check<P: NlpProblem>(problem: &P, x0: &[f64]) {
        let opts = AugLagOptions::default();
        let cold = solve(problem, x0, &opts);
        assert!(cold.status.is_success(), "cold solve failed: {cold:?}");
        let warm = WarmStart::from_result(&cold);
        let rerun = solve_warm(problem, x0, Some(&warm), &opts);
        assert_eq!(rerun.status, SolveStatus::Converged, "{rerun:?}");
        assert!(
            rerun.outer_iterations <= 1,
            "warm restart took {} outer iterations",
            rerun.outer_iterations
        );
        // Same objective: the restart verifies the point, it does not
        // wander off it.
        assert!(
            (rerun.f - cold.f).abs() <= 1e-9 * (1.0 + cold.f.abs()),
            "objective moved: {} -> {}",
            cold.f,
            rerun.f
        );
        // And far cheaper than the cold solve.
        assert!(rerun.inner_iterations <= cold.inner_iterations);
    }
    check(&SumToOne, &[3.0, -2.0]);
    check(&Hs7, &[2.0, 2.0]);
    check(&Hs48, &[3.0, 5.0, -3.0, 2.0, -2.0]);
    check(&ProductBound, &[5.0, 5.0]);
}

#[test]
fn warm_start_from_poisoned_result_falls_back_to_cold_start() {
    // Produce a genuinely poisoned previous result via the fault-injection
    // hook: the objective turns to NaN mid-solve and the run diverges.
    let poisoned_problem = PoisonAfter::new(&Hs7, 3);
    let bad = solve(&poisoned_problem, &[2.0, 2.0], &AugLagOptions::default());
    assert_eq!(bad.status, SolveStatus::Diverged, "{bad:?}");

    let warm = WarmStart::from_result(&bad);
    // A NaN-poisoned carry-over must not be trusted...
    if warm.is_usable(2, 1) {
        // The diverged iterate can in principle still be finite; force the
        // non-finite case explicitly so the fallback path is always
        // exercised.
        let mut w = warm.clone();
        w.x[0] = f64::NAN;
        assert!(!w.is_usable(2, 1));
    }
    let mut nan_warm = warm.clone();
    nan_warm.x[0] = f64::NAN;
    nan_warm.lambda = vec![f64::NAN];

    // ...so the warm solve on the healthy problem equals the cold solve
    // bit for bit — no divergence, no NaN contamination.
    let cold = solve(&Hs7, &[2.0, 2.0], &AugLagOptions::default());
    assert!(cold.status.is_success());
    let fallback = solve_warm(
        &Hs7,
        &[2.0, 2.0],
        Some(&nan_warm),
        &AugLagOptions::default(),
    );
    assert_bit_identical(&fallback, &cold);
}

#[test]
fn dimension_mismatched_warm_start_is_rejected() {
    let from_hs7 = WarmStart::from_result(&solve(&Hs7, &[2.0, 2.0], &AugLagOptions::default()));
    assert!(!from_hs7.is_usable(3, 1), "wrong dimensions must not pass");
    let cold = solve(&Hs28, &[-4.0, 1.0, 1.0], &AugLagOptions::default());
    let fallback = solve_warm(
        &Hs28,
        &[-4.0, 1.0, 1.0],
        Some(&from_hs7),
        &AugLagOptions::default(),
    );
    assert_bit_identical(&fallback, &cold);
}

#[test]
fn warm_start_hit_counter_records_acceptance_and_fallback() {
    let opts = AugLagOptions::default();
    let cold = solve(&Hs7, &[2.0, 2.0], &opts);
    let warm = WarmStart::from_result(&cold);

    let count_hits = |warm: Option<&WarmStart>| -> Vec<u64> {
        let sink = MemorySink::new();
        let _ = solve_warm_traced(&Hs7, &[2.0, 2.0], warm, &opts, Tracer::new(&sink));
        sink.events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Counter {
                    name: "warm_start_hit",
                    value,
                } => Some(value),
                _ => None,
            })
            .collect()
    };

    assert_eq!(count_hits(Some(&warm)), vec![1], "accepted warm start");
    let mut bad = warm.clone();
    bad.rho = f64::INFINITY;
    assert_eq!(count_hits(Some(&bad)), vec![0], "rejected warm start");
    assert_eq!(count_hits(None), Vec::<u64>::new(), "cold solve is silent");

    // An untraced cold solve and a solve_warm(None) agree exactly.
    let a = solve(&Hs7, &[2.0, 2.0], &opts);
    let b = solve_warm(&Hs7, &[2.0, 2.0], None, &opts);
    assert_bit_identical(&a, &b);
}

#[test]
fn cached_problem_reused_across_solves_reports_per_solve_evals() {
    let cached = CachedProblem::new(&Hs7);
    let opts = AugLagOptions::default();
    let first = solve_cached(&cached, &[2.0, 2.0], None, &opts, Tracer::none());
    assert!(first.status.is_success(), "{first:?}");
    let warm = WarmStart::from_result(&first);
    let second = solve_cached(&cached, &[2.0, 2.0], Some(&warm), &opts, Tracer::none());
    assert!(second.status.is_success(), "{second:?}");
    assert!(second.outer_iterations <= 1);

    // Per-solve deltas, not cumulative counters: the two reports sum to
    // exactly what the shared cache performed in total.
    let total = cached.counts();
    assert_eq!(
        first.evals.constraints + second.evals.constraints,
        total.constraints
    );
    assert_eq!(
        first.evals.objective + second.evals.objective,
        total.objective
    );
    assert_eq!(first.evals.jacobian + second.evals.jacobian, total.jacobian);
    // The warm verification is much cheaper than the cold solve.
    assert!(second.evals.constraints < first.evals.constraints);
}

#[test]
fn warm_start_matches_seeded_state_solve() {
    // Carrying (x, lambda, rho) through WarmStart is exactly equivalent to
    // a solver whose initial state is that triple: pinned by comparing two
    // warm solves with identical carried state.
    let cold = solve(&SumToOne, &[3.0, -2.0], &AugLagOptions::default());
    let warm = WarmStart::from_result(&cold);
    let a = solve_warm(
        &SumToOne,
        &[3.0, -2.0],
        Some(&warm),
        &AugLagOptions::default(),
    );
    let b = solve_warm(
        &SumToOne,
        &[0.0, 0.0],
        Some(&warm),
        &AugLagOptions::default(),
    );
    // x0 is irrelevant once the warm start is accepted.
    assert_bit_identical(&a, &b);
}

/// [`SumToOne`] with a rewritable right-hand side: the NLP analogue of a
/// spec rewrite (`Resolver::resolve_spec` / `resolve_objective_k`) — the
/// constant inside the formulation moves, the structure does not.
struct ShiftedSum {
    target: f64,
}

impl NlpProblem for ShiftedSum {
    fn num_vars(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        const LO: [f64; 2] = [f64::NEG_INFINITY; 2];
        const HI: [f64; 2] = [f64::INFINITY; 2];
        (&LO, &HI)
    }
    fn objective(&self, x: &[f64]) -> f64 {
        x[0] * x[0] + x[1] * x[1]
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = 2.0 * x[0];
        g[1] = 2.0 * x[1];
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = x[0] + x[1] - self.target;
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (0, 1)]
    }
    fn jacobian_values(&self, _x: &[f64], vals: &mut [f64]) {
        vals[0] = 1.0;
        vals[1] = 1.0;
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (1, 1)]
    }
    fn hessian_values(&self, _x: &[f64], sigma: f64, _lambda: &[f64], vals: &mut [f64]) {
        vals[0] = 2.0 * sigma;
        vals[1] = 2.0 * sigma;
    }
}

#[test]
fn warm_start_survives_a_spec_constant_rewrite() {
    // The sweep-engine contract behind resolve_spec/resolve_objective_k:
    // rewriting a constant inside the formulation keeps the previous
    // (x, lambda, rho) dimension-compatible, so the next solve accepts it
    // and repairs the old optimum instead of restarting cold.
    let opts = AugLagOptions::default();
    let before = solve(&ShiftedSum { target: 1.0 }, &[3.0, -2.0], &opts);
    assert!(before.status.is_success(), "{before:?}");
    let warm = WarmStart::from_result(&before);
    let shifted = ShiftedSum { target: 1.2 };
    assert!(
        warm.is_usable(shifted.num_vars(), shifted.num_constraints()),
        "rewriting a constant must not change the warm dimensions"
    );

    let sink = MemorySink::new();
    let after = solve_warm_traced(
        &shifted,
        &[3.0, -2.0],
        Some(&warm),
        &opts,
        Tracer::new(&sink),
    );
    assert!(after.status.is_success(), "{after:?}");
    let hits: Vec<u64> = sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Counter {
                name: "warm_start_hit",
                value,
            } => Some(value),
            _ => None,
        })
        .collect();
    assert_eq!(hits, vec![1], "the carried warm start must be accepted");
    // It converges to the *new* optimum (x0 = x1 = target / 2), cheaper
    // than the cold solve of the shifted problem.
    assert!((after.x[0] - 0.6).abs() < 1e-6 && (after.x[1] - 0.6).abs() < 1e-6);
    let cold = solve(&shifted, &[3.0, -2.0], &opts);
    assert!(cold.status.is_success());
    assert!((after.f - cold.f).abs() <= 1e-5 * (1.0 + cold.f.abs()));
    assert!(after.inner_iterations <= cold.inner_iterations);
}

#[test]
fn traced_warm_solve_is_bit_identical_to_untraced() {
    let cold = solve(&Hs7, &[2.0, 2.0], &AugLagOptions::default());
    let warm = WarmStart::from_result(&cold);
    let plain = solve_warm(&Hs7, &[2.0, 2.0], Some(&warm), &AugLagOptions::default());
    let sink = MemorySink::new();
    let traced = solve_warm_traced(
        &Hs7,
        &[2.0, 2.0],
        Some(&warm),
        &AugLagOptions::default(),
        Tracer::new(&sink),
    );
    assert_bit_identical(&plain, &traced);
}
