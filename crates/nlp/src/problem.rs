//! The nonlinear-programming problem trait and derivative checking.

/// An equality-constrained, bound-constrained smooth optimisation problem:
///
/// ```text
/// minimize    f(x)
/// subject to  c(x) = 0          (m equality constraints)
///             l <= x <= u       (simple bounds; +-inf allowed)
/// ```
///
/// Inequality constraints are expected to be rewritten with bounded slack
/// variables by the modelling layer, exactly as LANCELOT's input format
/// requires.
///
/// Derivatives are exact and sparse: the Jacobian uses a fixed triplet
/// structure, and the Hessian of the Lagrangian
/// `sigma * f(x) + sum_i lambda_i * c_i(x)` uses a fixed **lower-triangle**
/// triplet structure (diagonal included, `row >= col`). Duplicate triplets
/// are allowed and are summed.
pub trait NlpProblem {
    /// Number of variables `n`.
    fn num_vars(&self) -> usize;

    /// Number of equality constraints `m` (may be 0).
    fn num_constraints(&self) -> usize;

    /// Lower and upper variable bounds, each of length `n`. Use
    /// `f64::NEG_INFINITY` / `f64::INFINITY` for free variables. Returned
    /// as borrowed slices so the solver's hot loops never copy them.
    fn bounds(&self) -> (&[f64], &[f64]);

    /// Objective value.
    fn objective(&self, x: &[f64]) -> f64;

    /// Objective gradient, written to `grad` (length `n`).
    fn gradient(&self, x: &[f64], grad: &mut [f64]);

    /// Constraint values, written to `c` (length `m`).
    fn constraints(&self, x: &[f64], c: &mut [f64]);

    /// Fixed sparsity of the constraint Jacobian as `(constraint, var)`
    /// pairs.
    fn jacobian_structure(&self) -> Vec<(usize, usize)>;

    /// Jacobian values in the order of [`NlpProblem::jacobian_structure`].
    fn jacobian_values(&self, x: &[f64], vals: &mut [f64]);

    /// Fixed sparsity of the Lagrangian Hessian, lower triangle
    /// (`row >= col`), as `(row, col)` pairs.
    fn hessian_structure(&self) -> Vec<(usize, usize)>;

    /// Lagrangian Hessian values `sigma * H_f + sum_i lambda_i * H_{c_i}`
    /// in the order of [`NlpProblem::hessian_structure`].
    fn hessian_values(&self, x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]);
}

/// Result of [`check_derivatives`]: the worst absolute discrepancy found in
/// each derivative block, for assertions in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivativeReport {
    /// Worst gradient error vs central differences.
    pub grad: f64,
    /// Worst Jacobian error vs central differences.
    pub jac: f64,
    /// Worst Lagrangian-Hessian error vs central differences of the exact
    /// Lagrangian gradient.
    pub hess: f64,
}

impl DerivativeReport {
    /// True when every block agrees within `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.grad <= tol && self.jac <= tol && self.hess <= tol
    }
}

/// Compares a problem's exact derivatives against central finite
/// differences at `x` (step `h`, scaled per component). `lambda` is used
/// for the Lagrangian Hessian check.
///
/// Intended for tests: cost is `O(n)` full evaluations.
pub fn check_derivatives<P: NlpProblem>(
    p: &P,
    x: &[f64],
    lambda: &[f64],
    h: f64,
) -> DerivativeReport {
    let n = p.num_vars();
    let m = p.num_constraints();
    assert_eq!(x.len(), n);
    assert_eq!(lambda.len(), m);

    // Gradient check.
    let mut grad = vec![0.0; n];
    p.gradient(x, &mut grad);
    let mut worst_g: f64 = 0.0;
    for i in 0..n {
        let step = h * (1.0 + x[i].abs());
        let mut xp = x.to_vec();
        let mut xm = x.to_vec();
        xp[i] += step;
        xm[i] -= step;
        let num = (p.objective(&xp) - p.objective(&xm)) / (2.0 * step);
        worst_g = worst_g.max((grad[i] - num).abs() / (1.0 + num.abs()));
    }

    // Jacobian check (dense reconstruction).
    let structure = p.jacobian_structure();
    let mut vals = vec![0.0; structure.len()];
    p.jacobian_values(x, &mut vals);
    let mut jac_dense = vec![0.0; m * n];
    for (k, &(ci, vi)) in structure.iter().enumerate() {
        jac_dense[ci * n + vi] += vals[k];
    }
    let mut worst_j: f64 = 0.0;
    let mut cp = vec![0.0; m];
    let mut cm = vec![0.0; m];
    for i in 0..n {
        let step = h * (1.0 + x[i].abs());
        let mut xp = x.to_vec();
        let mut xm = x.to_vec();
        xp[i] += step;
        xm[i] -= step;
        p.constraints(&xp, &mut cp);
        p.constraints(&xm, &mut cm);
        for ci in 0..m {
            let num = (cp[ci] - cm[ci]) / (2.0 * step);
            worst_j = worst_j.max((jac_dense[ci * n + i] - num).abs() / (1.0 + num.abs()));
        }
    }

    // Lagrangian Hessian check against differences of the exact Lagrangian
    // gradient (sigma = 1).
    let lag_grad = |x: &[f64], out: &mut [f64]| {
        p.gradient(x, out);
        let mut jv = vec![0.0; structure.len()];
        p.jacobian_values(x, &mut jv);
        for (k, &(ci, vi)) in structure.iter().enumerate() {
            out[vi] += lambda[ci] * jv[k];
        }
    };
    let hstructure = p.hessian_structure();
    let mut hvals = vec![0.0; hstructure.len()];
    p.hessian_values(x, 1.0, lambda, &mut hvals);
    let mut hess_dense = vec![0.0; n * n];
    for (k, &(r, c)) in hstructure.iter().enumerate() {
        assert!(r >= c, "hessian structure must be lower triangle");
        hess_dense[r * n + c] += hvals[k];
        if r != c {
            hess_dense[c * n + r] += hvals[k];
        }
    }
    let mut worst_h: f64 = 0.0;
    let mut gp = vec![0.0; n];
    let mut gm = vec![0.0; n];
    for i in 0..n {
        let step = h * (1.0 + x[i].abs());
        let mut xp = x.to_vec();
        let mut xm = x.to_vec();
        xp[i] += step;
        xm[i] -= step;
        lag_grad(&xp, &mut gp);
        lag_grad(&xm, &mut gm);
        for r in 0..n {
            let num = (gp[r] - gm[r]) / (2.0 * step);
            worst_h = worst_h.max((hess_dense[r * n + i] - num).abs() / (1.0 + num.abs()));
        }
    }

    DerivativeReport {
        grad: worst_g,
        jac: worst_j,
        hess: worst_h,
    }
}

/// First-order (KKT) residuals at a candidate solution, using the
/// augmented-Lagrangian sign convention of [`crate::auglag`]:
/// `L = f - lambda' c`, so stationarity is the projected norm of
/// `grad f - J' lambda` over the bound box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KktReport {
    /// Infinity norm of the projected Lagrangian gradient.
    pub stationarity: f64,
    /// Infinity norm of the constraint values.
    pub feasibility: f64,
}

impl KktReport {
    /// True when both residuals are within `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.stationarity <= tol && self.feasibility <= tol
    }
}

/// Evaluates the KKT residuals of `(x, lambda)` for a problem — the
/// standard certificate that a solver output is a first-order optimum.
pub fn kkt_residual<P: NlpProblem>(p: &P, x: &[f64], lambda: &[f64]) -> KktReport {
    let n = p.num_vars();
    let m = p.num_constraints();
    assert_eq!(x.len(), n);
    assert_eq!(lambda.len(), m);
    let (l, u) = p.bounds();
    let mut g = vec![0.0; n];
    p.gradient(x, &mut g);
    let structure = p.jacobian_structure();
    let mut jv = vec![0.0; structure.len()];
    p.jacobian_values(x, &mut jv);
    for (k, &(ci, vi)) in structure.iter().enumerate() {
        g[vi] -= lambda[ci] * jv[k];
    }
    let mut stationarity: f64 = 0.0;
    for i in 0..n {
        let t = (x[i] - g[i]).max(l[i]).min(u[i]);
        stationarity = stationarity.max((x[i] - t).abs());
    }
    let mut c = vec![0.0; m];
    p.constraints(x, &mut c);
    let feasibility = c.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    KktReport {
        stationarity,
        feasibility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_problems::{Hs6, Hs7, Rosenbrock};

    #[test]
    fn check_derivatives_passes_on_correct_problems() {
        let r = check_derivatives(&Rosenbrock, &[-1.2, 1.0], &[], 1e-5);
        assert!(r.within(1e-5), "{r:?}");
        let r = check_derivatives(&Hs6, &[-1.2, 1.0], &[0.7], 1e-5);
        assert!(r.within(1e-5), "{r:?}");
        let r = check_derivatives(&Hs7, &[2.0, 2.0], &[-0.3], 1e-5);
        assert!(r.within(1e-4), "{r:?}");
    }
}
