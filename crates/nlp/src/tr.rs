//! Bound-constrained trust-region Newton-CG minimisation.
//!
//! This is the SBMIN-style inner solver of the LANCELOT family: at each
//! iterate the quadratic model (exact gradient, exact Hessian-vector
//! products) is approximately minimised over the intersection of the trust
//! region and the bound box by a **projected Steihaug-Toint conjugate
//! gradient**: variables pinned at a bound with an outward-pointing
//! gradient are frozen, and CG steps truncate at the first trust-region or
//! bound crossing (which preserves the Cauchy-decrease property that global
//! convergence rests on).

/// A smooth function with exact derivatives, evaluated through mutable
/// state so implementations can cache factorisations or constraint values.
pub trait SmoothFn {
    /// Dimension.
    fn n(&self) -> usize;
    /// Function value at `x`.
    fn value(&mut self, x: &[f64]) -> f64;
    /// Gradient at `x`, written to `g`.
    fn grad(&mut self, x: &[f64], g: &mut [f64]);
    /// Evaluates and caches the Hessian at `x` for subsequent
    /// [`SmoothFn::hess_vec`] calls.
    fn prepare_hess(&mut self, x: &[f64]);
    /// `out = H v` using the Hessian cached by the last `prepare_hess`.
    /// Takes `&mut self` so implementations can reuse internal scratch
    /// buffers — this call sits on the CG hot path and must not allocate.
    fn hess_vec(&mut self, v: &[f64], out: &mut [f64]);
}

/// Reusable scratch for [`minimize_with`]: every per-iteration temporary
/// of the trust-region loop and its projected-CG subproblem (iterate,
/// gradient, trial point, free-variable mask, CG direction/residual
/// vectors) lives here, allocated once and reused across iterations and
/// across repeated solves. [`minimize`] allocates one internally; callers
/// that solve many subproblems (the augmented-Lagrangian outer loop) hold
/// one and pass it in so the inner iterations are allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    x: Vec<f64>,
    g: Vec<f64>,
    xnew: Vec<f64>,
    free: Vec<bool>,
    p: Vec<f64>,
    r: Vec<f64>,
    d: Vec<f64>,
    hd: Vec<f64>,
}

impl SolveWorkspace {
    /// Creates a workspace sized for `n` variables.
    pub fn new(n: usize) -> Self {
        let mut ws = SolveWorkspace::default();
        ws.resize(n);
        ws
    }

    fn resize(&mut self, n: usize) {
        self.x.resize(n, 0.0);
        self.g.resize(n, 0.0);
        self.xnew.resize(n, 0.0);
        self.free.resize(n, true);
        self.p.resize(n, 0.0);
        self.r.resize(n, 0.0);
        self.d.resize(n, 0.0);
        self.hd.resize(n, 0.0);
    }
}

/// Options for [`minimize`].
#[derive(Debug, Clone)]
pub struct TrOptions {
    /// Convergence tolerance on the infinity norm of the projected
    /// gradient.
    pub tol: f64,
    /// Maximum trust-region iterations.
    pub max_iter: usize,
    /// Maximum CG iterations per subproblem (0 means `2 n`).
    pub max_cg: usize,
    /// Initial trust-region radius (0 means automatic).
    pub delta0: f64,
}

impl Default for TrOptions {
    fn default() -> Self {
        TrOptions {
            tol: 1e-8,
            max_iter: 500,
            max_cg: 0,
            delta0: 0.0,
        }
    }
}

/// Result of a trust-region minimisation.
#[derive(Debug, Clone)]
pub struct TrResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Final function value.
    pub f: f64,
    /// Final projected-gradient infinity norm.
    pub pg_norm: f64,
    /// Trust-region iterations used.
    pub iterations: usize,
    /// Total CG iterations used.
    pub cg_iterations: usize,
    /// Whether `pg_norm <= tol` was reached.
    pub converged: bool,
    /// A trial point whose function value was non-finite and that the
    /// solver could not step away from (no finite-valued step was
    /// accepted afterwards) — evidence of divergence for the caller's
    /// NaN/Inf guard. `None` on healthy runs, including runs where a
    /// transient non-finite trial was recovered by shrinking the radius.
    pub bad_point: Option<Vec<f64>>,
}

/// Projects `x` into `[l, u]` component-wise, in place.
pub fn project(x: &mut [f64], l: &[f64], u: &[f64]) {
    for i in 0..x.len() {
        x[i] = x[i].max(l[i]).min(u[i]);
    }
}

/// Infinity norm of the projected gradient `x - P(x - g)`.
pub fn projected_gradient_norm(x: &[f64], g: &[f64], l: &[f64], u: &[f64]) -> f64 {
    let mut worst: f64 = 0.0;
    for i in 0..x.len() {
        let t = (x[i] - g[i]).max(l[i]).min(u[i]);
        worst = worst.max((x[i] - t).abs());
    }
    worst
}

/// Minimises `f` over the box `[l, u]` starting from `x0` (projected into
/// the box first).
///
/// # Panics
///
/// Panics if slice lengths disagree with `f.n()` or if any `l[i] > u[i]`.
pub fn minimize<F: SmoothFn>(
    f: &mut F,
    x0: &[f64],
    l: &[f64],
    u: &[f64],
    opts: &TrOptions,
) -> TrResult {
    minimize_with(f, x0, l, u, opts, &mut SolveWorkspace::new(f.n()))
}

/// [`minimize`] with caller-owned scratch: reusing `ws` across repeated
/// solves makes every inner iteration allocation-free.
///
/// # Panics
///
/// Panics if slice lengths disagree with `f.n()` or if any `l[i] > u[i]`.
pub fn minimize_with<F: SmoothFn>(
    f: &mut F,
    x0: &[f64],
    l: &[f64],
    u: &[f64],
    opts: &TrOptions,
    ws: &mut SolveWorkspace,
) -> TrResult {
    let n = f.n();
    assert_eq!(x0.len(), n);
    assert_eq!(l.len(), n);
    assert_eq!(u.len(), n);
    for i in 0..n {
        assert!(l[i] <= u[i], "bound {i} inverted: [{}, {}]", l[i], u[i]);
    }
    let max_cg = if opts.max_cg == 0 {
        (2 * n).max(10)
    } else {
        opts.max_cg
    };

    ws.resize(n);
    let SolveWorkspace {
        x,
        g,
        xnew,
        free,
        p,
        r,
        d,
        hd,
    } = ws;
    x.copy_from_slice(x0);
    project(x, l, u);
    let mut fx = f.value(x);
    f.grad(x, g);
    let gnorm = g.iter().map(|v| v * v).sum::<f64>().sqrt();
    let mut delta = if opts.delta0 > 0.0 {
        opts.delta0
    } else {
        (0.1 * gnorm).max(1.0)
    };
    let delta_max = 1e10;

    let mut cg_total = 0usize;
    let mut pg = projected_gradient_norm(x, g, l, u);
    // Most recent trial point with a non-finite value that no accepted
    // finite step has superseded; see [`TrResult::bad_point`].
    let mut last_bad: Option<Vec<f64>> = if fx.is_finite() {
        None
    } else {
        Some(x.clone())
    };

    for iter in 0..opts.max_iter {
        if pg <= opts.tol {
            return TrResult {
                x: x.clone(),
                f: fx,
                pg_norm: pg,
                iterations: iter,
                cg_iterations: cg_total,
                converged: true,
                bad_point: last_bad,
            };
        }
        f.prepare_hess(x);

        // Retry with shrinking radius until a step is accepted or the
        // radius collapses.
        let mut accepted = false;
        while !accepted {
            let (pred, ncg, hit_boundary) =
                solve_subproblem(f, x, g, l, u, delta, max_cg, free, p, r, d, hd);
            cg_total += ncg;
            if pred <= f64::EPSILON * (1.0 + fx.abs()) {
                delta *= 0.5;
                if delta < 1e-14 {
                    // No decrease possible: declare convergence at the
                    // achieved projected-gradient level.
                    return TrResult {
                        x: x.clone(),
                        f: fx,
                        pg_norm: pg,
                        iterations: iter,
                        cg_iterations: cg_total,
                        converged: pg <= opts.tol,
                        bad_point: last_bad,
                    };
                }
                continue;
            }
            xnew.copy_from_slice(x);
            for i in 0..n {
                xnew[i] += p[i];
            }
            project(xnew, l, u);
            let fnew = f.value(xnew);
            let ared = fx - fnew;
            let rho = ared / pred;
            if !fnew.is_finite() {
                last_bad = Some(xnew.clone());
            }
            let pnorm = p.iter().map(|v| v * v).sum::<f64>().sqrt();
            // NaN-robust acceptance: a non-finite `rho` (poisoned trial
            // value or poisoned current value) must *shrink* the radius,
            // not leave it unchanged — otherwise the retry loop re-issues
            // the identical step forever.
            if rho.is_nan() || rho < 0.25 {
                delta = 0.25 * pnorm.max(delta * 0.1).min(delta);
            } else if rho > 0.75 && hit_boundary {
                delta = (2.0 * delta).min(delta_max);
            }
            if rho > 1e-4 && ared > 0.0 {
                std::mem::swap(x, xnew);
                fx = fnew;
                f.grad(x, g);
                pg = projected_gradient_norm(x, g, l, u);
                accepted = true;
                // A finite step was accepted: earlier non-finite trials
                // were transient, not divergence.
                last_bad = None;
            } else if delta < 1e-14 {
                return TrResult {
                    x: x.clone(),
                    f: fx,
                    pg_norm: pg,
                    iterations: iter,
                    cg_iterations: cg_total,
                    converged: pg <= opts.tol,
                    bad_point: last_bad,
                };
            }
        }
    }

    TrResult {
        x: x.clone(),
        f: fx,
        pg_norm: pg,
        iterations: opts.max_iter,
        cg_iterations: cg_total,
        converged: pg <= opts.tol,
        bad_point: last_bad,
    }
}

/// Approximately minimises the quadratic model `g'p + p'Hp/2` over the
/// trust region and bounds with projected Steihaug-Toint CG, writing the
/// step into the caller's `p` buffer (all scratch is caller-provided so
/// the subproblem allocates nothing).
///
/// Returns `(predicted_reduction, cg_iterations, hit_boundary)`.
#[allow(clippy::too_many_arguments)]
fn solve_subproblem<F: SmoothFn>(
    f: &mut F,
    x: &[f64],
    g: &[f64],
    l: &[f64],
    u: &[f64],
    delta: f64,
    max_cg: usize,
    free: &mut [bool],
    p: &mut [f64],
    r: &mut [f64],
    d: &mut [f64],
    hd: &mut [f64],
) -> (f64, usize, bool) {
    let n = x.len();
    let eps_act = 1e-12;
    // Freeze variables pinned at a bound with the gradient pushing outward.
    for i in 0..n {
        let at_lower = l[i].is_finite() && x[i] - l[i] <= eps_act * (1.0 + l[i].abs());
        let at_upper = u[i].is_finite() && u[i] - x[i] <= eps_act * (1.0 + u[i].abs());
        free[i] = !((at_lower && g[i] >= 0.0) || (at_upper && g[i] <= 0.0));
    }

    p.fill(0.0);
    for i in 0..n {
        r[i] = if free[i] { g[i] } else { 0.0 };
    }
    let mut rr: f64 = r.iter().map(|v| v * v).sum();
    let rr0 = rr;
    if rr0 == 0.0 {
        return (0.0, 0, false);
    }
    let ctol = 0.01f64.min(rr0.sqrt().sqrt()); // superlinear forcing term
    for i in 0..n {
        d[i] = -r[i];
    }
    let mut hit_boundary = false;
    let mut ncg = 0usize;

    while ncg < max_cg {
        ncg += 1;
        f.hess_vec(d, hd);
        for i in 0..n {
            if !free[i] {
                hd[i] = 0.0;
            }
        }
        let kappa: f64 = d.iter().zip(hd.iter()).map(|(a, b)| a * b).sum();
        let dd: f64 = d.iter().map(|v| v * v).sum();
        if kappa <= 1e-16 * dd {
            // Negative / zero curvature: go to the nearest boundary.
            let tau = step_to_boundary(p, d, x, l, u, delta);
            for i in 0..n {
                p[i] += tau * d[i];
            }
            hit_boundary = true;
            break;
        }
        let alpha = rr / kappa;
        let tau = step_to_boundary(p, d, x, l, u, delta);
        if alpha >= tau {
            for i in 0..n {
                p[i] += tau * d[i];
            }
            hit_boundary = true;
            break;
        }
        for i in 0..n {
            p[i] += alpha * d[i];
            r[i] += alpha * hd[i];
        }
        let rr_new: f64 = r.iter().map(|v| v * v).sum();
        if rr_new.sqrt() <= ctol * rr0.sqrt() {
            break;
        }
        let beta = rr_new / rr;
        for i in 0..n {
            d[i] = -r[i] + beta * d[i];
        }
        rr = rr_new;
    }

    // Predicted reduction -m(p) = -(g'p + p'Hp/2).
    f.hess_vec(p, hd);
    let gp: f64 = g.iter().zip(p.iter()).map(|(a, b)| a * b).sum();
    let php: f64 = p.iter().zip(hd.iter()).map(|(a, b)| a * b).sum();
    let pred = -(gp + 0.5 * php);
    (pred, ncg, hit_boundary)
}

/// Largest `tau >= 0` with `|p + tau d| <= delta` and
/// `l <= x + p + tau d <= u`.
fn step_to_boundary(p: &[f64], d: &[f64], x: &[f64], l: &[f64], u: &[f64], delta: f64) -> f64 {
    // Trust region: |p|^2 + 2 tau p'd + tau^2 |d|^2 = delta^2.
    let pp: f64 = p.iter().map(|v| v * v).sum();
    let pd: f64 = p.iter().zip(d).map(|(a, b)| a * b).sum();
    let dd: f64 = d.iter().map(|v| v * v).sum();
    let mut tau = if dd > 0.0 {
        let disc = (pd * pd + dd * (delta * delta - pp)).max(0.0);
        (-pd + disc.sqrt()) / dd
    } else {
        0.0
    };
    // Bounds.
    for i in 0..d.len() {
        let base = x[i] + p[i];
        if d[i] > 0.0 {
            tau = tau.min((u[i] - base) / d[i]);
        } else if d[i] < 0.0 {
            tau = tau.min((l[i] - base) / d[i]);
        }
    }
    tau.max(0.0)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    /// Dense-quadratic adapter for testing: f = g0'x + x'H x / 2 + c.
    struct Quadratic {
        h: Vec<Vec<f64>>,
        g0: Vec<f64>,
    }

    impl SmoothFn for Quadratic {
        fn n(&self) -> usize {
            self.g0.len()
        }
        fn value(&mut self, x: &[f64]) -> f64 {
            let n = self.n();
            let mut v = 0.0;
            for i in 0..n {
                v += self.g0[i] * x[i];
                for j in 0..n {
                    v += 0.5 * x[i] * self.h[i][j] * x[j];
                }
            }
            v
        }
        fn grad(&mut self, x: &[f64], g: &mut [f64]) {
            let n = self.n();
            for i in 0..n {
                g[i] = self.g0[i];
                for j in 0..n {
                    g[i] += self.h[i][j] * x[j];
                }
            }
        }
        fn prepare_hess(&mut self, _x: &[f64]) {}
        fn hess_vec(&mut self, v: &[f64], out: &mut [f64]) {
            let n = self.n();
            for i in 0..n {
                out[i] = (0..n).map(|j| self.h[i][j] * v[j]).sum();
            }
        }
    }

    /// Rosenbrock as a SmoothFn.
    struct Rosen {
        hx: [f64; 2],
    }

    impl SmoothFn for Rosen {
        fn n(&self) -> usize {
            2
        }
        fn value(&mut self, x: &[f64]) -> f64 {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        }
        fn grad(&mut self, x: &[f64], g: &mut [f64]) {
            g[0] = -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]);
            g[1] = 200.0 * (x[1] - x[0] * x[0]);
        }
        fn prepare_hess(&mut self, x: &[f64]) {
            self.hx = [x[0], x[1]];
        }
        fn hess_vec(&mut self, v: &[f64], out: &mut [f64]) {
            let [x0, x1] = self.hx;
            let h00 = 2.0 - 400.0 * (x1 - 3.0 * x0 * x0);
            let h01 = -400.0 * x0;
            let h11 = 200.0;
            out[0] = h00 * v[0] + h01 * v[1];
            out[1] = h01 * v[0] + h11 * v[1];
        }
    }

    const INF: f64 = f64::INFINITY;

    #[test]
    fn unconstrained_quadratic_exact() {
        // min (x - [1,2])' diag(2, 6) (x - [1,2]) / 2.
        let mut q = Quadratic {
            h: vec![vec![2.0, 0.0], vec![0.0, 6.0]],
            g0: vec![-2.0, -12.0],
        };
        let r = minimize(
            &mut q,
            &[0.0, 0.0],
            &[-INF, -INF],
            &[INF, INF],
            &TrOptions::default(),
        );
        assert!(r.converged);
        assert!((r.x[0] - 1.0).abs() < 1e-7, "{:?}", r.x);
        assert!((r.x[1] - 2.0).abs() < 1e-7, "{:?}", r.x);
    }

    #[test]
    fn active_bound_found() {
        // Same quadratic but x0 <= 0.5 binds.
        let mut q = Quadratic {
            h: vec![vec![2.0, 0.0], vec![0.0, 6.0]],
            g0: vec![-2.0, -12.0],
        };
        let r = minimize(
            &mut q,
            &[0.0, 0.0],
            &[-INF, -INF],
            &[0.5, INF],
            &TrOptions::default(),
        );
        assert!(r.converged);
        assert!((r.x[0] - 0.5).abs() < 1e-9, "{:?}", r.x);
        assert!((r.x[1] - 2.0).abs() < 1e-7, "{:?}", r.x);
    }

    #[test]
    fn rosenbrock_converges() {
        let mut f = Rosen { hx: [0.0; 2] };
        let r = minimize(
            &mut f,
            &[-1.2, 1.0],
            &[-INF, -INF],
            &[INF, INF],
            &TrOptions {
                tol: 1e-10,
                ..Default::default()
            },
        );
        assert!(r.converged, "{r:?}");
        assert!((r.x[0] - 1.0).abs() < 1e-6);
        assert!((r.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rosenbrock_with_box_excluding_optimum() {
        // Optimum (1,1) excluded by u = (0.8, inf): solution on the bound
        // x0 = 0.8, x1 = 0.64.
        let mut f = Rosen { hx: [0.0; 2] };
        let r = minimize(
            &mut f,
            &[0.0, 0.0],
            &[-INF, -INF],
            &[0.8, INF],
            &TrOptions {
                tol: 1e-10,
                ..Default::default()
            },
        );
        assert!(r.converged, "{r:?}");
        assert!((r.x[0] - 0.8).abs() < 1e-7, "{:?}", r.x);
        assert!((r.x[1] - 0.64).abs() < 1e-6, "{:?}", r.x);
    }

    #[test]
    fn start_outside_box_is_projected() {
        let mut q = Quadratic {
            h: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            g0: vec![0.0, 0.0],
        };
        let r = minimize(
            &mut q,
            &[5.0, -7.0],
            &[1.0, -2.0],
            &[3.0, 2.0],
            &TrOptions::default(),
        );
        assert!(r.converged);
        // Unconstrained min is the origin; box forces (1, 0).
        assert!((r.x[0] - 1.0).abs() < 1e-9);
        assert!(r.x[1].abs() < 1e-7);
    }

    #[test]
    fn projected_gradient_norm_zero_at_bound_optimum() {
        let x = [1.0, 0.0];
        let g = [2.0, 0.0]; // pushes below lower bound 1.0
        let pg = projected_gradient_norm(&x, &g, &[1.0, -1.0], &[3.0, 1.0]);
        assert_eq!(pg, 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_rejected() {
        let mut q = Quadratic {
            h: vec![vec![1.0]],
            g0: vec![0.0],
        };
        let _ = minimize(&mut q, &[0.0], &[1.0], &[-1.0], &TrOptions::default());
    }
}
