//! Large-scale nonlinear programming in the LANCELOT family.
//!
//! The DATE 2000 statistical gate-sizing paper solves its sizing
//! formulations with LANCELOT (Conn, Gould & Toint), a Fortran package
//! built around an **augmented Lagrangian** outer loop and a
//! **bound-constrained trust-region Newton-CG** inner solver. That package
//! (and a Rust binding for a comparable solver such as IPOPT) is not
//! available here, so this crate implements the same algorithm family from
//! scratch:
//!
//! * [`problem`] — the problem trait: smooth objective, equality
//!   constraints, simple bounds, sparse Jacobian and sparse Lagrangian
//!   Hessian with **exact first and second derivatives** (the paper's whole
//!   point is that the statistical delay model admits them);
//! * [`sparse`] — triplet/CSR kernels for Jacobian and Hessian products;
//! * [`tr`] — bound-constrained trust-region Newton-CG (projected
//!   Steihaug-Toint), the SBMIN-style inner minimiser;
//! * [`auglag`] — the augmented-Lagrangian outer loop with
//!   Conn-Gould-Toint multiplier/penalty schedules;
//! * [`lbfgs`] — a projected L-BFGS bound-constrained solver used for
//!   reduced-space (variable-eliminated) formulations and warm starts;
//! * [`test_problems`] — classic problems (Rosenbrock, Hock-Schittkowski
//!   instances) with known optima used by the test-suite and benches.
//!
//! # Example: equality-constrained minimisation
//!
//! ```
//! use sgs_nlp::auglag::{solve, AugLagOptions};
//! use sgs_nlp::test_problems::Hs6;
//!
//! let result = solve(&Hs6, &[-1.2, 1.0], &AugLagOptions::default());
//! assert!(result.status.is_success());
//! assert!((result.x[0] - 1.0).abs() < 1e-4);
//! assert!((result.x[1] - 1.0).abs() < 1e-4);
//! ```

pub mod auglag;
pub mod cache;
pub mod lbfgs;
pub mod problem;
pub mod sparse;
pub mod test_problems;
pub mod tr;

pub use auglag::{
    solve, solve_cached, solve_warm, solve_warm_traced, AugLagOptions, SolveResult, SolveStatus,
    WarmStart,
};
pub use cache::{CachedProblem, EvalCounts};
pub use problem::NlpProblem;
