//! Point-evaluation caching for [`NlpProblem`]s.
//!
//! The augmented-Lagrangian loop asks for `constraints(x)` from three
//! places per inner iteration (the merit value, the gradient, and the
//! Hessian preparation) and for `jacobian_values(x)` from two — always at
//! the same iterate. For the gate-sizing problem each of those calls
//! walks every Clark-max constraint, so the redundancy triples the
//! dominant cost. [`CachedProblem`] wraps any problem with a last-point
//! memo: a repeated query at bitwise-identical `x` replays the stored
//! result instead of re-evaluating.
//!
//! **Invalidation rule:** one slot per quantity, keyed by the full `x`
//! vector compared bit-for-bit (`f64::to_bits`). Bitwise equality is
//! exact — no tolerance — so a cached replay is indistinguishable from a
//! fresh evaluation, and any change to any coordinate (however small)
//! invalidates the slot. The Lagrangian Hessian is *not* cached: it also
//! depends on `(sigma, lambda)`, which change between queries.

use crate::problem::NlpProblem;
use std::cell::{Cell, RefCell};

/// Underlying (cache-miss) evaluation counts performed through a
/// [`CachedProblem`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounts {
    /// Objective evaluations.
    pub objective: usize,
    /// Objective-gradient evaluations.
    pub gradient: usize,
    /// Constraint-vector evaluations.
    pub constraints: usize,
    /// Jacobian-value evaluations.
    pub jacobian: usize,
    /// Lagrangian-Hessian evaluations (never cached).
    pub hessian: usize,
}

impl From<EvalCounts> for sgs_trace::EvalReport {
    fn from(c: EvalCounts) -> Self {
        sgs_trace::EvalReport {
            objective: c.objective as u64,
            gradient: c.gradient as u64,
            constraints: c.constraints as u64,
            jacobian: c.jacobian as u64,
            hessian: c.hessian as u64,
        }
    }
}

/// A memo slot: the point it was evaluated at plus the stored result.
/// `valid` gates the slot so its buffers survive invalidation and are
/// reused by the next store — after warm-up, hits and misses both run
/// allocation-free.
#[derive(Default)]
struct Slot<T> {
    valid: bool,
    x: Vec<f64>,
    value: T,
}

impl Slot<f64> {
    fn hit(&self, x: &[f64]) -> Option<f64> {
        (self.valid && same_point(&self.x, x)).then_some(self.value)
    }

    fn store(&mut self, x: &[f64], value: f64) {
        copy_into(&mut self.x, x);
        self.value = value;
        self.valid = true;
    }
}

impl Slot<Vec<f64>> {
    /// Copies the memoised result into `out` on a hit.
    fn hit_into(&self, x: &[f64], out: &mut [f64]) -> bool {
        let hit = self.valid && same_point(&self.x, x);
        if hit {
            out.copy_from_slice(&self.value);
        }
        hit
    }

    fn store(&mut self, x: &[f64], value: &[f64]) {
        copy_into(&mut self.x, x);
        copy_into(&mut self.value, value);
        self.valid = true;
    }
}

/// `dst = src`, reusing `dst`'s buffer when the capacity suffices.
fn copy_into(dst: &mut Vec<f64>, src: &[f64]) {
    dst.clear();
    dst.extend_from_slice(src);
}

/// Bitwise vector equality — the cache key comparison.
fn same_point(a: &[f64], x: &[f64]) -> bool {
    a.len() == x.len() && a.iter().zip(x).all(|(p, q)| p.to_bits() == q.to_bits())
}

/// An [`NlpProblem`] wrapper that reuses the last evaluation of the
/// objective, gradient, constraint vector and Jacobian when re-queried at
/// the same point. See the module docs for the invalidation rule.
pub struct CachedProblem<'a, P: NlpProblem> {
    inner: &'a P,
    objective: RefCell<Slot<f64>>,
    gradient: RefCell<Slot<Vec<f64>>>,
    constraints: RefCell<Slot<Vec<f64>>>,
    jacobian: RefCell<Slot<Vec<f64>>>,
    counts: Cell<EvalCounts>,
}

impl<'a, P: NlpProblem> CachedProblem<'a, P> {
    /// Wrap `inner` with empty caches.
    pub fn new(inner: &'a P) -> Self {
        CachedProblem {
            inner,
            objective: RefCell::new(Slot::default()),
            gradient: RefCell::new(Slot::default()),
            constraints: RefCell::new(Slot::default()),
            jacobian: RefCell::new(Slot::default()),
            counts: Cell::new(EvalCounts::default()),
        }
    }

    /// Underlying evaluations performed so far (cache hits excluded).
    pub fn counts(&self) -> EvalCounts {
        self.counts.get()
    }

    fn bump(&self, f: impl FnOnce(&mut EvalCounts)) {
        let mut c = self.counts.get();
        f(&mut c);
        self.counts.set(c);
    }
}

impl<P: NlpProblem> NlpProblem for CachedProblem<'_, P> {
    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }

    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }

    fn bounds(&self) -> (&[f64], &[f64]) {
        self.inner.bounds()
    }

    fn objective(&self, x: &[f64]) -> f64 {
        let mut slot = self.objective.borrow_mut();
        if let Some(v) = slot.hit(x) {
            return v;
        }
        let v = self.inner.objective(x);
        self.bump(|c| c.objective += 1);
        slot.store(x, v);
        v
    }

    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        let mut slot = self.gradient.borrow_mut();
        if slot.hit_into(x, g) {
            return;
        }
        self.inner.gradient(x, g);
        self.bump(|c| c.gradient += 1);
        slot.store(x, g);
    }

    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        let mut slot = self.constraints.borrow_mut();
        if slot.hit_into(x, c) {
            return;
        }
        self.inner.constraints(x, c);
        self.bump(|counts| counts.constraints += 1);
        slot.store(x, c);
    }

    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        self.inner.jacobian_structure()
    }

    fn jacobian_values(&self, x: &[f64], vals: &mut [f64]) {
        let mut slot = self.jacobian.borrow_mut();
        if slot.hit_into(x, vals) {
            return;
        }
        self.inner.jacobian_values(x, vals);
        self.bump(|c| c.jacobian += 1);
        slot.store(x, vals);
    }

    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        self.inner.hessian_structure()
    }

    fn hessian_values(&self, x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]) {
        // Depends on (sigma, lambda) as well as x: always evaluate.
        self.inner.hessian_values(x, sigma, lambda, vals);
        self.bump(|c| c.hessian += 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_problems::SumToOne;

    #[test]
    fn repeated_queries_hit_the_cache() {
        let p = CachedProblem::new(&SumToOne);
        let x = [0.3, 0.7];
        let mut c = [0.0];
        let mut j = [0.0, 0.0];
        for _ in 0..5 {
            p.constraints(&x, &mut c);
            p.jacobian_values(&x, &mut j);
            let _ = p.objective(&x);
        }
        let k = p.counts();
        assert_eq!(k.constraints, 1);
        assert_eq!(k.jacobian, 1);
        assert_eq!(k.objective, 1);
    }

    #[test]
    fn any_coordinate_change_invalidates() {
        let p = CachedProblem::new(&SumToOne);
        let mut c = [0.0];
        p.constraints(&[0.3, 0.7], &mut c);
        // One ulp away: bitwise keying must treat it as a new point.
        p.constraints(&[0.3, f64::from_bits(0.7f64.to_bits() + 1)], &mut c);
        assert_eq!(p.counts().constraints, 2);
        // Returning to a previous point after moving away re-evaluates:
        // the memo holds one point only.
        p.constraints(&[0.3, 0.7], &mut c);
        assert_eq!(p.counts().constraints, 3);
    }

    #[test]
    fn cached_results_match_uncached() {
        let p = CachedProblem::new(&SumToOne);
        let x = [1.5, -0.5];
        let mut c_fresh = [0.0];
        let mut c_cached = [0.0];
        SumToOne.constraints(&x, &mut c_fresh);
        p.constraints(&x, &mut c_cached);
        p.constraints(&x, &mut c_cached);
        assert_eq!(c_fresh[0].to_bits(), c_cached[0].to_bits());
        let mut g_fresh = [0.0, 0.0];
        let mut g_cached = [0.0, 0.0];
        SumToOne.gradient(&x, &mut g_fresh);
        p.gradient(&x, &mut g_cached);
        p.gradient(&x, &mut g_cached);
        assert_eq!(g_fresh, g_cached);
    }
}
