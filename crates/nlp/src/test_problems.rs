//! Classic optimisation test problems with known solutions.
//!
//! Used by the crate's test-suite and by `sgs-bench` to validate and
//! benchmark the solver independently of the gate-sizing application.
//! `Hs*` problems are from the Hock-Schittkowski collection.

use crate::problem::NlpProblem;

const INF: f64 = f64::INFINITY;

/// Unconstrained Rosenbrock: `min (1-x)^2 + 100 (y-x^2)^2`, optimum
/// `(1, 1)` with value 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rosenbrock;

impl NlpProblem for Rosenbrock {
    fn num_vars(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        0
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&[-INF; 2], &[INF; 2])
    }
    fn objective(&self, x: &[f64]) -> f64 {
        (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]);
        g[1] = 200.0 * (x[1] - x[0] * x[0]);
    }
    fn constraints(&self, _x: &[f64], _c: &mut [f64]) {}
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        Vec::new()
    }
    fn jacobian_values(&self, _x: &[f64], _vals: &mut [f64]) {}
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (1, 0), (1, 1)]
    }
    fn hessian_values(&self, x: &[f64], sigma: f64, _lambda: &[f64], vals: &mut [f64]) {
        vals[0] = sigma * (2.0 - 400.0 * (x[1] - 3.0 * x[0] * x[0]));
        vals[1] = sigma * (-400.0 * x[0]);
        vals[2] = sigma * 200.0;
    }
}

/// `min x^2 + y^2 s.t. x + y = 1`; optimum `(1/2, 1/2)`, multiplier 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumToOne;

impl NlpProblem for SumToOne {
    fn num_vars(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&[-INF; 2], &[INF; 2])
    }
    fn objective(&self, x: &[f64]) -> f64 {
        x[0] * x[0] + x[1] * x[1]
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = 2.0 * x[0];
        g[1] = 2.0 * x[1];
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = x[0] + x[1] - 1.0;
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (0, 1)]
    }
    fn jacobian_values(&self, _x: &[f64], vals: &mut [f64]) {
        vals[0] = 1.0;
        vals[1] = 1.0;
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (1, 1)]
    }
    fn hessian_values(&self, _x: &[f64], sigma: f64, _lambda: &[f64], vals: &mut [f64]) {
        vals[0] = 2.0 * sigma;
        vals[1] = 2.0 * sigma;
    }
}

/// Hock-Schittkowski 6: `min (1-x1)^2 s.t. 10 (x2 - x1^2) = 0`; optimum
/// `(1, 1)` with value 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hs6;

impl NlpProblem for Hs6 {
    fn num_vars(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&[-INF; 2], &[INF; 2])
    }
    fn objective(&self, x: &[f64]) -> f64 {
        (1.0 - x[0]).powi(2)
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = -2.0 * (1.0 - x[0]);
        g[1] = 0.0;
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = 10.0 * (x[1] - x[0] * x[0]);
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (0, 1)]
    }
    fn jacobian_values(&self, x: &[f64], vals: &mut [f64]) {
        vals[0] = -20.0 * x[0];
        vals[1] = 10.0;
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0)]
    }
    fn hessian_values(&self, _x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]) {
        vals[0] = 2.0 * sigma + lambda[0] * (-20.0);
    }
}

/// Hock-Schittkowski 7: `min ln(1+x1^2) - x2 s.t. (1+x1^2)^2 + x2^2 = 4`;
/// optimum `(0, sqrt 3)` with value `-sqrt 3`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hs7;

impl NlpProblem for Hs7 {
    fn num_vars(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&[-INF; 2], &[INF; 2])
    }
    fn objective(&self, x: &[f64]) -> f64 {
        (1.0 + x[0] * x[0]).ln() - x[1]
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = 2.0 * x[0] / (1.0 + x[0] * x[0]);
        g[1] = -1.0;
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = (1.0 + x[0] * x[0]).powi(2) + x[1] * x[1] - 4.0;
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (0, 1)]
    }
    fn jacobian_values(&self, x: &[f64], vals: &mut [f64]) {
        vals[0] = 4.0 * x[0] * (1.0 + x[0] * x[0]);
        vals[1] = 2.0 * x[1];
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (1, 1)]
    }
    fn hessian_values(&self, x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]) {
        let t = 1.0 + x[0] * x[0];
        vals[0] =
            sigma * (2.0 - 2.0 * x[0] * x[0]) / (t * t) + lambda[0] * (4.0 + 12.0 * x[0] * x[0]);
        vals[1] = lambda[0] * 2.0;
    }
}

/// Hock-Schittkowski 28: `min (x1+x2)^2 + (x2+x3)^2 s.t. x1 + 2 x2 +
/// 3 x3 = 1`; optimum `(0.5, -0.5, 0.5)` with value 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hs28;

impl NlpProblem for Hs28 {
    fn num_vars(&self) -> usize {
        3
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&[-INF; 3], &[INF; 3])
    }
    fn objective(&self, x: &[f64]) -> f64 {
        (x[0] + x[1]).powi(2) + (x[1] + x[2]).powi(2)
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = 2.0 * (x[0] + x[1]);
        g[1] = 2.0 * (x[0] + x[1]) + 2.0 * (x[1] + x[2]);
        g[2] = 2.0 * (x[1] + x[2]);
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = x[0] + 2.0 * x[1] + 3.0 * x[2] - 1.0;
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (0, 1), (0, 2)]
    }
    fn jacobian_values(&self, _x: &[f64], vals: &mut [f64]) {
        vals.copy_from_slice(&[1.0, 2.0, 3.0]);
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]
    }
    fn hessian_values(&self, _x: &[f64], sigma: f64, _lambda: &[f64], vals: &mut [f64]) {
        vals.copy_from_slice(&[
            2.0 * sigma,
            2.0 * sigma,
            4.0 * sigma,
            2.0 * sigma,
            2.0 * sigma,
        ]);
    }
}

/// `min x + y s.t. x y = 4`, box `[1, 10]^2`; optimum `(2, 2)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProductBound;

/// Like [`ProductBound`] but with `x >= 4`, forcing the bound-active
/// optimum `(4, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProductBoundTight;

macro_rules! product_impl {
    ($ty:ty, $xlo:expr) => {
        impl NlpProblem for $ty {
            fn num_vars(&self) -> usize {
                2
            }
            fn num_constraints(&self) -> usize {
                1
            }
            fn bounds(&self) -> (&[f64], &[f64]) {
                (&[$xlo, 1.0], &[10.0, 10.0])
            }
            fn objective(&self, x: &[f64]) -> f64 {
                x[0] + x[1]
            }
            fn gradient(&self, _x: &[f64], g: &mut [f64]) {
                g[0] = 1.0;
                g[1] = 1.0;
            }
            fn constraints(&self, x: &[f64], c: &mut [f64]) {
                c[0] = x[0] * x[1] - 4.0;
            }
            fn jacobian_structure(&self) -> Vec<(usize, usize)> {
                vec![(0, 0), (0, 1)]
            }
            fn jacobian_values(&self, x: &[f64], vals: &mut [f64]) {
                vals[0] = x[1];
                vals[1] = x[0];
            }
            fn hessian_structure(&self) -> Vec<(usize, usize)> {
                vec![(1, 0)]
            }
            fn hessian_values(&self, _x: &[f64], _sigma: f64, lambda: &[f64], vals: &mut [f64]) {
                vals[0] = lambda[0];
            }
        }
    };
}

product_impl!(ProductBound, 1.0);
product_impl!(ProductBoundTight, 4.0);

/// Hock-Schittkowski 48: `min (x1-1)^2 + (x2-x3)^2 + (x4-x5)^2` subject
/// to `sum x = 5` and `x3 - 2(x4 + x5) = -3`; optimum all-ones, value 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hs48;

impl NlpProblem for Hs48 {
    fn num_vars(&self) -> usize {
        5
    }
    fn num_constraints(&self) -> usize {
        2
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&[-INF; 5], &[INF; 5])
    }
    fn objective(&self, x: &[f64]) -> f64 {
        (x[0] - 1.0).powi(2) + (x[1] - x[2]).powi(2) + (x[3] - x[4]).powi(2)
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = 2.0 * (x[0] - 1.0);
        g[1] = 2.0 * (x[1] - x[2]);
        g[2] = -2.0 * (x[1] - x[2]);
        g[3] = 2.0 * (x[3] - x[4]);
        g[4] = -2.0 * (x[3] - x[4]);
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = x.iter().sum::<f64>() - 5.0;
        c[1] = x[2] - 2.0 * (x[3] + x[4]) + 3.0;
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        let mut s: Vec<(usize, usize)> = (0..5).map(|i| (0, i)).collect();
        s.extend([(1, 2), (1, 3), (1, 4)]);
        s
    }
    fn jacobian_values(&self, _x: &[f64], vals: &mut [f64]) {
        vals.copy_from_slice(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -2.0, -2.0]);
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (1, 1), (2, 1), (2, 2), (3, 3), (4, 3), (4, 4)]
    }
    fn hessian_values(&self, _x: &[f64], sigma: f64, _l: &[f64], vals: &mut [f64]) {
        let t = 2.0 * sigma;
        vals.copy_from_slice(&[t, t, -t, t, t, -t, t]);
    }
}

/// Hock-Schittkowski 51: `min (x1-x2)^2 + (x2+x3-2)^2 + (x4-1)^2 +
/// (x5-1)^2` subject to `x1 + 3 x2 = 4`, `x3 + x4 - 2 x5 = 0`,
/// `x2 - x5 = 0`; optimum all-ones, value 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hs51;

impl NlpProblem for Hs51 {
    fn num_vars(&self) -> usize {
        5
    }
    fn num_constraints(&self) -> usize {
        3
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&[-INF; 5], &[INF; 5])
    }
    fn objective(&self, x: &[f64]) -> f64 {
        (x[0] - x[1]).powi(2)
            + (x[1] + x[2] - 2.0).powi(2)
            + (x[3] - 1.0).powi(2)
            + (x[4] - 1.0).powi(2)
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = 2.0 * (x[0] - x[1]);
        g[1] = -2.0 * (x[0] - x[1]) + 2.0 * (x[1] + x[2] - 2.0);
        g[2] = 2.0 * (x[1] + x[2] - 2.0);
        g[3] = 2.0 * (x[3] - 1.0);
        g[4] = 2.0 * (x[4] - 1.0);
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = x[0] + 3.0 * x[1] - 4.0;
        c[1] = x[2] + x[3] - 2.0 * x[4];
        c[2] = x[1] - x[4];
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (0, 1), (1, 2), (1, 3), (1, 4), (2, 1), (2, 4)]
    }
    fn jacobian_values(&self, _x: &[f64], vals: &mut [f64]) {
        vals.copy_from_slice(&[1.0, 3.0, 1.0, 1.0, -2.0, 1.0, -1.0]);
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 3), (4, 4)]
    }
    fn hessian_values(&self, _x: &[f64], sigma: f64, _l: &[f64], vals: &mut [f64]) {
        let t = 2.0 * sigma;
        vals.copy_from_slice(&[t, -t, 2.0 * t, t, t, t, t]);
    }
}

/// Infeasible problem: `min x^2 s.t. x^2 + 1 = 0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Infeasible;

impl NlpProblem for Infeasible {
    fn num_vars(&self) -> usize {
        1
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&[-INF], &[INF])
    }
    fn objective(&self, x: &[f64]) -> f64 {
        x[0] * x[0]
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = 2.0 * x[0];
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = x[0] * x[0] + 1.0;
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0)]
    }
    fn jacobian_values(&self, x: &[f64], vals: &mut [f64]) {
        vals[0] = 2.0 * x[0];
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0)]
    }
    fn hessian_values(&self, _x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]) {
        vals[0] = 2.0 * sigma + 2.0 * lambda[0];
    }
}

/// Inequality via slack: `min (x-3)^2 s.t. x <= 1`, written as
/// `x + s - 1 = 0, s >= 0`; optimum `x = 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlackIneq;

impl NlpProblem for SlackIneq {
    fn num_vars(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        (&[-INF, 0.0], &[INF, INF])
    }
    fn objective(&self, x: &[f64]) -> f64 {
        (x[0] - 3.0).powi(2)
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g[0] = 2.0 * (x[0] - 3.0);
        g[1] = 0.0;
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        c[0] = x[0] + x[1] - 1.0;
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0), (0, 1)]
    }
    fn jacobian_values(&self, _x: &[f64], vals: &mut [f64]) {
        vals[0] = 1.0;
        vals[1] = 1.0;
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        vec![(0, 0)]
    }
    fn hessian_values(&self, _x: &[f64], sigma: f64, _lambda: &[f64], vals: &mut [f64]) {
        vals[0] = 2.0 * sigma;
    }
}

/// Wraps a problem so the objective turns to NaN permanently after a
/// number of underlying evaluations — a fault-injection harness for the
/// solver's divergence guard and for the warm-start fallback contract
/// (the in-tree twin of `Sizer`'s `poison_nan_after` hook).
pub struct PoisonAfter<'a, P: NlpProblem> {
    inner: &'a P,
    after: usize,
    calls: std::cell::Cell<usize>,
}

impl<'a, P: NlpProblem> PoisonAfter<'a, P> {
    /// Poison the objective after `after` underlying evaluations.
    pub fn new(inner: &'a P, after: usize) -> Self {
        PoisonAfter {
            inner,
            after,
            calls: std::cell::Cell::new(0),
        }
    }
}

impl<P: NlpProblem> NlpProblem for PoisonAfter<'_, P> {
    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        self.inner.bounds()
    }
    fn objective(&self, x: &[f64]) -> f64 {
        self.calls.set(self.calls.get() + 1);
        if self.calls.get() > self.after {
            f64::NAN
        } else {
            self.inner.objective(x)
        }
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        self.inner.gradient(x, g)
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        self.inner.constraints(x, c)
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        self.inner.jacobian_structure()
    }
    fn jacobian_values(&self, x: &[f64], vals: &mut [f64]) {
        self.inner.jacobian_values(x, vals)
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        self.inner.hessian_structure()
    }
    fn hessian_values(&self, x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]) {
        self.inner.hessian_values(x, sigma, lambda, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::check_derivatives;

    #[test]
    fn all_test_problem_derivatives_exact() {
        let tol = 2e-4;
        assert!(check_derivatives(&Rosenbrock, &[0.3, -0.7], &[], 1e-5).within(tol));
        assert!(check_derivatives(&SumToOne, &[0.3, -0.7], &[0.4], 1e-5).within(tol));
        assert!(check_derivatives(&Hs6, &[0.3, -0.7], &[0.4], 1e-5).within(tol));
        assert!(check_derivatives(&Hs7, &[0.8, 1.1], &[-0.2], 1e-5).within(tol));
        assert!(check_derivatives(&Hs28, &[1.0, 2.0, -0.5], &[0.3], 1e-5).within(tol));
        assert!(
            check_derivatives(&Hs48, &[3.0, 5.0, -3.0, 2.0, -2.0], &[0.3, -0.4], 1e-5).within(tol)
        );
        assert!(
            check_derivatives(&Hs51, &[2.5, 0.5, 2.0, -1.0, 0.5], &[0.3, -0.4, 0.1], 1e-5)
                .within(tol)
        );
        assert!(check_derivatives(&ProductBound, &[2.0, 3.0], &[0.5], 1e-5).within(tol));
        assert!(check_derivatives(&Infeasible, &[0.7], &[1.2], 1e-5).within(tol));
        assert!(check_derivatives(&SlackIneq, &[0.7, 0.1], &[1.2], 1e-5).within(tol));
    }
}
