//! Projected L-BFGS for bound-constrained minimisation.
//!
//! Used for reduced-space gate sizing (the objective as a function of the
//! speed factors only, with adjoint gradients) and to warm-start the
//! full-space augmented-Lagrangian solves. Search directions come from the
//! standard two-loop recursion; steps are projected onto the box and
//! accepted under an Armijo condition on the projected path.

use crate::tr::project;
use std::collections::VecDeque;

/// A function with gradient only (no Hessian), for quasi-Newton methods.
pub trait GradFn {
    /// Dimension.
    fn n(&self) -> usize;
    /// Value at `x`.
    fn value(&mut self, x: &[f64]) -> f64;
    /// Gradient at `x`.
    fn grad(&mut self, x: &[f64], g: &mut [f64]);
}

/// Options for [`minimize`].
#[derive(Debug, Clone)]
pub struct LbfgsOptions {
    /// Convergence tolerance on the projected-gradient infinity norm.
    pub tol: f64,
    /// Maximum iterations.
    pub max_iter: usize,
    /// History length.
    pub memory: usize,
}

impl Default for LbfgsOptions {
    fn default() -> Self {
        LbfgsOptions {
            tol: 1e-7,
            max_iter: 500,
            memory: 10,
        }
    }
}

/// Result of [`minimize`].
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Final value.
    pub f: f64,
    /// Final projected-gradient infinity norm.
    pub pg_norm: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Minimises `f` over the box `[l, u]` from `x0`.
///
/// # Panics
///
/// Panics if slice lengths disagree or bounds are inverted.
pub fn minimize<F: GradFn>(
    f: &mut F,
    x0: &[f64],
    l: &[f64],
    u: &[f64],
    opts: &LbfgsOptions,
) -> LbfgsResult {
    let n = f.n();
    assert_eq!(x0.len(), n);
    assert_eq!(l.len(), n);
    assert_eq!(u.len(), n);
    for i in 0..n {
        assert!(l[i] <= u[i], "bound {i} inverted");
    }

    let mut x = x0.to_vec();
    project(&mut x, l, u);
    let mut fx = f.value(&x);
    let mut g = vec![0.0; n];
    f.grad(&x, &mut g);

    // (s, y, 1/y's) history plus hoisted per-iteration scratch: the loop
    // below allocates only when a new history pair is retained.
    let mut hist: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new();
    let mut d = vec![0.0; n];
    let mut alphas: Vec<f64> = Vec::with_capacity(opts.memory);
    let mut xn = vec![0.0; n];
    let mut gn = vec![0.0; n];
    let mut sbuf = vec![0.0; n];
    let mut ybuf = vec![0.0; n];
    let mut pg = pg_norm(&x, &g, l, u);
    let mut resets = 0u32;

    for iter in 0..opts.max_iter {
        if pg <= opts.tol {
            return LbfgsResult {
                x,
                f: fx,
                pg_norm: pg,
                iterations: iter,
                converged: true,
            };
        }

        // Two-loop recursion on the raw gradient.
        for i in 0..n {
            d[i] = -g[i];
        }
        alphas.clear();
        for (s, y, rho) in hist.iter().rev() {
            let a = rho * dot(s, &d);
            alphas.push(a);
            axpy(&mut d, -a, y);
        }
        if let Some((s, y, _)) = hist.back() {
            let gamma = dot(s, y) / dot(y, y).max(1e-300);
            for e in d.iter_mut() {
                *e *= gamma.max(1e-12);
            }
        }
        for ((s, y, rho), &a) in hist.iter().zip(alphas.iter().rev()) {
            let b = rho * dot(y, &d);
            axpy(&mut d, a - b, s);
        }
        // Safeguard: ensure descent, else fall back to steepest descent.
        if dot(&d, &g) >= 0.0 {
            for i in 0..n {
                d[i] = -g[i];
            }
        }

        // Backtracking Armijo on the projected path x(t) = P(x + t d).
        let mut t = 1.0;
        let mut accepted = false;
        let mut fn_ = fx;
        for _ in 0..60 {
            for i in 0..n {
                xn[i] = (x[i] + t * d[i]).max(l[i]).min(u[i]);
            }
            fn_ = f.value(&xn);
            // Armijo with the projected step as the reference direction.
            let gs: f64 = (0..n).map(|i| g[i] * (xn[i] - x[i])).sum();
            if fn_ <= fx + 1e-4 * gs && gs < 0.0 {
                accepted = true;
                break;
            }
            // Also accept a plain decrease when the directional term
            // degenerates (fully active set).
            if gs >= 0.0 && fn_ < fx {
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        if !accepted {
            // A stale quasi-Newton model can defeat the line search far
            // from convergence; drop the history and retry from steepest
            // descent before giving up.
            if !hist.is_empty() && resets < 8 {
                hist.clear();
                resets += 1;
                continue;
            }
            return LbfgsResult {
                x,
                f: fx,
                pg_norm: pg,
                iterations: iter,
                converged: pg <= opts.tol,
            };
        }

        f.grad(&xn, &mut gn);
        for i in 0..n {
            sbuf[i] = xn[i] - x[i];
            ybuf[i] = gn[i] - g[i];
        }
        let ys = dot(&ybuf, &sbuf);
        if ys > 1e-12 * dot(&ybuf, &ybuf).sqrt() * dot(&sbuf, &sbuf).sqrt() {
            if hist.len() == opts.memory {
                // Recycle the evicted pair's buffers instead of
                // allocating a fresh one per retained step.
                let (mut so, mut yo, _) = hist.pop_front().expect("history non-empty");
                so.copy_from_slice(&sbuf);
                yo.copy_from_slice(&ybuf);
                hist.push_back((so, yo, 1.0 / ys));
            } else {
                hist.push_back((sbuf.clone(), ybuf.clone(), 1.0 / ys));
            }
        }
        std::mem::swap(&mut x, &mut xn);
        fx = fn_;
        std::mem::swap(&mut g, &mut gn);
        pg = pg_norm(&x, &g, l, u);
    }

    LbfgsResult {
        x,
        f: fx,
        pg_norm: pg,
        iterations: opts.max_iter,
        converged: pg <= opts.tol,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    for i in 0..y.len() {
        y[i] += a * x[i];
    }
}

fn pg_norm(x: &[f64], g: &[f64], l: &[f64], u: &[f64]) -> f64 {
    let mut worst: f64 = 0.0;
    for i in 0..x.len() {
        let t = (x[i] - g[i]).max(l[i]).min(u[i]);
        worst = worst.max((x[i] - t).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Rosen;
    impl GradFn for Rosen {
        fn n(&self) -> usize {
            2
        }
        fn value(&mut self, x: &[f64]) -> f64 {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        }
        fn grad(&mut self, x: &[f64], g: &mut [f64]) {
            g[0] = -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]);
            g[1] = 200.0 * (x[1] - x[0] * x[0]);
        }
    }

    struct Quad {
        center: Vec<f64>,
    }
    impl GradFn for Quad {
        fn n(&self) -> usize {
            self.center.len()
        }
        fn value(&mut self, x: &[f64]) -> f64 {
            x.iter()
                .zip(&self.center)
                .map(|(a, c)| (a - c) * (a - c))
                .sum()
        }
        fn grad(&mut self, x: &[f64], g: &mut [f64]) {
            for i in 0..x.len() {
                g[i] = 2.0 * (x[i] - self.center[i]);
            }
        }
    }

    const INF: f64 = f64::INFINITY;

    #[test]
    fn rosenbrock_unbounded() {
        let r = minimize(
            &mut Rosen,
            &[-1.2, 1.0],
            &[-INF; 2],
            &[INF; 2],
            &LbfgsOptions {
                tol: 1e-9,
                max_iter: 2000,
                memory: 10,
            },
        );
        assert!(r.converged, "{r:?}");
        assert!((r.x[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn quadratic_with_active_bounds() {
        let mut q = Quad {
            center: vec![5.0, -5.0, 0.5],
        };
        let r = minimize(
            &mut q,
            &[0.0; 3],
            &[0.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0],
            &LbfgsOptions::default(),
        );
        assert!(r.converged, "{r:?}");
        assert!((r.x[0] - 1.0).abs() < 1e-8);
        assert!(r.x[1].abs() < 1e-8);
        assert!((r.x[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn already_optimal() {
        let mut q = Quad { center: vec![0.3] };
        let r = minimize(&mut q, &[0.3], &[0.0], &[1.0], &LbfgsOptions::default());
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }
}
