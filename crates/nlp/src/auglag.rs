//! Augmented-Lagrangian outer loop (the LANCELOT algorithm).
//!
//! Solves `min f(x) s.t. c(x) = 0, l <= x <= u` by repeatedly minimising
//! the augmented Lagrangian
//!
//! ```text
//! L_A(x; lambda, rho) = f(x) - lambda' c(x) + (rho/2) |c(x)|^2
//! ```
//!
//! over the bound box with the trust-region Newton-CG solver of
//! [`crate::tr`], then updating multipliers (`lambda <- lambda - rho c`)
//! when feasibility improves on schedule and increasing `rho` otherwise —
//! the classic Conn-Gould-Toint safeguarded scheme LANCELOT implements.

use crate::cache::{CachedProblem, EvalCounts};
use crate::problem::NlpProblem;
use crate::sparse::{CsrMatrix, SymTriplets};
use crate::tr::{self, SmoothFn, TrOptions};
use sgs_trace::{OuterRecord, SolveRecord, TraceEvent, Tracer};
use std::time::Instant;

/// Options for [`solve`].
#[derive(Debug, Clone)]
pub struct AugLagOptions {
    /// Feasibility tolerance on the constraint infinity norm.
    pub tol_feas: f64,
    /// Optimality tolerance on the projected gradient of the augmented
    /// Lagrangian.
    pub tol_opt: f64,
    /// Initial penalty parameter.
    pub rho0: f64,
    /// Penalty multiplication factor when feasibility stalls.
    pub rho_mult: f64,
    /// Maximum outer (multiplier/penalty) iterations.
    pub max_outer: usize,
    /// Cap on the penalty parameter (beyond it the run is declared stalled).
    pub rho_max: f64,
    /// Wall-clock budget in seconds; when exceeded the solve returns the
    /// best point found with [`SolveStatus::TimeBudget`] at the next
    /// outer-iteration boundary. `None` means unlimited.
    pub max_seconds: Option<f64>,
    /// Inner trust-region settings (tolerance is overridden by the outer
    /// schedule; `max_iter` applies per inner solve).
    pub inner: TrOptions,
}

impl Default for AugLagOptions {
    fn default() -> Self {
        AugLagOptions {
            tol_feas: 1e-7,
            tol_opt: 1e-6,
            rho0: 10.0,
            rho_mult: 10.0,
            max_outer: 40,
            rho_max: 1e12,
            max_seconds: None,
            inner: TrOptions {
                max_iter: 200,
                ..Default::default()
            },
        }
    }
}

/// Termination status of [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// First-order optimal within tolerances.
    Converged,
    /// Outer-iteration budget exhausted; the returned point is the best
    /// found.
    MaxIterations,
    /// The penalty parameter reached its cap without achieving
    /// feasibility — the problem is likely infeasible or badly scaled.
    PenaltyCap,
    /// A non-finite objective, constraint value or iterate appeared; the
    /// offending iterate is recorded in the trace (and returned). The
    /// structured replacement for propagating NaN garbage silently.
    Diverged,
    /// The wall-clock budget ([`AugLagOptions::max_seconds`]) ran out.
    TimeBudget,
}

impl SolveStatus {
    /// True for [`SolveStatus::Converged`].
    pub fn is_success(self) -> bool {
        self == SolveStatus::Converged
    }

    /// Stable lowercase tag for machine-readable reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SolveStatus::Converged => "converged",
            SolveStatus::MaxIterations => "max_iterations",
            SolveStatus::PenaltyCap => "penalty_cap",
            SolveStatus::Diverged => "diverged",
            SolveStatus::TimeBudget => "time_budget",
        }
    }
}

/// Result of [`solve`].
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Objective at `x`.
    pub f: f64,
    /// Constraint infinity norm at `x`.
    pub c_norm: f64,
    /// Final multiplier estimates.
    pub lambda: Vec<f64>,
    /// Final penalty parameter.
    pub rho: f64,
    /// Outer iterations used.
    pub outer_iterations: usize,
    /// Total inner trust-region iterations.
    pub inner_iterations: usize,
    /// Total inner CG iterations.
    pub cg_iterations: usize,
    /// Underlying problem evaluations actually performed (same-point
    /// repeats are served by the evaluation cache and not counted here).
    pub evals: EvalCounts,
    /// Termination status.
    pub status: SolveStatus,
}

/// Solver state carried from one solve into the next: the final iterate,
/// multiplier estimates and penalty parameter of a previous
/// [`SolveResult`].
///
/// A warm start from a converged point re-verifies optimality in a single
/// outer iteration (the first inner solve cannot move the iterate, the
/// feasibility and projected-gradient checks both pass immediately), so a
/// re-solve after a small spec or size perturbation costs a fraction of a
/// cold run. Non-finite carried state is never trusted: [`solve_cached`]
/// checks [`WarmStart::is_usable`] and silently falls back to the cold
/// start (`lambda = 0`, `rho = rho0`) when a previous solve diverged into
/// NaN territory.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Starting iterate (projected into the bounds before use).
    pub x: Vec<f64>,
    /// Multiplier estimates.
    pub lambda: Vec<f64>,
    /// Penalty parameter.
    pub rho: f64,
}

impl WarmStart {
    /// Captures the carry-over state of a finished solve.
    pub fn from_result(r: &SolveResult) -> Self {
        WarmStart {
            x: r.x.clone(),
            lambda: r.lambda.clone(),
            rho: r.rho,
        }
    }

    /// True when the state is dimensionally compatible with a problem of
    /// `n` variables and `m` constraints and every number in it is finite
    /// (with a positive penalty) — the admission test for warm starting.
    pub fn is_usable(&self, n: usize, m: usize) -> bool {
        self.x.len() == n
            && self.lambda.len() == m
            && self.rho.is_finite()
            && self.rho > 0.0
            && self.x.iter().all(|v| v.is_finite())
            && self.lambda.iter().all(|v| v.is_finite())
    }
}

/// The augmented Lagrangian of an [`NlpProblem`] as a [`SmoothFn`].
struct AugLagFn<'a, P: NlpProblem> {
    p: &'a P,
    lambda: Vec<f64>,
    rho: f64,
    // Scratch.
    c: Vec<f64>,
    jac_vals: Vec<f64>,
    jac: CsrMatrix,
    hess_vals: Vec<f64>,
    hess: SymTriplets,
    jv: Vec<f64>,
    lambda_eff: Vec<f64>,
}

impl<'a, P: NlpProblem> AugLagFn<'a, P> {
    fn new(p: &'a P, lambda: Vec<f64>, rho: f64) -> Self {
        let m = p.num_constraints();
        let n = p.num_vars();
        let jstruct = p.jacobian_structure();
        let hstruct = p.hessian_structure();
        AugLagFn {
            p,
            lambda,
            rho,
            c: vec![0.0; m],
            jac_vals: vec![0.0; jstruct.len()],
            jac: CsrMatrix::from_structure(m, n, &jstruct),
            hess_vals: vec![0.0; hstruct.len()],
            hess: SymTriplets::from_structure(n, &hstruct),
            jv: vec![0.0; m],
            lambda_eff: vec![0.0; m],
        }
    }
}

impl<P: NlpProblem> SmoothFn for AugLagFn<'_, P> {
    fn n(&self) -> usize {
        self.p.num_vars()
    }

    fn value(&mut self, x: &[f64]) -> f64 {
        let f = self.p.objective(x);
        self.p.constraints(x, &mut self.c);
        let mut v = f;
        for (i, &ci) in self.c.iter().enumerate() {
            v += -self.lambda[i] * ci + 0.5 * self.rho * ci * ci;
        }
        v
    }

    fn grad(&mut self, x: &[f64], g: &mut [f64]) {
        self.p.gradient(x, g);
        self.p.constraints(x, &mut self.c);
        self.p.jacobian_values(x, &mut self.jac_vals);
        self.jac.set_values(&self.jac_vals);
        // g += J' (rho c - lambda)
        for i in 0..self.c.len() {
            self.jv[i] = self.rho * self.c[i] - self.lambda[i];
        }
        self.jac.mul_transpose_vec_add(&self.jv, g);
    }

    fn prepare_hess(&mut self, x: &[f64]) {
        self.p.constraints(x, &mut self.c);
        self.p.jacobian_values(x, &mut self.jac_vals);
        self.jac.set_values(&self.jac_vals);
        // Lagrangian part with effective multipliers rho c - lambda
        // (trait convention: H = sigma H_f + sum lambda_i H_ci).
        for i in 0..self.c.len() {
            self.lambda_eff[i] = self.rho * self.c[i] - self.lambda[i];
        }
        self.p
            .hessian_values(x, 1.0, &self.lambda_eff, &mut self.hess_vals);
        self.hess.set_values(&self.hess_vals);
    }

    fn hess_vec(&mut self, v: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        self.hess.mul_vec_add(v, out);
        // Gauss-Newton term rho J' (J v), through the reused `jv` scratch:
        // this runs once per CG iteration and must not allocate.
        self.jac.mul_vec(v, &mut self.jv);
        for e in self.jv.iter_mut() {
            *e *= self.rho;
        }
        self.jac.mul_transpose_vec_add(&self.jv, out);
    }
}

fn c_inf_norm(c: &[f64]) -> f64 {
    c.iter().fold(0.0f64, |a, &v| a.max(v.abs()))
}

/// Evaluations performed between two cache-counter snapshots, so a solve
/// over a reused [`CachedProblem`] reports only its own work.
fn counts_since(now: EvalCounts, before: EvalCounts) -> EvalCounts {
    EvalCounts {
        objective: now.objective - before.objective,
        gradient: now.gradient - before.gradient,
        constraints: now.constraints - before.constraints,
        jacobian: now.jacobian - before.jacobian,
        hessian: now.hessian - before.hessian,
    }
}

/// Solves the problem with the augmented-Lagrangian method starting from
/// `x0` (projected into the bounds).
///
/// Unconstrained problems (`m == 0`) collapse to a single bound-constrained
/// trust-region solve.
///
/// Equivalent to [`solve_traced`] with the disabled tracer; the traced
/// variant with a `NopSink` performs bit-identical arithmetic (same
/// iterates, same evaluation counts) — tracing only *reads* quantities
/// the solver computes anyway.
///
/// # Panics
///
/// Panics if `x0.len() != problem.num_vars()`.
pub fn solve<P: NlpProblem>(problem: &P, x0: &[f64], opts: &AugLagOptions) -> SolveResult {
    solve_traced(problem, x0, opts, Tracer::none())
}

/// [`solve`] reporting structured progress to `tracer`: one
/// `outer_iteration` convergence record per outer iteration, one
/// `inner_tr` phase span per inner solve, a `diverged` record carrying the
/// offending iterate when a non-finite value appears, and a final
/// `solve_done` record.
///
/// # Panics
///
/// Panics if `x0.len() != problem.num_vars()`.
pub fn solve_traced<P: NlpProblem>(
    problem: &P,
    x0: &[f64],
    opts: &AugLagOptions,
    tracer: Tracer<'_>,
) -> SolveResult {
    // Every evaluation below goes through a last-point cache: the merit
    // value, gradient and Hessian preparation all query constraints (and
    // the latter two the Jacobian) at the same iterate, so caching
    // removes two constraint sweeps and one Jacobian sweep per inner
    // iteration without changing a single bit of the arithmetic.
    solve_cached(&CachedProblem::new(problem), x0, None, opts, tracer)
}

/// [`solve`] seeded with the carried-over state of a previous solve.
///
/// A usable `warm` replaces the cold start (`x0`, zero multipliers,
/// `rho0`); an unusable one — wrong dimensions or non-finite, e.g. taken
/// from a diverged result — is ignored and the solve proceeds cold from
/// `x0`. Pass `None` for an explicit cold solve.
///
/// # Panics
///
/// Panics if `x0.len() != problem.num_vars()`.
pub fn solve_warm<P: NlpProblem>(
    problem: &P,
    x0: &[f64],
    warm: Option<&WarmStart>,
    opts: &AugLagOptions,
) -> SolveResult {
    solve_warm_traced(problem, x0, warm, opts, Tracer::none())
}

/// [`solve_warm`] reporting structured progress to `tracer`. When a warm
/// start is offered, a `warm_start_hit` counter records whether it was
/// accepted (1) or fell back to the cold start (0).
///
/// # Panics
///
/// Panics if `x0.len() != problem.num_vars()`.
pub fn solve_warm_traced<P: NlpProblem>(
    problem: &P,
    x0: &[f64],
    warm: Option<&WarmStart>,
    opts: &AugLagOptions,
    tracer: Tracer<'_>,
) -> SolveResult {
    solve_cached(&CachedProblem::new(problem), x0, warm, opts, tracer)
}

/// The full solver loop over a caller-owned [`CachedProblem`] — the entry
/// point for running several (warm-started) solves against one problem
/// while keeping the evaluation cache and its counters alive between
/// them. Reported [`SolveResult::evals`] are the evaluations *this* call
/// performed (the cumulative cache counters are snapshotted on entry).
///
/// # Panics
///
/// Panics if `x0.len() != problem.num_vars()`.
pub fn solve_cached<P: NlpProblem>(
    problem: &CachedProblem<'_, P>,
    x0: &[f64],
    warm: Option<&WarmStart>,
    opts: &AugLagOptions,
    tracer: Tracer<'_>,
) -> SolveResult {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    assert_eq!(x0.len(), n, "x0 length mismatch");
    let (l, u) = problem.bounds();
    let started = Instant::now();
    let counts0 = problem.counts();

    sgs_metrics::incr(sgs_metrics::Counter::NlpSolves);
    let accepted = warm.filter(|w| w.is_usable(n, m));
    if warm.is_some() {
        sgs_metrics::incr(sgs_metrics::Counter::NlpWarmOffered);
        if accepted.is_some() {
            sgs_metrics::incr(sgs_metrics::Counter::NlpWarmAccepted);
        }
        tracer.emit(|| TraceEvent::Counter {
            name: "warm_start_hit",
            value: u64::from(accepted.is_some()),
        });
    }
    let mut x = accepted.map_or_else(|| x0.to_vec(), |w| w.x.clone());
    tr::project(&mut x, l, u);
    let mut lambda = accepted.map_or_else(|| vec![0.0; m], |w| w.lambda.clone());
    let mut rho = accepted.map_or(opts.rho0, |w| w.rho);
    // Conn-Gould-Toint tolerance schedules.
    let mut omega = 1.0 / rho;
    let mut eta = 1.0 / rho.powf(0.1);
    let mut inner_total = 0usize;
    let mut cg_total = 0usize;

    let mut c = vec![0.0; m];
    let mut last_pg = f64::INFINITY;

    // Everything the ~245 inner and ~6,900 CG iterations touch is
    // allocated exactly once, here: the augmented-Lagrangian scratch
    // (constraint, multiplier and CSR value buffers) and the trust-region
    // workspace. The outer loop only refreshes `lambda`/`rho` in place.
    let mut al = AugLagFn::new(problem, lambda.clone(), rho);
    let mut ws = tr::SolveWorkspace::new(n);

    // Every exit funnels through here so the trace always ends with a
    // solve_done record matching the returned result.
    let finish = |x: Vec<f64>,
                  cn: f64,
                  lambda: Vec<f64>,
                  rho: f64,
                  outer_iterations: usize,
                  inner_total: usize,
                  cg_total: usize,
                  status: SolveStatus| {
        let result = SolveResult {
            f: problem.objective(&x),
            c_norm: cn,
            x,
            lambda,
            rho,
            outer_iterations,
            inner_iterations: inner_total,
            cg_iterations: cg_total,
            evals: counts_since(problem.counts(), counts0),
            status,
        };
        {
            use sgs_metrics::{add, incr, set_gauge, Counter, Gauge};
            if result.status == SolveStatus::Diverged {
                incr(Counter::NlpDiverged);
            }
            add(Counter::NlpEvalsObjective, result.evals.objective as u64);
            add(Counter::NlpEvalsGradient, result.evals.gradient as u64);
            add(
                Counter::NlpEvalsConstraints,
                result.evals.constraints as u64,
            );
            add(Counter::NlpEvalsJacobian, result.evals.jacobian as u64);
            add(Counter::NlpEvalsHessian, result.evals.hessian as u64);
            set_gauge(Gauge::NlpLastObjective, result.f);
            set_gauge(Gauge::NlpLastCNorm, result.c_norm);
        }
        tracer.emit(|| {
            TraceEvent::SolveDone(SolveRecord {
                status: result.status.as_str().to_string(),
                objective: result.f,
                c_norm: result.c_norm,
                outer_iterations: result.outer_iterations,
                inner_iterations: result.inner_iterations,
                evals: result.evals.into(),
            })
        });
        result
    };

    for outer in 0..opts.max_outer {
        // Wall-clock budget: checked at outer-iteration boundaries only,
        // so a within-budget run is untouched and an over-budget run
        // still returns a consistent (projected, evaluated) point.
        if outer > 0 {
            if let Some(max_seconds) = opts.max_seconds {
                if started.elapsed().as_secs_f64() > max_seconds {
                    problem.constraints(&x, &mut c);
                    let cn = c_inf_norm(&c);
                    return finish(
                        x,
                        cn,
                        lambda,
                        rho,
                        outer,
                        inner_total,
                        cg_total,
                        SolveStatus::TimeBudget,
                    );
                }
            }
        }

        // Dropped at every exit from this loop body (including the early
        // returns below), recording the iteration's wall-clock.
        let _outer_timer = sgs_metrics::time_hist(sgs_metrics::HistId::NlpOuterSeconds);
        al.lambda.copy_from_slice(&lambda);
        al.rho = rho;
        let inner_opts = TrOptions {
            tol: omega.max(opts.tol_opt * 0.1),
            ..opts.inner.clone()
        };
        let x_prev = x.clone();
        let inner_span = tracer.span("inner_tr");
        let inner_phase = sgs_metrics::phase(sgs_metrics::Phase::InnerTr);
        let r = tr::minimize_with(&mut al, &x, l, u, &inner_opts, &mut ws);
        drop(inner_phase);
        inner_span.finish();
        x = r.x;
        inner_total += r.iterations;
        cg_total += r.cg_iterations;
        last_pg = r.pg_norm;
        {
            use sgs_metrics::{add, incr, set_gauge, Counter, Gauge};
            incr(Counter::NlpOuterIterations);
            add(Counter::NlpInnerIterations, r.iterations as u64);
            add(Counter::NlpCgIterations, r.cg_iterations as u64);
            set_gauge(Gauge::NlpLastPgNorm, r.pg_norm);
        }

        problem.constraints(&x, &mut c);
        let cn = c_inf_norm(&c);

        // Stall detection input, doubling as the step-acceptance flag of
        // the convergence record: did the inner solve move the iterate?
        let moved = x
            .iter()
            .zip(&x_prev)
            .any(|(a, b)| (a - b).abs() > 1e-12 * (1.0 + a.abs()));

        tracer.emit(|| {
            TraceEvent::Outer(OuterRecord {
                outer,
                merit: r.f,
                c_norm: cn,
                pg_norm: r.pg_norm,
                rho,
                lambda_norm: lambda.iter().fold(0.0f64, |a, &v| a.max(v.abs())),
                inner_iterations: r.iterations,
                cg_iterations: r.cg_iterations,
                step_accepted: moved,
                inner_converged: r.converged,
            })
        });

        // NaN/Inf guard: a non-finite merit value, constraint norm or
        // iterate coordinate — or an inner solve stuck against
        // non-finite trial values (`bad_point`) — means the run left the
        // region where the model is meaningful. Stop with a structured
        // status instead of iterating on garbage; the trace records the
        // offending iterate.
        let poisoned = if !r.f.is_finite() {
            Some("inner merit value is non-finite")
        } else if !cn.is_finite() {
            Some("constraint norm is non-finite")
        } else if x.iter().any(|v| !v.is_finite()) {
            Some("iterate contains non-finite coordinates")
        } else if r.bad_point.is_some() {
            Some("inner solve stuck against non-finite trial values")
        } else {
            None
        };
        if let Some(detail) = poisoned {
            tracer.emit(|| TraceEvent::Diverged {
                outer,
                detail: detail.to_string(),
                x: r.bad_point.clone().unwrap_or_else(|| x.clone()),
            });
            return finish(
                x,
                cn,
                lambda,
                rho,
                outer + 1,
                inner_total,
                cg_total,
                SolveStatus::Diverged,
            );
        }

        // Stall detection: feasible and the inner solve cannot move the
        // iterate any further — no better point is reachable at this
        // arithmetic, so stop rather than spin to the iteration cap.
        if cn <= opts.tol_feas && !moved && outer > 0 {
            return finish(
                x,
                cn,
                lambda,
                rho,
                outer + 1,
                inner_total,
                cg_total,
                SolveStatus::Converged,
            );
        }

        if m == 0 || cn <= eta.max(opts.tol_feas) {
            if cn <= opts.tol_feas && last_pg <= opts.tol_opt {
                return finish(
                    x,
                    cn,
                    lambda,
                    rho,
                    outer + 1,
                    inner_total,
                    cg_total,
                    SolveStatus::Converged,
                );
            }
            // First-order multiplier update; tighten both tolerances.
            for i in 0..m {
                lambda[i] -= rho * c[i];
            }
            eta /= rho.powf(0.9);
            omega /= rho;
        } else {
            rho *= opts.rho_mult;
            if rho > opts.rho_max {
                return finish(
                    x,
                    cn,
                    lambda,
                    rho,
                    outer + 1,
                    inner_total,
                    cg_total,
                    SolveStatus::PenaltyCap,
                );
            }
            eta = 1.0 / rho.powf(0.1);
            omega = 1.0 / rho;
        }
    }

    problem.constraints(&x, &mut c);
    let cn = c_inf_norm(&c);
    let converged = cn <= opts.tol_feas && last_pg <= opts.tol_opt;
    let status = if converged {
        SolveStatus::Converged
    } else {
        SolveStatus::MaxIterations
    };
    finish(
        x,
        cn,
        lambda,
        rho,
        opts.max_outer,
        inner_total,
        cg_total,
        status,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_problems::*;

    #[test]
    fn unconstrained_rosenbrock() {
        let r = solve(&Rosenbrock, &[-1.2, 1.0], &AugLagOptions::default());
        assert!(r.status.is_success(), "{r:?}");
        assert!((r.x[0] - 1.0).abs() < 1e-5);
        assert!((r.x[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn linear_equality_quadratic() {
        // min x^2 + y^2 s.t. x + y = 1 -> (0.5, 0.5), lambda = 1.
        let r = solve(&SumToOne, &[3.0, -2.0], &AugLagOptions::default());
        assert!(r.status.is_success(), "{r:?}");
        assert!((r.x[0] - 0.5).abs() < 1e-5, "{:?}", r.x);
        assert!((r.x[1] - 0.5).abs() < 1e-5, "{:?}", r.x);
        assert!((r.lambda[0] - 1.0).abs() < 1e-3, "lambda {:?}", r.lambda);
    }

    #[test]
    fn hs6() {
        let r = solve(&Hs6, &[-1.2, 1.0], &AugLagOptions::default());
        assert!(r.status.is_success(), "{r:?}");
        assert!(r.f < 1e-8, "f = {}", r.f);
        assert!((r.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn hs7() {
        let r = solve(&Hs7, &[2.0, 2.0], &AugLagOptions::default());
        assert!(r.status.is_success(), "{r:?}");
        let want = -(3.0f64.sqrt());
        assert!((r.f - want).abs() < 1e-5, "f = {} want {}", r.f, want);
    }

    #[test]
    fn hs28() {
        let r = solve(&Hs28, &[-4.0, 1.0, 1.0], &AugLagOptions::default());
        assert!(r.status.is_success(), "{r:?}");
        assert!(r.f.abs() < 1e-7, "f = {}", r.f);
        assert!(r.c_norm < 1e-7);
    }

    #[test]
    fn hs48_and_hs51() {
        let r = solve(
            &Hs48,
            &[3.0, 5.0, -3.0, 2.0, -2.0],
            &AugLagOptions::default(),
        );
        assert!(r.status.is_success(), "{r:?}");
        assert!(r.f < 1e-8, "f = {}", r.f);
        for &xi in &r.x {
            assert!((xi - 1.0).abs() < 1e-4, "{:?}", r.x);
        }
        let r = solve(
            &Hs51,
            &[2.5, 0.5, 2.0, -1.0, 0.5],
            &AugLagOptions::default(),
        );
        assert!(r.status.is_success(), "{r:?}");
        assert!(r.f < 1e-8, "f = {}", r.f);
    }

    #[test]
    fn solutions_satisfy_kkt() {
        use crate::problem::kkt_residual;
        let r = solve(&SumToOne, &[3.0, -2.0], &AugLagOptions::default());
        assert!(kkt_residual(&SumToOne, &r.x, &r.lambda).within(1e-4));
        let r = solve(&Hs7, &[2.0, 2.0], &AugLagOptions::default());
        assert!(kkt_residual(&Hs7, &r.x, &r.lambda).within(1e-4));
        let r = solve(
            &Hs48,
            &[3.0, 5.0, -3.0, 2.0, -2.0],
            &AugLagOptions::default(),
        );
        let k = kkt_residual(&Hs48, &r.x, &r.lambda);
        assert!(k.within(1e-4), "{k:?}");
    }

    #[test]
    fn bounded_equality() {
        // min x + y s.t. x * y = 4, 1 <= x <= 10, 1 <= y <= 10.
        // Optimum x = y = 2, f = 4.
        let r = solve(&ProductBound, &[5.0, 5.0], &AugLagOptions::default());
        assert!(r.status.is_success(), "{r:?}");
        assert!((r.x[0] - 2.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] - 2.0).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn active_bound_with_constraint() {
        // min x + y s.t. x * y = 4, x >= 4 forces x = 4, y = 1.
        let p = ProductBoundTight;
        let r = solve(&p, &[5.0, 2.0], &AugLagOptions::default());
        assert!(r.status.is_success(), "{r:?}");
        assert!((r.x[0] - 4.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn infeasible_detected_by_penalty_cap() {
        // c(x) = x^2 + 1 = 0 has no real solution.
        let r = solve(
            &Infeasible,
            &[0.5],
            &AugLagOptions {
                max_outer: 60,
                ..Default::default()
            },
        );
        assert!(!r.status.is_success());
    }

    #[test]
    fn slack_inequality_pattern() {
        // min (x-3)^2 s.t. x <= 1 encoded as x + s - 1 = 0, s >= 0.
        let r = solve(&SlackIneq, &[0.0, 0.0], &AugLagOptions::default());
        assert!(r.status.is_success(), "{r:?}");
        assert!((r.x[0] - 1.0).abs() < 1e-5, "{:?}", r.x);
    }

    /// Counts underlying evaluations and the distinct points they were
    /// requested at, to prove the solver's evaluation cache works.
    struct Counting<'a, P: NlpProblem> {
        inner: &'a P,
        constraint_calls: std::cell::Cell<usize>,
        jacobian_calls: std::cell::Cell<usize>,
        constraint_points: std::cell::RefCell<std::collections::HashSet<Vec<u64>>>,
        jacobian_points: std::cell::RefCell<std::collections::HashSet<Vec<u64>>>,
    }

    impl<'a, P: NlpProblem> Counting<'a, P> {
        fn new(inner: &'a P) -> Self {
            Counting {
                inner,
                constraint_calls: Default::default(),
                jacobian_calls: Default::default(),
                constraint_points: Default::default(),
                jacobian_points: Default::default(),
            }
        }
    }

    fn bits(x: &[f64]) -> Vec<u64> {
        x.iter().map(|v| v.to_bits()).collect()
    }

    impl<P: NlpProblem> NlpProblem for Counting<'_, P> {
        fn num_vars(&self) -> usize {
            self.inner.num_vars()
        }
        fn num_constraints(&self) -> usize {
            self.inner.num_constraints()
        }
        fn bounds(&self) -> (&[f64], &[f64]) {
            self.inner.bounds()
        }
        fn objective(&self, x: &[f64]) -> f64 {
            self.inner.objective(x)
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            self.inner.gradient(x, g)
        }
        fn constraints(&self, x: &[f64], c: &mut [f64]) {
            self.constraint_calls.set(self.constraint_calls.get() + 1);
            self.constraint_points.borrow_mut().insert(bits(x));
            self.inner.constraints(x, c)
        }
        fn jacobian_structure(&self) -> Vec<(usize, usize)> {
            self.inner.jacobian_structure()
        }
        fn jacobian_values(&self, x: &[f64], vals: &mut [f64]) {
            self.jacobian_calls.set(self.jacobian_calls.get() + 1);
            self.jacobian_points.borrow_mut().insert(bits(x));
            self.inner.jacobian_values(x, vals)
        }
        fn hessian_structure(&self) -> Vec<(usize, usize)> {
            self.inner.hessian_structure()
        }
        fn hessian_values(&self, x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]) {
            self.inner.hessian_values(x, sigma, lambda, vals)
        }
    }

    #[test]
    fn cache_eliminates_same_point_reevaluation() {
        // Without the cache the merit value, gradient and Hessian prep
        // each evaluate constraints(x) (3x) and the latter two
        // jacobian_values(x) (2x) per inner iteration. With the cache,
        // every distinct point is evaluated at most once per quantity —
        // the counts below are exact equalities against the number of
        // distinct points seen.
        {
            let counting = Counting::new(&SumToOne);
            let r = solve(&counting, &[3.0, -2.0], &AugLagOptions::default());
            assert!(r.status.is_success(), "{r:?}");
            let c_calls = counting.constraint_calls.get();
            let c_points = counting.constraint_points.borrow().len();
            let j_calls = counting.jacobian_calls.get();
            let j_points = counting.jacobian_points.borrow().len();
            assert_eq!(
                c_calls, c_points,
                "constraints evaluated {c_calls}x for {c_points} distinct points"
            );
            assert_eq!(
                j_calls, j_points,
                "jacobian evaluated {j_calls}x for {j_points} distinct points"
            );
            // And the counter surfaced in the result agrees.
            assert_eq!(r.evals.constraints, c_calls);
            assert_eq!(r.evals.jacobian, j_calls);
        }
    }

    #[test]
    fn poisoned_objective_returns_diverged_with_iterate_in_trace() {
        use sgs_trace::{MemorySink, TraceEvent};
        let poisoned = PoisonAfter::new(&Hs7, 3);
        let sink = MemorySink::new();
        let r = solve_traced(
            &poisoned,
            &[2.0, 2.0],
            &AugLagOptions::default(),
            sgs_trace::Tracer::new(&sink),
        );
        assert_eq!(r.status, SolveStatus::Diverged, "{r:?}");
        assert!(!r.status.is_success());
        let diverged: Vec<_> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Diverged { outer, detail, x } => Some((outer, detail, x)),
                _ => None,
            })
            .collect();
        assert_eq!(diverged.len(), 1, "exactly one divergence record");
        let (_, detail, x) = &diverged[0];
        assert!(detail.contains("non-finite"), "{detail}");
        assert_eq!(x.len(), 2, "offending iterate recorded");
        // The final status record must agree.
        let done = sink.count(|e| matches!(e, TraceEvent::SolveDone(s) if s.status == "diverged"));
        assert_eq!(done, 1);
    }

    #[test]
    fn healthy_solve_emits_one_record_per_outer_iteration() {
        use sgs_trace::{MemorySink, TraceEvent};
        let sink = MemorySink::new();
        let r = solve_traced(
            &Hs7,
            &[2.0, 2.0],
            &AugLagOptions::default(),
            sgs_trace::Tracer::new(&sink),
        );
        assert!(r.status.is_success());
        let outer_records = sink.count(|e| matches!(e, TraceEvent::Outer(_)));
        assert_eq!(outer_records, r.outer_iterations);
        let spans = sink.count(|e| {
            matches!(
                e,
                TraceEvent::PhaseSpan {
                    phase: "inner_tr",
                    ..
                }
            )
        });
        assert_eq!(spans, r.outer_iterations);
        assert_eq!(sink.count(|e| matches!(e, TraceEvent::SolveDone(_))), 1);
    }

    #[test]
    fn nop_sink_solve_is_bit_identical_to_untraced() {
        let a = solve(&Hs7, &[2.0, 2.0], &AugLagOptions::default());
        let b = solve_traced(
            &Hs7,
            &[2.0, 2.0],
            &AugLagOptions::default(),
            sgs_trace::Tracer::none(),
        );
        let sink = sgs_trace::MemorySink::new();
        let c = solve_traced(
            &Hs7,
            &[2.0, 2.0],
            &AugLagOptions::default(),
            sgs_trace::Tracer::new(&sink),
        );
        for other in [&b, &c] {
            assert_eq!(a.x, other.x);
            assert_eq!(a.f.to_bits(), other.f.to_bits());
            assert_eq!(a.evals, other.evals);
            assert_eq!(a.status, other.status);
        }
    }

    #[test]
    fn time_budget_returns_structured_status() {
        // A zero budget trips at the first outer-iteration boundary.
        let r = solve(
            &Hs7,
            &[2.0, 2.0],
            &AugLagOptions {
                max_seconds: Some(0.0),
                ..Default::default()
            },
        );
        assert_eq!(r.status, SolveStatus::TimeBudget, "{r:?}");
        assert!(r.outer_iterations >= 1);
        assert!(r.x.iter().all(|v| v.is_finite()));
        // A generous budget never trips.
        let r = solve(
            &Hs7,
            &[2.0, 2.0],
            &AugLagOptions {
                max_seconds: Some(1e6),
                ..Default::default()
            },
        );
        assert!(r.status.is_success());
    }

    #[test]
    fn status_tags_are_stable() {
        assert_eq!(SolveStatus::Converged.as_str(), "converged");
        assert_eq!(SolveStatus::Diverged.as_str(), "diverged");
        assert_eq!(SolveStatus::TimeBudget.as_str(), "time_budget");
        assert_eq!(SolveStatus::PenaltyCap.as_str(), "penalty_cap");
        assert_eq!(SolveStatus::MaxIterations.as_str(), "max_iterations");
    }

    #[test]
    fn cached_solve_matches_uncached_trajectory() {
        // The cache must be a pure memo: solving through it yields the
        // exact same iterate as the seed implementation did (the final
        // point of Hs7 with default options), bit-for-bit determinism
        // being guaranteed by bitwise-x keying.
        let a = solve(&Hs7, &[2.0, 2.0], &AugLagOptions::default());
        let b = solve(&Hs7, &[2.0, 2.0], &AugLagOptions::default());
        assert_eq!(a.x, b.x);
        assert_eq!(a.f.to_bits(), b.f.to_bits());
        assert_eq!(a.evals, b.evals);
    }
}
