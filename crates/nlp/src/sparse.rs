//! Minimal sparse kernels: CSR Jacobian and symmetric triplet Hessian
//! products. These are the only linear-algebra operations the matrix-free
//! trust-region Newton-CG solver needs.

// Index-form loops mirror the textbook kernels; iterator chains obscure
// the row/column structure here.
#![allow(clippy::needless_range_loop)]

/// A sparse matrix in CSR form built from `(row, col)` triplets with a
/// fixed structure and refreshable values — the shape of an NLP Jacobian.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// Permutation from triplet order to CSR storage order.
    perm: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds the CSR skeleton from a triplet structure. Duplicate entries
    /// are kept (products sum them naturally).
    ///
    /// # Panics
    ///
    /// Panics if a triplet index is out of range.
    pub fn from_structure(nrows: usize, ncols: usize, structure: &[(usize, usize)]) -> Self {
        let nnz = structure.len();
        let mut row_counts = vec![0usize; nrows];
        for &(r, c) in structure {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of range");
            row_counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for r in 0..nrows {
            row_ptr[r + 1] = row_ptr[r] + row_counts[r];
        }
        let mut next = row_ptr[..nrows].to_vec();
        let mut col_idx = vec![0usize; nnz];
        let mut perm = vec![0usize; nnz];
        for (k, &(r, c)) in structure.iter().enumerate() {
            let slot = next[r];
            next[r] += 1;
            col_idx[slot] = c;
            perm[k] = slot;
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            perm,
            vals: vec![0.0; nnz],
        }
    }

    /// Refreshes the values from triplet-ordered `vals`.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len()` differs from the structure size.
    pub fn set_values(&mut self, vals: &[f64]) {
        assert_eq!(vals.len(), self.perm.len(), "value count mismatch");
        for (k, &v) in vals.iter().enumerate() {
            self.vals[self.perm[k]] = v;
        }
    }

    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for r in 0..self.nrows {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// `y += A^T x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_transpose_vec_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        for r in 0..self.nrows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                y[self.col_idx[k]] += self.vals[k] * xr;
            }
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }
}

/// A symmetric matrix stored as lower-triangle triplets (`row >= col`),
/// with a fixed structure and refreshable values — the shape of a
/// Lagrangian Hessian.
#[derive(Debug, Clone)]
pub struct SymTriplets {
    n: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl SymTriplets {
    /// Builds the skeleton from a lower-triangle structure.
    ///
    /// # Panics
    ///
    /// Panics if an entry has `row < col` or is out of range.
    pub fn from_structure(n: usize, structure: &[(usize, usize)]) -> Self {
        let mut rows = Vec::with_capacity(structure.len());
        let mut cols = Vec::with_capacity(structure.len());
        for &(r, c) in structure {
            assert!(r < n && c < n, "triplet ({r},{c}) out of range");
            assert!(r >= c, "structure must be lower triangle, got ({r},{c})");
            rows.push(r);
            cols.push(c);
        }
        let vals = vec![0.0; structure.len()];
        SymTriplets {
            n,
            rows,
            cols,
            vals,
        }
    }

    /// Refreshes the values (triplet order).
    ///
    /// # Panics
    ///
    /// Panics if `vals.len()` differs from the structure size.
    pub fn set_values(&mut self, vals: &[f64]) {
        assert_eq!(vals.len(), self.vals.len(), "value count mismatch");
        self.vals.copy_from_slice(vals);
    }

    /// `y += H x` for the full symmetric matrix.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for k in 0..self.vals.len() {
            let (r, c, v) = (self.rows[k], self.cols[k], self.vals[k]);
            y[r] += v * x[c];
            if r != c {
                y[c] += v * x[r];
            }
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_matches_dense() {
        // A = [[1, 0, 2], [0, 3, 0]] with a duplicate on (0,2): 2 = 1.5+0.5.
        let structure = [(0, 0), (0, 2), (1, 1), (0, 2)];
        let mut a = CsrMatrix::from_structure(2, 3, &structure);
        a.set_values(&[1.0, 1.5, 3.0, 0.5]);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 2];
        a.mul_vec(&x, &mut y);
        assert_eq!(y, [1.0 + 6.0, 6.0]);
        let mut z = [0.0; 3];
        a.mul_transpose_vec_add(&[1.0, 1.0], &mut z);
        assert_eq!(z, [1.0, 3.0, 2.0]);
    }

    #[test]
    fn sym_matches_dense() {
        // H = [[2, 1], [1, 4]] stored as lower triangle.
        let mut h = SymTriplets::from_structure(2, &[(0, 0), (1, 0), (1, 1)]);
        h.set_values(&[2.0, 1.0, 4.0]);
        let mut y = [0.0; 2];
        h.mul_vec_add(&[1.0, 2.0], &mut y);
        assert_eq!(y, [4.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "lower triangle")]
    fn sym_rejects_upper() {
        let _ = SymTriplets::from_structure(2, &[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn csr_rejects_out_of_range() {
        let _ = CsrMatrix::from_structure(2, 2, &[(5, 0)]);
    }
}
