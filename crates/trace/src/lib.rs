//! Structured solver observability with pluggable sinks.
//!
//! The optimisation stack (`sgs-nlp::auglag`, `sgs-core::sizer`,
//! `sgs-ssta`) reports its progress as typed [`TraceEvent`]s — one
//! convergence record per augmented-Lagrangian outer iteration, one
//! [`TraceEvent::PhaseSpan`] per instrumented wall-clock phase, counters,
//! divergence/restart records, and a final machine-readable run report —
//! delivered to a caller-supplied [`TraceSink`]:
//!
//! - [`NopSink`]: the default. Reports itself as disabled, so every event
//!   constructor is skipped entirely — the hot path performs **no
//!   allocation and no formatting** (see `tests/alloc_noop.rs`, which
//!   proves it with a counting global allocator).
//! - [`MemorySink`]: a bounded in-memory ring buffer, for tests and
//!   programmatic inspection.
//! - [`JsonlSink`]: one JSON object per line to a file, the
//!   machine-readable format the bench binaries emit under `--trace=FILE`
//!   and CI validates with [`json::validate_jsonl`].
//!
//! Producers never talk to a sink directly; they hold a cheap, `Copy`
//! [`Tracer`] handle and call [`Tracer::emit`] with a closure, which is
//! only invoked when the sink is enabled:
//!
//! ```
//! use sgs_trace::{MemorySink, TraceEvent, Tracer};
//! let sink = MemorySink::new();
//! let tracer = Tracer::new(&sink);
//! {
//!     let _span = tracer.span("ssta"); // records a PhaseSpan on drop
//!     tracer.emit(|| TraceEvent::Counter { name: "gates", value: 7 });
//! }
//! assert_eq!(sink.len(), 2);
//! assert!(sink.span_seconds("ssta") >= 0.0);
//! ```

pub mod chrome;
pub mod json;
pub mod request;
pub mod ring;
pub mod shadow;

pub use request::{RequestContext, RequestTrace};
pub use ring::RingSink;

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Underlying problem-evaluation counts attached to solve-level events.
///
/// Mirrors `sgs-nlp`'s `EvalCounts` without depending on it (this crate is
/// a leaf; the solver crates depend on *it*).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalReport {
    /// Objective evaluations.
    pub objective: u64,
    /// Objective-gradient evaluations.
    pub gradient: u64,
    /// Constraint-vector evaluations.
    pub constraints: u64,
    /// Jacobian-value evaluations.
    pub jacobian: u64,
    /// Lagrangian-Hessian evaluations.
    pub hessian: u64,
}

/// One augmented-Lagrangian outer-iteration convergence record.
#[derive(Debug, Clone, PartialEq)]
pub struct OuterRecord {
    /// Outer (multiplier/penalty) iteration index, 0-based.
    pub outer: usize,
    /// Merit (augmented-Lagrangian) value at the iterate.
    pub merit: f64,
    /// Constraint infinity norm (KKT feasibility residual).
    pub c_norm: f64,
    /// Projected-gradient infinity norm of the augmented Lagrangian
    /// (KKT stationarity residual at the current multipliers).
    pub pg_norm: f64,
    /// Penalty parameter in force for this iteration.
    pub rho: f64,
    /// Infinity norm of the multiplier estimates.
    pub lambda_norm: f64,
    /// Inner trust-region iterations spent in this outer iteration.
    pub inner_iterations: usize,
    /// Inner CG iterations spent in this outer iteration.
    pub cg_iterations: usize,
    /// Whether the inner solve moved the iterate (step acceptance).
    pub step_accepted: bool,
    /// Whether the inner solve reached its own tolerance.
    pub inner_converged: bool,
}

/// Final record of one solver invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRecord {
    /// Terminal status (`"converged"`, `"max_iterations"`,
    /// `"penalty_cap"`, `"diverged"`, `"time_budget"`, ...).
    pub status: String,
    /// Final objective value.
    pub objective: f64,
    /// Final constraint infinity norm.
    pub c_norm: f64,
    /// Outer iterations used.
    pub outer_iterations: usize,
    /// Total inner iterations used.
    pub inner_iterations: usize,
    /// Underlying problem evaluations performed.
    pub evals: EvalReport,
}

/// Machine-readable summary of one bench-binary run (the `--trace=FILE`
/// run report).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Producing binary (e.g. `"size_blif"`).
    pub bin: String,
    /// Circuit or workload identifier.
    pub circuit: String,
    /// Outcome status (`"ok"`, solver status, or an error string).
    pub status: String,
    /// Final objective value (NaN when not applicable).
    pub objective: f64,
    /// `mu_Tmax` at the solution (NaN when not applicable).
    pub mu: f64,
    /// `sigma_Tmax` at the solution (NaN when not applicable).
    pub sigma: f64,
    /// Area `sum S_i` at the solution (NaN when not applicable).
    pub area: f64,
    /// Wall-clock seconds of the run.
    pub seconds: f64,
    /// Underlying problem evaluations, when a solver ran.
    pub evals: EvalReport,
    /// Clark variance clamps that fired during the run (the
    /// `clark_var_clamped` counter; 0 when no solver ran or none fired).
    pub clark_var_clamps: u64,
}

/// A structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One outer-iteration convergence record.
    Outer(OuterRecord),
    /// A named wall-clock span, recorded when its guard drops.
    PhaseSpan {
        /// Phase name (e.g. `"ssta"`, `"inner_tr"`, `"auglag"`).
        phase: &'static str,
        /// Span duration in seconds.
        seconds: f64,
    },
    /// A named counter sample.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Counter value.
        value: u64,
    },
    /// Divergence detected (non-finite objective/constraints/iterate):
    /// the structured replacement for silent garbage.
    Diverged {
        /// Outer iteration at which divergence was detected.
        outer: usize,
        /// Human-readable description of which quantity went non-finite.
        detail: String,
        /// The offending iterate.
        x: Vec<f64>,
    },
    /// A multi-start restart or fallback decision by the sizing driver.
    Restart {
        /// Attempt number (1-based; 0 is the original attempt).
        attempt: usize,
        /// Strategy (`"perturbed"`, `"greedy_fallback"`) and reason.
        reason: String,
    },
    /// Final record of a solver invocation.
    SolveDone(SolveRecord),
    /// One incremental what-if query served by the `what_if` bench bin.
    WhatIfQuery {
        /// Query index within the session (0-based).
        query: usize,
        /// Gates whose arrival the incremental engine recomputed (the
        /// whole circuit on the `--full` path).
        gates_recomputed: u64,
        /// Whether the full from-scratch path served the query.
        full: bool,
        /// Wall-clock seconds of the query.
        seconds: f64,
    },
    /// One HTTP request served (or rejected at admission) by the
    /// `sgs-serve` daemon: the per-request trace id plus its routing and
    /// session outcome.
    ServeRequest {
        /// Monotonic per-server request id (also echoed to the client as
        /// the response's `"request_id"` field).
        id: u64,
        /// Route name (`"solve"`, `"health"`, ...; `"admission"` for
        /// connections rejected before parsing).
        route: String,
        /// HTTP status code of the response.
        status: u16,
        /// Stable error code for non-2xx responses, empty otherwise.
        code: String,
        /// Session key (hex) the request resolved to, empty for
        /// sessionless routes.
        session: String,
        /// Whether an existing warm session served the request.
        session_hit: bool,
        /// Wall-clock seconds from parsed request to rendered response.
        seconds: f64,
    },
    /// Final machine-readable report of a bench-binary run.
    Run(RunReport),
}

impl TraceEvent {
    /// Stable kind tag used as the `"event"` field of the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Outer(_) => "outer_iteration",
            TraceEvent::PhaseSpan { .. } => "phase_span",
            TraceEvent::Counter { .. } => "counter",
            TraceEvent::Diverged { .. } => "diverged",
            TraceEvent::Restart { .. } => "restart",
            TraceEvent::SolveDone(_) => "solve_done",
            TraceEvent::WhatIfQuery { .. } => "what_if_query",
            TraceEvent::ServeRequest { .. } => "serve_request",
            TraceEvent::Run(_) => "run_report",
        }
    }
}

/// Receiver of [`TraceEvent`]s.
///
/// Implementations must tolerate events from any producer in any order.
/// `enabled` is the *contract with the hot path*: when it returns `false`,
/// producers skip event construction entirely, so `record` is never
/// called.
pub trait TraceSink: Sync {
    /// Whether events should be constructed and delivered at all.
    fn enabled(&self) -> bool {
        true
    }
    /// Delivers one event.
    fn record(&self, event: &TraceEvent);
    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// The disabled sink: [`TraceSink::enabled`] is `false` and `record` is
/// unreachable in practice. This is the default everywhere tracing is
/// optional.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopSink;

impl TraceSink for NopSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: &TraceEvent) {}
}

/// The shared no-op sink [`Tracer::none`] points at.
pub static NOP_SINK: NopSink = NopSink;

/// A bounded in-memory ring buffer of events, for tests and programmatic
/// inspection. When full, the oldest event is dropped.
#[derive(Debug)]
pub struct MemorySink {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl MemorySink {
    /// A ring holding up to 65 536 events.
    pub fn new() -> Self {
        Self::with_capacity(65_536)
    }

    /// A ring holding up to `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        MemorySink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether no event has been recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Number of buffered events satisfying `pred`.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| pred(e))
            .count()
    }

    /// Total seconds recorded by `PhaseSpan` events named `phase`.
    pub fn span_seconds(&self, phase: &str) -> f64 {
        self.events
            .lock()
            .unwrap()
            .iter()
            .map(|e| match e {
                TraceEvent::PhaseSpan { phase: p, seconds } if *p == phase => *seconds,
                _ => 0.0,
            })
            .sum()
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        let mut q = self.events.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event.clone());
    }
}

/// Writes one JSON object per event to a file (JSON Lines). Best-effort:
/// I/O errors after creation are swallowed — observability must never
/// fail the solve it observes.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` for writing.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        let mut line = json::to_json(event);
        line.push('\n');
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

/// Cheap, copyable handle producers thread through their call stacks.
///
/// The closure passed to [`Tracer::emit`] runs only when the tracer is
/// active, so event payloads (strings, iterate vectors) are never built
/// on the disabled path.
///
/// Besides the sink, a tracer may carry a borrowed
/// [`request::RequestContext`] (see [`Tracer::attach`]): spans then also
/// land in the request's span tree, and counter events become request
/// notes — this is how the daemon attributes solver phases to the HTTP
/// request that triggered them. A tracer with a context is active even
/// when its sink is [`NopSink`].
#[derive(Clone, Copy)]
pub struct Tracer<'a> {
    sink: &'a dyn TraceSink,
    ctx: Option<&'a request::RequestContext>,
}

impl std::fmt::Debug for Tracer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field(
                "request",
                &self.ctx.map(request::RequestContext::request_id),
            )
            .finish()
    }
}

impl<'a> Tracer<'a> {
    /// A tracer delivering to `sink`.
    pub fn new(sink: &'a dyn TraceSink) -> Self {
        Tracer { sink, ctx: None }
    }

    /// The disabled tracer (delivers to [`NOP_SINK`]).
    pub fn none() -> Tracer<'static> {
        Tracer {
            sink: &NOP_SINK,
            ctx: None,
        }
    }

    /// This tracer, additionally delivering spans and counters to the
    /// given request context (`None` leaves the tracer unchanged). The
    /// result's lifetime shrinks to the context borrow.
    pub fn attach<'b>(self, ctx: Option<&'b request::RequestContext>) -> Tracer<'b>
    where
        'a: 'b,
    {
        Tracer {
            sink: self.sink,
            ctx: ctx.or(self.ctx),
        }
    }

    /// The attached request context, if any.
    pub fn request(&self) -> Option<&'a request::RequestContext> {
        self.ctx
    }

    /// Whether events will actually be delivered to the *sink* (the
    /// hot-path construction gate; a request context alone also
    /// activates [`Tracer::emit`] and [`Tracer::span`]).
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Builds (only if the sink is enabled or a request context is
    /// attached) and delivers one event: to the sink when enabled, and —
    /// for [`TraceEvent::Counter`] — as a note on the request context.
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        let sink_on = self.sink.enabled();
        if !sink_on && self.ctx.is_none() {
            return;
        }
        let event = make();
        if sink_on {
            self.sink.record(&event);
        }
        if let (Some(ctx), TraceEvent::Counter { name, value }) = (self.ctx, &event) {
            ctx.note(name, *value);
        }
    }

    /// Starts a wall-clock span that records a [`TraceEvent::PhaseSpan`]
    /// when dropped (and, when a request context is attached, a span in
    /// the request's tree). Disabled tracers return an inert guard (no
    /// clock read, no allocation).
    pub fn span(&self, phase: &'static str) -> Span<'a> {
        Span {
            sink: self.sink,
            phase,
            start: self.sink.enabled().then(Instant::now),
            req: self.ctx.map(|c| (c, c.open(phase))),
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.sink.flush();
    }
}

/// Guard returned by [`Tracer::span`]; records its elapsed wall-clock on
/// drop.
pub struct Span<'a> {
    sink: &'a dyn TraceSink,
    phase: &'static str,
    start: Option<Instant>,
    req: Option<(&'a request::RequestContext, request::OpenSpan)>,
}

impl Span<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.sink.record(&TraceEvent::PhaseSpan {
                phase: self.phase,
                seconds: start.elapsed().as_secs_f64(),
            });
        }
        if let Some((ctx, open)) = self.req.take() {
            ctx.close(open);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(v: u64) -> TraceEvent {
        TraceEvent::Counter {
            name: "n",
            value: v,
        }
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        let t = Tracer::new(&sink);
        for i in 0..5 {
            t.emit(|| counter(i));
        }
        let ev = sink.events();
        assert_eq!(ev.len(), 5);
        assert_eq!(ev[0], counter(0));
        assert_eq!(ev[4], counter(4));
    }

    #[test]
    fn memory_sink_ring_evicts_oldest() {
        let sink = MemorySink::with_capacity(3);
        let t = Tracer::new(&sink);
        for i in 0..10 {
            t.emit(|| counter(i));
        }
        let ev = sink.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0], counter(7));
        assert_eq!(ev[2], counter(9));
    }

    #[test]
    fn nop_tracer_never_invokes_closure() {
        let t = Tracer::none();
        let mut called = false;
        t.emit(|| {
            called = true;
            counter(0)
        });
        assert!(!called);
        assert!(!t.enabled());
    }

    #[test]
    fn span_records_elapsed_time() {
        let sink = MemorySink::new();
        {
            let t = Tracer::new(&sink);
            let _s = t.span("phase_a");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(sink.len(), 1);
        assert!(sink.span_seconds("phase_a") >= 0.001);
        assert_eq!(sink.span_seconds("phase_b"), 0.0);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let t = Tracer::none();
        let s = t.span("x");
        drop(s);
        // Nothing to assert against a NopSink beyond not panicking; the
        // allocation-freeness is proven in tests/alloc_noop.rs.
    }

    #[test]
    fn event_kinds_are_stable() {
        assert_eq!(counter(0).kind(), "counter");
        assert_eq!(
            TraceEvent::PhaseSpan {
                phase: "p",
                seconds: 0.0
            }
            .kind(),
            "phase_span"
        );
        assert_eq!(
            TraceEvent::Diverged {
                outer: 0,
                detail: String::new(),
                x: vec![]
            }
            .kind(),
            "diverged"
        );
    }
}
