//! Dynamic shadow-write overlap detection for parallel kernels.
//!
//! The static write-plan certifier (`sgs-analyze` stage 4) proves that
//! each parallel kernel's *declared* partition of its output arrays is
//! disjoint and covering. This module is the runtime counterpart: under
//! `--features shadow-write`, every parallel unit additionally stamps a
//! shadow ledger on each write it performs, and when the kernel finishes
//! the ledger is swept for two violations of the determinism contract:
//!
//! - **overlap** — the same output index stamped by two units (a data
//!   race under real parallel execution, and an order-dependence even
//!   under the deterministic shim);
//! - **missing** — a declared output index never stamped (the kernel's
//!   partition does not cover its output).
//!
//! Findings accumulate in a process-global registry, merged per
//! `(kernel, len)`, and are drained deterministically (sorted, bounded)
//! by [`take_reports`]. `sgs-analyze` converts them into `SGS-P006`
//! diagnostics; the CI thread matrix runs the golden-transcript suite
//! with this feature enabled so every committed kernel is exercised
//! under checking mode.
//!
//! Without the feature, only the report *types* are compiled (so the
//! analyzer can always talk about shadow results); no stamping code
//! exists and kernels pay nothing.

/// One index observed written by two parallel units during a kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShadowOverlap {
    /// The output index written twice.
    pub index: usize,
    /// Parallel unit that held the index first (kernel-defined ids).
    pub unit_a: u32,
    /// Parallel unit that wrote it again.
    pub unit_b: u32,
}

/// Aggregated shadow-ledger findings for one kernel + output length.
///
/// Reports merge across invocations of the same `(kernel, len)` pair, so
/// a solve that assembles the Jacobian 500 times produces one entry with
/// `invocations = 500`, not 500 entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowReport {
    /// Kernel identifier (matches the kernel's static `KernelPlan`).
    pub kernel: String,
    /// Declared output-array length the ledger covered.
    pub len: usize,
    /// Kernel invocations merged into this report.
    pub invocations: u64,
    /// Total stamped writes across all invocations.
    pub writes: u64,
    /// Distinct overlaps observed (sorted, bounded to
    /// [`MAX_OVERLAPS_PER_REPORT`]).
    pub overlaps: Vec<ShadowOverlap>,
    /// Total count of declared indices left unwritten, summed over
    /// invocations.
    pub missing: u64,
    /// Sample of unwritten indices (sorted, bounded to
    /// [`MAX_MISSING_SAMPLE`]).
    pub missing_sample: Vec<usize>,
}

impl ShadowReport {
    /// Whether this report records any violation (overlap or missing
    /// index).
    pub fn is_clean(&self) -> bool {
        self.overlaps.is_empty() && self.missing == 0
    }
}

/// Upper bound on distinct overlaps retained per `(kernel, len)` report.
pub const MAX_OVERLAPS_PER_REPORT: usize = 64;

/// Upper bound on unwritten-index samples retained per report.
pub const MAX_MISSING_SAMPLE: usize = 16;

#[cfg(feature = "shadow-write")]
mod active {
    use super::{ShadowOverlap, ShadowReport, MAX_MISSING_SAMPLE, MAX_OVERLAPS_PER_REPORT};
    use std::sync::Mutex;

    /// One contiguous half-open index range claimed by a parallel unit.
    #[derive(Debug, Clone, Copy)]
    struct Claim {
        unit: u32,
        start: usize,
        end: usize,
    }

    /// Process-global accumulator of finished-scope reports.
    static REGISTRY: Mutex<Vec<ShadowReport>> = Mutex::new(Vec::new());

    /// Live shadow ledger for one kernel invocation.
    ///
    /// Shared by reference across the kernel's worker threads (stamping
    /// takes `&self`); swept and folded into the global registry on drop.
    #[derive(Debug)]
    pub struct ShadowScope {
        kernel: &'static str,
        len: usize,
        claims: Mutex<Vec<Claim>>,
    }

    /// Opens a shadow ledger for one invocation of `kernel` whose
    /// parallel units collectively must write indices `0..len` exactly
    /// once.
    pub fn begin(kernel: &'static str, len: usize) -> ShadowScope {
        ShadowScope {
            kernel,
            len,
            claims: Mutex::new(Vec::new()),
        }
    }

    impl ShadowScope {
        /// Stamps a single write of `index` by `unit`.
        pub fn stamp(&self, unit: u32, index: usize) {
            self.stamp_range(unit, index, index + 1);
        }

        /// Stamps a write of the half-open range `start..end` by `unit`.
        ///
        /// Adjacent ranges from the same unit coalesce, so per-element
        /// stamping of a contiguous fill costs O(1) ledger entries.
        pub fn stamp_range(&self, unit: u32, start: usize, end: usize) {
            if start >= end {
                return;
            }
            let mut claims = self.claims.lock().unwrap();
            if let Some(last) = claims.last_mut() {
                if last.unit == unit && last.end == start {
                    last.end = end;
                    return;
                }
            }
            claims.push(Claim { unit, start, end });
        }
    }

    impl Drop for ShadowScope {
        fn drop(&mut self) {
            let mut claims = std::mem::take(&mut *self.claims.lock().unwrap());
            claims.sort_by_key(|c| (c.start, c.end, c.unit));

            let mut overlaps: Vec<ShadowOverlap> = Vec::new();
            let mut missing = 0u64;
            let mut missing_sample: Vec<usize> = Vec::new();
            let mut writes = 0u64;
            // Sweep: track the furthest end seen and its owner. A claim
            // starting before that end overlaps; a claim starting after
            // it leaves a gap.
            let mut cursor = 0usize; // next index expected covered
            let mut cursor_unit = 0u32;
            for c in &claims {
                writes += (c.end - c.start) as u64;
                if c.start < cursor {
                    overlaps.push(ShadowOverlap {
                        index: c.start,
                        unit_a: cursor_unit,
                        unit_b: c.unit,
                    });
                } else if c.start > cursor {
                    let gap = c.start.min(self.len).saturating_sub(cursor);
                    missing += gap as u64;
                    let mut i = cursor;
                    while i < c.start.min(self.len) && missing_sample.len() < MAX_MISSING_SAMPLE {
                        missing_sample.push(i);
                        i += 1;
                    }
                }
                if c.end > cursor {
                    cursor = c.end;
                    cursor_unit = c.unit;
                }
            }
            if cursor < self.len {
                missing += (self.len - cursor) as u64;
                let mut i = cursor;
                while i < self.len && missing_sample.len() < MAX_MISSING_SAMPLE {
                    missing_sample.push(i);
                    i += 1;
                }
            }
            overlaps.sort();
            overlaps.dedup();
            overlaps.truncate(MAX_OVERLAPS_PER_REPORT);

            let mut reg = REGISTRY.lock().unwrap();
            let entry = reg
                .iter_mut()
                .find(|r| r.kernel == self.kernel && r.len == self.len);
            match entry {
                Some(r) => {
                    r.invocations += 1;
                    r.writes += writes;
                    r.missing += missing;
                    for ov in overlaps {
                        if r.overlaps.len() < MAX_OVERLAPS_PER_REPORT && !r.overlaps.contains(&ov) {
                            r.overlaps.push(ov);
                        }
                    }
                    r.overlaps.sort();
                    for i in missing_sample {
                        if r.missing_sample.len() < MAX_MISSING_SAMPLE
                            && !r.missing_sample.contains(&i)
                        {
                            r.missing_sample.push(i);
                        }
                    }
                    r.missing_sample.sort_unstable();
                }
                None => reg.push(ShadowReport {
                    kernel: self.kernel.to_string(),
                    len: self.len,
                    invocations: 1,
                    writes,
                    overlaps,
                    missing,
                    missing_sample,
                }),
            }
        }
    }

    /// Drains and returns all accumulated reports, sorted by
    /// `(kernel, len)` for deterministic output.
    pub fn take_reports() -> Vec<ShadowReport> {
        let mut reports = std::mem::take(&mut *REGISTRY.lock().unwrap());
        reports.sort_by(|a, b| a.kernel.cmp(&b.kernel).then(a.len.cmp(&b.len)));
        reports
    }

    /// Discards all accumulated reports.
    pub fn reset() {
        REGISTRY.lock().unwrap().clear();
    }

    /// Total overlaps currently accumulated across all reports (without
    /// draining).
    pub fn overlap_total() -> u64 {
        REGISTRY
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.overlaps.len() as u64)
            .sum()
    }
}

#[cfg(feature = "shadow-write")]
pub use active::{begin, overlap_total, reset, take_reports, ShadowScope};

#[cfg(all(test, feature = "shadow-write"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global; serialize tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        g
    }

    #[test]
    fn clean_partition_reports_clean() {
        let _g = guard();
        {
            let s = begin("k_clean", 10);
            s.stamp_range(0, 0, 5);
            s.stamp_range(1, 5, 10);
        }
        let reports = take_reports();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].is_clean());
        assert_eq!(reports[0].writes, 10);
        assert_eq!(reports[0].invocations, 1);
    }

    #[test]
    fn overlap_and_gap_detected() {
        let _g = guard();
        {
            let s = begin("k_bad", 10);
            s.stamp_range(0, 0, 5);
            s.stamp_range(1, 4, 8); // overlaps index 4
                                    // indices 8, 9 never stamped
        }
        let reports = take_reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(
            r.overlaps,
            vec![ShadowOverlap {
                index: 4,
                unit_a: 0,
                unit_b: 1
            }]
        );
        assert_eq!(r.missing, 2);
        assert_eq!(r.missing_sample, vec![8, 9]);
    }

    #[test]
    fn per_element_stamps_coalesce_and_merge_across_invocations() {
        let _g = guard();
        for _ in 0..3 {
            let s = begin("k_merge", 4);
            for i in 0..4 {
                s.stamp(0, i);
            }
        }
        let reports = take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].invocations, 3);
        assert_eq!(reports[0].writes, 12);
        assert!(reports[0].is_clean());
        assert!(take_reports().is_empty(), "take drains the registry");
    }

    #[test]
    fn threaded_stamps_are_seen() {
        let _g = guard();
        {
            let s = begin("k_thread", 64);
            std::thread::scope(|scope| {
                for t in 0..4usize {
                    let s = &s;
                    scope.spawn(move || {
                        for i in (t * 16)..(t * 16 + 16) {
                            s.stamp(t as u32, i);
                        }
                    });
                }
            });
        }
        let reports = take_reports();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].is_clean(), "{:?}", reports[0]);
        assert_eq!(reports[0].writes, 64);
    }
}
