//! Chrome trace-event (Perfetto-loadable) timeline export.
//!
//! Two exporters and one validator:
//!
//! - [`request_to_chrome`]: renders one [`RequestTrace`]'s span tree as
//!   nested `B`/`E` duration events under a synthetic `"request"` root.
//!   Children are clamped into their parent's interval and emitted in
//!   stack order, so the `B`/`E` pairing is valid by construction.
//! - [`jsonl_to_chrome`]: renders a whole run's `--trace=FILE` JSONL as a
//!   timeline — each `phase_span` becomes a complete (`X`) event in a
//!   per-phase lane, laid out end-to-end in emission order (the JSONL
//!   records durations, not start times).
//! - [`validate_chrome`]: parses an export back, checks every `B` has a
//!   matching same-name `E` per `(pid, tid)` lane, and measures how much
//!   of the root `"request"` span its direct children cover — the CI
//!   timeline lint asserts ≥95% coverage.
//!
//! Open an export in <https://ui.perfetto.dev> (or `chrome://tracing`)
//! by dropping the file onto the page.

use crate::json::{parse_json, push_json_string, Json};
use crate::request::{RequestTrace, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The `pid` all exported events carry (the trace is single-process).
const PID: u64 = 1;

fn event(out: &mut String, first: &mut bool, name: &str, ph: char, ts: u64, tid: u64, extra: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":");
    push_json_string(out, name);
    let _ = write!(
        out,
        ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{PID},\"tid\":{tid}{extra}}}"
    );
}

/// Renders one completed request trace as a Chrome trace-event JSON
/// document (a `{"traceEvents":[...]}` object on a single line).
///
/// The span tree is rooted at a synthetic `"request"` span covering
/// `[0, total]`; every recorded span is clamped into its parent's
/// interval, children sorted by start offset. Notes are emitted as
/// counter (`C`) events at the request origin.
pub fn request_to_chrome(trace: &RequestTrace) -> String {
    let total_us = (trace.total_seconds * 1e6).max(0.0) as u64;
    // Children per parent id, sorted by start for deterministic nesting.
    let mut children: BTreeMap<u32, Vec<&SpanRecord>> = BTreeMap::new();
    for s in &trace.spans {
        children.entry(s.parent).or_default().push(s);
    }
    for v in children.values_mut() {
        v.sort_by_key(|s| (s.start_us, s.id));
    }

    let mut out = String::with_capacity(256 + trace.spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    let mut root_args = String::new();
    let _ = write!(
        root_args,
        ",\"args\":{{\"request_id\":{},\"route\":",
        trace.request_id
    );
    push_json_string(&mut root_args, &trace.route);
    let _ = write!(
        root_args,
        ",\"status\":{},\"session_hit\":{},\"dropped_spans\":{}}}",
        trace.status, trace.session_hit, trace.dropped_spans
    );
    event(&mut out, &mut first, "request", 'B', 0, 1, &root_args);

    // Iterative stack emission: (parent interval, child list, next index).
    fn emit_subtree(
        out: &mut String,
        first: &mut bool,
        children: &BTreeMap<u32, Vec<&SpanRecord>>,
        id: u32,
        lo: u64,
        hi: u64,
    ) {
        for s in children.get(&id).map_or(&[][..], |v| v.as_slice()) {
            let start = s.start_us.clamp(lo, hi);
            let end = s.start_us.saturating_add(s.dur_us).clamp(start, hi);
            event(out, first, s.name, 'B', start, 1, "");
            emit_subtree(out, first, children, s.id, start, end);
            event(out, first, s.name, 'E', end, 1, "");
        }
    }
    emit_subtree(&mut out, &mut first, &children, 0, 0, total_us);
    event(&mut out, &mut first, "request", 'E', total_us, 1, "");

    for n in &trace.notes {
        let extra = format!(",\"args\":{{\"value\":{}}}", n.value);
        event(&mut out, &mut first, n.name, 'C', 0, 1, &extra);
    }
    out.push_str("]}");
    out
}

/// Renders a run's JSONL trace (the `--trace=FILE` output) as a Chrome
/// trace-event document: each `phase_span` becomes a complete (`X`)
/// event in a lane per phase name, packed end-to-end in emission order;
/// `serve_request` and `what_if_query` events get their own lanes;
/// `run_report` becomes the root lane. Counter events are skipped (they
/// carry no time base).
///
/// # Errors
///
/// Returns a line-annotated message when a line is not valid JSON.
pub fn jsonl_to_chrome(text: &str) -> Result<String, String> {
    struct Lane {
        tid: u64,
        cursor_us: u64,
    }
    let mut lanes: BTreeMap<String, Lane> = BTreeMap::new();
    let mut next_tid: u64 = 2; // tid 1 is reserved for the run lane
    let mut out = String::with_capacity(text.len());
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v.get("event").and_then(Json::as_str).unwrap_or("");
        let (lane_name, label, seconds) = match kind {
            "phase_span" => {
                let phase = v
                    .get("phase")
                    .and_then(Json::as_str)
                    .unwrap_or("phase")
                    .to_string();
                let secs = v.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
                (phase.clone(), phase, secs)
            }
            "serve_request" => {
                let route = v.get("route").and_then(Json::as_str).unwrap_or("request");
                let secs = v.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
                ("requests".to_string(), route.to_string(), secs)
            }
            "what_if_query" => {
                let secs = v.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
                ("what_if".to_string(), "query".to_string(), secs)
            }
            "run_report" => {
                let secs = v.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
                let dur = (secs * 1e6).max(0.0) as u64;
                let extra = format!(",\"dur\":{dur}");
                event(&mut out, &mut first, "run", 'X', 0, 1, &extra);
                continue;
            }
            _ => continue,
        };
        let lane = lanes.entry(lane_name).or_insert_with(|| {
            let tid = next_tid;
            next_tid += 1;
            Lane { tid, cursor_us: 0 }
        });
        let dur = (seconds * 1e6).max(0.0) as u64;
        let extra = format!(",\"dur\":{dur}");
        event(
            &mut out,
            &mut first,
            &label,
            'X',
            lane.cursor_us,
            lane.tid,
            &extra,
        );
        lane.cursor_us = lane.cursor_us.saturating_add(dur.max(1));
    }

    // Name the lanes so Perfetto shows phase names instead of bare tids.
    for (name, lane) in &lanes {
        let mut extra = String::from(",\"args\":{\"name\":");
        push_json_string(&mut extra, name);
        extra.push('}');
        event(
            &mut out,
            &mut first,
            "thread_name",
            'M',
            0,
            lane.tid,
            &extra,
        );
    }
    out.push_str("]}");
    Ok(out)
}

/// Validation summary returned by [`validate_chrome`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeSummary {
    /// Total events in the document.
    pub events: usize,
    /// Matched `B`/`E` duration pairs.
    pub pairs: usize,
    /// Complete (`X`) events.
    pub complete: usize,
    /// Fraction of the root `"request"` span covered by the union of its
    /// direct children, when a `"request"` root is present.
    pub coverage: Option<f64>,
}

/// Parses a Chrome trace-event export back and checks its structure:
/// a top-level `"traceEvents"` array whose `B` events each close with a
/// same-name `E` on the same `(pid, tid)` lane, in stack order.
///
/// When the document contains a `"request"` root (the
/// [`request_to_chrome`] shape), also computes how much of the root's
/// wall time its direct children cover (merged-union fraction).
///
/// # Errors
///
/// Returns a message describing the first structural violation.
pub fn validate_chrome(text: &str) -> Result<ChromeSummary, String> {
    let doc = parse_json(text)?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(a)) => a,
        _ => return Err("missing top-level \"traceEvents\" array".to_string()),
    };
    let mut summary = ChromeSummary {
        events: events.len(),
        ..ChromeSummary::default()
    };
    // Per-(pid, tid) open-span stacks of (name, ts, depth-1 interval
    // collector for the request root).
    let mut stacks: BTreeMap<(u64, u64), Vec<(String, f64)>> = BTreeMap::new();
    let mut root: Option<(f64, f64)> = None; // (start, end) of "request"
    let mut depth1: Vec<(f64, f64)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?
            .to_string();
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric \"ts\""))?;
        let pid = e.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let tid = e.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        match ph {
            "B" => {
                let stack = stacks.entry((pid, tid)).or_default();
                if stack.is_empty() && name == "request" && root.is_none() {
                    root = Some((ts, ts));
                }
                stack.push((name, ts));
            }
            "E" => {
                let stack = stacks.entry((pid, tid)).or_default();
                let (open_name, open_ts) = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: \"E\" {name:?} with no open span"))?;
                if open_name != name {
                    return Err(format!(
                        "event {i}: \"E\" {name:?} closes open span {open_name:?}"
                    ));
                }
                summary.pairs += 1;
                if stack.is_empty() && name == "request" {
                    if let Some((start, _)) = root {
                        root = Some((start, ts));
                    }
                } else if stack.len() == 1 && stack[0].0 == "request" {
                    depth1.push((open_ts, ts));
                }
            }
            "X" => summary.complete += 1,
            // Metadata, counter, and instant events carry no pairing.
            "M" | "C" | "I" => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("unclosed span {name:?} on pid={pid} tid={tid}"));
        }
    }
    if let Some((start, end)) = root {
        let dur = end - start;
        if dur > 0.0 {
            depth1.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut covered = 0.0;
            let mut cursor = start;
            for (s, e) in depth1 {
                let s = s.max(cursor);
                let e = e.min(end);
                if e > s {
                    covered += e - s;
                    cursor = e;
                }
            }
            summary.coverage = Some(covered / dur);
        } else {
            summary.coverage = Some(1.0);
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestContext;
    use std::time::Instant;

    #[test]
    fn request_export_round_trips_with_full_coverage() {
        let ctx = RequestContext::new(42);
        let h = ctx.open("handle");
        let s = ctx.open("solve");
        ctx.close(s);
        ctx.close(h);
        let now = Instant::now();
        ctx.record_span("write", now, now);
        let mut t = ctx.finish("/solve", 200, "", "deadbeef", true);
        // Deterministic synthetic layout: handle [0,80], solve [10,60],
        // write [80,100], total 100µs.
        t.total_seconds = 100e-6;
        t.spans[0].start_us = 10; // solve closes first, records first
        t.spans[0].dur_us = 50;
        t.spans[1].start_us = 0; // handle
        t.spans[1].dur_us = 80;
        t.spans[2].start_us = 80; // write
        t.spans[2].dur_us = 20;
        let doc = request_to_chrome(&t);
        let summary = validate_chrome(&doc).unwrap();
        assert_eq!(summary.pairs, 4); // request + handle + solve + write
        assert!(summary.coverage.unwrap() >= 0.99, "{summary:?}");
    }

    #[test]
    fn jsonl_export_validates() {
        let jsonl = concat!(
            "{\"event\":\"phase_span\",\"phase\":\"ssta\",\"seconds\":0.001}\n",
            "{\"event\":\"phase_span\",\"phase\":\"ssta\",\"seconds\":0.002}\n",
            "{\"event\":\"phase_span\",\"phase\":\"auglag\",\"seconds\":0.005}\n",
            "{\"event\":\"counter\",\"name\":\"gates\",\"value\":4}\n",
            "{\"event\":\"run_report\",\"bin\":\"b\",\"circuit\":\"c\",\"status\":\"ok\",",
            "\"objective\":1.0,\"mu\":1.0,\"sigma\":0.1,\"area\":2.0,\"seconds\":0.01,",
            "\"evals\":{\"objective\":1,\"gradient\":1,\"constraints\":1,\"jacobian\":1,",
            "\"hessian\":0},\"clark_var_clamps\":0}\n"
        );
        let doc = jsonl_to_chrome(jsonl).unwrap();
        let summary = validate_chrome(&doc).unwrap();
        assert_eq!(summary.pairs, 0);
        assert_eq!(summary.complete, 4); // 3 spans + run report
        assert!(summary.coverage.is_none());
    }

    #[test]
    fn validator_rejects_mismatched_pairs() {
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1},\
            {\"name\":\"b\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":1}]}";
        assert!(validate_chrome(bad).is_err());
        let unclosed = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1}]}";
        assert!(validate_chrome(unclosed).is_err());
    }
}
