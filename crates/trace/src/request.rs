//! Request-scoped trace context: per-request span trees and notes.
//!
//! A [`RequestContext`] travels with one HTTP request through the
//! `sgs-serve` daemon — accept, admission queue, session worker queue,
//! `Resolver`, solver phases — collecting a tree of wall-clock spans
//! relative to a single request epoch. When the request completes, the
//! server calls [`RequestContext::finish`] to freeze it into an immutable
//! [`RequestTrace`], which the ring-buffer sink retains and the Chrome
//! exporter renders as a timeline.
//!
//! Two recording styles coexist:
//!
//! - *Open/close* ([`RequestContext::open`] / [`RequestContext::close`]):
//!   establishes the span as the current parent, so spans recorded while
//!   it is open — including from another thread, as long as the request's
//!   handling is serialised (the daemon's rendezvous reply channel
//!   guarantees this) — nest under it.
//! - *Post-hoc* ([`RequestContext::record_span`]): records an already
//!   finished interval (queue waits, socket reads/writes) under the
//!   current parent without changing it.
//!
//! Memory is bounded: at most [`MAX_SPANS`] spans and [`MAX_NOTES`] notes
//! are retained per request; overflow is counted, not stored.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maximum spans retained per request; further spans are counted as
/// dropped. Generous for the daemon's span tree (a handful of transport
/// spans plus one span per solver phase and inner iteration).
pub const MAX_SPANS: usize = 4096;

/// Maximum notes retained per request.
pub const MAX_NOTES: usize = 256;

/// Span name used for time spent in the admission (accept) queue.
pub const SPAN_ADMISSION_WAIT: &str = "admission_wait";

/// Span name used for time spent in a session worker's job queue.
pub const SPAN_SESSION_WAIT: &str = "session_wait";

/// One completed span in a request's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the request (1-based; 0 is the root).
    pub id: u32,
    /// Parent span id (0 = the implicit request root).
    pub parent: u32,
    /// Static span name (`"read"`, `"handle"`, `"auglag"`, ...).
    pub name: &'static str,
    /// Start offset from the request epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// One named counter value attached to a request (no timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoteRecord {
    /// Counter name.
    pub name: &'static str,
    /// Counter value.
    pub value: u64,
}

/// Handle returned by [`RequestContext::open`]; pass it back to
/// [`RequestContext::close`] to end the span.
#[derive(Debug, Clone, Copy)]
pub struct OpenSpan {
    id: u32,
    parent: u32,
    name: &'static str,
    start: Instant,
}

/// Mutable per-request trace state threaded through the daemon.
#[derive(Debug)]
pub struct RequestContext {
    request_id: u64,
    epoch: Instant,
    next_span: AtomicU32,
    current_parent: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
    notes: Mutex<Vec<NoteRecord>>,
    dropped_spans: AtomicU32,
}

impl RequestContext {
    /// A fresh context for request `request_id` with epoch *now*.
    pub fn new(request_id: u64) -> Self {
        Self::with_epoch(request_id, Instant::now())
    }

    /// A fresh context whose time zero is `epoch` (e.g. the instant the
    /// connection was accepted, so admission-queue wait is attributable).
    pub fn with_epoch(request_id: u64, epoch: Instant) -> Self {
        RequestContext {
            request_id,
            epoch,
            next_span: AtomicU32::new(1),
            current_parent: AtomicU32::new(0),
            spans: Mutex::new(Vec::new()),
            notes: Mutex::new(Vec::new()),
            dropped_spans: AtomicU32::new(0),
        }
    }

    /// The daemon-unique request id this context belongs to.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The request's time zero.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn offset_us(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
    }

    fn push_span(&self, record: SpanRecord) {
        let mut spans = self.spans.lock().unwrap();
        if spans.len() < MAX_SPANS {
            spans.push(record);
        } else {
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Opens a span starting now and makes it the current parent; spans
    /// recorded until the matching [`close`](Self::close) nest under it.
    pub fn open(&self, name: &'static str) -> OpenSpan {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = self.current_parent.swap(id, Ordering::Relaxed);
        OpenSpan {
            id,
            parent,
            name,
            start: Instant::now(),
        }
    }

    /// Closes a span opened with [`open`](Self::open), restoring its
    /// parent as the current parent and recording the elapsed interval.
    pub fn close(&self, span: OpenSpan) {
        let end = Instant::now();
        self.current_parent.store(span.parent, Ordering::Relaxed);
        self.push_span(SpanRecord {
            id: span.id,
            parent: span.parent,
            name: span.name,
            start_us: self.offset_us(span.start),
            dur_us: u64::try_from(
                end.checked_duration_since(span.start)
                    .unwrap_or_default()
                    .as_micros(),
            )
            .unwrap_or(u64::MAX),
        });
    }

    /// Records an already-finished interval under the current parent
    /// (does not change the parent). Negative or inverted intervals
    /// clamp to zero duration.
    pub fn record_span(&self, name: &'static str, start: Instant, end: Instant) {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = self.current_parent.load(Ordering::Relaxed);
        let start_us = self.offset_us(start);
        let end_us = self.offset_us(end);
        self.push_span(SpanRecord {
            id,
            parent,
            name,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
        });
    }

    /// Attaches a named counter value to the request (bounded; overflow
    /// past [`MAX_NOTES`] is silently discarded).
    pub fn note(&self, name: &'static str, value: u64) {
        let mut notes = self.notes.lock().unwrap();
        if notes.len() < MAX_NOTES {
            notes.push(NoteRecord { name, value });
        }
    }

    /// Freezes the context into an immutable [`RequestTrace`].
    ///
    /// Drains the recorded spans/notes, stamps the request outcome, and
    /// derives the split queue-wait accounting by summing spans named
    /// [`SPAN_ADMISSION_WAIT`] and [`SPAN_SESSION_WAIT`]. `total_seconds`
    /// is measured from the epoch to *now*.
    #[allow(clippy::cast_precision_loss)]
    pub fn finish(
        &self,
        route: &str,
        status: u16,
        code: &str,
        session: &str,
        session_hit: bool,
    ) -> RequestTrace {
        let total_us = self.offset_us(Instant::now());
        let spans = std::mem::take(&mut *self.spans.lock().unwrap());
        let notes = std::mem::take(&mut *self.notes.lock().unwrap());
        let sum_us =
            |n: &str| -> u64 { spans.iter().filter(|s| s.name == n).map(|s| s.dur_us).sum() };
        RequestTrace {
            request_id: self.request_id,
            route: route.to_string(),
            status,
            code: code.to_string(),
            session: session.to_string(),
            session_hit,
            admission_wait_seconds: sum_us(SPAN_ADMISSION_WAIT) as f64 / 1e6,
            session_wait_seconds: sum_us(SPAN_SESSION_WAIT) as f64 / 1e6,
            total_seconds: total_us as f64 / 1e6,
            dropped_spans: self.dropped_spans.load(Ordering::Relaxed),
            spans,
            notes,
        }
    }
}

/// An immutable, completed request trace: the outcome plus the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Daemon-unique request id.
    pub request_id: u64,
    /// Request route (the HTTP path, or `"admission"` for connections
    /// rejected before parsing).
    pub route: String,
    /// HTTP status code of the response.
    pub status: u16,
    /// Stable error code for non-2xx responses, empty otherwise.
    pub code: String,
    /// Session key (hex) the request resolved to, empty when sessionless.
    pub session: String,
    /// Whether a warm session served the request.
    pub session_hit: bool,
    /// Seconds spent in the admission (accept) queue.
    pub admission_wait_seconds: f64,
    /// Seconds spent in the session worker's job queue.
    pub session_wait_seconds: f64,
    /// Wall-clock seconds from the request epoch to completion.
    pub total_seconds: f64,
    /// Spans that overflowed [`MAX_SPANS`] and were dropped.
    pub dropped_spans: u32,
    /// The recorded span tree (ids are request-local; parent 0 is the
    /// implicit request root spanning `[0, total_seconds]`).
    pub spans: Vec<SpanRecord>,
    /// Counter notes attached during handling.
    pub notes: Vec<NoteRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn open_close_nest_under_parent() {
        let ctx = RequestContext::new(7);
        let outer = ctx.open("handle");
        let inner = ctx.open("solve");
        ctx.record_span("leaf", Instant::now(), Instant::now());
        ctx.close(inner);
        ctx.close(outer);
        let t = ctx.finish("/solve", 200, "", "abc", true);
        assert_eq!(t.request_id, 7);
        assert_eq!(t.spans.len(), 3);
        let handle = t.spans.iter().find(|s| s.name == "handle").unwrap();
        let solve = t.spans.iter().find(|s| s.name == "solve").unwrap();
        let leaf = t.spans.iter().find(|s| s.name == "leaf").unwrap();
        assert_eq!(handle.parent, 0);
        assert_eq!(solve.parent, handle.id);
        assert_eq!(leaf.parent, solve.id);
    }

    #[test]
    fn queue_waits_are_summed_per_kind() {
        let epoch = Instant::now();
        let ctx = RequestContext::with_epoch(3, epoch);
        let mid = epoch + Duration::from_millis(10);
        let later = epoch + Duration::from_millis(25);
        ctx.record_span(SPAN_ADMISSION_WAIT, epoch, mid);
        ctx.record_span(SPAN_SESSION_WAIT, mid, later);
        let t = ctx.finish("/solve", 200, "", "", false);
        assert!((t.admission_wait_seconds - 0.010).abs() < 1e-6);
        assert!((t.session_wait_seconds - 0.015).abs() < 1e-6);
    }

    #[test]
    fn span_cap_counts_overflow() {
        let ctx = RequestContext::new(1);
        let now = Instant::now();
        for _ in 0..(MAX_SPANS + 5) {
            ctx.record_span("x", now, now);
        }
        let t = ctx.finish("/solve", 200, "", "", false);
        assert_eq!(t.spans.len(), MAX_SPANS);
        assert_eq!(t.dropped_spans, 5);
    }

    #[test]
    fn inverted_intervals_clamp_to_zero() {
        let epoch = Instant::now();
        let ctx = RequestContext::with_epoch(2, epoch + Duration::from_secs(1));
        // Both instants precede the epoch: offsets clamp to 0, dur to 0.
        ctx.record_span("pre", epoch, epoch);
        let t = ctx.finish("/x", 200, "", "", false);
        assert_eq!(t.spans[0].start_us, 0);
        assert_eq!(t.spans[0].dur_us, 0);
    }
}
