//! JSONL encoding of [`TraceEvent`]s and a dependency-free validator.
//!
//! Encoding rules:
//!
//! - One JSON object per event, one event per line; every object carries
//!   an `"event"` tag equal to [`TraceEvent::kind`].
//! - Finite numbers use Rust's shortest round-trip formatting. Non-finite
//!   values (JSON has none) encode as the strings `"NaN"`, `"Infinity"`,
//!   `"-Infinity"` — divergence records exist precisely to carry these.
//!
//! The reader half ([`parse_json`], [`validate_jsonl`]) is a minimal
//! recursive-descent JSON parser used by the `trace_lint` CI gate and the
//! round-trip tests; it accepts exactly the subset the writer emits plus
//! standard JSON.

use crate::{EvalReport, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialises one event to a single-line JSON object (no trailing
/// newline).
pub fn to_json(event: &TraceEvent) -> String {
    let mut s = String::with_capacity(128);
    s.push_str("{\"event\":\"");
    s.push_str(event.kind());
    s.push('"');
    match event {
        TraceEvent::Outer(o) => {
            field_usize(&mut s, "outer", o.outer);
            field_f64(&mut s, "merit", o.merit);
            field_f64(&mut s, "c_norm", o.c_norm);
            field_f64(&mut s, "pg_norm", o.pg_norm);
            field_f64(&mut s, "rho", o.rho);
            field_f64(&mut s, "lambda_norm", o.lambda_norm);
            field_usize(&mut s, "inner_iterations", o.inner_iterations);
            field_usize(&mut s, "cg_iterations", o.cg_iterations);
            field_bool(&mut s, "step_accepted", o.step_accepted);
            field_bool(&mut s, "inner_converged", o.inner_converged);
        }
        TraceEvent::PhaseSpan { phase, seconds } => {
            field_str(&mut s, "phase", phase);
            field_f64(&mut s, "seconds", *seconds);
        }
        TraceEvent::Counter { name, value } => {
            field_str(&mut s, "name", name);
            field_usize(&mut s, "value", *value as usize);
        }
        TraceEvent::Diverged { outer, detail, x } => {
            field_usize(&mut s, "outer", *outer);
            field_str(&mut s, "detail", detail);
            s.push_str(",\"x\":[");
            for (i, v) in x.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_f64(&mut s, *v);
            }
            s.push(']');
        }
        TraceEvent::Restart { attempt, reason } => {
            field_usize(&mut s, "attempt", *attempt);
            field_str(&mut s, "reason", reason);
        }
        TraceEvent::SolveDone(r) => {
            field_str(&mut s, "status", &r.status);
            field_f64(&mut s, "objective", r.objective);
            field_f64(&mut s, "c_norm", r.c_norm);
            field_usize(&mut s, "outer_iterations", r.outer_iterations);
            field_usize(&mut s, "inner_iterations", r.inner_iterations);
            evals_obj(&mut s, &r.evals);
        }
        TraceEvent::WhatIfQuery {
            query,
            gates_recomputed,
            full,
            seconds,
        } => {
            field_usize(&mut s, "query", *query);
            field_usize(&mut s, "gates_recomputed", *gates_recomputed as usize);
            field_bool(&mut s, "full", *full);
            field_f64(&mut s, "seconds", *seconds);
        }
        TraceEvent::ServeRequest {
            id,
            route,
            status,
            code,
            session,
            session_hit,
            seconds,
        } => {
            field_usize(&mut s, "id", *id as usize);
            field_str(&mut s, "route", route);
            field_usize(&mut s, "status", *status as usize);
            field_str(&mut s, "code", code);
            field_str(&mut s, "session", session);
            field_bool(&mut s, "session_hit", *session_hit);
            field_f64(&mut s, "seconds", *seconds);
        }
        TraceEvent::Run(r) => {
            field_str(&mut s, "bin", &r.bin);
            field_str(&mut s, "circuit", &r.circuit);
            field_str(&mut s, "status", &r.status);
            field_f64(&mut s, "objective", r.objective);
            field_f64(&mut s, "mu", r.mu);
            field_f64(&mut s, "sigma", r.sigma);
            field_f64(&mut s, "area", r.area);
            field_f64(&mut s, "seconds", r.seconds);
            field_usize(&mut s, "clark_var_clamps", r.clark_var_clamps as usize);
            evals_obj(&mut s, &r.evals);
        }
    }
    s.push('}');
    s
}

fn evals_obj(s: &mut String, e: &EvalReport) {
    let _ = write!(
        s,
        ",\"evals\":{{\"objective\":{},\"gradient\":{},\"constraints\":{},\"jacobian\":{},\"hessian\":{}}}",
        e.objective, e.gradient, e.constraints, e.jacobian, e.hessian
    );
}

fn field_str(s: &mut String, key: &str, val: &str) {
    s.push(',');
    push_string(s, key);
    s.push(':');
    push_string(s, val);
}

fn field_usize(s: &mut String, key: &str, val: usize) {
    let _ = write!(s, ",\"{key}\":{val}");
}

fn field_bool(s: &mut String, key: &str, val: bool) {
    let _ = write!(s, ",\"{key}\":{val}");
}

fn field_f64(s: &mut String, key: &str, val: f64) {
    let _ = write!(s, ",\"{key}\":");
    push_f64(s, val);
}

fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(s, "{v}");
    } else if v.is_nan() {
        s.push_str("\"NaN\"");
    } else if v > 0.0 {
        s.push_str("\"Infinity\"");
    } else {
        s.push_str("\"-Infinity\"");
    }
}

/// Appends `val` to `out` as a JSON string literal — the writer's
/// escaping, exported for downstream JSON emitters (the Chrome trace
/// exporter, the daemon's access log).
pub fn push_json_string(out: &mut String, val: &str) {
    push_string(out, val);
}

/// Appends `val` to `out` as a JSON number, using the writer's
/// `"NaN"`/`"Infinity"` string escapes for non-finite values (the
/// convention [`Json::as_f64`] decodes).
pub fn push_json_f64(out: &mut String, val: f64) {
    push_f64(out, val);
}

fn push_string(s: &mut String, val: &str) {
    s.push('"');
    for ch in val.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// A parsed JSON value (the validator's output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order preserved is not needed; sorted map).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, decoding the writer's `"NaN"`/`"Infinity"`
    /// string escapes back to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected literal '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

/// Parses one JSON document (a full string must parse, trailing
/// whitespace allowed).
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Summary of a validated JSONL trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total event lines.
    pub lines: usize,
    /// Count per `"event"` kind tag.
    pub kinds: BTreeMap<String, usize>,
}

impl TraceSummary {
    /// Count of events with the given kind tag.
    pub fn count(&self, kind: &str) -> usize {
        self.kinds.get(kind).copied().unwrap_or(0)
    }

    /// Whether a terminal status record (`solve_done` or `run_report`) is
    /// present.
    pub fn has_final_status(&self) -> bool {
        self.count("solve_done") + self.count("run_report") > 0
    }
}

/// Validates a JSONL trace: every non-empty line must parse as a JSON
/// object with a string `"event"` tag.
///
/// # Errors
///
/// Returns a line-annotated message on the first malformed line.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"event\" tag", lineno + 1))?;
        *summary.kinds.entry(kind.to_string()).or_insert(0) += 1;
        summary.lines += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OuterRecord, RunReport, SolveRecord};

    fn outer() -> TraceEvent {
        TraceEvent::Outer(OuterRecord {
            outer: 3,
            merit: 1.25,
            c_norm: 1e-9,
            pg_norm: 2.5e-7,
            rho: 10.0,
            lambda_norm: 4.0,
            inner_iterations: 12,
            cg_iterations: 40,
            step_accepted: true,
            inner_converged: false,
        })
    }

    #[test]
    fn events_round_trip_through_the_validator() {
        let events = [
            outer(),
            TraceEvent::PhaseSpan {
                phase: "ssta",
                seconds: 0.125,
            },
            TraceEvent::Counter {
                name: "gates",
                value: 7,
            },
            TraceEvent::Diverged {
                outer: 2,
                detail: "objective is NaN".into(),
                x: vec![1.0, f64::NAN, f64::INFINITY],
            },
            TraceEvent::Restart {
                attempt: 1,
                reason: "perturbed restart after divergence".into(),
            },
            TraceEvent::WhatIfQuery {
                query: 4,
                gates_recomputed: 11,
                full: false,
                seconds: 3.5e-6,
            },
            TraceEvent::ServeRequest {
                id: 42,
                route: "solve".into(),
                status: 200,
                code: String::new(),
                session: "00c0ffee00c0ffee".into(),
                session_hit: true,
                seconds: 0.012,
            },
            TraceEvent::SolveDone(SolveRecord {
                status: "converged".into(),
                objective: -3.0,
                c_norm: 0.0,
                outer_iterations: 5,
                inner_iterations: 60,
                evals: EvalReport {
                    objective: 10,
                    gradient: 9,
                    constraints: 8,
                    jacobian: 7,
                    hessian: 6,
                },
            }),
            TraceEvent::Run(RunReport {
                bin: "size_blif".into(),
                circuit: "tree7".into(),
                status: "ok".into(),
                objective: 6.5,
                mu: 6.5,
                sigma: 0.7,
                area: 9.5,
                seconds: 0.4,
                evals: EvalReport::default(),
                clark_var_clamps: 2,
            }),
        ];
        let text: String = events.iter().map(|e| to_json(e) + "\n").collect();
        let summary = validate_jsonl(&text).expect("writer output must validate");
        assert_eq!(summary.lines, events.len());
        assert_eq!(summary.count("outer_iteration"), 1);
        assert_eq!(summary.count("diverged"), 1);
        assert_eq!(summary.count("what_if_query"), 1);
        assert_eq!(summary.count("serve_request"), 1);
        assert!(summary.has_final_status());
    }

    #[test]
    fn parsed_fields_match_written_values() {
        let line = to_json(&outer());
        let v = parse_json(&line).unwrap();
        assert_eq!(
            v.get("event").and_then(Json::as_str),
            Some("outer_iteration")
        );
        assert_eq!(v.get("outer").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("pg_norm").and_then(Json::as_f64), Some(2.5e-7));
        assert_eq!(v.get("step_accepted"), Some(&Json::Bool(true)));
    }

    #[test]
    fn non_finite_values_survive_the_round_trip() {
        let line = to_json(&TraceEvent::Diverged {
            outer: 0,
            detail: "poisoned".into(),
            x: vec![f64::NAN, f64::NEG_INFINITY, 2.0],
        });
        let v = parse_json(&line).unwrap();
        let Some(Json::Arr(xs)) = v.get("x") else {
            panic!("x must be an array: {line}");
        };
        assert!(xs[0].as_f64().unwrap().is_nan());
        assert_eq!(xs[1].as_f64(), Some(f64::NEG_INFINITY));
        assert_eq!(xs[2].as_f64(), Some(2.0));
    }

    #[test]
    fn string_escaping_round_trips() {
        let line = to_json(&TraceEvent::Restart {
            attempt: 0,
            reason: "quote \" backslash \\ newline \n tab \t done".into(),
        });
        let v = parse_json(&line).unwrap();
        assert_eq!(
            v.get("reason").and_then(Json::as_str),
            Some("quote \" backslash \\ newline \n tab \t done")
        );
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        assert!(validate_jsonl("{\"event\":\"x\"}\nnot json\n")
            .unwrap_err()
            .starts_with("line 2"));
        assert!(validate_jsonl("{\"no_tag\":1}\n")
            .unwrap_err()
            .contains("missing"));
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
    }

    #[test]
    fn shortest_float_formatting_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.02e23, -4.9e-324, 1e308] {
            let line = to_json(&TraceEvent::PhaseSpan {
                phase: "p",
                seconds: v,
            });
            let parsed = parse_json(&line).unwrap();
            assert_eq!(parsed.get("seconds").and_then(Json::as_f64), Some(v));
        }
    }
}
