//! Bounded ring buffer of completed request traces (drop-oldest).
//!
//! [`RingSink`] retains the last `capacity` [`RequestTrace`]s pushed into
//! it. The write path is wait-free at the coordination level: a single
//! atomic fetch-add assigns each push a global sequence number, which maps
//! to a fixed slot (`seq % capacity`); writers never contend on a shared
//! lock, only on the per-slot mutex guarding that one slot's contents.
//! Memory is bounded by construction — the slot array never grows.
//!
//! The sink also implements [`TraceSink`] (always enabled) by buffering
//! solver events in a bounded [`MemorySink`], so it can stand in for a
//! JSONL sink on a solve. The acceptance contract — solves with a
//! `RingSink` attached stay bit-identical to [`crate::NopSink`] runs — is
//! pinned by `sgs-core`'s `ring_bitident` test.

use crate::request::RequestTrace;
use crate::{MemorySink, TraceEvent, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

type Slot = Mutex<Option<(u64, Arc<RequestTrace>)>>;

/// Fixed-capacity, drop-oldest store of the most recent request traces.
#[derive(Debug)]
pub struct RingSink {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    events: MemorySink,
}

impl RingSink {
    /// A ring retaining the last `capacity` traces (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            events: MemorySink::with_capacity(4096),
        }
    }

    /// Maximum number of traces retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever pushed (monotonic; exceeds `capacity` once the
    /// ring wraps).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Number of traces currently retained (never exceeds `capacity`).
    pub fn len(&self) -> usize {
        let pushed = self.pushed();
        let cap = self.capacity() as u64;
        usize::try_from(pushed.min(cap)).unwrap_or(usize::MAX)
    }

    /// Whether no trace has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.pushed() == 0
    }

    /// Stores a completed trace, overwriting the oldest when full.
    /// Returns the trace's global sequence number (0-based).
    pub fn push(&self, trace: RequestTrace) -> u64 {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let idx = usize::try_from(seq % self.slots.len() as u64).unwrap_or(0);
        let mut slot = self.slots[idx].lock().unwrap();
        // A slower writer must never clobber a newer generation that
        // lapped it: only write forward in sequence.
        if slot.as_ref().is_none_or(|(s, _)| *s < seq) {
            *slot = Some((seq, Arc::new(trace)));
        }
        seq
    }

    /// The retained traces, newest first.
    pub fn recent(&self) -> Vec<Arc<RequestTrace>> {
        let mut entries: Vec<(u64, Arc<RequestTrace>)> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap().clone())
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.0));
        entries.into_iter().map(|(_, t)| t).collect()
    }

    /// Looks up a retained trace by its request id.
    pub fn get(&self, request_id: u64) -> Option<Arc<RequestTrace>> {
        self.slots
            .iter()
            .filter_map(|s| s.lock().unwrap().clone())
            .find(|(_, t)| t.request_id == request_id)
            .map(|(_, t)| t)
    }

    /// Solver events buffered through the [`TraceSink`] face, oldest
    /// first (bounded; the oldest are evicted past the buffer capacity).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.events()
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: &TraceEvent) {
        self.events.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> RequestTrace {
        RequestTrace {
            request_id: id,
            route: "/solve".to_string(),
            status: 200,
            code: String::new(),
            session: String::new(),
            session_hit: false,
            admission_wait_seconds: 0.0,
            session_wait_seconds: 0.0,
            total_seconds: 0.0,
            dropped_spans: 0,
            spans: Vec::new(),
            notes: Vec::new(),
        }
    }

    #[test]
    fn drop_oldest_keeps_newest_in_order() {
        let ring = RingSink::new(3);
        for i in 0..7 {
            ring.push(trace(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed(), 7);
        let ids: Vec<u64> = ring.recent().iter().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![6, 5, 4]);
        assert!(ring.get(3).is_none());
        assert_eq!(ring.get(5).unwrap().request_id, 5);
    }

    #[test]
    fn sink_face_buffers_events() {
        let ring = RingSink::new(2);
        assert!(ring.enabled());
        ring.record(&TraceEvent::Counter {
            name: "n",
            value: 1,
        });
        assert_eq!(ring.events().len(), 1);
    }
}
