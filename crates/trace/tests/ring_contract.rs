//! Bounded-memory and ordering contract of the request-trace ring sink.

use sgs_trace::request::RequestTrace;
use sgs_trace::ring::RingSink;
use std::sync::Arc;

fn trace(id: u64) -> RequestTrace {
    RequestTrace {
        request_id: id,
        route: "/solve".to_string(),
        status: 200,
        code: String::new(),
        session: String::new(),
        session_hit: false,
        admission_wait_seconds: 0.0,
        session_wait_seconds: 0.0,
        total_seconds: 0.0,
        dropped_spans: 0,
        spans: Vec::new(),
        notes: Vec::new(),
    }
}

#[test]
fn capacity_never_exceeded_under_concurrent_writers() {
    const CAP: usize = 8;
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 500;
    let ring = Arc::new(RingSink::new(CAP));

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    ring.push(trace(w as u64 * PER_WRITER + i));
                    // The bound must hold at every instant, not just at
                    // the end.
                    assert!(ring.len() <= CAP);
                    assert!(ring.recent().len() <= CAP);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(ring.pushed(), (WRITERS as u64) * PER_WRITER);
    assert_eq!(ring.len(), CAP);
    let survivors = ring.recent();
    assert_eq!(survivors.len(), CAP);
    // Every survivor is retrievable by id.
    for t in &survivors {
        assert_eq!(ring.get(t.request_id).unwrap().request_id, t.request_id);
    }
}

#[test]
fn drop_oldest_ordering_is_newest_first() {
    let ring = RingSink::new(4);
    for i in 0..10 {
        assert_eq!(ring.push(trace(i)), i);
    }
    let ids: Vec<u64> = ring.recent().iter().map(|t| t.request_id).collect();
    assert_eq!(ids, vec![9, 8, 7, 6]);
    // Evicted traces are gone; retained ones resolve by id.
    assert!(ring.get(5).is_none());
    assert!(ring.get(6).is_some());
}

#[test]
fn zero_capacity_clamps_to_one() {
    let ring = RingSink::new(0);
    assert_eq!(ring.capacity(), 1);
    ring.push(trace(1));
    ring.push(trace(2));
    assert_eq!(ring.len(), 1);
    assert_eq!(ring.recent()[0].request_id, 2);
}
