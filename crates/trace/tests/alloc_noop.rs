//! Proof that the disabled trace path allocates nothing.
//!
//! The whole point of `Tracer::emit(|| ...)` taking a closure is that
//! event payloads (format strings, iterate clones) are never built when
//! the sink is a `NopSink`. This test pins that guarantee with a counting
//! global allocator: ten thousand emits and spans on the disabled path
//! must perform **zero** heap allocations.

// A counting global allocator is the one place in the workspace that
// genuinely needs `unsafe`; keep the exception local to this test.
#![allow(unsafe_code)]

use sgs_trace::{TraceEvent, Tracer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn noop_sink_allocates_nothing_on_the_hot_path() {
    let tracer = Tracer::none();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        // Cheap event: must not even be constructed.
        tracer.emit(|| TraceEvent::Counter {
            name: "iteration",
            value: i,
        });
        // Expensive event: the closure body would allocate a String and a
        // Vec — it must never run.
        tracer.emit(|| TraceEvent::Diverged {
            outer: i as usize,
            detail: format!("objective is NaN at iteration {i}"),
            x: vec![0.0; 64],
        });
        // Span guards on the disabled path read no clock and record
        // nothing.
        let span = tracer.span("inner_tr");
        drop(span);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "disabled trace path performed heap allocations"
    );
}
