//! Central-difference derivative battery for the sizing NLP.
//!
//! Two layers of checks on seeded random DAGs from 5 to 50 gates:
//!
//! 1. Full dense checks via `sgs_nlp::problem::check_derivatives`
//!    (every gradient entry, every Jacobian entry, every Lagrangian
//!    Hessian entry against central differences).
//! 2. Directional checks: `J v` against `(c(x + h v) - c(x - h v)) / 2h`
//!    and `H v` against central differences of the exact Lagrangian
//!    gradient along a pseudo-random direction `v` — cheap enough to run
//!    at the larger sizes.
//!
//! Every check runs through BOTH constraint-assembly paths — sequential
//! (`set_par_threshold(usize::MAX)`) and grouped-parallel
//! (`set_par_threshold(0)` with a 2-thread pool) — and the two paths are
//! additionally asserted bit-identical, not just FD-consistent.

use sgs_core::{DelaySpec, Objective, SizingProblem};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::{Circuit, Library};
use sgs_nlp::problem::check_derivatives;
use sgs_nlp::NlpProblem;

fn lib() -> Library {
    Library::paper_default()
}

fn dag(cells: usize, inputs: usize, depth: usize, seed: u64) -> Circuit {
    generate::random_dag(&RandomDagSpec {
        name: format!("fd{cells}"),
        cells,
        inputs,
        depth,
        seed,
        ..Default::default()
    })
}

/// Forces a 2-thread pool so the grouped-parallel assembly path genuinely
/// fans out even on a single-core host (first caller wins; idempotent).
fn force_two_threads() {
    rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build_global()
        .ok();
}

/// splitmix64: deterministic stream for evaluation points and directions.
fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A strictly interior evaluation point: speeds in (1.2, 2.2) mapped
/// through the exact-feasibility initial point, then auxiliary variables
/// nudged off the constraint surface so Jacobian rows are generic.
fn interior_point(p: &SizingProblem, seed: u64) -> Vec<f64> {
    let mut st = seed;
    let s: Vec<f64> = (0..p.num_gates())
        .map(|_| 1.2 + splitmix(&mut st))
        .collect();
    let mut x = p.initial_point(&s);
    let (lo, hi) = p.bounds();
    for i in p.num_gates()..x.len() {
        let bump = 1.0 + 0.05 * (splitmix(&mut st) - 0.5);
        x[i] = (x[i] * bump).clamp(lo[i], hi[i].min(1e12));
    }
    x
}

fn multipliers(m: usize, seed: u64) -> Vec<f64> {
    let mut st = seed ^ 0xABCD_EF01;
    (0..m).map(|_| 2.0 * splitmix(&mut st) - 1.0).collect()
}

fn direction(n: usize, seed: u64) -> Vec<f64> {
    let mut st = seed ^ 0x1357_9BDF;
    let v: Vec<f64> = (0..n).map(|_| 2.0 * splitmix(&mut st) - 1.0).collect();
    let norm = v.iter().map(|a| a * a).sum::<f64>().sqrt();
    v.into_iter().map(|a| a / norm).collect()
}

/// Worst relative errors `(jac, hess)` of the directional derivatives
/// `J v` and `H v` against central differences along `v`.
fn directional_errors(
    p: &SizingProblem,
    x: &[f64],
    lambda: &[f64],
    v: &[f64],
    h: f64,
) -> (f64, f64) {
    let n = p.num_vars();
    let m = p.num_constraints();
    let structure = p.jacobian_structure();
    let mut vals = vec![0.0; structure.len()];
    p.jacobian_values(x, &mut vals);
    let mut jv = vec![0.0; m];
    for (k, &(ci, vi)) in structure.iter().enumerate() {
        jv[ci] += vals[k] * v[vi];
    }
    let xp: Vec<f64> = x.iter().zip(v).map(|(a, d)| a + h * d).collect();
    let xm: Vec<f64> = x.iter().zip(v).map(|(a, d)| a - h * d).collect();
    let mut cp = vec![0.0; m];
    let mut cm = vec![0.0; m];
    p.constraints(&xp, &mut cp);
    p.constraints(&xm, &mut cm);
    let mut worst_j: f64 = 0.0;
    for ci in 0..m {
        let num = (cp[ci] - cm[ci]) / (2.0 * h);
        worst_j = worst_j.max((jv[ci] - num).abs() / (1.0 + num.abs()));
    }

    // H v with sigma = 1, from the symmetric lower-triangle structure.
    let hstructure = p.hessian_structure();
    let mut hvals = vec![0.0; hstructure.len()];
    p.hessian_values(x, 1.0, lambda, &mut hvals);
    let mut hv = vec![0.0; n];
    for (k, &(r, c)) in hstructure.iter().enumerate() {
        hv[r] += hvals[k] * v[c];
        if r != c {
            hv[c] += hvals[k] * v[r];
        }
    }
    // Exact Lagrangian gradient grad f + J' lambda, differenced along v.
    let lag_grad = |x: &[f64]| {
        let mut g = vec![0.0; n];
        p.gradient(x, &mut g);
        let mut jvals = vec![0.0; structure.len()];
        p.jacobian_values(x, &mut jvals);
        for (k, &(ci, vi)) in structure.iter().enumerate() {
            g[vi] += lambda[ci] * jvals[k];
        }
        g
    };
    let gp = lag_grad(&xp);
    let gm = lag_grad(&xm);
    let mut worst_h: f64 = 0.0;
    for r in 0..n {
        let num = (gp[r] - gm[r]) / (2.0 * h);
        worst_h = worst_h.max((hv[r] - num).abs() / (1.0 + num.abs()));
    }
    (worst_j, worst_h)
}

/// Builds the problem with the requested assembly path forced.
fn build(circuit: &Circuit, obj: Objective, spec: DelaySpec, parallel: bool) -> SizingProblem {
    let mut p = SizingProblem::build(circuit, &lib(), obj, spec);
    if parallel {
        force_two_threads();
        p.set_par_threshold(0);
    } else {
        p.set_par_threshold(usize::MAX);
    }
    p
}

fn objectives() -> Vec<(Objective, DelaySpec)> {
    vec![
        (Objective::Area, DelaySpec::MaxMean(40.0)),
        (Objective::MeanDelay, DelaySpec::None),
        (
            Objective::MeanPlusKSigma(3.0),
            DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 50.0 },
        ),
    ]
}

#[test]
fn dense_fd_check_small_circuits_both_paths() {
    // Full dense FD sweep is O(n) evaluations per entry — keep it small.
    for (cells, inputs, depth, seed) in [(5, 2, 2, 11), (9, 3, 3, 23), (16, 4, 4, 37)] {
        let c = dag(cells, inputs, depth, seed);
        for (obj, spec) in objectives() {
            for parallel in [false, true] {
                let p = build(&c, obj.clone(), spec.clone(), parallel);
                let x = interior_point(&p, seed);
                let lambda = multipliers(p.num_constraints(), seed);
                let r = check_derivatives(&p, &x, &lambda, 1e-6);
                assert!(
                    r.within(5e-6),
                    "{cells} cells, {obj:?}/{spec:?}, parallel={parallel}: {r:?}"
                );
            }
        }
    }
}

#[test]
fn directional_fd_check_up_to_fifty_gates_both_paths() {
    for (cells, inputs, depth, seed) in [
        (5, 2, 2, 101),
        (12, 4, 3, 202),
        (27, 6, 5, 303),
        (50, 8, 7, 404),
    ] {
        let c = dag(cells, inputs, depth, seed);
        for (obj, spec) in objectives() {
            for parallel in [false, true] {
                let p = build(&c, obj.clone(), spec.clone(), parallel);
                let x = interior_point(&p, seed);
                let lambda = multipliers(p.num_constraints(), seed);
                let v = direction(p.num_vars(), seed);
                let (ej, eh) = directional_errors(&p, &x, &lambda, &v, 1e-6);
                assert!(
                    ej < 5e-6 && eh < 5e-6,
                    "{cells} cells, {obj:?}/{spec:?}, parallel={parallel}: jac {ej:.2e} hess {eh:.2e}"
                );
            }
        }
    }
}

#[test]
fn serial_and_parallel_assembly_bit_identical() {
    force_two_threads();
    let c = dag(50, 8, 7, 505);
    for (obj, spec) in objectives() {
        let ser = build(&c, obj.clone(), spec.clone(), false);
        let par = build(&c, obj.clone(), spec.clone(), true);
        let x = interior_point(&ser, 505);

        assert_eq!(
            ser.objective(&x).to_bits(),
            par.objective(&x).to_bits(),
            "{obj:?}: objective"
        );
        let mut gs = vec![0.0; ser.num_vars()];
        let mut gp = vec![0.0; par.num_vars()];
        ser.gradient(&x, &mut gs);
        par.gradient(&x, &mut gp);
        assert_eq!(bits(&gs), bits(&gp), "{obj:?}: gradient");

        let m = ser.num_constraints();
        let mut cs = vec![0.0; m];
        let mut cp = vec![0.0; m];
        ser.constraints(&x, &mut cs);
        par.constraints(&x, &mut cp);
        assert_eq!(bits(&cs), bits(&cp), "{obj:?}: constraints");

        assert_eq!(ser.jacobian_structure(), par.jacobian_structure());
        let mut js = vec![0.0; ser.jacobian_structure().len()];
        let mut jp = vec![0.0; js.len()];
        ser.jacobian_values(&x, &mut js);
        par.jacobian_values(&x, &mut jp);
        assert_eq!(bits(&js), bits(&jp), "{obj:?}: jacobian");

        let lambda = multipliers(m, 505);
        assert_eq!(ser.hessian_structure(), par.hessian_structure());
        let mut hs = vec![0.0; ser.hessian_structure().len()];
        let mut hp = vec![0.0; hs.len()];
        ser.hessian_values(&x, 0.7, &lambda, &mut hs);
        par.hessian_values(&x, 0.7, &lambda, &mut hp);
        assert_eq!(bits(&hs), bits(&hp), "{obj:?}: hessian");
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}
