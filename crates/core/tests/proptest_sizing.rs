//! Property-based tests of the sizing formulation: exact derivatives and
//! exactly feasible initial points on arbitrary circuits and speed
//! vectors, plus consistency between the NLP view and the SSTA view.

use proptest::prelude::*;
use sgs_core::problem::SizingProblem;
use sgs_core::reduced::ReducedObjective;
use sgs_core::{DelaySpec, Objective};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::Library;
use sgs_nlp::lbfgs::GradFn;
use sgs_nlp::problem::check_derivatives;
use sgs_nlp::NlpProblem;

fn small_circuit() -> impl Strategy<Value = sgs_netlist::Circuit> {
    (2usize..7, 2usize..8, any::<u64>()).prop_flat_map(|(depth, inputs, seed)| {
        (depth..depth + 30).prop_map(move |cells| {
            generate::random_dag(&RandomDagSpec {
                name: "prop".into(),
                cells,
                inputs,
                depth,
                seed,
                ..Default::default()
            })
        })
    })
}

fn objective() -> impl Strategy<Value = Objective> {
    prop_oneof![
        Just(Objective::Area),
        Just(Objective::MeanDelay),
        Just(Objective::MeanPlusKSigma(1.0)),
        Just(Objective::MeanPlusKSigma(3.0)),
        Just(Objective::Sigma),
        Just(Objective::NegSigma),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn initial_point_exactly_feasible(
        circuit in small_circuit(),
        obj in objective(),
        raw_s in prop::collection::vec(1.0..3.0f64, 40),
    ) {
        let lib = Library::paper_default();
        let p = SizingProblem::build(&circuit, &lib, obj, DelaySpec::None);
        let s: Vec<f64> = (0..circuit.num_gates()).map(|i| raw_s[i % raw_s.len()]).collect();
        let x = p.initial_point(&s);
        let mut c = vec![0.0; p.num_constraints()];
        p.constraints(&x, &mut c);
        let worst = c.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        prop_assert!(worst < 1e-8, "infeasibility {worst}");
    }

    #[test]
    fn nlp_derivatives_exact_on_random_circuits(
        circuit in small_circuit(),
        obj in objective(),
        raw_s in prop::collection::vec(1.05..2.95f64, 40),
    ) {
        let lib = Library::paper_default();
        let p = SizingProblem::build(&circuit, &lib, obj, DelaySpec::None);
        let s: Vec<f64> = (0..circuit.num_gates()).map(|i| raw_s[i % raw_s.len()]).collect();
        let x = p.initial_point(&s);
        let lambda: Vec<f64> = (0..p.num_constraints())
            .map(|i| 0.4 * ((i as f64) * 0.37).sin())
            .collect();
        let r = check_derivatives(&p, &x, &lambda, 1e-6);
        prop_assert!(r.within(2e-4), "{r:?}");
    }

    #[test]
    fn reduced_gradient_matches_finite_differences(
        circuit in small_circuit(),
        obj in objective(),
        raw_s in prop::collection::vec(1.05..2.95f64, 40),
    ) {
        let lib = Library::paper_default();
        let n = circuit.num_gates();
        let mut red = ReducedObjective::new(&circuit, &lib, obj, DelaySpec::None);
        let s: Vec<f64> = (0..n).map(|i| raw_s[i % raw_s.len()]).collect();
        let mut g = vec![0.0; n];
        red.grad(&s, &mut g);
        // Spot-check a handful of coordinates (full FD would be slow).
        for i in (0..n).step_by((n / 5).max(1)) {
            let h = 1e-6;
            let mut sp = s.clone();
            let mut sm = s.clone();
            sp[i] += h;
            sm[i] -= h;
            let num = (red.value(&sp) - red.value(&sm)) / (2.0 * h);
            prop_assert!(
                (g[i] - num).abs() < 1e-4 * (1.0 + num.abs()),
                "dS[{i}]: {} vs {num}", g[i]
            );
        }
    }

    #[test]
    fn nlp_objective_agrees_with_ssta_at_feasible_points(
        circuit in small_circuit(),
        raw_s in prop::collection::vec(1.0..3.0f64, 40),
    ) {
        let lib = Library::paper_default();
        let p = SizingProblem::build(
            &circuit,
            &lib,
            Objective::MeanPlusKSigma(3.0),
            DelaySpec::None,
        );
        let s: Vec<f64> = (0..circuit.num_gates()).map(|i| raw_s[i % raw_s.len()]).collect();
        let x = p.initial_point(&s);
        let report = sgs_ssta::ssta(&circuit, &lib, &s);
        prop_assert!(
            (p.objective(&x) - report.mean_plus_k_sigma(3.0)).abs() < 1e-8,
            "NLP {} vs SSTA {}",
            p.objective(&x),
            report.mean_plus_k_sigma(3.0)
        );
    }
}
