//! Property battery for the sweep engine: random DAGs × random deadline
//! grids × random k-sweeps.
//!
//! Pinned properties:
//!
//! * the traced frontier is monotone (dominant) in the deadline, and the
//!   optimal value of a `mu + k sigma` sweep is monotone in `k`;
//! * every returned feasible point really meets its deadline per a
//!   from-scratch [`ssta`] re-check, and its reported `(mu, sigma, area)`
//!   are bit-identical to that fresh evaluation;
//! * a no-op sweep step (exactly repeated deadline) returns bit-identical
//!   sizes, served from the cache instead of a re-solve.

use proptest::prelude::*;
use sgs_core::{SweepConfig, SweepEngine};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::Library;
use sgs_ssta::ssta;

fn small_circuit() -> impl Strategy<Value = sgs_netlist::Circuit> {
    (2usize..4, 2usize..6, any::<u64>()).prop_flat_map(|(depth, inputs, seed)| {
        (depth.max(4)..depth.max(4) + 8).prop_map(move |cells| {
            generate::random_dag(&RandomDagSpec {
                name: "prop".into(),
                cells,
                inputs,
                depth,
                seed,
                ..Default::default()
            })
        })
    })
}

/// A deadline grid in walk order: a guaranteed-feasible anchor just above
/// the unsized baseline, then descending random fractions of it (possibly
/// dipping into infeasibility — that is part of the property).
fn walk_grid(circuit: &sgs_netlist::Circuit, lib: &Library, fractions: &[f64]) -> Vec<f64> {
    let baseline = ssta(circuit, lib, &vec![1.0; circuit.num_gates()])
        .delay
        .mean();
    let mut grid = vec![baseline * 1.02];
    let mut fs = fractions.to_vec();
    fs.sort_by(|a, b| b.total_cmp(a));
    grid.extend(fs.iter().map(|f| baseline * f));
    grid
}

fn engine_config() -> SweepConfig {
    SweepConfig {
        refine_max: 0,
        infeasible_margin: 0.0,
        ..SweepConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn frontier_monotone_and_points_feasible(
        circuit in small_circuit(),
        fractions in prop::collection::vec(0.82..0.99f64, 2..4),
    ) {
        let lib = Library::paper_default();
        let grid = walk_grid(&circuit, &lib, &fractions);
        let engine = SweepEngine::new(&circuit, &lib).config(engine_config());
        let frontier = engine.trace(&grid).expect("anchor above baseline is feasible");
        prop_assert_eq!(frontier.points.len(), grid.len());
        frontier.check_dominance(1e-5).map_err(TestCaseError::fail)?;
        for p in frontier.points.iter().filter(|p| p.feasible) {
            // From-scratch feasibility re-check at the returned sizes.
            let fresh = ssta(&circuit, &lib, &p.s);
            let tol = 1e-3 * (1.0 + p.deadline.abs());
            prop_assert!(
                fresh.delay.mean() <= p.deadline + tol,
                "point at deadline {} misses it: fresh mu {}",
                p.deadline, fresh.delay.mean()
            );
            // Bitwise evaluation tier, point by point.
            prop_assert_eq!(fresh.delay.mean().to_bits(), p.mu.to_bits());
            prop_assert_eq!(fresh.delay.sigma().to_bits(), p.sigma.to_bits());
            let area: f64 = p.s.iter().sum();
            prop_assert_eq!(area.to_bits(), p.area.to_bits());
        }
    }

    #[test]
    fn repeated_deadline_returns_bit_identical_sizes(
        circuit in small_circuit(),
        fraction in 0.88..0.99f64,
    ) {
        let lib = Library::paper_default();
        let baseline = ssta(&circuit, &lib, &vec![1.0; circuit.num_gates()])
            .delay
            .mean();
        let d = baseline * fraction;
        let grid = [baseline * 1.02, d, d];
        let engine = SweepEngine::new(&circuit, &lib).config(engine_config());
        let frontier = engine.trace(&grid).expect("anchor feasible");
        let repeats: Vec<_> = frontier
            .points
            .iter()
            .filter(|p| p.deadline.to_bits() == d.to_bits())
            .collect();
        prop_assert_eq!(repeats.len(), 2);
        prop_assert_eq!(
            repeats.iter().filter(|p| p.cache_hit).count(),
            1,
            "exactly one of the two must be cache-served"
        );
        prop_assert_eq!(repeats[0].feasible, repeats[1].feasible);
        let bits =
            |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(
            bits(&repeats[0].s),
            bits(&repeats[1].s),
            "no-op sweep step moved the sizes"
        );
    }

}

proptest! {
    // Fewer cases than the frontier properties: every case pays for a
    // cold unconstrained solve.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn k_sweep_objective_monotone_in_k(
        // A tighter circuit pool than the frontier properties: the cold
        // anchor of an *unconstrained* mu + k sigma solve is by far the
        // most expensive solve in this battery on debug builds.
        circuit in (2usize..3, 2usize..4, any::<u64>()).prop_map(|(depth, inputs, seed)| {
            generate::random_dag(&RandomDagSpec {
                name: "prop".into(),
                cells: 6,
                inputs,
                depth,
                seed,
                ..Default::default()
            })
        }),
        raw_ks in prop::collection::vec(0.0..3.0f64, 3),
    ) {
        let lib = Library::paper_default();
        let mut ks = raw_ks;
        ks.sort_by(f64::total_cmp);
        let engine = SweepEngine::new(&circuit, &lib).config(engine_config());
        let points = engine.k_sweep(&ks).expect("unconstrained sweep converges");
        prop_assert_eq!(points.len(), ks.len());
        for w in points.windows(2) {
            prop_assert!(
                w[1].objective >= w[0].objective - 1e-5 * (1.0 + w[0].objective.abs()),
                "V({}) = {} < V({}) = {}",
                w[1].k, w[1].objective, w[0].k, w[0].objective
            );
        }
        // Interior points ride the warm chain (or the repeat cache).
        prop_assert!(points[1..].iter().all(|p| p.warm_start_hit || p.cache_hit));
    }
}
