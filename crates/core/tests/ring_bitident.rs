//! Ring-sink solves must be bit-identical to NopSink solves.
//!
//! The zero-cost-when-observed contract of the request-tracing layer:
//! attaching a `RingSink` (and a `RequestContext`) to a solve changes
//! *what is recorded*, never *what is computed*. Objective, every sized
//! iterate, and the evaluation counts are compared bit-for-bit via
//! `f64::to_bits`.

use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::Library;
use sgs_trace::{RequestContext, RingSink};

struct SolveFingerprint {
    objective: u64,
    s: Vec<u64>,
    delay_mean: u64,
    delay_var: u64,
    outer: usize,
    inner: usize,
    evals: (usize, usize, usize, usize, usize),
}

fn run(trace: Option<(&RingSink, &RequestContext)>) -> SolveFingerprint {
    let c = generate::random_dag(&RandomDagSpec {
        cells: 40,
        inputs: 8,
        depth: 5,
        seed: 7,
        ..RandomDagSpec::default()
    });
    let l = Library::paper_default();
    let mut sizer = Sizer::new(&c, &l)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMean(20.0));
    if let Some((ring, _)) = trace {
        sizer = sizer.trace(ring);
    }
    let mut r = sizer.resolver();
    let out = match trace {
        Some((_, ctx)) => r.solve_traced(Some(ctx)).unwrap(),
        None => r.solve().unwrap(),
    };
    // A warm re-solve at a moved deadline exercises the traced path too.
    let warm = match trace {
        Some((_, ctx)) => r.resolve_spec_traced(19.5, Some(ctx)).unwrap(),
        None => r.resolve_spec(19.5).unwrap(),
    };
    let e = warm.result.evals;
    SolveFingerprint {
        objective: out.result.objective.to_bits(),
        s: warm.result.s.iter().map(|v| v.to_bits()).collect(),
        delay_mean: warm.result.delay.mean().to_bits(),
        delay_var: warm.result.delay.var().to_bits(),
        outer: out.result.outer_iterations + warm.result.outer_iterations,
        inner: out.result.inner_iterations + warm.result.inner_iterations,
        evals: (
            e.objective,
            e.gradient,
            e.constraints,
            e.jacobian,
            e.hessian,
        ),
    }
}

#[test]
fn ring_sink_solve_is_bit_identical_to_nop() {
    let plain = run(None);

    let ring = RingSink::new(16);
    let ctx = RequestContext::new(1);
    let traced = run(Some((&ring, &ctx)));

    assert_eq!(plain.objective, traced.objective, "objective bits differ");
    assert_eq!(plain.s, traced.s, "sized iterate bits differ");
    assert_eq!(plain.delay_mean, traced.delay_mean);
    assert_eq!(plain.delay_var, traced.delay_var);
    assert_eq!(plain.outer, traced.outer, "outer iteration counts differ");
    assert_eq!(plain.inner, traced.inner, "inner iteration counts differ");
    assert_eq!(plain.evals, traced.evals, "evaluation counts differ");

    // The traced run actually observed something: solver events in the
    // ring's event buffer and solver spans in the request tree.
    assert!(!ring.events().is_empty(), "ring sink recorded no events");
    let t = ctx.finish("/solve", 200, "", "", true);
    assert!(
        t.spans.iter().any(|s| s.name == "auglag"),
        "request context missed the auglag span: {:?}",
        t.spans.iter().map(|s| s.name).collect::<Vec<_>>()
    );
    assert!(t.spans.iter().any(|s| s.name == "inner_tr"));
}
