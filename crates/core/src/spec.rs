//! Objective functions and delay constraints of the sizing formulation.

use std::fmt;

/// The objective function of a sizing run.
///
/// Covers every objective the paper's experiments use (Tables 1–3):
/// minimum area, minimum `mu`, minimum `mu + k sigma`, and minimum /
/// maximum `sigma` (the latter two at a pinned mean via
/// [`DelaySpec::ExactMean`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Objective {
    /// Minimise the sum of speed factors — the paper's area measure.
    Area,
    /// Minimise a weighted sum of speed factors (weights may encode cell
    /// area or, with switching activities folded in, power; both scale
    /// linearly with the speed factor per the paper's Section 4).
    WeightedArea(Vec<f64>),
    /// Minimise the mean circuit delay `mu_Tmax`.
    MeanDelay,
    /// Minimise `mu_Tmax + k * sigma_Tmax` (k = 1 covers 84.1% of
    /// circuits, k = 3 covers 99.8%).
    MeanPlusKSigma(f64),
    /// Minimise `sigma_Tmax` (used with a pinned mean in Table 2).
    Sigma,
    /// Maximise `sigma_Tmax` (Table 2's adversarial rows).
    NegSigma,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Area => write!(f, "min sum(S)"),
            Objective::WeightedArea(_) => write!(f, "min weighted sum(S)"),
            Objective::MeanDelay => write!(f, "min mu_Tmax"),
            Objective::MeanPlusKSigma(k) => write!(f, "min mu_Tmax + {k} sigma_Tmax"),
            Objective::Sigma => write!(f, "min sigma_Tmax"),
            Objective::NegSigma => write!(f, "max sigma_Tmax"),
        }
    }
}

/// An optional delay constraint attached to the formulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DelaySpec {
    /// No delay constraint.
    None,
    /// `mu_Tmax <= d` (turned into an equality with a nonnegative slack).
    MaxMean(f64),
    /// `mu_Tmax + k sigma_Tmax <= d`.
    MaxMeanPlusKSigma {
        /// Sigma multiplier `k`.
        k: f64,
        /// Deadline.
        d: f64,
    },
    /// `mu_Tmax = d` exactly (the tree-circuit experiments of Table 2).
    ExactMean(f64),
    /// A separate deadline per primary output, in the circuit's output
    /// order: `mu_T(o) + k sigma_T(o) <= d[o]` — the multi-required-time
    /// setting of practical sizers, which the paper's single circuit-wide
    /// bound generalises to directly (one slack per output).
    PerOutput {
        /// Sigma multiplier `k` (0 for mean-only bounds).
        k: f64,
        /// One deadline per primary output.
        d: Vec<f64>,
    },
}

impl DelaySpec {
    /// Whether any constraint is present.
    pub fn is_some(&self) -> bool {
        !matches!(self, DelaySpec::None)
    }
}

impl fmt::Display for DelaySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelaySpec::None => write!(f, "(unconstrained)"),
            DelaySpec::MaxMean(d) => write!(f, "mu_Tmax <= {d}"),
            DelaySpec::MaxMeanPlusKSigma { k, d } => {
                write!(f, "mu_Tmax + {k} sigma_Tmax <= {d}")
            }
            DelaySpec::ExactMean(d) => write!(f, "mu_Tmax = {d}"),
            DelaySpec::PerOutput { k, d } => {
                write!(f, "per-output mu + {k} sigma <= {d:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        for o in [
            Objective::Area,
            Objective::MeanDelay,
            Objective::MeanPlusKSigma(3.0),
            Objective::Sigma,
            Objective::NegSigma,
        ] {
            assert!(!format!("{o}").is_empty());
        }
        for d in [
            DelaySpec::None,
            DelaySpec::MaxMean(10.0),
            DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 10.0 },
            DelaySpec::ExactMean(5.8),
        ] {
            assert!(!format!("{d}").is_empty());
        }
    }

    #[test]
    fn is_some() {
        assert!(!DelaySpec::None.is_some());
        assert!(DelaySpec::MaxMean(1.0).is_some());
    }
}
