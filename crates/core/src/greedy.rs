//! A TILOS-style greedy sensitivity sizer — the classic deterministic
//! baseline the NLP formulation competes against.
//!
//! Starting from minimum sizes, each round bumps the speed factor of the
//! gate whose bump most improves the chosen delay metric, restricted to
//! gates on or near the critical path (by deterministic slack), until no
//! bump helps. This is the algorithm family practical sizers used before
//! (and alongside) mathematical programming; benches compare its results
//! and cost against the paper's NLP on the same circuits.

use crate::spec::Objective;
use sgs_netlist::{Circuit, GateId, Library, Signal};
use sgs_ssta::{ssta_with_model, sta_deterministic_with_model, DelayModel};

/// Options for [`greedy_size`].
#[derive(Debug, Clone)]
pub struct GreedyOptions {
    /// Multiplicative speed-factor bump per accepted move.
    pub bump: f64,
    /// Slack window (relative to the worst arrival) for candidate gates.
    pub slack_window: f64,
    /// Maximum accepted moves.
    pub max_moves: usize,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            bump: 1.15,
            slack_window: 0.02,
            max_moves: 100_000,
        }
    }
}

/// Result of a greedy sizing run.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Final speed factors.
    pub s: Vec<f64>,
    /// Final metric value.
    pub metric: f64,
    /// Accepted moves.
    pub moves: usize,
    /// Metric evaluations performed (the cost driver).
    pub evaluations: usize,
}

/// The delay metric the greedy sizer descends. Takes the prebuilt
/// [`DelayModel`] so the thousands of candidate evaluations per run skip
/// the per-call model construction.
fn metric_value(circuit: &Circuit, model: &DelayModel, s: &[f64], objective: &Objective) -> f64 {
    match objective {
        Objective::MeanDelay => ssta_with_model(circuit, model, s).delay.mean(),
        Objective::MeanPlusKSigma(k) => ssta_with_model(circuit, model, s).mean_plus_k_sigma(*k),
        // The pre-statistical baseline: deterministic worst case.
        _ => sta_deterministic_with_model(circuit, model, s, 0.0).0,
    }
}

/// Gates within the slack window of the (deterministic) critical path.
fn candidates(circuit: &Circuit, model: &DelayModel, s: &[f64], window: f64) -> Vec<GateId> {
    let (worst, arrivals) = sta_deterministic_with_model(circuit, model, s, 0.0);
    // Required times by reverse sweep.
    let mut required = vec![f64::INFINITY; circuit.num_gates()];
    for &o in circuit.outputs() {
        required[o.index()] = worst;
    }
    for (id, gate) in circuit.gates().collect::<Vec<_>>().into_iter().rev() {
        let req_here = required[id.index()];
        if !req_here.is_finite() {
            continue;
        }
        let d = model.gate_delay(id, s).mean();
        for &sig in &gate.inputs {
            if let Signal::Gate(src) = sig {
                let r = req_here - d;
                if r < required[src.index()] {
                    required[src.index()] = r;
                }
            }
        }
    }
    let tol = window * worst;
    circuit
        .gates()
        .filter(|(id, _)| {
            required[id.index()].is_finite() && required[id.index()] - arrivals[id.index()] <= tol
        })
        .map(|(id, _)| id)
        .collect()
}

/// Greedily sizes `circuit` to minimise the delay metric implied by
/// `objective` ([`Objective::MeanDelay`], [`Objective::MeanPlusKSigma`] use
/// statistical timing; anything else descends the deterministic worst
/// case).
///
/// # Panics
///
/// Panics if `opts.bump <= 1`.
pub fn greedy_size(
    circuit: &Circuit,
    lib: &Library,
    objective: &Objective,
    opts: &GreedyOptions,
) -> GreedyResult {
    assert!(opts.bump > 1.0, "bump factor must exceed 1");
    let n = circuit.num_gates();
    // One model build for the whole run: every candidate evaluation below
    // reuses it.
    let model = DelayModel::new(circuit, lib);
    let mut s = vec![1.0; n];
    let mut best = metric_value(circuit, &model, &s, objective);
    let mut moves = 0usize;
    let mut evals = 1usize;

    while moves < opts.max_moves {
        let cands = candidates(circuit, &model, &s, opts.slack_window);
        let mut best_gate: Option<(GateId, f64, f64)> = None; // (gate, new_s, metric)
        for id in cands {
            let g = id.index();
            if s[g] >= lib.s_limit - 1e-12 {
                continue;
            }
            let old = s[g];
            s[g] = (old * opts.bump).min(lib.s_limit);
            let m = metric_value(circuit, &model, &s, objective);
            evals += 1;
            let candidate_s = s[g];
            s[g] = old;
            if m < best - 1e-12 && best_gate.is_none_or(|(_, _, bm)| m < bm) {
                best_gate = Some((id, candidate_s, m));
            }
        }
        match best_gate {
            Some((id, new_s, m)) => {
                s[id.index()] = new_s;
                best = m;
                moves += 1;
            }
            None => break,
        }
    }

    GreedyResult {
        s,
        metric: best,
        moves,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sizer, SolverChoice};
    use sgs_netlist::generate;
    use sgs_ssta::{ssta, sta_deterministic};

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn greedy_improves_over_unsized() {
        let c = generate::tree7();
        let r = greedy_size(&c, &lib(), &Objective::MeanDelay, &GreedyOptions::default());
        let baseline = ssta(&c, &lib(), &[1.0; 7]).delay.mean();
        assert!(r.metric < baseline - 0.5, "{} vs {}", r.metric, baseline);
        assert!(r.moves > 0);
        for &si in &r.s {
            assert!((1.0..=3.0 + 1e-9).contains(&si));
        }
    }

    #[test]
    fn nlp_at_least_matches_greedy() {
        // The point of the mathematical-programming formulation: it should
        // never lose to the greedy heuristic on the objective.
        let c = generate::ripple_carry_adder(4);
        for obj in [Objective::MeanDelay, Objective::MeanPlusKSigma(3.0)] {
            let greedy = greedy_size(&c, &lib(), &obj, &GreedyOptions::default());
            let nlp = Sizer::new(&c, &lib())
                .objective(obj.clone())
                .solver(SolverChoice::ReducedSpace)
                .solve()
                .expect("sizes");
            assert!(
                nlp.objective <= greedy.metric + 1e-6,
                "{obj}: NLP {} vs greedy {}",
                nlp.objective,
                greedy.metric
            );
        }
    }

    #[test]
    fn deterministic_metric_ignores_sigma() {
        let c = generate::tree7();
        let det = greedy_size(&c, &lib(), &Objective::Area, &GreedyOptions::default());
        // Metric equals the deterministic STA at the result.
        let (worst, _) = sta_deterministic(&c, &lib(), &det.s, 0.0);
        assert!((det.metric - worst).abs() < 1e-9);
    }

    #[test]
    fn respects_move_cap() {
        let c = generate::tree7();
        let r = greedy_size(
            &c,
            &lib(),
            &Objective::MeanDelay,
            &GreedyOptions {
                max_moves: 3,
                ..Default::default()
            },
        );
        assert!(r.moves <= 3);
    }
}
