//! Write-plan introspection: every parallel kernel declares its writes.
//!
//! The determinism contract of this reproduction — bit-identical results
//! at any thread count — rests on each parallel kernel partitioning its
//! output arrays into disjoint, covering per-unit write sets, and on
//! every cross-unit merge being bit-commutative. Those properties used to
//! live only in hand-maintained index arithmetic (`split_at_mut` offsets,
//! chunk bounds, level schedules). This module makes them *declarative*:
//! the [`WritePlan`] trait exports, for each kernel, the concrete
//! half-open index intervals every parallel unit writes, plus the
//! reductions it performs, so the stage-4 certifier in `sgs-analyze` can
//! statically prove disjointness and coverage and lint the merges against
//! the bit-commutative whitelist.
//!
//! Three plan families are implemented here:
//!
//! - [`SizingProblem`] — the grouped CSR constraint/Jacobian/Hessian
//!   assembly (one unit per evaluation group, intervals from the
//!   `jac_off`/`hess_off` prefix offsets that drive `split_groups`);
//! - [`LevelSweeper`] — the levelized SoA sweep (one unit per
//!   `(level, chunk)` pair over the shared counting-sort
//!   [`sgs_ssta::LevelSchedule`]);
//! - [`McPartition`] — the Monte Carlo `par_chunks_mut` sample partition
//!   with its exact-`u64` criticality merge.
//!
//! The declared plans are exactly what the kernels execute — the chunk
//! arithmetic is shared ([`rayon::chunk_bounds`], `LEVEL_CHUNK`, the same
//! offset arrays), and the cfg-gated shadow-write detector
//! (`sgs_trace::shadow`) cross-checks the declaration against stamped
//! writes at runtime. The `corrupt_overlap_*` hooks on each implementor
//! plant a false claim in the declaration (and, where applicable, in the
//! shadow stamps) so the mutation battery can prove planted races are
//! caught.

use crate::problem::SizingProblem;
use sgs_nlp::NlpProblem;
use sgs_ssta::monte_carlo::{McPartition, CHUNK};
use sgs_ssta::{LevelSweeper, LEVEL_CHUNK};

/// How a cross-unit merge combines per-unit partial results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeKind {
    /// Exact integer addition of `u64` tallies — associative, commutative
    /// and lossless, so merge order cannot change a bit.
    ExactU64Sum,
    /// A bitwise-commutative merge (e.g. element-wise `max`/`min`/`|` of
    /// fixed-point histogram buckets): any merge order gives identical
    /// bits.
    BitCommutative,
    /// Floating-point accumulation — NOT commutative at the bit level;
    /// allowed only in sequential (deterministically ordered) folds.
    FloatSum,
}

/// Merge kinds a *parallel* reduction may use without breaking the
/// bit-identity contract. Float accumulation is deliberately absent: a
/// float sum whose operand order depends on the execution schedule is an
/// Error-class diagnostic (`SGS-P005`).
pub const PARALLEL_MERGE_WHITELIST: [MergeKind; 2] =
    [MergeKind::ExactU64Sum, MergeKind::BitCommutative];

/// Whether `kind` is on the parallel-merge whitelist.
pub fn merge_whitelisted(kind: MergeKind) -> bool {
    PARALLEL_MERGE_WHITELIST.contains(&kind)
}

/// One declared reduction of per-unit partial results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionDecl {
    /// Stable reduction name (e.g. `"mc_criticality_merge"`).
    pub name: &'static str,
    /// Whether partial results are produced by parallel units (only then
    /// does the whitelist apply — a sequential fold has a fixed order).
    pub parallel: bool,
    /// How the partials are combined.
    pub kind: MergeKind,
}

/// The index intervals one parallel unit writes in one output array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteUnit {
    /// Human-readable unit label (e.g. `"group 12"`, `"level 3 chunk 0"`).
    pub label: String,
    /// Half-open `(start, end)` index intervals this unit writes.
    pub writes: Vec<(usize, usize)>,
}

/// The declared write partition of one output array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayPlan {
    /// Stable array name within the kernel (e.g. `"jacobian_vals"`).
    pub array: &'static str,
    /// Declared array length; the units must cover `0..len` exactly once.
    pub len: usize,
    /// The parallel units and their write sets.
    pub units: Vec<WriteUnit>,
}

/// The complete declared parallel behaviour of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPlan {
    /// Stable kernel name (matches the shadow-write ledger's kernel key).
    pub kernel: &'static str,
    /// Output arrays and their write partitions.
    pub arrays: Vec<ArrayPlan>,
    /// Cross-unit reductions the kernel performs.
    pub reductions: Vec<ReductionDecl>,
}

/// Introspection trait: a kernel's concrete write-index sets per parallel
/// unit, as data the stage-4 certifier can reason about.
pub trait WritePlan {
    /// The kernel's declared write partition and reductions.
    fn write_plan(&self) -> KernelPlan;
}

/// Compresses a sorted index list into maximal half-open intervals.
fn runs(sorted: &[usize]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    for &i in sorted {
        match out.last_mut() {
            Some(last) if last.1 == i => last.1 = i + 1,
            _ => out.push((i, i + 1)),
        }
    }
    out
}

impl WritePlan for SizingProblem {
    /// The grouped disjoint-slice assembly: one parallel unit per
    /// evaluation group, writing `groups[g]`'s contiguous residual slice
    /// and its `jac_off`/`hess_off` value blocks. The Hessian's objective
    /// block is written by the dispatching caller before the parallel
    /// fan-out; it appears as its own (sequential) unit.
    fn write_plan(&self) -> KernelPlan {
        let groups = self.plan_groups();
        let jac_off = self.plan_jac_off();
        let hess_off = self.plan_hess_off();
        let obj_len = self.plan_obj_hess_len();
        let ncons = self.num_constraints();

        let mut con_units = Vec::with_capacity(groups.len());
        let mut jac_units = Vec::with_capacity(groups.len());
        let mut hess_units = Vec::with_capacity(groups.len() + 1);
        if obj_len > 0 {
            hess_units.push(WriteUnit {
                label: "objective block".to_string(),
                writes: vec![(0, obj_len)],
            });
        }
        for (g, &(start, len)) in groups.iter().enumerate() {
            con_units.push(WriteUnit {
                label: format!("group {g}"),
                writes: vec![(start, start + len)],
            });
            let mut jac_end = jac_off[start + len];
            if self.plan_corrupt_jac_overlap() == Some(g) {
                // Planted race: this group also claims its neighbour's
                // first entry (or one past the array on the last group).
                jac_end += 1;
            }
            jac_units.push(WriteUnit {
                label: format!("group {g}"),
                writes: vec![(jac_off[start], jac_end)],
            });
            let mut hess_end = obj_len + hess_off[start + len];
            if self.plan_corrupt_hess_overlap() == Some(g) {
                hess_end += 1;
            }
            hess_units.push(WriteUnit {
                label: format!("group {g}"),
                writes: vec![(obj_len + hess_off[start], hess_end)],
            });
        }
        KernelPlan {
            kernel: "assembly",
            arrays: vec![
                ArrayPlan {
                    array: "constraints",
                    len: ncons,
                    units: con_units,
                },
                ArrayPlan {
                    array: "jacobian_vals",
                    len: *jac_off.last().unwrap(),
                    units: jac_units,
                },
                ArrayPlan {
                    array: "hessian_vals",
                    len: obj_len + *hess_off.last().unwrap(),
                    units: hess_units,
                },
            ],
            // Clark variance clamps fire inside parallel groups and are
            // tallied by exact u64 atomic addition in sgs-metrics.
            reductions: vec![ReductionDecl {
                name: "clark_var_clamp_count",
                parallel: true,
                kind: MergeKind::ExactU64Sum,
            }],
        }
    }
}

impl WritePlan for LevelSweeper {
    /// The levelized sweep: one parallel unit per `(level, chunk)` pair
    /// of the shared counting-sort schedule, each writing the arrival
    /// slots of its chunk's gate ids. Proving this partition disjoint +
    /// covering certifies the one `LevelSchedule` implementation that
    /// also orders the incremental engine's dirty drain.
    fn write_plan(&self) -> KernelPlan {
        let sched = self.schedule();
        let mut units = Vec::new();
        for l in 0..sched.num_levels() {
            let gates = sched.level(l);
            for (ci, chunk) in gates.chunks(LEVEL_CHUNK).enumerate() {
                units.push(WriteUnit {
                    label: format!("level {l} chunk {ci}"),
                    // Gate ids ascend within a level, so `runs` sees a
                    // sorted list.
                    writes: runs(chunk),
                });
            }
        }
        if let Some(pos) = self.corrupt_overlap() {
            // Planted race: a phantom second unit claims this gate.
            let g = sched.order()[pos];
            units.push(WriteUnit {
                label: format!("phantom duplicate of gate {g}"),
                writes: vec![(g, g + 1)],
            });
        }
        KernelPlan {
            kernel: "level_sweep",
            arrays: vec![ArrayPlan {
                array: "arrivals",
                len: sched.num_gates(),
                units,
            }],
            reductions: Vec::new(),
        }
    }
}

impl WritePlan for McPartition {
    /// The Monte Carlo sample loop: one parallel unit per
    /// `par_chunks_mut(CHUNK)` chunk ([`rayon::chunk_bounds`] — the same
    /// arithmetic the shim executes), plus the run's two reductions: the
    /// parallel exact-`u64` criticality merge and the sequential
    /// trial-order moment fold.
    fn write_plan(&self) -> KernelPlan {
        let _ = CHUNK; // the partition arithmetic lives in chunk_bounds()
        let units = self
            .chunk_bounds()
            .into_iter()
            .enumerate()
            .map(|(ci, (start, end))| {
                let mut end = end;
                if self.corrupt_overlap() == Some(ci) {
                    // Planted race: this chunk also claims its
                    // neighbour's first sample (or one past the array on
                    // the last chunk).
                    end += 1;
                }
                WriteUnit {
                    label: format!("chunk {ci}"),
                    writes: vec![(start, end)],
                }
            })
            .collect();
        let mut reductions = vec![ReductionDecl {
            name: "mc_delay_moments",
            parallel: false,
            kind: MergeKind::FloatSum,
        }];
        if self.criticality() {
            reductions.push(ReductionDecl {
                name: "mc_criticality_merge",
                parallel: true,
                kind: if self.float_merge_corrupted() {
                    MergeKind::FloatSum
                } else {
                    MergeKind::ExactU64Sum
                },
            });
        }
        KernelPlan {
            kernel: "mc_samples",
            arrays: vec![ArrayPlan {
                array: "samples",
                len: self.samples(),
                units,
            }],
            reductions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DelaySpec, Objective};
    use sgs_netlist::{generate, Library};

    fn problem() -> SizingProblem {
        SizingProblem::build(
            &generate::ripple_carry_adder(8),
            &Library::paper_default(),
            Objective::Area,
            DelaySpec::MaxMean(40.0),
        )
    }

    fn covers_exactly(plan: &ArrayPlan) {
        let mut hits = vec![0u32; plan.len];
        for u in &plan.units {
            for &(s, e) in &u.writes {
                assert!(s <= e && e <= plan.len, "{}: bad interval", u.label);
                for h in &mut hits[s..e] {
                    *h += 1;
                }
            }
        }
        assert!(
            hits.iter().all(|&h| h == 1),
            "{}: partition not exact",
            plan.array
        );
    }

    #[test]
    fn assembly_plan_partitions_all_three_arrays() {
        let p = problem();
        let plan = p.write_plan();
        assert_eq!(plan.kernel, "assembly");
        assert_eq!(plan.arrays.len(), 3);
        for a in &plan.arrays {
            assert!(a.len > 0);
            covers_exactly(a);
        }
        assert!(plan.reductions.iter().all(|r| merge_whitelisted(r.kind)));
    }

    #[test]
    fn sweep_plan_partitions_arrivals() {
        let c = generate::ripple_carry_adder(16);
        let sweeper = sgs_ssta::LevelSweeper::new(&c);
        let plan = sweeper.write_plan();
        assert_eq!(plan.arrays.len(), 1);
        assert_eq!(plan.arrays[0].len, c.num_gates());
        covers_exactly(&plan.arrays[0]);
    }

    #[test]
    fn mc_plan_partitions_samples() {
        let mc = McPartition::new(20_000, true);
        let plan = mc.write_plan();
        covers_exactly(&plan.arrays[0]);
        assert_eq!(plan.arrays[0].units.len(), 20);
        let crit = plan
            .reductions
            .iter()
            .find(|r| r.name == "mc_criticality_merge")
            .unwrap();
        assert!(crit.parallel && merge_whitelisted(crit.kind));
        let moments = plan
            .reductions
            .iter()
            .find(|r| r.name == "mc_delay_moments")
            .unwrap();
        assert!(!moments.parallel, "moments fold is sequential");
    }

    #[test]
    fn corrupt_hooks_break_the_partition() {
        let mut p = problem();
        p.corrupt_overlap_jacobian_group(0);
        let plan = p.write_plan();
        let jac = &plan.arrays[1];
        let mut hits = vec![0u32; jac.len];
        for u in &jac.units {
            for &(s, e) in &u.writes {
                for h in &mut hits[s..e] {
                    *h += 1;
                }
            }
        }
        assert!(hits.iter().any(|&h| h > 1), "planted overlap visible");

        let mut mc = McPartition::new(4096, true);
        mc.corrupt_float_merge();
        let plan = mc.write_plan();
        let crit = plan
            .reductions
            .iter()
            .find(|r| r.name == "mc_criticality_merge")
            .unwrap();
        assert!(!merge_whitelisted(crit.kind));
    }
}
