//! Assembly of the paper's sizing NLP (Eq. 17/18) from a circuit.
//!
//! Variable set (per gate, in the paper's notation): speed factor
//! `S_cell`, gate-delay moments `mu_t` and `var_t = sigma_t^2`, arrival
//! moments `mu_T` and `var_T`, plus one `(mu_U, var_U)` pair per internal
//! node of every fan-in max tree (the paper's repeated two-operand max,
//! Eq. 18b), one `(mu_Tmax, var_Tmax)` chain over the primary outputs, and
//! a slack variable when a `<=` delay constraint is present.
//!
//! Constraint set (all equalities, as LANCELOT's formulation requires):
//!
//! ```text
//! mu_t S  = t_int S + c (C_load + sum_j C_in,j S_j)     (Eq. 15/18d)
//! var_t   = (kappa mu_t)^2                              (Eq. 16/18e)
//! mu_U    = max_mu (op_a, op_b)                         (Eq. 18b)
//! var_U   = max_var(op_a, op_b)
//! mu_T    = mu_U + mu_t                                 (Eq. 18c)
//! var_T   = var_U + var_t
//! mu_Tmax [+ k sigma_Tmax] [+ slack] = D                (optional)
//! 1 <= S <= limit                                       (Eq. 18f)
//! ```
//!
//! Primary-input arrivals are constants, so max operands that are entirely
//! constant fold at build time. Every constraint has hand-coded exact
//! first and second derivatives; the stochastic-max blocks come from
//! [`sgs_statmath::clark::max_hess`].
//!
//! # Evaluation layout
//!
//! Each `(mu_U, var_U)` max node contributes an *adjacent* pair of
//! constraints over the same operand pair. At build time those pairs are
//! grouped so one [`clark::max_grad`] / [`clark::max_hess`] call (the
//! dominant cost: Φ/φ evaluations) serves both the mu and the var slot of
//! a pair. Per-constraint offsets into the Jacobian/Hessian value arrays
//! are also precomputed, so every group owns a disjoint, contiguous slice
//! of `vals`; on large formulations the groups are filled in parallel with
//! rayon — race-free by construction, bit-identical to the sequential
//! sweep because each group writes the same pure function of `x` to the
//! same positions regardless of schedule.

use crate::spec::{DelaySpec, Objective};
use rayon::prelude::*;
use sgs_netlist::{Circuit, Library, Signal};
use sgs_nlp::NlpProblem;
use sgs_ssta::DelayModel;
use sgs_statmath::clark::{self, ClarkGrad, ClarkHess};

const INF: f64 = f64::INFINITY;
/// Minimum constraint count before constraint/derivative assembly fans
/// out across threads; below this the sequential sweep wins.
const PAR_CON_THRESHOLD: usize = 512;
/// Lower bound applied to variance variables (keeps `sqrt` smooth).
const VAR_LB: f64 = 1e-12;
/// Floor inside `sqrt` when evaluating sigma terms.
const SQRT_FLOOR: f64 = 1e-12;

/// A stochastic-max operand: a constant (folded primary-input arrival) or
/// a pair of problem variables.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Operand {
    Const { mu: f64, var: f64 },
    Vars { mu: usize, var: usize },
}

impl Operand {
    fn mu(&self, x: &[f64]) -> f64 {
        match *self {
            Operand::Const { mu, .. } => mu,
            Operand::Vars { mu, .. } => x[mu],
        }
    }
    fn var(&self, x: &[f64]) -> f64 {
        match *self {
            Operand::Const { var, .. } => var,
            Operand::Vars { var, .. } => x[var],
        }
    }
    /// Variable index per Clark slot (0 = mu_a, 1 = var_a, ...), `None`
    /// for constant slots.
    fn slot_var(&self, slot_in_pair: usize) -> Option<usize> {
        match (*self, slot_in_pair) {
            (Operand::Vars { mu, .. }, 0) => Some(mu),
            (Operand::Vars { var, .. }, 1) => Some(var),
            _ => None,
        }
    }
}

/// A scalar that is either a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Term {
    Var(usize),
    Const(f64),
}

impl Term {
    fn value(&self, x: &[f64]) -> f64 {
        match *self {
            Term::Var(i) => x[i],
            Term::Const(c) => c,
        }
    }
}

/// One equality constraint of the formulation. The first field of each
/// variant is the variable the constraint *defines* given its
/// predecessors, which is what makes [`SizingProblem::initial_point`] able
/// to construct an exactly feasible start by a single forward sweep.
#[derive(Debug, Clone)]
enum Con {
    /// `mu_t S - t_int S - load0 - sum coef_j S_j = 0`.
    Delay {
        imt: usize,
        is: usize,
        t_int: f64,
        load0: f64,
        fanout: Vec<(usize, f64)>,
    },
    /// `var_t - kappa2 mu_t^2 = 0`.
    VarT { ivt: usize, imt: usize, kappa2: f64 },
    /// `out - max_mu(a, b) = 0`.
    MaxMu { out: usize, a: Operand, b: Operand },
    /// `out - max_var(a, b) = 0`.
    MaxVar { out: usize, a: Operand, b: Operand },
    /// `mu_T - u - mu_t = 0`.
    ArrMu { im_arr: usize, u: Term, imt: usize },
    /// `var_T - u - var_t = 0`.
    ArrVar { iv_arr: usize, u: Term, ivt: usize },
    /// `mu + k sqrt(var) + slack - d = 0` (slack absent for `=` pins).
    DelayCap {
        imu: usize,
        iv: Option<usize>,
        k: f64,
        slack: Option<usize>,
        d: f64,
    },
}

/// The assembled sizing NLP. Implements [`NlpProblem`] with exact sparse
/// derivatives; see the module docs for the formulation.
#[derive(Debug, Clone)]
pub struct SizingProblem {
    num_vars: usize,
    cons: Vec<Con>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    objective: Objective,
    idx_s: Vec<usize>,
    i_mu_tmax: usize,
    i_v_tmax: usize,
    eps: f64,
    num_gates: usize,
    /// Evaluation groups `(first_con, count)`: an adjacent MaxMu/MaxVar
    /// pair over the same operands forms one group of two (sharing a
    /// single Clark evaluation), everything else is a singleton.
    groups: Vec<(usize, usize)>,
    /// Prefix offsets of each constraint's Jacobian-value block
    /// (`len = cons.len() + 1`).
    jac_off: Vec<usize>,
    /// Prefix offsets of each constraint's Hessian-value block, excluding
    /// the objective block at the front (`len = cons.len() + 1`).
    hess_off: Vec<usize>,
    /// Minimum constraint count before assembly fans out over threads
    /// (defaults to [`PAR_CON_THRESHOLD`]; see
    /// [`SizingProblem::set_par_threshold`]).
    par_threshold: usize,
    /// Gate each constraint belongs to (`None` for the output max chain
    /// and delay caps) — diagnostic metadata for the static analyzer.
    con_gate: Vec<Option<usize>>,
    /// Fault injection for the analyzer's Stage-3 tests: index of a
    /// declared Jacobian entry to silently drop from both the structure
    /// and the value array (see
    /// [`SizingProblem::corrupt_drop_jacobian_entry`]).
    jac_drop: Option<usize>,
    /// As `jac_drop`, for the Hessian declaration.
    hess_drop: Option<usize>,
    /// Fault injection for the analyzer's stage-4 mutation battery: index
    /// of an evaluation group whose declared Jacobian write set falsely
    /// claims one entry past its slice (see
    /// [`SizingProblem::corrupt_overlap_jacobian_group`]).
    jac_overlap: Option<usize>,
    /// As `jac_overlap`, for the Hessian write plan.
    hess_overlap: Option<usize>,
}

impl SizingProblem {
    /// Builds the formulation for `circuit` under `lib` with the given
    /// objective and delay constraint, with all primary inputs arriving at
    /// exactly time 0 (the paper's setting).
    ///
    /// # Panics
    ///
    /// Panics if a weighted-area objective has the wrong number of weights
    /// or the circuit fails validation.
    pub fn build(
        circuit: &Circuit,
        lib: &Library,
        objective: Objective,
        delay_spec: DelaySpec,
    ) -> Self {
        Self::build_with_arrivals(circuit, lib, objective, delay_spec, None)
    }

    /// [`SizingProblem::build`] with explicit primary-input arrival
    /// distributions — e.g. uncertain upstream-block or wire delays, which
    /// the statistical model exists to express. Arrivals enter the max
    /// trees as constants (they do not depend on the sizing variables), so
    /// the formulation size is unchanged.
    ///
    /// # Panics
    ///
    /// Additionally panics if the arrival slice length differs from the
    /// input count.
    pub fn build_with_arrivals(
        circuit: &Circuit,
        lib: &Library,
        objective: Objective,
        delay_spec: DelaySpec,
        input_arrivals: Option<&[sgs_statmath::Normal]>,
    ) -> Self {
        circuit.validate().expect("circuit must be valid");
        if let Some(ia) = input_arrivals {
            assert_eq!(
                ia.len(),
                circuit.num_inputs(),
                "one arrival distribution per primary input"
            );
        }
        if let Objective::WeightedArea(w) = &objective {
            assert_eq!(
                w.len(),
                circuit.num_gates(),
                "weighted-area objective needs one weight per gate"
            );
        }
        let n = circuit.num_gates();
        let model = DelayModel::new(circuit, lib);
        let kappa2 = lib.sigma_factor * lib.sigma_factor;

        // --- variable layout -------------------------------------------
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        let push_var = |lo: f64, hi: f64, lower: &mut Vec<f64>, upper: &mut Vec<f64>| {
            lower.push(lo);
            upper.push(hi);
            lower.len() - 1
        };
        let mut idx_s = Vec::with_capacity(n);
        let mut idx_mt = Vec::with_capacity(n);
        let mut idx_vt = Vec::with_capacity(n);
        let mut idx_m_arr = Vec::with_capacity(n);
        let mut idx_v_arr = Vec::with_capacity(n);
        for _ in 0..n {
            idx_s.push(push_var(1.0, lib.s_limit, &mut lower, &mut upper));
            idx_mt.push(push_var(0.0, INF, &mut lower, &mut upper));
            idx_vt.push(push_var(VAR_LB, INF, &mut lower, &mut upper));
            idx_m_arr.push(push_var(0.0, INF, &mut lower, &mut upper));
            idx_v_arr.push(push_var(VAR_LB, INF, &mut lower, &mut upper));
        }

        // --- constraints, gate by gate in topological order -------------
        let mut cons: Vec<Con> = Vec::new();
        let mut con_gate: Vec<Option<usize>> = Vec::new();
        let eps = clark::DEFAULT_EPS;
        for (id, gate) in circuit.gates() {
            let g = id.index();
            let first_con = cons.len();
            let fanout: Vec<(usize, f64)> = model
                .fanouts(id)
                .iter()
                .map(|&j| (idx_s[j.index()], model.c() * model.c_in(j)))
                .collect();
            cons.push(Con::Delay {
                imt: idx_mt[g],
                is: idx_s[g],
                t_int: model.t_int(id),
                load0: model.c() * model.static_load(id),
                fanout,
            });
            cons.push(Con::VarT {
                ivt: idx_vt[g],
                imt: idx_mt[g],
                kappa2,
            });

            // Fold the fan-in max tree.
            let operands: Vec<Operand> = gate
                .inputs
                .iter()
                .map(|&sig| match sig {
                    Signal::Pi(p) => {
                        input_arrivals.map_or(Operand::Const { mu: 0.0, var: 0.0 }, |ia| {
                            Operand::Const {
                                mu: ia[p].mean(),
                                var: ia[p].var(),
                            }
                        })
                    }
                    Signal::Gate(src) => Operand::Vars {
                        mu: idx_m_arr[src.index()],
                        var: idx_v_arr[src.index()],
                    },
                })
                .collect();
            let u = fold_max(&operands, eps, &mut lower, &mut upper, &mut cons);

            let (u_mu, u_var) = match u {
                Operand::Const { mu, var } => (Term::Const(mu), Term::Const(var)),
                Operand::Vars { mu, var } => (Term::Var(mu), Term::Var(var)),
            };
            cons.push(Con::ArrMu {
                im_arr: idx_m_arr[g],
                u: u_mu,
                imt: idx_mt[g],
            });
            cons.push(Con::ArrVar {
                iv_arr: idx_v_arr[g],
                u: u_var,
                ivt: idx_vt[g],
            });
            con_gate.resize(cons.len(), Some(g));
            debug_assert!(cons.len() > first_con);
        }

        // --- circuit-output max chain ------------------------------------
        let out_ops: Vec<Operand> = circuit
            .outputs()
            .iter()
            .map(|&o| Operand::Vars {
                mu: idx_m_arr[o.index()],
                var: idx_v_arr[o.index()],
            })
            .collect();
        let tmax = fold_max(&out_ops, eps, &mut lower, &mut upper, &mut cons);
        let (i_mu_tmax, i_v_tmax) = match tmax {
            Operand::Vars { mu, var } => (mu, var),
            Operand::Const { .. } => unreachable!("outputs are always variables"),
        };

        // --- optional delay constraint -----------------------------------
        match delay_spec {
            DelaySpec::None => {}
            DelaySpec::MaxMean(d) => {
                let slack = push_var(0.0, INF, &mut lower, &mut upper);
                cons.push(Con::DelayCap {
                    imu: i_mu_tmax,
                    iv: None,
                    k: 0.0,
                    slack: Some(slack),
                    d,
                });
            }
            DelaySpec::MaxMeanPlusKSigma { k, d } => {
                let slack = push_var(0.0, INF, &mut lower, &mut upper);
                cons.push(Con::DelayCap {
                    imu: i_mu_tmax,
                    iv: Some(i_v_tmax),
                    k,
                    slack: Some(slack),
                    d,
                });
            }
            DelaySpec::ExactMean(d) => {
                cons.push(Con::DelayCap {
                    imu: i_mu_tmax,
                    iv: None,
                    k: 0.0,
                    slack: None,
                    d,
                });
            }
            DelaySpec::PerOutput { k, d } => {
                assert_eq!(
                    d.len(),
                    circuit.outputs().len(),
                    "one deadline per primary output"
                );
                for (&o, &d_o) in circuit.outputs().iter().zip(&d) {
                    let slack = push_var(0.0, INF, &mut lower, &mut upper);
                    cons.push(Con::DelayCap {
                        imu: idx_m_arr[o.index()],
                        iv: if k != 0.0 {
                            Some(idx_v_arr[o.index()])
                        } else {
                            None
                        },
                        k,
                        slack: Some(slack),
                        d: d_o,
                    });
                }
            }
        }

        let (groups, jac_off, hess_off) = index_cons(&cons);
        con_gate.resize(cons.len(), None);
        SizingProblem {
            num_vars: lower.len(),
            cons,
            lower,
            upper,
            objective,
            idx_s,
            i_mu_tmax,
            i_v_tmax,
            eps,
            num_gates: n,
            groups,
            jac_off,
            hess_off,
            par_threshold: PAR_CON_THRESHOLD,
            con_gate,
            jac_drop: None,
            hess_drop: None,
            jac_overlap: None,
            hess_overlap: None,
        }
    }

    /// Gate index constraint `ci` belongs to; `None` for the circuit-output
    /// max chain and delay caps. Diagnostic metadata for `sgs-analyze`.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range.
    pub fn constraint_gate(&self, ci: usize) -> Option<usize> {
        self.con_gate[ci]
    }

    /// Short kind tag of constraint `ci` (`"delay"`, `"var_t"`, `"max_mu"`,
    /// `"max_var"`, `"arr_mu"`, `"arr_var"`, `"delay_cap"`), for
    /// diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range.
    pub fn constraint_kind(&self, ci: usize) -> &'static str {
        match &self.cons[ci] {
            Con::Delay { .. } => "delay",
            Con::VarT { .. } => "var_t",
            Con::MaxMu { .. } => "max_mu",
            Con::MaxVar { .. } => "max_var",
            Con::ArrMu { .. } => "arr_mu",
            Con::ArrVar { .. } => "arr_var",
            Con::DelayCap { .. } => "delay_cap",
        }
    }

    /// Fault injection for the static analyzer's Stage-3 tests: silently
    /// drops declared Jacobian entry `k` from **both**
    /// `jacobian_structure` and `jacobian_values`, modelling the real bug
    /// class where a derivative is computed but its sparsity slot was
    /// never declared. Never use outside tests.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a valid entry index.
    #[doc(hidden)]
    pub fn corrupt_drop_jacobian_entry(&mut self, k: usize) {
        assert!(k < *self.jac_off.last().unwrap(), "entry {k} out of range");
        self.jac_drop = Some(k);
    }

    /// As [`SizingProblem::corrupt_drop_jacobian_entry`], for the
    /// Lagrangian-Hessian declaration (entry indices count the objective
    /// block first). Never use outside tests.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a valid entry index.
    #[doc(hidden)]
    pub fn corrupt_drop_hessian_entry(&mut self, k: usize) {
        assert!(
            k < self.obj_hess_len() + *self.hess_off.last().unwrap(),
            "entry {k} out of range"
        );
        self.hess_drop = Some(k);
    }

    /// Fault injection for the stage-4 mutation battery: evaluation group
    /// `g`'s *declared* write plan (and its shadow-write stamps under
    /// `--features shadow-write`) additionally claims the first Jacobian
    /// entry of the following group — a planted race the certifier must
    /// catch. The actual fill is untouched: planted races corrupt the
    /// declaration, because safe Rust's `split_at_mut` partition makes a
    /// real overlapping write unrepresentable. Never use outside tests.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a valid group index.
    #[doc(hidden)]
    pub fn corrupt_overlap_jacobian_group(&mut self, g: usize) {
        assert!(g < self.groups.len(), "group {g} out of range");
        self.jac_overlap = Some(g);
    }

    /// As [`SizingProblem::corrupt_overlap_jacobian_group`], for the
    /// Hessian write plan. Never use outside tests.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a valid group index.
    #[doc(hidden)]
    pub fn corrupt_overlap_hessian_group(&mut self, g: usize) {
        assert!(g < self.groups.len(), "group {g} out of range");
        self.hess_overlap = Some(g);
    }

    /// Evaluation groups `(first_con, count)` for the write-plan layer.
    pub(crate) fn plan_groups(&self) -> &[(usize, usize)] {
        &self.groups
    }

    /// Jacobian-value prefix offsets for the write-plan layer.
    pub(crate) fn plan_jac_off(&self) -> &[usize] {
        &self.jac_off
    }

    /// Hessian-value prefix offsets for the write-plan layer.
    pub(crate) fn plan_hess_off(&self) -> &[usize] {
        &self.hess_off
    }

    /// Objective Hessian-block length for the write-plan layer.
    pub(crate) fn plan_obj_hess_len(&self) -> usize {
        self.obj_hess_len()
    }

    /// The planted Jacobian-overlap group, if any.
    pub(crate) fn plan_corrupt_jac_overlap(&self) -> Option<usize> {
        self.jac_overlap
    }

    /// The planted Hessian-overlap group, if any.
    pub(crate) fn plan_corrupt_hess_overlap(&self) -> Option<usize> {
        self.hess_overlap
    }

    /// Rewrites the deadline scalar `D` of every delay-cap constraint in
    /// place, returning how many caps were updated (`0` means the
    /// formulation has no delay constraint and nothing changed).
    ///
    /// Only the right-hand-side constant moves: the variable set, bounds,
    /// sparsity patterns and constraint order are untouched, so a solution
    /// of the old problem remains a dimension-compatible warm start for
    /// the new one. This is what lets [`crate::resolve::Resolver`] re-solve
    /// a deadline perturbation without rebuilding the formulation.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not finite.
    pub fn set_deadline(&mut self, d: f64) -> usize {
        assert!(d.is_finite(), "deadline must be finite, got {d}");
        let mut updated = 0;
        for con in &mut self.cons {
            if let Con::DelayCap { d: cap, .. } = con {
                *cap = d;
                updated += 1;
            }
        }
        updated
    }

    /// Rewrites the sigma multiplier `k` of a
    /// [`Objective::MeanPlusKSigma`] objective in place, for robustness
    /// (`mu + k sigma`) sweeps.
    ///
    /// Only the scalar inside the existing objective moves: the variable
    /// set, bounds, constraint set and — crucially — the Hessian sparsity
    /// pattern are untouched (the objective contributes its
    /// `(var_Tmax, var_Tmax)` Hessian slot for *every* `k`, including 0,
    /// because the slot is keyed on the objective variant, not the
    /// value), so a solution of the old problem remains a
    /// dimension-compatible warm start for the new one. Contrast the
    /// *constraint-side* `k` of [`crate::DelaySpec::MaxMeanPlusKSigma`],
    /// whose Hessian slot vanishes at `k = 0` — that one is deliberately
    /// not rewritable.
    ///
    /// # Panics
    ///
    /// Panics if the objective is not [`Objective::MeanPlusKSigma`] or
    /// `k` is not finite.
    pub fn set_objective_k(&mut self, k: f64) {
        assert!(k.is_finite(), "objective k must be finite, got {k}");
        match &mut self.objective {
            Objective::MeanPlusKSigma(cur) => *cur = k,
            other => panic!("set_objective_k needs a mu + k sigma objective, got {other}"),
        }
    }

    /// Overrides the constraint count at which constraint/derivative
    /// assembly switches to the parallel (grouped disjoint-slice) path.
    /// Both paths compute bit-identical values; this knob exists so tests
    /// can force either path regardless of formulation size (`0` forces
    /// parallel whenever a thread pool is available, `usize::MAX` forces
    /// the sequential sweep).
    pub fn set_par_threshold(&mut self, threshold: usize) {
        self.par_threshold = threshold;
    }

    /// Variable index of gate `g`'s speed factor.
    pub fn s_index(&self, g: usize) -> usize {
        self.idx_s[g]
    }

    /// Variable index of `mu_Tmax`.
    pub fn mu_tmax_index(&self) -> usize {
        self.i_mu_tmax
    }

    /// Variable index of `var_Tmax`.
    pub fn var_tmax_index(&self) -> usize {
        self.i_v_tmax
    }

    /// Number of gates in the underlying circuit.
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// Extracts the speed factors from a solution vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the variable count.
    pub fn extract_s(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.num_vars);
        self.idx_s.iter().map(|&i| x[i]).collect()
    }

    /// Builds an exactly feasible starting point from speed factors `s0`
    /// by sweeping the constraints in their defining order (every equality
    /// except a `<=` cap whose slack saturates holds to rounding error).
    ///
    /// # Panics
    ///
    /// Panics if `s0.len()` differs from the gate count.
    pub fn initial_point(&self, s0: &[f64]) -> Vec<f64> {
        assert_eq!(s0.len(), self.num_gates, "one speed factor per gate");
        let mut x = vec![0.0; self.num_vars];
        for (g, &i) in self.idx_s.iter().enumerate() {
            x[i] = s0[g].max(self.lower[i]).min(self.upper[i]);
        }
        for con in &self.cons {
            match con {
                Con::Delay {
                    imt,
                    is,
                    t_int,
                    load0,
                    fanout,
                } => {
                    let mut load = *load0;
                    for &(j, coef) in fanout {
                        load += coef * x[j];
                    }
                    x[*imt] = t_int + load / x[*is];
                }
                Con::VarT { ivt, imt, kappa2 } => {
                    x[*ivt] = kappa2 * x[*imt] * x[*imt];
                }
                Con::MaxMu { out, a, b } => {
                    let g = clark::max_grad(a.mu(&x), a.var(&x), b.mu(&x), b.var(&x), self.eps);
                    x[*out] = g.mu;
                }
                Con::MaxVar { out, a, b } => {
                    let g = clark::max_grad(a.mu(&x), a.var(&x), b.mu(&x), b.var(&x), self.eps);
                    x[*out] = g.var.max(VAR_LB);
                }
                Con::ArrMu { im_arr, u, imt } => {
                    x[*im_arr] = u.value(&x) + x[*imt];
                }
                Con::ArrVar { iv_arr, u, ivt } => {
                    x[*iv_arr] = u.value(&x) + x[*ivt];
                }
                Con::DelayCap {
                    imu,
                    iv,
                    k,
                    slack,
                    d,
                } => {
                    if let Some(sl) = slack {
                        let sigma = iv.map_or(0.0, |i| x[i].max(SQRT_FLOOR).sqrt());
                        x[*sl] = (d - (x[*imu] + k * sigma)).max(0.0);
                    }
                }
            }
        }
        x
    }

    fn sigma_tmax(&self, x: &[f64]) -> f64 {
        x[self.i_v_tmax].max(SQRT_FLOOR).sqrt()
    }

    /// Whether constraint/derivative assembly should fan out over groups.
    fn par_assembly(&self) -> bool {
        self.cons.len() >= self.par_threshold && rayon::current_num_threads() > 1
    }

    /// One shared Clark gradient per group whose leader is a max
    /// constraint (a pair shares its leader's operands by construction).
    fn group_grad(&self, start: usize, x: &[f64]) -> Option<ClarkGrad> {
        match &self.cons[start] {
            Con::MaxMu { a, b, .. } | Con::MaxVar { a, b, .. } => {
                Some(clark_eval_grad(*a, *b, x, self.eps))
            }
            _ => None,
        }
    }

    /// Constraint residuals of one group into its slice of `c`.
    fn constraints_group(&self, x: &[f64], start: usize, len: usize, out: &mut [f64]) {
        let shared = self.group_grad(start, x);
        for (k, con) in self.cons[start..start + len].iter().enumerate() {
            out[k] = match con {
                Con::Delay {
                    imt,
                    is,
                    t_int,
                    load0,
                    fanout,
                } => {
                    let mut r = x[*imt] * x[*is] - t_int * x[*is] - load0;
                    for &(j, coef) in fanout {
                        r -= coef * x[j];
                    }
                    r
                }
                Con::VarT { ivt, imt, kappa2 } => x[*ivt] - kappa2 * x[*imt] * x[*imt],
                Con::MaxMu { out, .. } => x[*out] - shared.as_ref().unwrap().mu,
                Con::MaxVar { out, .. } => x[*out] - shared.as_ref().unwrap().var,
                Con::ArrMu { im_arr, u, imt } => x[*im_arr] - u.value(x) - x[*imt],
                Con::ArrVar { iv_arr, u, ivt } => x[*iv_arr] - u.value(x) - x[*ivt],
                Con::DelayCap {
                    imu,
                    iv,
                    k,
                    slack,
                    d,
                } => {
                    let sigma = iv.map_or(0.0, |i| x[i].max(SQRT_FLOOR).sqrt());
                    x[*imu] + k * sigma + slack.map_or(0.0, |s| x[s]) - d
                }
            };
        }
    }

    /// Jacobian values of one group into its disjoint slice of `vals`.
    fn jacobian_group(&self, x: &[f64], start: usize, len: usize, out: &mut [f64]) {
        let shared = self.group_grad(start, x);
        let mut k_out = 0usize;
        let mut push = |out: &mut [f64], v: f64| {
            out[k_out] = v;
            k_out += 1;
        };
        for con in &self.cons[start..start + len] {
            match con {
                Con::Delay {
                    imt,
                    is,
                    t_int,
                    fanout,
                    ..
                } => {
                    push(out, x[*is]);
                    push(out, x[*imt] - t_int);
                    for &(_, coef) in fanout {
                        push(out, -coef);
                    }
                }
                Con::VarT { imt, kappa2, .. } => {
                    push(out, 1.0);
                    push(out, -2.0 * kappa2 * x[*imt]);
                }
                Con::MaxMu { a, b, .. } => {
                    let g = shared.as_ref().unwrap();
                    push(out, 1.0);
                    for &(slot, _) in clark_slots(*a, *b).as_slice() {
                        push(out, -g.dmu[slot]);
                    }
                }
                Con::MaxVar { a, b, .. } => {
                    let g = shared.as_ref().unwrap();
                    push(out, 1.0);
                    for &(slot, _) in clark_slots(*a, *b).as_slice() {
                        push(out, -g.dvar[slot]);
                    }
                }
                Con::ArrMu { u, .. } | Con::ArrVar { u, .. } => {
                    push(out, 1.0);
                    if matches!(u, Term::Var(_)) {
                        push(out, -1.0);
                    }
                    push(out, -1.0);
                }
                Con::DelayCap { iv, k, slack, .. } => {
                    push(out, 1.0);
                    if let Some(i) = iv {
                        push(out, k / (2.0 * x[*i].max(SQRT_FLOOR).sqrt()));
                    }
                    if slack.is_some() {
                        push(out, 1.0);
                    }
                }
            }
        }
        debug_assert_eq!(k_out, out.len());
    }

    /// Lagrangian-Hessian values of one group into its disjoint slice of
    /// `vals` (objective block excluded — the caller handles it).
    fn hessian_group(&self, x: &[f64], lambda: &[f64], start: usize, len: usize, out: &mut [f64]) {
        // One shared second-derivative evaluation per max pair.
        let shared = match &self.cons[start] {
            Con::MaxMu { a, b, .. } | Con::MaxVar { a, b, .. } => {
                Some(clark_eval_hess(*a, *b, x, self.eps))
            }
            _ => None,
        };
        let mut k_out = 0usize;
        let mut push = |out: &mut [f64], v: f64| {
            out[k_out] = v;
            k_out += 1;
        };
        for (ci, con) in self.cons[start..start + len].iter().enumerate() {
            let lam = lambda[start + ci];
            match con {
                Con::Delay { .. } => push(out, lam),
                Con::VarT { kappa2, .. } => push(out, lam * (-2.0 * kappa2)),
                Con::MaxMu { a, b, .. } => {
                    let h = shared.as_ref().unwrap();
                    emit_clark_hess(&mut push, out, a, b, &h.hmu, lam);
                }
                Con::MaxVar { a, b, .. } => {
                    let h = shared.as_ref().unwrap();
                    emit_clark_hess(&mut push, out, a, b, &h.hvar, lam);
                }
                Con::ArrMu { .. } | Con::ArrVar { .. } => {}
                Con::DelayCap { iv, k, .. } => {
                    if let Some(i) = iv {
                        if *k != 0.0 {
                            let st = x[*i].max(SQRT_FLOOR).sqrt();
                            push(out, lam * k * (-0.25) / (st * st * st));
                        }
                    }
                }
            }
        }
        debug_assert_eq!(k_out, out.len());
    }

    /// Hessian entries contributed by the objective (the leading block of
    /// the value array).
    fn obj_hess_len(&self) -> usize {
        matches!(
            self.objective,
            Objective::MeanPlusKSigma(_) | Objective::Sigma | Objective::NegSigma
        ) as usize
    }

    /// Stamps the shadow-write ledger with the exact slice each assembly
    /// unit receives and fully writes (the group fills are
    /// `debug_assert`ed to cover their slices), plus any planted
    /// `corrupt_overlap_*` claim. Checking-mode only.
    #[cfg(feature = "shadow-write")]
    fn stamp_groups(
        &self,
        kernel: &'static str,
        len: usize,
        base: usize,
        off: &[usize],
        overlap: Option<usize>,
    ) {
        let shadow = sgs_trace::shadow::begin(kernel, len);
        if base > 0 {
            // Objective block, written sequentially by the dispatcher.
            shadow.stamp_range(u32::MAX, 0, base);
        }
        for (g, &(start, glen)) in self.groups.iter().enumerate() {
            let mut end = base + off[start + glen];
            if overlap == Some(g) {
                end += 1;
            }
            shadow.stamp_range(g as u32, base + off[start], end);
        }
    }

    /// Uncorrupted Jacobian fill (the whole declared entry set).
    fn jacobian_values_inner(&self, x: &[f64], vals: &mut [f64]) {
        debug_assert_eq!(vals.len(), *self.jac_off.last().unwrap());
        #[cfg(feature = "shadow-write")]
        self.stamp_groups(
            "assembly_jacobian",
            vals.len(),
            0,
            &self.jac_off,
            self.jac_overlap,
        );
        if self.par_assembly() {
            split_groups(
                &self.groups,
                |start, len| self.jac_off[start + len] - self.jac_off[start],
                vals,
            )
            .into_par_iter()
            .for_each(|(start, len, out)| self.jacobian_group(x, start, len, out));
        } else {
            for &(start, len) in &self.groups {
                let out = &mut vals[self.jac_off[start]..self.jac_off[start + len]];
                self.jacobian_group(x, start, len, out);
            }
        }
    }

    /// Uncorrupted Lagrangian-Hessian fill (the whole declared entry set).
    fn hessian_values_inner(&self, x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]) {
        debug_assert_eq!(
            vals.len(),
            self.obj_hess_len() + *self.hess_off.last().unwrap()
        );
        #[cfg(feature = "shadow-write")]
        self.stamp_groups(
            "assembly_hessian",
            vals.len(),
            self.obj_hess_len(),
            &self.hess_off,
            self.hess_overlap,
        );
        let (obj, rest) = vals.split_at_mut(self.obj_hess_len());
        match self.objective {
            Objective::MeanPlusKSigma(k) => {
                let st = self.sigma_tmax(x);
                obj[0] = sigma * k * (-0.25) / (st * st * st);
            }
            Objective::Sigma => {
                let st = self.sigma_tmax(x);
                obj[0] = sigma * (-0.25) / (st * st * st);
            }
            Objective::NegSigma => {
                let st = self.sigma_tmax(x);
                obj[0] = sigma * 0.25 / (st * st * st);
            }
            _ => {}
        }
        if self.par_assembly() {
            split_groups(
                &self.groups,
                |start, len| self.hess_off[start + len] - self.hess_off[start],
                rest,
            )
            .into_par_iter()
            .for_each(|(start, len, out)| self.hessian_group(x, lambda, start, len, out));
        } else {
            for &(start, len) in &self.groups {
                let out = &mut rest[self.hess_off[start]..self.hess_off[start + len]];
                self.hessian_group(x, lambda, start, len, out);
            }
        }
    }
}

/// Copies `full` into `out` skipping entry `dropped` (the corruption-hook
/// value path; see [`SizingProblem::corrupt_drop_jacobian_entry`]).
fn copy_dropping(full: &[f64], dropped: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len() + 1, full.len());
    out[..dropped].copy_from_slice(&full[..dropped]);
    out[dropped..].copy_from_slice(&full[dropped + 1..]);
}

/// Folds a list of operands with repeated two-operand stochastic maxima,
/// folding constants eagerly and materialising `(mu_U, var_U)` variables
/// plus their defining constraints for every non-constant node.
fn fold_max(
    operands: &[Operand],
    eps: f64,
    lower: &mut Vec<f64>,
    upper: &mut Vec<f64>,
    cons: &mut Vec<Con>,
) -> Operand {
    assert!(!operands.is_empty(), "max needs at least one operand");
    let mut acc = operands[0];
    for &op in &operands[1..] {
        if let (Operand::Const { mu: ma, var: va }, Operand::Const { mu: mb, var: vb }) = (acc, op)
        {
            let g = clark::max_grad(ma, va, mb, vb, eps);
            acc = Operand::Const {
                mu: g.mu,
                var: g.var,
            };
            continue;
        }
        lower.push(0.0);
        upper.push(INF);
        let imu = lower.len() - 1;
        lower.push(VAR_LB);
        upper.push(INF);
        let ivar = lower.len() - 1;
        cons.push(Con::MaxMu {
            out: imu,
            a: acc,
            b: op,
        });
        cons.push(Con::MaxVar {
            out: ivar,
            a: acc,
            b: op,
        });
        acc = Operand::Vars { mu: imu, var: ivar };
    }
    acc
}

/// The (slot, variable) pairs of a Clark max's four inputs that are
/// actual problem variables, stored inline: this is queried for every max
/// constraint on every Jacobian and Hessian evaluation, so it must not
/// heap-allocate.
#[derive(Debug, Clone, Copy)]
struct ClarkSlots {
    slots: [(usize, usize); 4],
    len: usize,
}

impl ClarkSlots {
    fn as_slice(&self) -> &[(usize, usize)] {
        &self.slots[..self.len]
    }
}

fn clark_slots(a: Operand, b: Operand) -> ClarkSlots {
    let mut slots = [(0usize, 0usize); 4];
    let mut len = 0;
    for (slot, op, pair_slot) in [(0, a, 0), (1, a, 1), (2, b, 0), (3, b, 1)] {
        if let Some(var) = op.slot_var(pair_slot) {
            slots[len] = (slot, var);
            len += 1;
        }
    }
    ClarkSlots { slots, len }
}

fn clark_eval_grad(a: Operand, b: Operand, x: &[f64], eps: f64) -> ClarkGrad {
    clark::max_grad(a.mu(x), a.var(x), b.mu(x), b.var(x), eps)
}

fn clark_eval_hess(a: Operand, b: Operand, x: &[f64], eps: f64) -> ClarkHess {
    clark::max_hess(a.mu(x), a.var(x), b.mu(x), b.var(x), eps)
}

/// Jacobian entries of one constraint — must mirror
/// [`NlpProblem::jacobian_structure`] exactly.
fn jac_width(con: &Con) -> usize {
    match con {
        Con::Delay { fanout, .. } => 2 + fanout.len(),
        Con::VarT { .. } => 2,
        Con::MaxMu { a, b, .. } | Con::MaxVar { a, b, .. } => 1 + clark_slots(*a, *b).len,
        Con::ArrMu { u, .. } | Con::ArrVar { u, .. } => 2 + matches!(u, Term::Var(_)) as usize,
        Con::DelayCap { iv, slack, .. } => 1 + iv.is_some() as usize + slack.is_some() as usize,
    }
}

/// Hessian entries of one constraint — must mirror
/// [`NlpProblem::hessian_structure`] exactly (objective block excluded).
fn hess_width(con: &Con) -> usize {
    match con {
        Con::Delay { .. } | Con::VarT { .. } => 1,
        Con::MaxMu { a, b, .. } | Con::MaxVar { a, b, .. } => {
            let k = clark_slots(*a, *b).len;
            k * (k + 1) / 2
        }
        Con::ArrMu { .. } | Con::ArrVar { .. } => 0,
        Con::DelayCap { iv, k, .. } => (iv.is_some() && *k != 0.0) as usize,
    }
}

/// Computes the evaluation groups and per-constraint value-block prefix
/// offsets (see the module docs on the evaluation layout).
fn index_cons(cons: &[Con]) -> (Vec<(usize, usize)>, Vec<usize>, Vec<usize>) {
    let mut jac_off = Vec::with_capacity(cons.len() + 1);
    let mut hess_off = Vec::with_capacity(cons.len() + 1);
    let (mut j, mut h) = (0usize, 0usize);
    jac_off.push(0);
    hess_off.push(0);
    for con in cons {
        j += jac_width(con);
        h += hess_width(con);
        jac_off.push(j);
        hess_off.push(h);
    }
    let mut groups = Vec::new();
    let mut i = 0;
    while i < cons.len() {
        let len = match (&cons[i], cons.get(i + 1)) {
            (Con::MaxMu { a, b, .. }, Some(Con::MaxVar { a: a2, b: b2, .. }))
                if a == a2 && b == b2 =>
            {
                2
            }
            _ => 1,
        };
        groups.push((i, len));
        i += len;
    }
    (groups, jac_off, hess_off)
}

/// Splits `vals` into one disjoint mutable slice per group (`width` maps
/// `(first_con, count)` to the group's entry count). The slices partition
/// `vals` in group order, which is what makes the parallel fill race-free.
fn split_groups<'v>(
    groups: &[(usize, usize)],
    width: impl Fn(usize, usize) -> usize,
    mut vals: &'v mut [f64],
) -> Vec<(usize, usize, &'v mut [f64])> {
    let mut parts = Vec::with_capacity(groups.len());
    for &(start, len) in groups {
        let (head, tail) = std::mem::take(&mut vals).split_at_mut(width(start, len));
        parts.push((start, len, head));
        vals = tail;
    }
    debug_assert!(vals.is_empty());
    parts
}

impl NlpProblem for SizingProblem {
    fn num_vars(&self) -> usize {
        self.num_vars
    }

    fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    fn bounds(&self) -> (&[f64], &[f64]) {
        (&self.lower, &self.upper)
    }

    fn objective(&self, x: &[f64]) -> f64 {
        match &self.objective {
            Objective::Area => self.idx_s.iter().map(|&i| x[i]).sum(),
            Objective::WeightedArea(w) => self.idx_s.iter().zip(w).map(|(&i, &wi)| wi * x[i]).sum(),
            Objective::MeanDelay => x[self.i_mu_tmax],
            Objective::MeanPlusKSigma(k) => x[self.i_mu_tmax] + k * self.sigma_tmax(x),
            Objective::Sigma => self.sigma_tmax(x),
            Objective::NegSigma => -self.sigma_tmax(x),
        }
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        grad.fill(0.0);
        match &self.objective {
            Objective::Area => {
                for &i in &self.idx_s {
                    grad[i] = 1.0;
                }
            }
            Objective::WeightedArea(w) => {
                for (&i, &wi) in self.idx_s.iter().zip(w) {
                    grad[i] = wi;
                }
            }
            Objective::MeanDelay => grad[self.i_mu_tmax] = 1.0,
            Objective::MeanPlusKSigma(k) => {
                grad[self.i_mu_tmax] = 1.0;
                grad[self.i_v_tmax] = k / (2.0 * self.sigma_tmax(x));
            }
            Objective::Sigma => grad[self.i_v_tmax] = 1.0 / (2.0 * self.sigma_tmax(x)),
            Objective::NegSigma => {
                grad[self.i_v_tmax] = -1.0 / (2.0 * self.sigma_tmax(x));
            }
        }
    }

    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        #[cfg(feature = "shadow-write")]
        {
            let shadow = sgs_trace::shadow::begin("assembly_constraints", c.len());
            for (g, &(start, len)) in self.groups.iter().enumerate() {
                shadow.stamp_range(g as u32, start, start + len);
            }
        }
        if self.par_assembly() {
            split_groups(&self.groups, |_, len| len, c)
                .into_par_iter()
                .for_each(|(start, len, out)| self.constraints_group(x, start, len, out));
        } else {
            for &(start, len) in &self.groups {
                self.constraints_group(x, start, len, &mut c[start..start + len]);
            }
        }
    }

    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        let mut s = Vec::new();
        for (ci, con) in self.cons.iter().enumerate() {
            match con {
                Con::Delay {
                    imt, is, fanout, ..
                } => {
                    s.push((ci, *imt));
                    s.push((ci, *is));
                    for &(j, _) in fanout {
                        s.push((ci, j));
                    }
                }
                Con::VarT { ivt, imt, .. } => {
                    s.push((ci, *ivt));
                    s.push((ci, *imt));
                }
                Con::MaxMu { out, a, b } | Con::MaxVar { out, a, b } => {
                    s.push((ci, *out));
                    for &(_, var) in clark_slots(*a, *b).as_slice() {
                        s.push((ci, var));
                    }
                }
                Con::ArrMu { im_arr, u, imt } => {
                    s.push((ci, *im_arr));
                    if let Term::Var(i) = u {
                        s.push((ci, *i));
                    }
                    s.push((ci, *imt));
                }
                Con::ArrVar { iv_arr, u, ivt } => {
                    s.push((ci, *iv_arr));
                    if let Term::Var(i) = u {
                        s.push((ci, *i));
                    }
                    s.push((ci, *ivt));
                }
                Con::DelayCap { imu, iv, slack, .. } => {
                    s.push((ci, *imu));
                    if let Some(i) = iv {
                        s.push((ci, *i));
                    }
                    if let Some(sl) = slack {
                        s.push((ci, *sl));
                    }
                }
            }
        }
        if let Some(k) = self.jac_drop {
            s.remove(k);
        }
        s
    }

    fn jacobian_values(&self, x: &[f64], vals: &mut [f64]) {
        if let Some(k) = self.jac_drop {
            let mut full = vec![0.0; *self.jac_off.last().unwrap()];
            self.jacobian_values_inner(x, &mut full);
            copy_dropping(&full, k, vals);
            return;
        }
        self.jacobian_values_inner(x, vals);
    }

    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        let mut s = Vec::new();
        // Objective block first.
        if matches!(
            self.objective,
            Objective::MeanPlusKSigma(_) | Objective::Sigma | Objective::NegSigma
        ) {
            s.push((self.i_v_tmax, self.i_v_tmax));
        }
        for con in &self.cons {
            match con {
                Con::Delay { imt, is, .. } => {
                    s.push(ordered(*imt, *is));
                }
                Con::VarT { imt, .. } => s.push((*imt, *imt)),
                Con::MaxMu { a, b, .. } | Con::MaxVar { a, b, .. } => {
                    let slots = clark_slots(*a, *b);
                    let slots = slots.as_slice();
                    for i in 0..slots.len() {
                        for j in i..slots.len() {
                            s.push(ordered(slots[i].1, slots[j].1));
                        }
                    }
                }
                Con::ArrMu { .. } | Con::ArrVar { .. } => {}
                Con::DelayCap { iv, k, .. } => {
                    if let Some(i) = iv {
                        if *k != 0.0 {
                            s.push((*i, *i));
                        }
                    }
                }
            }
        }
        if let Some(k) = self.hess_drop {
            s.remove(k);
        }
        s
    }

    fn hessian_values(&self, x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]) {
        if let Some(k) = self.hess_drop {
            let mut full = vec![0.0; self.obj_hess_len() + *self.hess_off.last().unwrap()];
            self.hessian_values_inner(x, sigma, lambda, &mut full);
            copy_dropping(&full, k, vals);
            return;
        }
        self.hessian_values_inner(x, sigma, lambda, vals);
    }
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a >= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Emits the lower-triangle Hessian contributions `-lam * h[slot_i][slot_j]`
/// for every pair of variable slots of one Clark constraint, doubling
/// off-slot pairs that alias the same variable (the symmetric-triplet
/// consumer only double-counts entries with distinct row and column).
fn emit_clark_hess(
    push: &mut impl FnMut(&mut [f64], f64),
    vals: &mut [f64],
    a: &Operand,
    b: &Operand,
    h: &[[f64; 4]; 4],
    lam: f64,
) {
    let slots = clark_slots(*a, *b);
    let slots = slots.as_slice();
    for i in 0..slots.len() {
        for j in i..slots.len() {
            let (si, vi) = slots[i];
            let (sj, vj) = slots[j];
            let factor = if i != j && vi == vj { 2.0 } else { 1.0 };
            push(vals, -lam * factor * h[si][sj]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::{generate, CircuitBuilder, GateKind};
    use sgs_nlp::problem::check_derivatives;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn fig2_formulation_matches_paper_eq18() {
        // The paper's Eq. 18 for fig. 2: 4 delay constraints, 4 sigma
        // constraints, arrival adds for each gate, max nodes for gate D's
        // 3 fan-ins (2 nodes) and for the 2 outputs (1 node).
        let c = generate::fig2();
        let p = SizingProblem::build(&c, &lib(), Objective::MeanPlusKSigma(3.0), DelaySpec::None);
        let n_delay = p
            .cons
            .iter()
            .filter(|c| matches!(c, Con::Delay { .. }))
            .count();
        let n_vart = p
            .cons
            .iter()
            .filter(|c| matches!(c, Con::VarT { .. }))
            .count();
        let n_maxmu = p
            .cons
            .iter()
            .filter(|c| matches!(c, Con::MaxMu { .. }))
            .count();
        assert_eq!(n_delay, 4);
        assert_eq!(n_vart, 4);
        // Gates A, B, C have PI-only fan-ins (folded to constants); D has
        // 3 variable fan-ins -> 2 max nodes; outputs C, D -> 1 max node.
        assert_eq!(n_maxmu, 3);
    }

    #[test]
    fn initial_point_is_feasible() {
        for circuit in [
            generate::tree7(),
            generate::fig2(),
            generate::ripple_carry_adder(4),
        ] {
            let p = SizingProblem::build(&circuit, &lib(), Objective::MeanDelay, DelaySpec::None);
            let ones = vec![1.0; circuit.num_gates()];
            let x = p.initial_point(&ones);
            let mut c = vec![0.0; p.num_constraints()];
            p.constraints(&x, &mut c);
            let worst = c.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
            assert!(
                worst < 1e-9,
                "initial infeasibility {worst} on {}",
                circuit.name()
            );
        }
    }

    #[test]
    fn initial_point_matches_ssta() {
        let circuit = generate::tree7();
        let p = SizingProblem::build(&circuit, &lib(), Objective::MeanDelay, DelaySpec::None);
        let s = vec![1.7; 7];
        let x = p.initial_point(&s);
        let report = sgs_ssta::ssta(&circuit, &lib(), &s);
        assert!((x[p.mu_tmax_index()] - report.delay.mean()).abs() < 1e-9);
        assert!((x[p.var_tmax_index()] - report.delay.var()).abs() < 1e-9);
    }

    #[test]
    fn derivatives_exact_tree() {
        let circuit = generate::tree7();
        for obj in [
            Objective::Area,
            Objective::MeanDelay,
            Objective::MeanPlusKSigma(3.0),
            Objective::Sigma,
            Objective::NegSigma,
        ] {
            let p = SizingProblem::build(&circuit, &lib(), obj.clone(), DelaySpec::None);
            let x = p.initial_point(&[1.3, 1.1, 2.0, 1.6, 1.0, 2.4, 2.9]);
            let lambda: Vec<f64> = (0..p.num_constraints())
                .map(|i| 0.3 + 0.1 * (i as f64 % 7.0))
                .collect();
            let r = check_derivatives(&p, &x, &lambda, 1e-6);
            assert!(r.within(5e-5), "{obj}: {r:?}");
        }
    }

    #[test]
    fn derivatives_exact_with_delay_caps() {
        let circuit = generate::fig2();
        for spec in [
            DelaySpec::MaxMean(7.0),
            DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 8.0 },
            DelaySpec::ExactMean(6.0),
        ] {
            let p = SizingProblem::build(&circuit, &lib(), Objective::Area, spec.clone());
            let x = p.initial_point(&[1.5, 1.2, 2.2, 1.9]);
            let lambda: Vec<f64> = (0..p.num_constraints())
                .map(|i| -0.2 + 0.15 * (i as f64 % 5.0))
                .collect();
            let r = check_derivatives(&p, &x, &lambda, 1e-6);
            assert!(r.within(5e-5), "{spec}: {r:?}");
        }
    }

    #[test]
    fn duplicate_fanin_derivatives_exact() {
        // A gate fed twice by the same signal exercises the aliased-slot
        // Hessian doubling.
        let mut b = CircuitBuilder::new("dup");
        let a = b.add_input("a");
        let g1 = b.add_gate(GateKind::Nand2, "g1", &[a, a]).unwrap();
        let g2 = b.add_gate(GateKind::Nand2, "g2", &[g1, g1]).unwrap();
        b.mark_output(g2).unwrap();
        let circuit = b.build().unwrap();
        let p = SizingProblem::build(
            &circuit,
            &lib(),
            Objective::MeanPlusKSigma(1.0),
            DelaySpec::None,
        );
        let x = p.initial_point(&[1.4, 2.1]);
        let lambda: Vec<f64> = (0..p.num_constraints())
            .map(|i| 0.5 - 0.1 * i as f64)
            .collect();
        let r = check_derivatives(&p, &x, &lambda, 1e-6);
        assert!(r.within(5e-5), "{r:?}");
    }

    #[test]
    fn random_dag_derivatives_exact() {
        let circuit = generate::random_dag(&sgs_netlist::generate::RandomDagSpec {
            name: "d".into(),
            cells: 30,
            inputs: 6,
            depth: 5,
            seed: 11,
            ..Default::default()
        });
        let p = SizingProblem::build(
            &circuit,
            &lib(),
            Objective::MeanPlusKSigma(3.0),
            DelaySpec::MaxMeanPlusKSigma { k: 1.0, d: 20.0 },
        );
        let s0: Vec<f64> = (0..circuit.num_gates())
            .map(|i| 1.0 + 0.07 * (i % 25) as f64)
            .collect();
        let x = p.initial_point(&s0);
        let lambda: Vec<f64> = (0..p.num_constraints())
            .map(|i| 0.4 * ((i as f64 * 0.7).sin()))
            .collect();
        let r = check_derivatives(&p, &x, &lambda, 1e-6);
        assert!(r.within(1e-4), "{r:?}");
    }

    #[test]
    fn value_blocks_match_structures_and_pairs_group() {
        let circuit = generate::random_dag(&sgs_netlist::generate::RandomDagSpec {
            name: "blk".into(),
            cells: 40,
            inputs: 8,
            depth: 6,
            seed: 3,
            ..Default::default()
        });
        let p = SizingProblem::build(
            &circuit,
            &lib(),
            Objective::MeanPlusKSigma(3.0),
            DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 25.0 },
        );
        // Precomputed offsets must agree with the sparse structures the
        // solver allocates from.
        assert_eq!(*p.jac_off.last().unwrap(), p.jacobian_structure().len());
        assert_eq!(
            p.obj_hess_len() + *p.hess_off.last().unwrap(),
            p.hessian_structure().len()
        );
        // Every MaxMu is grouped with its MaxVar twin (one Clark
        // evaluation per max node), and groups partition the constraints.
        let n_maxmu = p
            .cons
            .iter()
            .filter(|c| matches!(c, Con::MaxMu { .. }))
            .count();
        let n_pairs = p.groups.iter().filter(|&&(_, len)| len == 2).count();
        assert!(n_maxmu > 0);
        assert_eq!(n_pairs, n_maxmu);
        let covered: usize = p.groups.iter().map(|&(_, len)| len).sum();
        assert_eq!(covered, p.cons.len());
    }

    #[test]
    fn set_objective_k_preserves_structure_and_values_track() {
        let circuit = generate::tree7();
        let mut p = SizingProblem::build(
            &circuit,
            &lib(),
            Objective::MeanPlusKSigma(3.0),
            DelaySpec::MaxMean(8.0),
        );
        let jac = p.jacobian_structure();
        let hess = p.hessian_structure();
        let x = p.initial_point(&[1.3; 7]);
        for k in [1.0, 0.0, 4.5] {
            p.set_objective_k(k);
            // Same sparsity for every k, including 0 (variant-keyed slot).
            assert_eq!(p.jacobian_structure(), jac);
            assert_eq!(p.hessian_structure(), hess);
            // The objective and its derivatives read the new k.
            let mu = x[p.mu_tmax_index()];
            let sigma = x[p.var_tmax_index()].sqrt();
            assert!((p.objective(&x) - (mu + k * sigma)).abs() < 1e-12);
            let lambda = vec![0.1; p.num_constraints()];
            let r = check_derivatives(&p, &x, &lambda, 1e-6);
            assert!(r.within(5e-5), "k = {k}: {r:?}");
        }
    }

    #[test]
    #[should_panic(expected = "mu + k sigma objective")]
    fn set_objective_k_rejects_other_objectives() {
        let circuit = generate::tree7();
        let mut p = SizingProblem::build(&circuit, &lib(), Objective::Area, DelaySpec::None);
        p.set_objective_k(2.0);
    }

    #[test]
    fn extract_s_roundtrip() {
        let circuit = generate::tree7();
        let p = SizingProblem::build(&circuit, &lib(), Objective::Area, DelaySpec::None);
        let s = vec![1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
        let x = p.initial_point(&s);
        assert_eq!(p.extract_s(&x), s);
    }

    #[test]
    fn input_arrivals_enter_as_constants() {
        use sgs_statmath::Normal;
        let circuit = generate::tree7();
        let arrivals: Vec<Normal> = (0..8)
            .map(|i| Normal::new(1.0 + 0.3 * i as f64, 0.2 + 0.02 * i as f64))
            .collect();
        let p = SizingProblem::build_with_arrivals(
            &circuit,
            &lib(),
            Objective::MeanDelay,
            DelaySpec::None,
            Some(&arrivals),
        );
        let s = vec![1.4; 7];
        let x = p.initial_point(&s);
        let report = sgs_ssta::analysis::ssta_with_arrivals(&circuit, &lib(), &s, Some(&arrivals));
        assert!((x[p.mu_tmax_index()] - report.delay.mean()).abs() < 1e-9);
        assert!((x[p.var_tmax_index()] - report.delay.var()).abs() < 1e-9);
        // Derivatives stay exact with nonzero constant operands.
        let lambda: Vec<f64> = (0..p.num_constraints())
            .map(|i| 0.2 + 0.05 * i as f64)
            .collect();
        let r = sgs_nlp::problem::check_derivatives(&p, &x, &lambda, 1e-6);
        assert!(r.within(5e-5), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "one arrival distribution per primary input")]
    fn arrival_length_checked() {
        let circuit = generate::tree7();
        let _ = SizingProblem::build_with_arrivals(
            &circuit,
            &lib(),
            Objective::MeanDelay,
            DelaySpec::None,
            Some(&[sgs_statmath::Normal::certain(0.0)]),
        );
    }

    #[test]
    #[should_panic(expected = "one weight per gate")]
    fn weighted_area_length_checked() {
        let circuit = generate::tree7();
        let _ = SizingProblem::build(
            &circuit,
            &lib(),
            Objective::WeightedArea(vec![1.0; 3]),
            DelaySpec::None,
        );
    }
}
