//! Reduced-space sizing: the objective as a function of the speed factors
//! only, with gradients by reverse-mode (adjoint) differentiation.
//!
//! Eliminating the intermediate variables of the full formulation (every
//! `mu_t, var_t, mu_T, var_T, mu_U, var_U` is determined by the speed
//! factors through a forward SSTA sweep) leaves a smooth bound-constrained
//! problem over `S` alone. Delay constraints are handled with a quadratic
//! penalty loop. This solver:
//!
//! * provides warm starts for the full-space augmented-Lagrangian solve
//!   (mirroring how one would drive LANCELOT well), and
//! * serves as the comparison baseline in the benches — it is the natural
//!   "just use adjoints and L-BFGS" alternative to the paper's full NLP.

use crate::spec::{DelaySpec, Objective};
use sgs_netlist::{Circuit, Library, Signal};
use sgs_nlp::lbfgs::{self, GradFn, LbfgsOptions};
use sgs_ssta::DelayModel;
use sgs_statmath::clark::{self, ClarkGrad};

/// Reference to a stochastic value flowing through the forward tape.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OpRef {
    /// A folded constant (primary-input arrivals).
    Const { mu: f64, var: f64 },
    /// Arrival of gate `g`.
    Arr(usize),
    /// Max-tree node `i`.
    Node(usize),
}

/// One recorded two-operand max.
#[derive(Debug, Clone)]
struct MaxNode {
    grad: ClarkGrad,
    a: OpRef,
    b: OpRef,
}

/// Replayable event for the reverse sweep.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Max node `i` was computed.
    Node(usize),
    /// Gate `g`'s arrival was computed as `u + t` with the given max input.
    Arr { gate: usize, u: OpRef },
}

/// Forward tape of one evaluation. Held as reusable scratch inside
/// [`ReducedObjective`]: the L-BFGS loop evaluates thousands of times,
/// so the tape's vectors are cleared and refilled rather than
/// reallocated.
#[derive(Debug, Clone)]
struct Tape {
    mu_t: Vec<f64>,
    load: Vec<f64>,
    nodes: Vec<MaxNode>,
    events: Vec<Event>,
    tmax: OpRef,
    mu_tmax: f64,
    var_tmax: f64,
    /// Per-gate arrival moments (needed for per-output constraints).
    arr: Vec<(f64, f64)>,
}

impl Default for Tape {
    fn default() -> Self {
        Tape {
            mu_t: Vec::new(),
            load: Vec::new(),
            nodes: Vec::new(),
            events: Vec::new(),
            tmax: OpRef::Const { mu: 0.0, var: 0.0 },
            mu_tmax: 0.0,
            var_tmax: 0.0,
            arr: Vec::new(),
        }
    }
}

/// Reusable adjoint buffers for the reverse sweep.
#[derive(Debug, Clone, Default)]
struct AdjointBufs {
    a_arr_mu: Vec<f64>,
    a_arr_var: Vec<f64>,
    a_node_mu: Vec<f64>,
    a_node_var: Vec<f64>,
    a_mt: Vec<f64>,
    a_vt: Vec<f64>,
}

impl AdjointBufs {
    fn reset(&mut self, n: usize, nodes: usize) {
        for v in [
            &mut self.a_arr_mu,
            &mut self.a_arr_var,
            &mut self.a_mt,
            &mut self.a_vt,
        ] {
            v.clear();
            v.resize(n, 0.0);
        }
        for v in [&mut self.a_node_mu, &mut self.a_node_var] {
            v.clear();
            v.resize(nodes, 0.0);
        }
    }
}

/// The reduced-space objective `F(S)` with adjoint gradients, implementing
/// [`GradFn`] for the projected L-BFGS solver.
#[derive(Debug)]
pub struct ReducedObjective<'a> {
    circuit: &'a Circuit,
    model: DelayModel,
    objective: Objective,
    spec: DelaySpec,
    /// Quadratic-penalty weight for the delay constraint.
    pub penalty_weight: f64,
    kappa2: f64,
    eps: f64,
    input_arrivals: Option<Vec<sgs_statmath::Normal>>,
    // Per-evaluation scratch, reused across the L-BFGS iterations.
    scratch: Tape,
    adj: AdjointBufs,
}

impl<'a> ReducedObjective<'a> {
    /// Builds the evaluator.
    pub fn new(circuit: &'a Circuit, lib: &Library, objective: Objective, spec: DelaySpec) -> Self {
        ReducedObjective {
            circuit,
            model: DelayModel::new(circuit, lib),
            objective,
            spec,
            penalty_weight: 10.0,
            kappa2: lib.sigma_factor * lib.sigma_factor,
            eps: clark::DEFAULT_EPS,
            input_arrivals: None,
            scratch: Tape::default(),
            adj: AdjointBufs::default(),
        }
    }

    /// Sets explicit primary-input arrival distributions (default:
    /// deterministic arrival at 0).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the circuit's input count.
    pub fn with_input_arrivals(mut self, arrivals: Vec<sgs_statmath::Normal>) -> Self {
        assert_eq!(
            arrivals.len(),
            self.circuit.num_inputs(),
            "one arrival distribution per primary input"
        );
        self.input_arrivals = Some(arrivals);
        self
    }

    fn pi_ref(&self, p: usize) -> OpRef {
        match &self.input_arrivals {
            None => OpRef::Const { mu: 0.0, var: 0.0 },
            Some(a) => OpRef::Const {
                mu: a[p].mean(),
                var: a[p].var(),
            },
        }
    }

    /// Forward sweep: SSTA with a gradient tape. Allocates a fresh tape —
    /// the cold-path entry for [`ReducedObjective::violation`] and
    /// [`ReducedObjective::delay_moments`]; the hot path goes through
    /// [`ReducedObjective::forward_into`].
    fn forward(&self, s: &[f64]) -> Tape {
        let mut tape = Tape::default();
        self.forward_into(s, &mut tape);
        tape
    }

    /// Forward sweep into a caller-provided tape, reusing its buffers.
    fn forward_into(&self, s: &[f64], tape: &mut Tape) {
        let n = self.circuit.num_gates();
        tape.mu_t.clear();
        tape.mu_t.resize(n, 0.0);
        tape.load.clear();
        tape.load.resize(n, 0.0);
        tape.arr.clear();
        tape.arr.resize(n, (0.0, 0.0));
        tape.nodes.clear();
        tape.events.clear();
        let mu_t = &mut tape.mu_t;
        let load = &mut tape.load;
        let arr = &mut tape.arr;
        let nodes = &mut tape.nodes;
        let events = &mut tape.events;

        let value_of = |r: OpRef, arr: &[(f64, f64)], nodes: &[MaxNode]| -> (f64, f64) {
            match r {
                OpRef::Const { mu, var } => (mu, var),
                OpRef::Arr(g) => arr[g],
                OpRef::Node(i) => (nodes[i].grad.mu, nodes[i].grad.var),
            }
        };

        for (id, gate) in self.circuit.gates() {
            let g = id.index();
            load[g] = self.model.load_cap(id, s);
            mu_t[g] = self.model.t_int(id) + self.model.c() * load[g] / s[g];

            // Fold the fan-in max.
            let mut acc = match gate.inputs[0] {
                Signal::Pi(p) => self.pi_ref(p),
                Signal::Gate(src) => OpRef::Arr(src.index()),
            };
            for &sig in &gate.inputs[1..] {
                let op = match sig {
                    Signal::Pi(p) => self.pi_ref(p),
                    Signal::Gate(src) => OpRef::Arr(src.index()),
                };
                let (ma, va) = value_of(acc, arr, nodes);
                let (mb, vb) = value_of(op, arr, nodes);
                if matches!(acc, OpRef::Const { .. }) && matches!(op, OpRef::Const { .. }) {
                    let gr = clark::max_grad(ma, va, mb, vb, self.eps);
                    acc = OpRef::Const {
                        mu: gr.mu,
                        var: gr.var,
                    };
                } else {
                    let gr = clark::max_grad(ma, va, mb, vb, self.eps);
                    nodes.push(MaxNode {
                        grad: gr,
                        a: acc,
                        b: op,
                    });
                    events.push(Event::Node(nodes.len() - 1));
                    acc = OpRef::Node(nodes.len() - 1);
                }
            }
            let (umu, uvar) = value_of(acc, arr, nodes);
            let vt = self.kappa2 * mu_t[g] * mu_t[g];
            arr[g] = (umu + mu_t[g], uvar + vt);
            events.push(Event::Arr { gate: g, u: acc });
        }

        // Output chain.
        let mut acc = OpRef::Arr(self.circuit.outputs()[0].index());
        for &o in &self.circuit.outputs()[1..] {
            let op = OpRef::Arr(o.index());
            let (ma, va) = value_of(acc, arr, nodes);
            let (mb, vb) = value_of(op, arr, nodes);
            let gr = clark::max_grad(ma, va, mb, vb, self.eps);
            nodes.push(MaxNode {
                grad: gr,
                a: acc,
                b: op,
            });
            events.push(Event::Node(nodes.len() - 1));
            acc = OpRef::Node(nodes.len() - 1);
        }
        let (mu_tmax, var_tmax) = value_of(acc, arr, nodes);
        tape.tmax = acc;
        tape.mu_tmax = mu_tmax;
        tape.var_tmax = var_tmax;
    }

    /// Objective + penalty value from tape results.
    fn value_from(&self, s: &[f64], tape: &Tape) -> f64 {
        let sigma = tape.var_tmax.max(1e-18).sqrt();
        let base = match &self.objective {
            Objective::Area => s.iter().sum(),
            Objective::WeightedArea(w) => s.iter().zip(w).map(|(a, b)| a * b).sum(),
            Objective::MeanDelay => tape.mu_tmax,
            Objective::MeanPlusKSigma(k) => tape.mu_tmax + k * sigma,
            Objective::Sigma => sigma,
            Objective::NegSigma => -sigma,
        };
        base + self.penalty_value(tape.mu_tmax, sigma, tape)
    }

    fn penalty_value(&self, mu: f64, sigma: f64, tape: &Tape) -> f64 {
        let w = self.penalty_weight;
        match &self.spec {
            DelaySpec::None => 0.0,
            DelaySpec::MaxMean(d) => w * (mu - d).max(0.0).powi(2),
            DelaySpec::MaxMeanPlusKSigma { k, d } => w * (mu + k * sigma - d).max(0.0).powi(2),
            DelaySpec::ExactMean(d) => w * (mu - d).powi(2),
            DelaySpec::PerOutput { k, d } => {
                let mut total = 0.0;
                for (&o, &d_o) in self.circuit.outputs().iter().zip(d) {
                    let (m, v) = tape.arr[o.index()];
                    let viol = (m + k * v.max(1e-18).sqrt() - d_o).max(0.0);
                    total += w * viol * viol;
                }
                total
            }
        }
    }

    /// `(dF/d mu_Tmax, dF/d var_Tmax, direct dF/dS)` seeds.
    fn objective_seeds(&self, s: &[f64], tape: &Tape, ds: &mut [f64]) -> (f64, f64) {
        let sigma = tape.var_tmax.max(1e-18).sqrt();
        let dsigma_dvar = 1.0 / (2.0 * sigma);
        let (mut dmu, mut dvar) = match &self.objective {
            Objective::Area => {
                for d in ds.iter_mut() {
                    *d += 1.0;
                }
                (0.0, 0.0)
            }
            Objective::WeightedArea(w) => {
                for (d, &wi) in ds.iter_mut().zip(w) {
                    *d += wi;
                }
                (0.0, 0.0)
            }
            Objective::MeanDelay => (1.0, 0.0),
            Objective::MeanPlusKSigma(k) => (1.0, k * dsigma_dvar),
            Objective::Sigma => (0.0, dsigma_dvar),
            Objective::NegSigma => (0.0, -dsigma_dvar),
        };
        let _ = s;
        // Penalty seeds on (mu_Tmax, var_Tmax); the per-output penalty
        // seeds arrival adjoints directly and is handled in `grad`.
        let w = self.penalty_weight;
        match &self.spec {
            DelaySpec::None | DelaySpec::PerOutput { .. } => {}
            DelaySpec::MaxMean(d) => {
                let viol = (tape.mu_tmax - d).max(0.0);
                dmu += 2.0 * w * viol;
            }
            DelaySpec::MaxMeanPlusKSigma { k, d } => {
                let viol = (tape.mu_tmax + k * sigma - d).max(0.0);
                dmu += 2.0 * w * viol;
                dvar += 2.0 * w * viol * k * dsigma_dvar;
            }
            DelaySpec::ExactMean(d) => {
                dmu += 2.0 * w * (tape.mu_tmax - d);
            }
        }
        (dmu, dvar)
    }

    /// Delay-constraint violation at `s` (0 when satisfied), for the outer
    /// penalty loop.
    pub fn violation(&self, s: &[f64]) -> f64 {
        let tape = self.forward(s);
        let sigma = tape.var_tmax.max(1e-18).sqrt();
        match &self.spec {
            DelaySpec::None => 0.0,
            DelaySpec::MaxMean(d) => (tape.mu_tmax - d).max(0.0),
            DelaySpec::MaxMeanPlusKSigma { k, d } => (tape.mu_tmax + k * sigma - d).max(0.0),
            DelaySpec::ExactMean(d) => (tape.mu_tmax - d).abs(),
            DelaySpec::PerOutput { k, d } => self
                .circuit
                .outputs()
                .iter()
                .zip(d)
                .map(|(&o, &d_o)| {
                    let (m, v) = tape.arr[o.index()];
                    (m + k * v.max(1e-18).sqrt() - d_o).max(0.0)
                })
                .fold(0.0, f64::max),
        }
    }

    /// The circuit delay moments at `s` (forward sweep only).
    pub fn delay_moments(&self, s: &[f64]) -> (f64, f64) {
        let tape = self.forward(s);
        (tape.mu_tmax, tape.var_tmax)
    }
}

impl GradFn for ReducedObjective<'_> {
    fn n(&self) -> usize {
        self.circuit.num_gates()
    }

    fn value(&mut self, x: &[f64]) -> f64 {
        let mut tape = std::mem::take(&mut self.scratch);
        self.forward_into(x, &mut tape);
        let v = self.value_from(x, &tape);
        self.scratch = tape;
        v
    }

    fn grad(&mut self, x: &[f64], g: &mut [f64]) {
        let n = self.circuit.num_gates();
        let mut tape = std::mem::take(&mut self.scratch);
        let mut adj = std::mem::take(&mut self.adj);
        self.forward_into(x, &mut tape);
        g.fill(0.0);

        // Adjoints, in buffers reused across evaluations.
        adj.reset(n, tape.nodes.len());
        let AdjointBufs {
            a_arr_mu,
            a_arr_var,
            a_node_mu,
            a_node_var,
            a_mt,
            a_vt,
        } = &mut adj;

        let (dmu, dvar) = self.objective_seeds(x, &tape, g);
        // Per-output penalty: seed each constrained output's arrival
        // adjoints directly.
        if let DelaySpec::PerOutput { k, d } = &self.spec {
            let w = self.penalty_weight;
            for (&o, &d_o) in self.circuit.outputs().iter().zip(d) {
                let (m, v) = tape.arr[o.index()];
                let sig_o = v.max(1e-18).sqrt();
                let viol = (m + k * sig_o - d_o).max(0.0);
                if viol > 0.0 {
                    a_arr_mu[o.index()] += 2.0 * w * viol;
                    a_arr_var[o.index()] += 2.0 * w * viol * k / (2.0 * sig_o);
                }
            }
        }
        match tape.tmax {
            OpRef::Arr(gt) => {
                a_arr_mu[gt] += dmu;
                a_arr_var[gt] += dvar;
            }
            OpRef::Node(i) => {
                a_node_mu[i] += dmu;
                a_node_var[i] += dvar;
            }
            OpRef::Const { .. } => unreachable!("tmax is never constant"),
        }

        // Reverse event sweep.
        for ev in tape.events.iter().rev() {
            match *ev {
                Event::Node(i) => {
                    let node = &tape.nodes[i];
                    let (amu, avar) = (a_node_mu[i], a_node_var[i]);
                    if amu == 0.0 && avar == 0.0 {
                        continue;
                    }
                    let mut add = |r: OpRef, slot_mu: usize, slot_var: usize| match r {
                        OpRef::Const { .. } => {}
                        OpRef::Arr(g2) => {
                            a_arr_mu[g2] +=
                                amu * node.grad.dmu[slot_mu] + avar * node.grad.dvar[slot_mu];
                            a_arr_var[g2] +=
                                amu * node.grad.dmu[slot_var] + avar * node.grad.dvar[slot_var];
                        }
                        OpRef::Node(j) => {
                            a_node_mu[j] +=
                                amu * node.grad.dmu[slot_mu] + avar * node.grad.dvar[slot_mu];
                            a_node_var[j] +=
                                amu * node.grad.dmu[slot_var] + avar * node.grad.dvar[slot_var];
                        }
                    };
                    add(node.a, 0, 1);
                    add(node.b, 2, 3);
                }
                Event::Arr { gate, u } => {
                    let (amu, avar) = (a_arr_mu[gate], a_arr_var[gate]);
                    a_mt[gate] += amu;
                    a_vt[gate] += avar;
                    match u {
                        OpRef::Const { .. } => {}
                        OpRef::Arr(g2) => {
                            a_arr_mu[g2] += amu;
                            a_arr_var[g2] += avar;
                        }
                        OpRef::Node(i) => {
                            a_node_mu[i] += amu;
                            a_node_var[i] += avar;
                        }
                    }
                }
            }
        }

        // Gate-delay adjoints -> speed factors.
        // var_t = kappa2 mu_t^2; mu_t = t_int + c L / S with
        // L = C_static + sum C_in,j S_j.
        for (id, _) in self.circuit.gates() {
            let gi = id.index();
            let amt = a_mt[gi] + a_vt[gi] * 2.0 * self.kappa2 * tape.mu_t[gi];
            if amt == 0.0 {
                continue;
            }
            let c = self.model.c();
            g[gi] += amt * (-c * tape.load[gi] / (x[gi] * x[gi]));
            for &j in self.model.fanouts(id) {
                g[j.index()] += amt * c * self.model.c_in(j) / x[gi];
            }
        }

        self.scratch = tape;
        self.adj = adj;
    }
}

/// Options for [`solve_reduced`].
#[derive(Debug, Clone)]
pub struct ReducedOptions {
    /// Inner L-BFGS settings.
    pub lbfgs: LbfgsOptions,
    /// Delay-constraint violation tolerance for the penalty loop.
    pub tol_viol: f64,
    /// Penalty multiplier per round.
    pub penalty_mult: f64,
    /// Maximum penalty rounds.
    pub max_rounds: usize,
}

impl Default for ReducedOptions {
    fn default() -> Self {
        ReducedOptions {
            lbfgs: LbfgsOptions {
                tol: 1e-7,
                max_iter: 400,
                memory: 12,
            },
            tol_viol: 1e-4,
            penalty_mult: 10.0,
            max_rounds: 8,
        }
    }
}

/// Result of [`solve_reduced`].
#[derive(Debug, Clone)]
pub struct ReducedResult {
    /// Optimised speed factors.
    pub s: Vec<f64>,
    /// Objective value (without penalty terms).
    pub objective: f64,
    /// Final delay-constraint violation.
    pub violation: f64,
    /// Total L-BFGS iterations.
    pub iterations: usize,
}

/// Solves the reduced-space problem with a quadratic-penalty loop around
/// projected L-BFGS.
pub fn solve_reduced(
    circuit: &Circuit,
    lib: &Library,
    objective: Objective,
    spec: DelaySpec,
    s0: &[f64],
    opts: &ReducedOptions,
) -> ReducedResult {
    solve_reduced_with_arrivals(circuit, lib, objective, spec, s0, opts, None)
}

/// [`solve_reduced`] with explicit primary-input arrival distributions.
#[allow(clippy::too_many_arguments)]
pub fn solve_reduced_with_arrivals(
    circuit: &Circuit,
    lib: &Library,
    objective: Objective,
    spec: DelaySpec,
    s0: &[f64],
    opts: &ReducedOptions,
    input_arrivals: Option<&[sgs_statmath::Normal]>,
) -> ReducedResult {
    fn apply_arrivals<'c>(
        mut r: ReducedObjective<'c>,
        input_arrivals: Option<&[sgs_statmath::Normal]>,
    ) -> ReducedObjective<'c> {
        if let Some(a) = input_arrivals {
            r = r.with_input_arrivals(a.to_vec());
        }
        r
    }

    let n = circuit.num_gates();
    assert_eq!(s0.len(), n, "one speed factor per gate");
    let l = vec![1.0; n];
    let u = vec![lib.s_limit; n];
    let mut s = s0.to_vec();

    // A quadratic penalty climbs much better from the feasible side. When
    // the start violates a <=-type delay spec, first drive the relevant
    // delay metric down (cheap, unconstrained) and start from there.
    if matches!(
        spec,
        DelaySpec::MaxMean(_) | DelaySpec::MaxMeanPlusKSigma { .. } | DelaySpec::PerOutput { .. }
    ) {
        let probe = apply_arrivals(
            ReducedObjective::new(circuit, lib, objective.clone(), spec.clone()),
            input_arrivals,
        );
        if probe.violation(&s) > 0.0 {
            let k = match &spec {
                DelaySpec::MaxMeanPlusKSigma { k, .. } => *k,
                DelaySpec::PerOutput { k, .. } => *k,
                _ => 0.0,
            };
            let mut speedup = apply_arrivals(
                ReducedObjective::new(circuit, lib, Objective::MeanPlusKSigma(k), DelaySpec::None),
                input_arrivals,
            );
            let r = lbfgs::minimize(&mut speedup, &s, &l, &u, &opts.lbfgs);
            s = r.x;
        }
    }

    let mut red = apply_arrivals(
        ReducedObjective::new(circuit, lib, objective.clone(), spec.clone()),
        input_arrivals,
    );
    let mut iters = 0usize;
    let rounds = if spec.is_some() { opts.max_rounds } else { 1 };
    for _ in 0..rounds {
        let r = lbfgs::minimize(&mut red, &s, &l, &u, &opts.lbfgs);
        s = r.x;
        iters += r.iterations;
        if !spec.is_some() || red.violation(&s) <= opts.tol_viol {
            break;
        }
        red.penalty_weight *= opts.penalty_mult;
    }
    let violation = red.violation(&s);
    // Report the clean objective (no penalty).
    let clean = apply_arrivals(
        ReducedObjective::new(circuit, lib, objective, DelaySpec::None),
        input_arrivals,
    );
    let (mu, var) = clean.delay_moments(&s);
    let sigma = var.max(1e-18).sqrt();
    let objective = match &clean.objective {
        Objective::Area => s.iter().sum(),
        Objective::WeightedArea(w) => s.iter().zip(w).map(|(a, b)| a * b).sum(),
        Objective::MeanDelay => mu,
        Objective::MeanPlusKSigma(k) => mu + k * sigma,
        Objective::Sigma => sigma,
        Objective::NegSigma => -sigma,
    };
    ReducedResult {
        s,
        objective,
        violation,
        iterations: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn forward_matches_ssta() {
        let c = generate::ripple_carry_adder(5);
        let s: Vec<f64> = (0..c.num_gates())
            .map(|i| 1.0 + 0.08 * (i % 20) as f64)
            .collect();
        let red = ReducedObjective::new(&c, &lib(), Objective::MeanDelay, DelaySpec::None);
        let (mu, var) = red.delay_moments(&s);
        let r = sgs_ssta::ssta(&c, &lib(), &s);
        assert!((mu - r.delay.mean()).abs() < 1e-9);
        assert!((var - r.delay.var()).abs() < 1e-9);
    }

    #[test]
    fn adjoint_gradient_matches_finite_differences() {
        let c = generate::tree7();
        for obj in [
            Objective::MeanDelay,
            Objective::MeanPlusKSigma(3.0),
            Objective::Sigma,
            Objective::Area,
        ] {
            let mut red = ReducedObjective::new(&c, &lib(), obj.clone(), DelaySpec::None);
            let s = vec![1.5, 1.2, 2.0, 1.4, 1.9, 2.5, 2.8];
            let mut g = vec![0.0; 7];
            red.grad(&s, &mut g);
            for i in 0..7 {
                let h = 1e-6;
                let mut sp = s.clone();
                let mut sm = s.clone();
                sp[i] += h;
                sm[i] -= h;
                let num = (red.value(&sp) - red.value(&sm)) / (2.0 * h);
                assert!(
                    (g[i] - num).abs() < 1e-5 * (1.0 + num.abs()),
                    "{obj}: dS[{i}] = {} vs fd {}",
                    g[i],
                    num
                );
            }
        }
    }

    #[test]
    fn adjoint_gradient_with_penalty() {
        let c = generate::fig2();
        let mut red = ReducedObjective::new(
            &c,
            &lib(),
            Objective::Area,
            DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 6.0 },
        );
        red.penalty_weight = 50.0;
        let s = vec![1.3, 1.6, 1.1, 2.2];
        let mut g = vec![0.0; 4];
        red.grad(&s, &mut g);
        for i in 0..4 {
            let h = 1e-6;
            let mut sp = s.clone();
            let mut sm = s.clone();
            sp[i] += h;
            sm[i] -= h;
            let num = (red.value(&sp) - red.value(&sm)) / (2.0 * h);
            assert!((g[i] - num).abs() < 1e-4 * (1.0 + num.abs()), "dS[{i}]");
        }
    }

    #[test]
    fn reduced_min_delay_beats_unsized() {
        let c = generate::tree7();
        let r = solve_reduced(
            &c,
            &lib(),
            Objective::MeanDelay,
            DelaySpec::None,
            &[1.0; 7],
            &ReducedOptions::default(),
        );
        let baseline_mu = sgs_ssta::ssta(&c, &lib(), &[1.0; 7]).delay.mean();
        assert!(
            r.objective < baseline_mu - 1.0,
            "{} vs {}",
            r.objective,
            baseline_mu
        );
        // All speed factors in bounds.
        for &si in &r.s {
            assert!((1.0..=3.0 + 1e-9).contains(&si));
        }
    }

    #[test]
    fn reduced_area_with_cap_meets_deadline() {
        let c = generate::tree7();
        let baseline_mu = sgs_ssta::ssta(&c, &lib(), &[1.0; 7]).delay.mean();
        let d = baseline_mu - 1.0;
        let r = solve_reduced(
            &c,
            &lib(),
            Objective::Area,
            DelaySpec::MaxMean(d),
            &[1.0; 7],
            &ReducedOptions::default(),
        );
        assert!(r.violation < 5e-3, "violation {}", r.violation);
        // Some sizing happened but far less than max.
        assert!(
            r.objective > 7.0 && r.objective < 21.0,
            "area {}",
            r.objective
        );
    }
}
