//! High-level sizing driver: seed, solve, extract, cross-check.

use crate::problem::SizingProblem;
use crate::reduced::{self, ReducedOptions};
use crate::spec::{DelaySpec, Objective};
use sgs_netlist::{Circuit, Library};
use sgs_nlp::auglag::{self, AugLagOptions};
use sgs_statmath::Normal;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Which solver carries the optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Reduced-space warm start followed by the full-space
    /// augmented-Lagrangian solve (the paper's formulation). Default.
    #[default]
    FullSpace,
    /// Reduced-space (adjoint + projected L-BFGS with penalty) only — the
    /// baseline alternative.
    ReducedSpace,
}

/// Errors from [`Sizer::solve`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SizeError {
    /// The optimiser failed to converge to a feasible first-order point.
    SolverFailed {
        /// Solver status.
        status: String,
        /// Final constraint violation.
        c_norm: f64,
    },
}

impl fmt::Display for SizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeError::SolverFailed { status, c_norm } => {
                write!(f, "sizing solver failed ({status}, |c| = {c_norm:.2e})")
            }
        }
    }
}

impl Error for SizeError {}

/// Result of a sizing run.
#[derive(Debug, Clone)]
pub struct SizingResult {
    /// Optimised speed factors, one per gate.
    pub s: Vec<f64>,
    /// Circuit delay distribution at `s` (recomputed by a clean SSTA pass
    /// — i.e. `(mu_Tmax, sigma_Tmax)` as the paper's tables report).
    pub delay: Normal,
    /// Area measure `sum S_i`.
    pub area: f64,
    /// Objective value reached.
    pub objective: f64,
    /// Outer (augmented-Lagrangian) iterations, 0 for reduced-space runs.
    pub outer_iterations: usize,
    /// Inner iterations (trust-region or L-BFGS).
    pub inner_iterations: usize,
    /// Final equality-constraint violation (full space only).
    pub c_norm: f64,
    /// Wall-clock seconds spent in the solver.
    pub seconds: f64,
}

impl SizingResult {
    /// `mu_Tmax + k sigma_Tmax` at the solution.
    pub fn mean_plus_k_sigma(&self, k: f64) -> f64 {
        self.delay.mean_plus_k_sigma(k)
    }
}

/// Builder-style driver for sizing runs.
///
/// ```
/// use sgs_core::{DelaySpec, Objective, Sizer};
/// use sgs_netlist::{generate, Library};
///
/// let circuit = generate::tree7();
/// let lib = Library::paper_default();
/// let result = Sizer::new(&circuit, &lib)
///     .objective(Objective::Area)
///     .delay_spec(DelaySpec::MaxMean(6.5))
///     .solve()?;
/// assert!(result.delay.mean() <= 6.5 + 1e-3);
/// # Ok::<(), sgs_core::SizeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sizer<'a> {
    circuit: &'a Circuit,
    lib: &'a Library,
    objective: Objective,
    delay_spec: DelaySpec,
    solver: SolverChoice,
    al_options: AugLagOptions,
    reduced_options: ReducedOptions,
    s0: Option<Vec<f64>>,
    input_arrivals: Option<Vec<Normal>>,
}

impl<'a> Sizer<'a> {
    /// Starts a sizing run with the default objective
    /// ([`Objective::MeanDelay`]) and no delay constraint.
    pub fn new(circuit: &'a Circuit, lib: &'a Library) -> Self {
        Sizer {
            circuit,
            lib,
            objective: Objective::MeanDelay,
            delay_spec: DelaySpec::None,
            solver: SolverChoice::FullSpace,
            al_options: AugLagOptions {
                tol_feas: 1e-6,
                tol_opt: 1e-4,
                ..Default::default()
            },
            reduced_options: ReducedOptions::default(),
            s0: None,
            input_arrivals: None,
        }
    }

    /// Sets the objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the delay constraint.
    pub fn delay_spec(mut self, spec: DelaySpec) -> Self {
        self.delay_spec = spec;
        self
    }

    /// Selects the solver.
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the augmented-Lagrangian options.
    pub fn al_options(mut self, opts: AugLagOptions) -> Self {
        self.al_options = opts;
        self
    }

    /// Overrides the reduced-space options.
    pub fn reduced_options(mut self, opts: ReducedOptions) -> Self {
        self.reduced_options = opts;
        self
    }

    /// Supplies explicit starting speed factors (default: all 1, refined
    /// by a reduced-space warm start).
    pub fn initial_s(mut self, s0: Vec<f64>) -> Self {
        self.s0 = Some(s0);
        self
    }

    /// Supplies primary-input arrival-time distributions (default:
    /// deterministic arrival at 0, the paper's setting). Use this to size
    /// under uncertain upstream-block or interface timing.
    pub fn input_arrivals(mut self, arrivals: Vec<Normal>) -> Self {
        self.input_arrivals = Some(arrivals);
        self
    }

    /// Runs the optimisation.
    ///
    /// # Errors
    ///
    /// Returns [`SizeError::SolverFailed`] when neither a feasible
    /// first-order point nor an acceptable fallback is reached.
    pub fn solve(&self) -> Result<SizingResult, SizeError> {
        let start = Instant::now();
        let n = self.circuit.num_gates();
        let s_start = self.s0.clone().unwrap_or_else(|| vec![1.0; n]);

        // Reduced-space pass: warm start (FullSpace) or the whole solve
        // (ReducedSpace).
        let red = reduced::solve_reduced_with_arrivals(
            self.circuit,
            self.lib,
            self.objective.clone(),
            self.delay_spec.clone(),
            &s_start,
            &self.reduced_options,
            self.input_arrivals.as_deref(),
        );

        if self.solver == SolverChoice::ReducedSpace {
            let report = self.analyse(&red.s);
            return Ok(SizingResult {
                area: red.s.iter().sum(),
                objective: red.objective,
                s: red.s,
                delay: report.delay,
                outer_iterations: 0,
                inner_iterations: red.iterations,
                c_norm: red.violation,
                seconds: start.elapsed().as_secs_f64(),
            });
        }

        // Full-space augmented-Lagrangian solve from the warm start.
        let problem = SizingProblem::build_with_arrivals(
            self.circuit,
            self.lib,
            self.objective.clone(),
            self.delay_spec.clone(),
            self.input_arrivals.as_deref(),
        );
        let x0 = problem.initial_point(&red.s);
        let result = auglag::solve(&problem, &x0, &self.al_options);
        let s_full = problem.extract_s(&result.x);

        // The constraint system is triangular in S: re-propagating the
        // extracted speed factors through a clean SSTA gives an exactly
        // feasible point. Judge both candidates (full-space result and
        // reduced-space warm start) by their clean objective and delay-spec
        // violation, and keep the better feasible one — AL residuals on the
        // intermediate variables then never corrupt the reported sizing.
        let full_cand = self.evaluate(&s_full);
        let red_cand = self.evaluate(&red.s);
        let spec_tol = self.spec_tolerance();
        let pick_full = match (full_cand.1 <= spec_tol, red_cand.1 <= spec_tol) {
            (true, true) => full_cand.0 <= red_cand.0,
            (true, false) => true,
            (false, true) => false,
            (false, false) => {
                return Err(SizeError::SolverFailed {
                    status: format!("{:?}", result.status),
                    c_norm: full_cand.1.min(red_cand.1),
                })
            }
        };
        let s = if pick_full { s_full } else { red.s };
        let objective = if pick_full { full_cand.0 } else { red_cand.0 };

        let report = self.analyse(&s);
        Ok(SizingResult {
            area: s.iter().sum(),
            objective,
            s,
            delay: report.delay,
            outer_iterations: result.outer_iterations,
            inner_iterations: result.inner_iterations,
            c_norm: result.c_norm,
            seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Clean SSTA at `s`, honouring configured input arrivals.
    fn analyse(&self, s: &[f64]) -> sgs_ssta::SstaReport {
        sgs_ssta::analysis::ssta_with_arrivals(
            self.circuit,
            self.lib,
            s,
            self.input_arrivals.as_deref(),
        )
    }

    /// Clean-SSTA objective value and delay-spec violation at `s`.
    fn evaluate(&self, s: &[f64]) -> (f64, f64) {
        let report = self.analyse(s);
        let mu = report.delay.mean();
        let sigma = report.delay.sigma();
        let obj = match &self.objective {
            Objective::Area => s.iter().sum(),
            Objective::WeightedArea(w) => s.iter().zip(w).map(|(a, b)| a * b).sum(),
            Objective::MeanDelay => mu,
            Objective::MeanPlusKSigma(k) => mu + k * sigma,
            Objective::Sigma => sigma,
            Objective::NegSigma => -sigma,
        };
        let viol = match &self.delay_spec {
            DelaySpec::None => 0.0,
            DelaySpec::MaxMean(d) => (mu - d).max(0.0),
            DelaySpec::MaxMeanPlusKSigma { k, d } => (mu + k * sigma - d).max(0.0),
            DelaySpec::ExactMean(d) => (mu - d).abs(),
            DelaySpec::PerOutput { k, d } => self
                .circuit
                .outputs()
                .iter()
                .zip(d)
                .map(|(&o, &d_o)| {
                    let a = report.arrivals[o.index()];
                    (a.mean() + k * a.sigma() - d_o).max(0.0)
                })
                .fold(0.0, f64::max),
        };
        (obj, viol)
    }

    /// Acceptable delay-spec violation, scaled to the deadline magnitude.
    fn spec_tolerance(&self) -> f64 {
        match &self.delay_spec {
            DelaySpec::None => f64::INFINITY,
            DelaySpec::MaxMean(d)
            | DelaySpec::MaxMeanPlusKSigma { d, .. }
            | DelaySpec::ExactMean(d) => 1e-3 * (1.0 + d.abs()),
            DelaySpec::PerOutput { d, .. } => {
                1e-3 * (1.0 + d.iter().fold(f64::INFINITY, |a, &b| a.min(b)).abs())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn min_mean_delay_tree() {
        let c = generate::tree7();
        let r = Sizer::new(&c, &lib()).solve().unwrap();
        let baseline_mu = sgs_ssta::ssta(&c, &lib(), &[1.0; 7]).delay.mean();
        assert!(
            r.delay.mean() < baseline_mu - 1.0,
            "{} vs {}",
            r.delay.mean(),
            baseline_mu
        );
        assert!(r.c_norm < 1e-5);
    }

    #[test]
    fn full_and_reduced_agree_on_min_delay() {
        let c = generate::tree7();
        let full = Sizer::new(&c, &lib()).solve().unwrap();
        let red = Sizer::new(&c, &lib())
            .solver(SolverChoice::ReducedSpace)
            .solve()
            .unwrap();
        assert!(
            (full.delay.mean() - red.delay.mean()).abs() < 0.02,
            "full {} vs reduced {}",
            full.delay.mean(),
            red.delay.mean()
        );
    }

    #[test]
    fn min_area_unconstrained_is_all_ones() {
        let c = generate::tree7();
        let r = Sizer::new(&c, &lib())
            .objective(Objective::Area)
            .solve()
            .unwrap();
        assert!((r.area - 7.0).abs() < 1e-4, "area {}", r.area);
    }

    #[test]
    fn area_with_mean_cap_meets_deadline() {
        let c = generate::tree7();
        let r = Sizer::new(&c, &lib())
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(6.5))
            .solve()
            .unwrap();
        assert!(r.delay.mean() <= 6.5 + 1e-3, "mu {}", r.delay.mean());
        assert!(r.area < 21.0);
    }

    #[test]
    fn sigma_objectives_bracket_area_objective() {
        // Paper Table 2: at a pinned mean, min-sigma and max-sigma bracket
        // the min-area solution's sigma.
        let c = generate::tree7();
        let d = 6.5;
        let area = Sizer::new(&c, &lib())
            .objective(Objective::Area)
            .delay_spec(DelaySpec::ExactMean(d))
            .solve()
            .unwrap();
        let min_sigma = Sizer::new(&c, &lib())
            .objective(Objective::Sigma)
            .delay_spec(DelaySpec::ExactMean(d))
            .solve()
            .unwrap();
        let max_sigma = Sizer::new(&c, &lib())
            .objective(Objective::NegSigma)
            .delay_spec(DelaySpec::ExactMean(d))
            .solve()
            .unwrap();
        for r in [&area, &min_sigma, &max_sigma] {
            assert!(
                (r.delay.mean() - d).abs() < 5e-3,
                "pin broken: {}",
                r.delay.mean()
            );
        }
        assert!(min_sigma.delay.sigma() <= area.delay.sigma() + 1e-3);
        assert!(max_sigma.delay.sigma() >= area.delay.sigma() - 1e-3);
        assert!(max_sigma.delay.sigma() > min_sigma.delay.sigma() + 1e-3);
    }

    #[test]
    fn k_sigma_objective_trades_mean_for_sigma() {
        let c = generate::tree7();
        let mu_only = Sizer::new(&c, &lib()).solve().unwrap();
        let robust = Sizer::new(&c, &lib())
            .objective(Objective::MeanPlusKSigma(3.0))
            .solve()
            .unwrap();
        // mu+3sigma optimum has the better mu+3sigma, mu-only has the
        // better mu.
        assert!(robust.mean_plus_k_sigma(3.0) <= mu_only.mean_plus_k_sigma(3.0) + 1e-4);
        assert!(mu_only.delay.mean() <= robust.delay.mean() + 1e-4);
    }
}
