//! High-level sizing driver: seed, solve, extract, cross-check.
//!
//! # Robustness policy
//!
//! A full-space solve that *diverges* (non-finite objective, constraint or
//! iterate — [`sgs_nlp::auglag::SolveStatus::Diverged`]) is retried up to
//! [`Sizer::max_restarts`] times from deterministically perturbed warm
//! starts. If afterwards neither the full-space result nor the
//! reduced-space warm start meets the delay spec, a TILOS-style greedy
//! descent ([`crate::greedy`]) is tried as a last resort before giving up
//! with [`SizeError::SolverFailed`]. Each escalation step emits a
//! [`sgs_trace::TraceEvent::Restart`] record, so a run report shows *how*
//! a solution was reached, not just that one was.

use crate::greedy::{self, GreedyOptions};
use crate::problem::SizingProblem;
use crate::reduced::{self, ReducedOptions};
use crate::spec::{DelaySpec, Objective};
use sgs_netlist::{Circuit, Library};
use sgs_nlp::auglag::{self, AugLagOptions, SolveStatus};
use sgs_nlp::{EvalCounts, NlpProblem};
use sgs_statmath::Normal;
use sgs_trace::{TraceEvent, TraceSink, Tracer};
use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Which solver carries the optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Reduced-space warm start followed by the full-space
    /// augmented-Lagrangian solve (the paper's formulation). Default.
    #[default]
    FullSpace,
    /// Reduced-space (adjoint + projected L-BFGS with penalty) only — the
    /// baseline alternative.
    ReducedSpace,
}

/// Errors from [`Sizer::solve`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SizeError {
    /// The optimiser failed to converge to a feasible first-order point.
    SolverFailed {
        /// Solver status.
        status: String,
        /// Final constraint violation.
        c_norm: f64,
    },
    /// An attached [`Preflight`] gate refused the task before any solver
    /// iteration ran (Error-severity static-analysis findings).
    PreflightFailed {
        /// Human-readable summary of the blocking findings.
        summary: String,
    },
}

impl fmt::Display for SizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeError::SolverFailed { status, c_norm } => {
                write!(f, "sizing solver failed ({status}, |c| = {c_norm:.2e})")
            }
            SizeError::PreflightFailed { summary } => {
                write!(f, "pre-solve static analysis refused the task: {summary}")
            }
        }
    }
}

impl Error for SizeError {}

/// A pre-solve static gate the [`Sizer`] runs before building or solving
/// anything.
///
/// Implemented by `sgs-analyze` (which this crate cannot depend on — the
/// dependency points the other way), so the sizer can refuse to start on
/// Error-severity findings without knowing how they are produced. A
/// failing check aborts [`Sizer::solve`] with
/// [`SizeError::PreflightFailed`] and costs no solver iterations.
pub trait Preflight {
    /// Checks the exact task the sizer is about to run. `Err` carries a
    /// human-readable summary of the blocking findings.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the task must not be solved (the implementor's
    /// severity policy decides what blocks).
    fn check(
        &self,
        circuit: &Circuit,
        lib: &Library,
        objective: &Objective,
        delay_spec: &DelaySpec,
    ) -> Result<(), String>;
}

/// Result of a sizing run.
#[derive(Debug, Clone)]
pub struct SizingResult {
    /// Optimised speed factors, one per gate.
    pub s: Vec<f64>,
    /// Circuit delay distribution at `s` (recomputed by a clean SSTA pass
    /// — i.e. `(mu_Tmax, sigma_Tmax)` as the paper's tables report).
    pub delay: Normal,
    /// Area measure `sum S_i`.
    pub area: f64,
    /// Objective value reached.
    pub objective: f64,
    /// Outer (augmented-Lagrangian) iterations, 0 for reduced-space runs.
    pub outer_iterations: usize,
    /// Inner iterations (trust-region or L-BFGS).
    pub inner_iterations: usize,
    /// Final equality-constraint violation (full space only).
    pub c_norm: f64,
    /// Wall-clock seconds spent in the solver.
    pub seconds: f64,
    /// Underlying NLP evaluations performed by the full-space solve
    /// (zeros for reduced-space runs, which count L-BFGS iterations
    /// instead).
    pub evals: EvalCounts,
    /// How many Clark-max evaluations clamped a negative variance to zero
    /// during this solve (delta of
    /// [`sgs_statmath::clark::var_clamp_count`]; a process-global counter,
    /// so concurrent solves may inflate each other's delta). Also emitted
    /// as the `clark_var_clamped` trace counter.
    pub clark_var_clamps: u64,
}

impl SizingResult {
    /// `mu_Tmax + k sigma_Tmax` at the solution.
    pub fn mean_plus_k_sigma(&self, k: f64) -> f64 {
        self.delay.mean_plus_k_sigma(k)
    }
}

/// Builder-style driver for sizing runs.
///
/// ```
/// use sgs_core::{DelaySpec, Objective, Sizer};
/// use sgs_netlist::{generate, Library};
///
/// let circuit = generate::tree7();
/// let lib = Library::paper_default();
/// let result = Sizer::new(&circuit, &lib)
///     .objective(Objective::Area)
///     .delay_spec(DelaySpec::MaxMean(6.5))
///     .solve()?;
/// assert!(result.delay.mean() <= 6.5 + 1e-3);
/// # Ok::<(), sgs_core::SizeError>(())
/// ```
#[derive(Clone)]
pub struct Sizer<'a> {
    circuit: &'a Circuit,
    lib: &'a Library,
    objective: Objective,
    delay_spec: DelaySpec,
    solver: SolverChoice,
    al_options: AugLagOptions,
    reduced_options: ReducedOptions,
    s0: Option<Vec<f64>>,
    input_arrivals: Option<Vec<Normal>>,
    trace: Option<&'a dyn TraceSink>,
    max_restarts: usize,
    poison_nan_after: Option<usize>,
    preflight: Option<&'a dyn Preflight>,
}

impl fmt::Debug for Sizer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sizer")
            .field("objective", &self.objective)
            .field("delay_spec", &self.delay_spec)
            .field("solver", &self.solver)
            .field("al_options", &self.al_options)
            .field("reduced_options", &self.reduced_options)
            .field("s0", &self.s0)
            .field("input_arrivals", &self.input_arrivals)
            .field("trace", &self.trace.map(|_| "dyn TraceSink"))
            .field("max_restarts", &self.max_restarts)
            .field("poison_nan_after", &self.poison_nan_after)
            .field("preflight", &self.preflight.map(|_| "dyn Preflight"))
            .finish()
    }
}

impl<'a> Sizer<'a> {
    /// Starts a sizing run with the default objective
    /// ([`Objective::MeanDelay`]) and no delay constraint.
    pub fn new(circuit: &'a Circuit, lib: &'a Library) -> Self {
        Sizer {
            circuit,
            lib,
            objective: Objective::MeanDelay,
            delay_spec: DelaySpec::None,
            solver: SolverChoice::FullSpace,
            al_options: AugLagOptions {
                tol_feas: 1e-6,
                tol_opt: 1e-4,
                ..Default::default()
            },
            reduced_options: ReducedOptions::default(),
            s0: None,
            input_arrivals: None,
            trace: None,
            max_restarts: 2,
            poison_nan_after: None,
            preflight: None,
        }
    }

    /// Attaches a pre-solve static gate (see [`Preflight`]); the solve
    /// then refuses to start — with [`SizeError::PreflightFailed`] — when
    /// the gate rejects the task. Default is no gate.
    pub fn preflight(mut self, gate: &'a dyn Preflight) -> Self {
        self.preflight = Some(gate);
        self
    }

    /// Attaches a trace sink. The solve then emits phase spans
    /// (`reduced_space`, `build_problem`, `auglag`, `evaluate`, `report`),
    /// the augmented-Lagrangian outer-iteration records, and restart /
    /// divergence events. The default is no sink, which costs nothing on
    /// the hot path.
    pub fn trace(mut self, sink: &'a dyn TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Maximum perturbed-restart attempts after a diverged full-space
    /// solve (default 2). `0` disables restarts; the greedy fallback still
    /// applies.
    pub fn max_restarts(mut self, n: usize) -> Self {
        self.max_restarts = n;
        self
    }

    /// Fault injection for robustness tests: the full-space NLP objective
    /// returns `NaN` from its `n`-th evaluation onward (per solve
    /// attempt). Exercises the divergence-detection and restart/fallback
    /// machinery deterministically; never use outside tests.
    pub fn poison_nan_after(mut self, n: usize) -> Self {
        self.poison_nan_after = Some(n);
        self
    }

    /// Sets the objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the delay constraint.
    pub fn delay_spec(mut self, spec: DelaySpec) -> Self {
        self.delay_spec = spec;
        self
    }

    /// Selects the solver.
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the augmented-Lagrangian options.
    pub fn al_options(mut self, opts: AugLagOptions) -> Self {
        self.al_options = opts;
        self
    }

    /// Overrides the reduced-space options.
    pub fn reduced_options(mut self, opts: ReducedOptions) -> Self {
        self.reduced_options = opts;
        self
    }

    /// Supplies explicit starting speed factors (default: all 1, refined
    /// by a reduced-space warm start).
    pub fn initial_s(mut self, s0: Vec<f64>) -> Self {
        self.s0 = Some(s0);
        self
    }

    /// Supplies primary-input arrival-time distributions (default:
    /// deterministic arrival at 0, the paper's setting). Use this to size
    /// under uncertain upstream-block or interface timing.
    pub fn input_arrivals(mut self, arrivals: Vec<Normal>) -> Self {
        self.input_arrivals = Some(arrivals);
        self
    }

    /// Converts this configuration into a [`crate::resolve::Resolver`] —
    /// the incremental re-solve driver behind what-if queries. The
    /// resolver keeps the built formulation, an [`sgs_ssta::IncrementalSsta`]
    /// engine and the last solution's `(x, lambda, rho)` alive across
    /// solves, so spec/size perturbations re-solve warm instead of from
    /// scratch.
    pub fn resolver(self) -> crate::resolve::Resolver<'a> {
        crate::resolve::Resolver::from_parts(
            self.circuit,
            self.lib,
            self.objective,
            self.delay_spec,
            self.al_options,
            self.input_arrivals,
            self.trace,
        )
    }

    /// Runs the optimisation.
    ///
    /// # Errors
    ///
    /// Returns [`SizeError::SolverFailed`] when neither a feasible
    /// first-order point nor an acceptable fallback is reached.
    pub fn solve(&self) -> Result<SizingResult, SizeError> {
        let start = Instant::now();
        let _solve_phase = sgs_metrics::phase(sgs_metrics::Phase::Solve);
        sgs_metrics::incr(sgs_metrics::Counter::SizerSolves);
        let tracer = self.tracer();
        if let Some(gate) = self.preflight {
            let _sp = tracer.span("preflight");
            let _ph = sgs_metrics::phase(sgs_metrics::Phase::Preflight);
            gate.check(self.circuit, self.lib, &self.objective, &self.delay_spec)
                .map_err(|summary| {
                    sgs_metrics::incr(sgs_metrics::Counter::SizerPreflightRejections);
                    SizeError::PreflightFailed { summary }
                })?;
        }
        let clamps_before = sgs_statmath::clark::var_clamp_count();
        let n = self.circuit.num_gates();
        let s_start = self.s0.clone().unwrap_or_else(|| vec![1.0; n]);

        // Reduced-space pass: warm start (FullSpace) or the whole solve
        // (ReducedSpace).
        let red = {
            let _sp = tracer.span("reduced_space");
            let _ph = sgs_metrics::phase(sgs_metrics::Phase::ReducedSpace);
            reduced::solve_reduced_with_arrivals(
                self.circuit,
                self.lib,
                self.objective.clone(),
                self.delay_spec.clone(),
                &s_start,
                &self.reduced_options,
                self.input_arrivals.as_deref(),
            )
        };

        if self.solver == SolverChoice::ReducedSpace {
            let report = {
                let _sp = tracer.span("report");
                let _ph = sgs_metrics::phase(sgs_metrics::Phase::Report);
                self.analyse(&red.s)
            };
            return Ok(SizingResult {
                area: red.s.iter().sum(),
                objective: red.objective,
                s: red.s,
                delay: report.delay,
                outer_iterations: 0,
                inner_iterations: red.iterations,
                c_norm: red.violation,
                seconds: start.elapsed().as_secs_f64(),
                evals: EvalCounts::default(),
                clark_var_clamps: self.emit_clamp_delta(&tracer, clamps_before),
            });
        }

        // Full-space augmented-Lagrangian solve from the warm start.
        let problem = {
            let _sp = tracer.span("build_problem");
            let _ph = sgs_metrics::phase(sgs_metrics::Phase::BuildProblem);
            SizingProblem::build_with_arrivals(
                self.circuit,
                self.lib,
                self.objective.clone(),
                self.delay_spec.clone(),
                self.input_arrivals.as_deref(),
            )
        };
        let run_attempt = |s_init: &[f64]| {
            let _sp = tracer.span("auglag");
            let _ph = sgs_metrics::phase(sgs_metrics::Phase::Auglag);
            let x0 = problem.initial_point(s_init);
            match self.poison_nan_after {
                Some(after) => auglag::solve_traced(
                    &PoisonNanAfter::new(&problem, after),
                    &x0,
                    &self.al_options,
                    tracer,
                ),
                None => auglag::solve_traced(&problem, &x0, &self.al_options, tracer),
            }
        };

        let mut result = run_attempt(&red.s);
        // A diverged solve hit non-finite values; retry from perturbed
        // warm starts before judging candidates (see module docs).
        let mut attempt = 0;
        while result.status == SolveStatus::Diverged && attempt < self.max_restarts {
            attempt += 1;
            sgs_metrics::incr(sgs_metrics::Counter::SizerRestarts);
            tracer.emit(|| TraceEvent::Restart {
                attempt,
                reason: format!(
                    "full-space solve diverged; perturbed restart {attempt}/{}",
                    self.max_restarts
                ),
            });
            result = run_attempt(&perturb(&red.s, attempt, self.lib.s_limit));
        }
        let s_full = problem.extract_s(&result.x);

        // The constraint system is triangular in S: re-propagating the
        // extracted speed factors through a clean SSTA gives an exactly
        // feasible point. Judge both candidates (full-space result and
        // reduced-space warm start) by their clean objective and delay-spec
        // violation, and keep the better feasible one — AL residuals on the
        // intermediate variables then never corrupt the reported sizing.
        let (full_cand, red_cand) = {
            let _sp = tracer.span("evaluate");
            let _ph = sgs_metrics::phase(sgs_metrics::Phase::Evaluate);
            (
                self.evaluate_guarded(&s_full),
                self.evaluate_guarded(&red.s),
            )
        };
        let spec_tol = self.spec_tolerance();
        let pick = match (full_cand.1 <= spec_tol, red_cand.1 <= spec_tol) {
            (true, true) => Some(full_cand.0 <= red_cand.0),
            (true, false) => Some(true),
            (false, true) => Some(false),
            (false, false) => None,
        };
        let Some(pick_full) = pick else {
            // Neither candidate meets the spec: greedy last resort.
            tracer.emit(|| TraceEvent::Restart {
                attempt: attempt + 1,
                reason: "no feasible candidate; greedy fallback".to_string(),
            });
            let fallback = {
                let _sp = tracer.span("greedy_fallback");
                let _ph = sgs_metrics::phase(sgs_metrics::Phase::GreedyFallback);
                sgs_metrics::incr(sgs_metrics::Counter::SizerGreedyFallbacks);
                self.greedy_fallback()
            };
            let Some((s, objective)) = fallback else {
                return Err(SizeError::SolverFailed {
                    status: result.status.as_str().to_string(),
                    c_norm: full_cand.1.min(red_cand.1),
                });
            };
            let report = {
                let _sp = tracer.span("report");
                let _ph = sgs_metrics::phase(sgs_metrics::Phase::Report);
                self.analyse(&s)
            };
            return Ok(SizingResult {
                area: s.iter().sum(),
                objective,
                s,
                delay: report.delay,
                outer_iterations: result.outer_iterations,
                inner_iterations: result.inner_iterations,
                // The greedy point is a plain speed-factor assignment; its
                // re-propagated formulation is exactly feasible.
                c_norm: 0.0,
                seconds: start.elapsed().as_secs_f64(),
                evals: result.evals,
                clark_var_clamps: self.emit_clamp_delta(&tracer, clamps_before),
            });
        };
        let s = if pick_full { s_full } else { red.s };
        let objective = if pick_full { full_cand.0 } else { red_cand.0 };

        let report = {
            let _sp = tracer.span("report");
            let _ph = sgs_metrics::phase(sgs_metrics::Phase::Report);
            self.analyse(&s)
        };
        Ok(SizingResult {
            area: s.iter().sum(),
            objective,
            s,
            delay: report.delay,
            outer_iterations: result.outer_iterations,
            inner_iterations: result.inner_iterations,
            c_norm: result.c_norm,
            seconds: start.elapsed().as_secs_f64(),
            evals: result.evals,
            clark_var_clamps: self.emit_clamp_delta(&tracer, clamps_before),
        })
    }

    /// Delta of the process-global Clark variance-clamp counter over this
    /// solve, emitted as the `clark_var_clamped` trace counter. The
    /// metrics-registry total is maintained at the clamp sites themselves
    /// (concurrent solves would otherwise double-count overlapping deltas).
    fn emit_clamp_delta(&self, tracer: &Tracer<'a>, before: u64) -> u64 {
        let delta = sgs_statmath::clark::var_clamp_count().saturating_sub(before);
        tracer.emit(|| TraceEvent::Counter {
            name: "clark_var_clamped",
            value: delta,
        });
        delta
    }

    fn tracer(&self) -> Tracer<'a> {
        match self.trace {
            Some(sink) => Tracer::new(sink),
            None => Tracer::none(),
        }
    }

    /// [`Sizer::evaluate`], but a candidate containing non-finite speed
    /// factors (a diverged solve's iterate) is scored infeasible outright
    /// instead of being pushed through SSTA, which requires finite moments.
    fn evaluate_guarded(&self, s: &[f64]) -> (f64, f64) {
        if s.iter().any(|v| !v.is_finite()) {
            return (f64::INFINITY, f64::INFINITY);
        }
        self.evaluate(s)
    }

    /// Last-resort fallback: greedy descent of the delay metric implied by
    /// the spec, accepted only if the result actually meets the spec.
    /// Returns the speed factors and clean-SSTA objective value.
    fn greedy_fallback(&self) -> Option<(Vec<f64>, f64)> {
        let metric = match &self.delay_spec {
            DelaySpec::None => self.objective.clone(),
            DelaySpec::MaxMean(_) | DelaySpec::ExactMean(_) => Objective::MeanDelay,
            DelaySpec::MaxMeanPlusKSigma { k, .. } | DelaySpec::PerOutput { k, .. } => {
                Objective::MeanPlusKSigma(*k)
            }
        };
        let g = greedy::greedy_size(self.circuit, self.lib, &metric, &GreedyOptions::default());
        let (obj, viol) = self.evaluate(&g.s);
        (viol <= self.spec_tolerance()).then_some((g.s, obj))
    }

    /// Clean SSTA at `s`, honouring configured input arrivals.
    fn analyse(&self, s: &[f64]) -> sgs_ssta::SstaReport {
        sgs_ssta::analysis::ssta_with_arrivals(
            self.circuit,
            self.lib,
            s,
            self.input_arrivals.as_deref(),
        )
    }

    /// Clean-SSTA objective value and delay-spec violation at `s`.
    fn evaluate(&self, s: &[f64]) -> (f64, f64) {
        let report = self.analyse(s);
        (
            objective_value(&self.objective, s, report.delay),
            spec_violation(
                &self.delay_spec,
                self.circuit,
                &report.arrivals,
                report.delay,
            ),
        )
    }

    /// Acceptable delay-spec violation, scaled to the deadline magnitude.
    fn spec_tolerance(&self) -> f64 {
        spec_tolerance(&self.delay_spec)
    }
}

/// Objective value at speed factors `s` with clean-SSTA delay `delay`.
/// Shared by [`Sizer`] and [`crate::resolve::Resolver`] so both drivers
/// score candidates by the exact same formula.
pub(crate) fn objective_value(objective: &Objective, s: &[f64], delay: Normal) -> f64 {
    let mu = delay.mean();
    let sigma = delay.sigma();
    match objective {
        Objective::Area => s.iter().sum(),
        Objective::WeightedArea(w) => s.iter().zip(w).map(|(a, b)| a * b).sum(),
        Objective::MeanDelay => mu,
        Objective::MeanPlusKSigma(k) => mu + k * sigma,
        Objective::Sigma => sigma,
        Objective::NegSigma => -sigma,
    }
}

/// Delay-spec violation given clean per-gate arrivals and circuit delay.
/// Generic over the arrival storage layout so both report vectors and the
/// incremental engine's structure-of-arrays state can be checked without
/// a conversion copy.
pub(crate) fn spec_violation<A: sgs_ssta::ArrivalRead + ?Sized>(
    spec: &DelaySpec,
    circuit: &Circuit,
    arrivals: &A,
    delay: Normal,
) -> f64 {
    let mu = delay.mean();
    let sigma = delay.sigma();
    match spec {
        DelaySpec::None => 0.0,
        DelaySpec::MaxMean(d) => (mu - d).max(0.0),
        DelaySpec::MaxMeanPlusKSigma { k, d } => (mu + k * sigma - d).max(0.0),
        DelaySpec::ExactMean(d) => (mu - d).abs(),
        DelaySpec::PerOutput { k, d } => circuit
            .outputs()
            .iter()
            .zip(d)
            .map(|(&o, &d_o)| {
                let a = arrivals.arrival(o.index());
                (a.mean() + k * a.sigma() - d_o).max(0.0)
            })
            .fold(0.0, f64::max),
    }
}

/// Acceptable delay-spec violation, scaled to the deadline magnitude.
pub(crate) fn spec_tolerance(spec: &DelaySpec) -> f64 {
    match spec {
        DelaySpec::None => f64::INFINITY,
        DelaySpec::MaxMean(d)
        | DelaySpec::MaxMeanPlusKSigma { d, .. }
        | DelaySpec::ExactMean(d) => 1e-3 * (1.0 + d.abs()),
        DelaySpec::PerOutput { d, .. } => {
            1e-3 * (1.0 + d.iter().fold(f64::INFINITY, |a, &b| a.min(b)).abs())
        }
    }
}

/// Deterministic multiplicative jitter for restart warm starts: attempt
/// `a` scales each factor by up to `±0.1 a` (splitmix64 stream keyed on
/// the attempt number), clamped to the sizing range. No RNG state is
/// carried between calls, so restarts are reproducible run to run.
fn perturb(s: &[f64], attempt: usize, s_limit: f64) -> Vec<f64> {
    let mut state = (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    let spread = 0.1 * attempt as f64;
    s.iter()
        .map(|&v| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
            (v * (1.0 + spread * (2.0 * u - 1.0))).clamp(1.0, s_limit)
        })
        .collect()
}

/// Fault-injection wrapper behind [`Sizer::poison_nan_after`]: delegates
/// everything to the real formulation, except the objective turns to `NaN`
/// from the `after`-th evaluation onward.
struct PoisonNanAfter<'p> {
    inner: &'p SizingProblem,
    after: usize,
    calls: Cell<usize>,
}

impl<'p> PoisonNanAfter<'p> {
    fn new(inner: &'p SizingProblem, after: usize) -> Self {
        PoisonNanAfter {
            inner,
            after,
            calls: Cell::new(0),
        }
    }
}

impl NlpProblem for PoisonNanAfter<'_> {
    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn bounds(&self) -> (&[f64], &[f64]) {
        self.inner.bounds()
    }
    fn objective(&self, x: &[f64]) -> f64 {
        let k = self.calls.get();
        self.calls.set(k + 1);
        if k >= self.after {
            return f64::NAN;
        }
        self.inner.objective(x)
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        self.inner.gradient(x, g)
    }
    fn constraints(&self, x: &[f64], c: &mut [f64]) {
        self.inner.constraints(x, c)
    }
    fn jacobian_structure(&self) -> Vec<(usize, usize)> {
        self.inner.jacobian_structure()
    }
    fn jacobian_values(&self, x: &[f64], vals: &mut [f64]) {
        self.inner.jacobian_values(x, vals)
    }
    fn hessian_structure(&self) -> Vec<(usize, usize)> {
        self.inner.hessian_structure()
    }
    fn hessian_values(&self, x: &[f64], sigma: f64, lambda: &[f64], vals: &mut [f64]) {
        self.inner.hessian_values(x, sigma, lambda, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::generate;
    use sgs_trace::MemorySink;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn min_mean_delay_tree() {
        let c = generate::tree7();
        let r = Sizer::new(&c, &lib()).solve().unwrap();
        let baseline_mu = sgs_ssta::ssta(&c, &lib(), &[1.0; 7]).delay.mean();
        assert!(
            r.delay.mean() < baseline_mu - 1.0,
            "{} vs {}",
            r.delay.mean(),
            baseline_mu
        );
        assert!(r.c_norm < 1e-5);
    }

    #[test]
    fn full_and_reduced_agree_on_min_delay() {
        let c = generate::tree7();
        let full = Sizer::new(&c, &lib()).solve().unwrap();
        let red = Sizer::new(&c, &lib())
            .solver(SolverChoice::ReducedSpace)
            .solve()
            .unwrap();
        assert!(
            (full.delay.mean() - red.delay.mean()).abs() < 0.02,
            "full {} vs reduced {}",
            full.delay.mean(),
            red.delay.mean()
        );
    }

    #[test]
    fn min_area_unconstrained_is_all_ones() {
        let c = generate::tree7();
        let r = Sizer::new(&c, &lib())
            .objective(Objective::Area)
            .solve()
            .unwrap();
        assert!((r.area - 7.0).abs() < 1e-4, "area {}", r.area);
    }

    #[test]
    fn area_with_mean_cap_meets_deadline() {
        let c = generate::tree7();
        let r = Sizer::new(&c, &lib())
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(6.5))
            .solve()
            .unwrap();
        assert!(r.delay.mean() <= 6.5 + 1e-3, "mu {}", r.delay.mean());
        assert!(r.area < 21.0);
    }

    #[test]
    fn sigma_objectives_bracket_area_objective() {
        // Paper Table 2: at a pinned mean, min-sigma and max-sigma bracket
        // the min-area solution's sigma.
        let c = generate::tree7();
        let d = 6.5;
        let area = Sizer::new(&c, &lib())
            .objective(Objective::Area)
            .delay_spec(DelaySpec::ExactMean(d))
            .solve()
            .unwrap();
        let min_sigma = Sizer::new(&c, &lib())
            .objective(Objective::Sigma)
            .delay_spec(DelaySpec::ExactMean(d))
            .solve()
            .unwrap();
        let max_sigma = Sizer::new(&c, &lib())
            .objective(Objective::NegSigma)
            .delay_spec(DelaySpec::ExactMean(d))
            .solve()
            .unwrap();
        for r in [&area, &min_sigma, &max_sigma] {
            assert!(
                (r.delay.mean() - d).abs() < 5e-3,
                "pin broken: {}",
                r.delay.mean()
            );
        }
        assert!(min_sigma.delay.sigma() <= area.delay.sigma() + 1e-3);
        assert!(max_sigma.delay.sigma() >= area.delay.sigma() - 1e-3);
        assert!(max_sigma.delay.sigma() > min_sigma.delay.sigma() + 1e-3);
    }

    #[test]
    fn k_sigma_objective_trades_mean_for_sigma() {
        let c = generate::tree7();
        let mu_only = Sizer::new(&c, &lib()).solve().unwrap();
        let robust = Sizer::new(&c, &lib())
            .objective(Objective::MeanPlusKSigma(3.0))
            .solve()
            .unwrap();
        // mu+3sigma optimum has the better mu+3sigma, mu-only has the
        // better mu.
        assert!(robust.mean_plus_k_sigma(3.0) <= mu_only.mean_plus_k_sigma(3.0) + 1e-4);
        assert!(mu_only.delay.mean() <= robust.delay.mean() + 1e-4);
    }

    #[test]
    fn poisoned_full_space_recovers_and_traces_restarts() {
        // Every full-space attempt is poisoned to NaN mid-solve; the run
        // must still return a feasible sizing (via restarts, the reduced
        // candidate or the greedy fallback) and leave evidence in the
        // trace rather than failing or silently returning garbage.
        let c = generate::tree7();
        let l = lib();
        let sink = MemorySink::new();
        let r = Sizer::new(&c, &l)
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(6.5))
            .poison_nan_after(3)
            .trace(&sink)
            .solve()
            .unwrap();
        assert!(r.delay.mean() <= 6.5 + 1e-3, "mu {}", r.delay.mean());
        assert!(r.s.iter().all(|v| v.is_finite() && *v >= 1.0));
        let diverged = sink.count(|e| matches!(e, TraceEvent::Diverged { .. }));
        let restarts = sink.count(|e| matches!(e, TraceEvent::Restart { .. }));
        assert!(diverged >= 1, "expected divergence evidence in the trace");
        assert!(
            restarts >= 2,
            "expected perturbed-restart records, got {restarts}"
        );
    }

    #[test]
    fn greedy_fallback_meets_deadline() {
        let c = generate::tree7();
        let l = lib();
        let sizer = Sizer::new(&c, &l)
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(6.5));
        let (s, obj) = sizer
            .greedy_fallback()
            .expect("greedy can meet 6.5 on tree7");
        let (obj2, viol) = sizer.evaluate(&s);
        assert_eq!(obj.to_bits(), obj2.to_bits());
        assert!(viol <= sizer.spec_tolerance(), "viol {viol}");
    }

    #[test]
    fn traced_solve_matches_untraced_bitwise() {
        let c = generate::tree7();
        let l = lib();
        let plain = Sizer::new(&c, &l)
            .delay_spec(DelaySpec::MaxMean(6.5))
            .objective(Objective::Area)
            .solve()
            .unwrap();
        let sink = MemorySink::new();
        let traced = Sizer::new(&c, &l)
            .delay_spec(DelaySpec::MaxMean(6.5))
            .objective(Objective::Area)
            .trace(&sink)
            .solve()
            .unwrap();
        assert_eq!(plain.s.len(), traced.s.len());
        for (a, b) in plain.s.iter().zip(&traced.s) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(plain.objective.to_bits(), traced.objective.to_bits());
        assert_eq!(plain.outer_iterations, traced.outer_iterations);
        // The trace itself carries the expected structure.
        assert!(sink.count(|e| matches!(e, TraceEvent::Outer(_))) >= 1);
        assert!(sink.span_seconds("auglag") > 0.0);
        assert!(sink.span_seconds("reduced_space") > 0.0);
    }

    #[test]
    fn perturb_is_deterministic_and_in_bounds() {
        let s = vec![1.0, 1.7, 2.9, 3.0];
        let a = perturb(&s, 1, 3.0);
        let b = perturb(&s, 1, 3.0);
        assert_eq!(a, b);
        assert_ne!(a, perturb(&s, 2, 3.0));
        for v in perturb(&s, 2, 3.0) {
            assert!((1.0..=3.0).contains(&v));
        }
    }
}
