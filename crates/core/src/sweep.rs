//! Scenario sweep engine: Pareto frontier tracing over warm re-solves.
//!
//! The paper reports one `(area, deadline)` point per benchmark; a
//! production flow wants the whole curve. [`SweepEngine`] drives a
//! [`Resolver`] session along a deadline grid — each step a warm
//! [`Resolver::resolve_spec`] re-solve of the *same* formulation with a
//! rewritten cap — and assembles the resulting area-vs-deadline
//! [`Frontier`]. Three sweep families share the machinery:
//!
//! * **Deadline frontiers** ([`SweepEngine::deadline_frontier`]): walk an
//!   auto-derived grid from the unsized baseline delay down to just above
//!   the minimum achievable delay, loose to tight so every step's warm
//!   start is the previous (looser) optimum, then adaptively bisect the
//!   largest relative area jumps so the knee of the curve gets extra
//!   resolution ([`SweepConfig::knee_rel`] / [`SweepConfig::refine_max`]).
//! * **Robustness sweeps** ([`SweepEngine::k_sweep`]): walk `k` in a
//!   `min mu + k sigma` objective via [`Resolver::resolve_objective_k`];
//!   the optimal value is provably non-decreasing in `k`.
//! * **Multi-corner frontiers** ([`SweepEngine::corner_frontier`]): run
//!   one independent session per [`Corner`] (a scaled copy of the library,
//!   [`corner_library`]) in parallel over a shared grid and merge them
//!   point-wise into a worst-corner frontier (feasible iff every corner is
//!   feasible; area = the maximum over corners).
//!
//! Every traced point carries provenance — warm/cold/cache, outer
//! iterations, eval counts, Clark clamp counts, wall-clock seconds — and
//! the whole walk is wrapped in the `sweep` / `sweep_point` metric phases
//! so `BENCH_sweep.json` can break the cost down per point.
//!
//! # Warm-vs-cold equivalence contract (two tiers)
//!
//! The test battery pins the sweep with a two-tier contract:
//!
//! 1. **Bitwise evaluation tier** ([`Frontier::verify_evaluation`]): the
//!    `(mu, sigma, area)` reported for a point are bit-identical to a
//!    from-scratch [`ssta`] + `sum(s)` evaluation at that point's sizes.
//!    This holds exactly — the resolver syncs its incremental engine to
//!    the accepted iterate, and the engine is pinned bit-identical to a
//!    fresh analysis.
//! 2. **Solver tier** (oracle tests): an independent *cold* solve at the
//!    same spec agrees on feasibility and lands on the same frontier
//!    within a small relative tolerance. Warm and cold trajectories are
//!    different iterates of the same NLP, so bit-equality is not expected
//!    at this tier — only agreement of the optimum they converge to.
//!
//! Exactly repeated deadlines are answered from the last traced point
//! without re-solving (a warm re-verify could still move the iterate by
//! an ulp; the cache makes no-op steps bit-identical *by construction*),
//! counted via the `sweep_cache_hits` metric.

use crate::resolve::Resolver;
use crate::sizer::{SizeError, SizingResult};
use crate::spec::{DelaySpec, Objective};
use crate::Sizer;
use rayon::prelude::*;
use sgs_netlist::{Circuit, GateKind, GateParams, Library};
use sgs_nlp::EvalCounts;
use sgs_ssta::ssta;
use std::time::Instant;

/// Knobs for [`SweepEngine`] grids and refinement.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Base grid size for auto-derived deadline grids (before the
    /// infeasible probe and any knee refinement). Minimum 2.
    pub points: usize,
    /// `k` of the `mu + k sigma` cap the frontier is swept over
    /// (`0` sweeps a plain mean-delay cap, [`DelaySpec::MaxMean`]).
    pub spec_k: f64,
    /// Relative headroom above the minimum achievable delay for the
    /// tightest grid point: the grid ends at `d_min * (1 + tight_rel)`.
    pub tight_rel: f64,
    /// Relative margin *below* the minimum achievable delay for the
    /// trailing infeasible probe point (`0` disables the probe).
    pub infeasible_margin: f64,
    /// Maximum number of extra points inserted by knee refinement
    /// (`0` disables refinement).
    pub refine_max: usize,
    /// Refinement trigger: bisect an adjacent feasible pair whose
    /// relative area jump exceeds this.
    pub knee_rel: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            points: 14,
            spec_k: 0.0,
            tight_rel: 2e-3,
            infeasible_margin: 0.05,
            refine_max: 4,
            knee_rel: 0.10,
        }
    }
}

/// One traced point of an area-vs-deadline [`Frontier`], with full solve
/// provenance.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// The deadline this point was solved at.
    pub deadline: f64,
    /// Whether the deadline was met (`false`: the solve was rejected and
    /// the value fields below are `NaN` / empty).
    pub feasible: bool,
    /// Whether this point was inserted by adaptive knee refinement
    /// rather than the base grid.
    pub refined: bool,
    /// Whether this point repeated the previous deadline exactly and was
    /// answered from the last traced point without re-solving.
    pub cache_hit: bool,
    /// Whether the re-solve accepted the carried warm start.
    pub warm_start_hit: bool,
    /// Accepted speed factors (empty when infeasible).
    pub s: Vec<f64>,
    /// Mean circuit delay at the accepted sizes.
    pub mu: f64,
    /// Delay standard deviation at the accepted sizes.
    pub sigma: f64,
    /// Total area `sum(s)` at the accepted sizes.
    pub area: f64,
    /// Objective value at the accepted sizes.
    pub objective: f64,
    /// Outer (augmented-Lagrangian) iterations of this point's solve.
    pub outer_iterations: usize,
    /// Inner (Newton-CG) iterations of this point's solve.
    pub inner_iterations: usize,
    /// Callback evaluation counts of this point's solve.
    pub evals: EvalCounts,
    /// Clark variance clamps hit during this point's solve.
    pub clark_var_clamps: u64,
    /// Wall-clock seconds spent tracing this point.
    pub seconds: f64,
}

impl FrontierPoint {
    fn infeasible(deadline: f64, refined: bool, seconds: f64) -> Self {
        FrontierPoint {
            deadline,
            feasible: false,
            refined,
            cache_hit: false,
            warm_start_hit: false,
            s: Vec::new(),
            mu: f64::NAN,
            sigma: f64::NAN,
            area: f64::NAN,
            objective: f64::NAN,
            outer_iterations: 0,
            inner_iterations: 0,
            evals: EvalCounts::default(),
            clark_var_clamps: 0,
            seconds,
        }
    }

    fn from_result(
        deadline: f64,
        result: &SizingResult,
        warm_start_hit: bool,
        refined: bool,
        seconds: f64,
    ) -> Self {
        FrontierPoint {
            deadline,
            feasible: true,
            refined,
            cache_hit: false,
            warm_start_hit,
            s: result.s.clone(),
            mu: result.delay.mean(),
            sigma: result.delay.sigma(),
            area: result.area,
            objective: result.objective,
            outer_iterations: result.outer_iterations,
            inner_iterations: result.inner_iterations,
            evals: result.evals,
            clark_var_clamps: result.clark_var_clamps,
            seconds,
        }
    }
}

/// An area-vs-deadline trade-off curve: traced points sorted ascending by
/// deadline (tightest first).
#[derive(Debug, Clone, Default)]
pub struct Frontier {
    /// The traced points, ascending by deadline.
    pub points: Vec<FrontierPoint>,
}

impl Frontier {
    /// Number of feasible points.
    pub fn feasible_count(&self) -> usize {
        self.points.iter().filter(|p| p.feasible).count()
    }

    /// Number of infeasible-to-feasible transitions along ascending
    /// deadlines. A well-formed frontier has exactly one when it contains
    /// both kinds of point, zero otherwise.
    pub fn transitions(&self) -> usize {
        self.points
            .windows(2)
            .filter(|w| !w[0].feasible && w[1].feasible)
            .count()
    }

    /// Fraction of warm-started points among the feasible points other
    /// than the sweep's cold anchor (the loosest feasible point — the
    /// first one solved in walk order). Cache-served repeats count as
    /// warm: they reuse the previous accepted solution outright.
    pub fn warm_interior_fraction(&self) -> f64 {
        let feasible: Vec<&FrontierPoint> = self.points.iter().filter(|p| p.feasible).collect();
        if feasible.len() <= 1 {
            return 1.0;
        }
        // Ascending order: the cold anchor is the last (loosest) point.
        let interior = &feasible[..feasible.len() - 1];
        let warm = interior
            .iter()
            .filter(|p| p.warm_start_hit || p.cache_hit)
            .count();
        warm as f64 / interior.len() as f64
    }

    /// Checks the two dominance invariants of a well-formed frontier:
    ///
    /// * infeasible points form a contiguous prefix (tightest deadlines),
    ///   so the infeasible-to-feasible transition happens at most once;
    /// * among feasible points, area is non-increasing as the deadline
    ///   relaxes, within relative tolerance `tol`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn check_dominance(&self, tol: f64) -> Result<(), String> {
        let mut seen_feasible = false;
        for (i, w) in self.points.windows(2).enumerate() {
            if w[1].deadline < w[0].deadline {
                return Err(format!(
                    "points out of order: deadline {} before {}",
                    w[0].deadline, w[1].deadline
                ));
            }
            seen_feasible |= w[0].feasible;
            if seen_feasible && !w[1].feasible {
                return Err(format!(
                    "infeasible point at deadline {} after a feasible one \
                     (index {})",
                    w[1].deadline,
                    i + 1
                ));
            }
            if w[0].feasible && w[1].feasible {
                let slack = tol * (1.0 + w[0].area.abs());
                if w[1].area > w[0].area + slack {
                    return Err(format!(
                        "area rises from {} (deadline {}) to {} (deadline \
                         {}): frontier not dominant",
                        w[0].area, w[0].deadline, w[1].area, w[1].deadline
                    ));
                }
            }
        }
        Ok(())
    }

    /// Bitwise evaluation tier of the warm-vs-cold contract: every
    /// feasible point's `(mu, sigma, area)` must be bit-identical to a
    /// from-scratch [`ssta`] + `sum(s)` evaluation at its sizes.
    ///
    /// # Errors
    ///
    /// A description of the first point whose reported values differ from
    /// the fresh evaluation by even one bit.
    pub fn verify_evaluation(&self, circuit: &Circuit, lib: &Library) -> Result<(), String> {
        for p in self.points.iter().filter(|p| p.feasible) {
            let fresh = ssta(circuit, lib, &p.s);
            let area: f64 = p.s.iter().sum();
            if fresh.delay.mean().to_bits() != p.mu.to_bits()
                || fresh.delay.sigma().to_bits() != p.sigma.to_bits()
                || area.to_bits() != p.area.to_bits()
            {
                return Err(format!(
                    "point at deadline {} is not bit-identical to a fresh \
                     evaluation: reported (mu {}, sigma {}, area {}), fresh \
                     (mu {}, sigma {}, area {})",
                    p.deadline,
                    p.mu,
                    p.sigma,
                    p.area,
                    fresh.delay.mean(),
                    fresh.delay.sigma(),
                    area
                ));
            }
        }
        Ok(())
    }
}

/// One traced point of a robustness ([`SweepEngine::k_sweep`]) curve.
#[derive(Debug, Clone)]
pub struct KPoint {
    /// The sigma multiplier this point was solved at.
    pub k: f64,
    /// Whether the re-solve accepted the carried warm start.
    pub warm_start_hit: bool,
    /// Whether this point repeated the previous `k` exactly and was
    /// answered from the last traced point without re-solving.
    pub cache_hit: bool,
    /// Accepted speed factors.
    pub s: Vec<f64>,
    /// Mean circuit delay at the accepted sizes.
    pub mu: f64,
    /// Delay standard deviation at the accepted sizes.
    pub sigma: f64,
    /// Total area `sum(s)` at the accepted sizes.
    pub area: f64,
    /// Objective value `mu + k sigma` at the accepted sizes.
    pub objective: f64,
    /// Outer iterations of this point's solve.
    pub outer_iterations: usize,
    /// Wall-clock seconds spent tracing this point.
    pub seconds: f64,
}

/// A named process/operating corner: per-corner scaling of every gate's
/// intrinsic delay and input capacitance.
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    /// Corner name (e.g. `"nominal"`, `"slow"`).
    pub name: String,
    /// Multiplier applied to every gate's `t_int`.
    pub t_int_scale: f64,
    /// Multiplier applied to every gate's `C_in`.
    pub c_in_scale: f64,
}

impl Corner {
    /// The identity corner (scales of 1).
    pub fn nominal() -> Self {
        Corner {
            name: "nominal".to_string(),
            t_int_scale: 1.0,
            c_in_scale: 1.0,
        }
    }

    /// A named corner with the given `t_int` / `C_in` multipliers.
    pub fn scaled(name: &str, t_int_scale: f64, c_in_scale: f64) -> Self {
        assert!(
            t_int_scale > 0.0 && c_in_scale > 0.0,
            "corner scales must be positive, got ({t_int_scale}, {c_in_scale})"
        );
        Corner {
            name: name.to_string(),
            t_int_scale,
            c_in_scale,
        }
    }
}

/// Builds the per-corner library: a copy of `lib` with every gate kind's
/// `t_int` and `C_in` multiplied by the corner's scales.
pub fn corner_library(lib: &Library, corner: &Corner) -> Library {
    let mut scaled = lib.clone();
    for &kind in GateKind::all() {
        let p = lib.params(kind);
        scaled = scaled.with_params(
            kind,
            GateParams {
                t_int: p.t_int * corner.t_int_scale,
                c_in: p.c_in * corner.c_in_scale,
            },
        );
    }
    scaled
}

/// One corner's independent session output inside a [`CornerFrontier`].
#[derive(Debug, Clone)]
pub struct CornerTrace {
    /// The corner this session ran under.
    pub corner: Corner,
    /// The frontier traced on this corner's scaled library.
    pub frontier: Frontier,
}

/// A multi-corner sweep: every per-corner frontier plus their point-wise
/// worst-corner merge.
#[derive(Debug, Clone)]
pub struct CornerFrontier {
    /// Per-corner traces, in caller order.
    pub corners: Vec<CornerTrace>,
    /// The worst-corner merge: a grid point is feasible iff **all**
    /// corners met it, and carries the maximum area over corners (the
    /// argmax corner's full solution).
    pub merged: Frontier,
}

/// Drives [`Resolver`] sessions along deadline grids, `k` grids and
/// library corners. See the [module docs](self) for the sweep families
/// and the warm-vs-cold contract.
pub struct SweepEngine<'a> {
    circuit: &'a Circuit,
    lib: &'a Library,
    objective: Objective,
    config: SweepConfig,
}

impl<'a> SweepEngine<'a> {
    /// A sweep engine minimising area under the default [`SweepConfig`].
    pub fn new(circuit: &'a Circuit, lib: &'a Library) -> Self {
        SweepEngine {
            circuit,
            lib,
            objective: Objective::Area,
            config: SweepConfig::default(),
        }
    }

    /// Sets the objective minimised at each frontier point. Dominance
    /// checks compare `area`, so area-like objectives keep the frontier
    /// monotone.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Replaces the grid/refinement knobs.
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    fn spec_for(&self, d: f64) -> DelaySpec {
        if self.config.spec_k == 0.0 {
            DelaySpec::MaxMean(d)
        } else {
            DelaySpec::MaxMeanPlusKSigma {
                d,
                k: self.config.spec_k,
            }
        }
    }

    /// The capped statistic (`mu + spec_k * sigma`) of a delay
    /// distribution, matching [`SweepEngine::spec_for`].
    fn capped_value(&self, delay: sgs_statmath::Normal) -> f64 {
        delay.mean() + self.config.spec_k * delay.sigma()
    }

    /// Derives the auto grid bounds on `lib`: the loosest deadline is the
    /// unsized (all-ones) circuit's capped delay, the tightest is the
    /// minimum achievable capped delay (an actual `min mu + k sigma`
    /// solve — all-max sizes are *not* the fastest sizing, upsizing loads
    /// the fan-in drivers) plus [`SweepConfig::tight_rel`] headroom.
    fn grid_bounds(&self, lib: &Library) -> Result<(f64, f64), SizeError> {
        let ones = vec![1.0; self.circuit.num_gates()];
        let loose = self.capped_value(ssta(self.circuit, lib, &ones).delay);
        let fastest = Sizer::new(self.circuit, lib)
            .objective(Objective::MeanPlusKSigma(self.config.spec_k))
            .solve()?;
        let tight = self.capped_value(fastest.delay) * (1.0 + self.config.tight_rel);
        Ok((tight, loose.max(tight)))
    }

    /// Builds the walk-order (descending, loose to tight) grid from
    /// bounds, with the trailing infeasible probe when configured.
    fn grid_from_bounds(&self, tight: f64, loose: f64) -> Vec<f64> {
        let n = self.config.points.max(2);
        let mut grid: Vec<f64> = (0..n)
            .map(|i| loose + (tight - loose) * i as f64 / (n - 1) as f64)
            .collect();
        if self.config.infeasible_margin > 0.0 {
            let d_min = tight / (1.0 + self.config.tight_rel);
            grid.push(d_min * (1.0 - self.config.infeasible_margin));
        }
        grid
    }

    /// The auto-derived deadline grid in walk order (descending, loose to
    /// tight, trailing infeasible probe last).
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] when the minimum-delay anchor solve
    /// fails.
    pub fn grid(&self) -> Result<Vec<f64>, SizeError> {
        let (tight, loose) = self.grid_bounds(self.lib)?;
        Ok(self.grid_from_bounds(tight, loose))
    }

    /// Traces the frontier over the auto-derived grid with knee
    /// refinement per the config.
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] when the anchor solves fail (grid
    /// derivation, or the loosest grid point itself). Infeasibility at
    /// tighter points is *not* an error — it becomes infeasible frontier
    /// points.
    pub fn deadline_frontier(&self) -> Result<Frontier, SizeError> {
        let grid = self.grid()?;
        self.trace(&grid)
    }

    /// Traces the frontier over caller-supplied deadlines (walked in the
    /// given order; warm starts chain best when walked loose to tight),
    /// then applies knee refinement per the config.
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] when the first (anchor) point fails.
    pub fn trace(&self, deadlines: &[f64]) -> Result<Frontier, SizeError> {
        self.walk(self.lib, deadlines, self.config.refine_max)
    }

    /// Sweeps `k` over a `min mu + k sigma` objective (unconstrained —
    /// the robustness trade-off itself is the curve) in caller order,
    /// warm via [`Resolver::resolve_objective_k`]. Exactly repeated `k`
    /// values are answered from the previous point.
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] when a solve diverges (there is no
    /// deadline to be infeasible against).
    pub fn k_sweep(&self, ks: &[f64]) -> Result<Vec<KPoint>, SizeError> {
        assert!(!ks.is_empty(), "k_sweep needs at least one k");
        let _sweep = sgs_metrics::phase(sgs_metrics::Phase::Sweep);
        let mut resolver = Sizer::new(self.circuit, self.lib)
            .objective(Objective::MeanPlusKSigma(ks[0]))
            .resolver();
        let mut points: Vec<KPoint> = Vec::with_capacity(ks.len());
        for (i, &k) in ks.iter().enumerate() {
            assert!(k.is_finite(), "k_sweep k must be finite, got {k}");
            if let Some(prev) = points.last() {
                if prev.k.to_bits() == k.to_bits() {
                    sgs_metrics::incr(sgs_metrics::Counter::SweepPoints);
                    sgs_metrics::incr(sgs_metrics::Counter::SweepCacheHits);
                    let mut p = prev.clone();
                    p.cache_hit = true;
                    p.outer_iterations = 0;
                    p.seconds = 0.0;
                    points.push(p);
                    continue;
                }
            }
            let _point = sgs_metrics::phase(sgs_metrics::Phase::SweepPoint);
            let _timer = sgs_metrics::time_hist(sgs_metrics::HistId::SweepPointSeconds);
            sgs_metrics::incr(sgs_metrics::Counter::SweepPoints);
            let start = Instant::now();
            let out = if i == 0 {
                resolver.solve()?
            } else {
                resolver.resolve_objective_k(k)?
            };
            if out.warm_start_hit {
                sgs_metrics::incr(sgs_metrics::Counter::SweepWarmHits);
            }
            points.push(KPoint {
                k,
                warm_start_hit: out.warm_start_hit,
                cache_hit: false,
                s: out.result.s.clone(),
                mu: out.result.delay.mean(),
                sigma: out.result.delay.sigma(),
                area: out.result.area,
                objective: out.result.objective,
                outer_iterations: out.result.outer_iterations,
                seconds: start.elapsed().as_secs_f64(),
            });
        }
        Ok(points)
    }

    /// Runs one independent session per corner **in parallel** over a
    /// shared grid (derived from the worst corner's bounds, so every
    /// corner sees the same deadlines — required for the point-wise
    /// merge; refinement is disabled for the same reason) and merges the
    /// per-corner frontiers into the worst-corner frontier.
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] when any corner's anchor solve fails.
    ///
    /// # Panics
    ///
    /// Panics when `corners` is empty.
    pub fn corner_frontier(&self, corners: &[Corner]) -> Result<CornerFrontier, SizeError> {
        assert!(
            !corners.is_empty(),
            "corner_frontier needs at least one corner"
        );
        let _sweep = sgs_metrics::phase(sgs_metrics::Phase::Sweep);
        // Scale the libraries and derive each corner's bounds in
        // parallel (each needs a min-delay anchor solve).
        type CornerPrep = Result<(Library, (f64, f64)), SizeError>;
        let prep: Vec<CornerPrep> = corners
            .par_iter()
            .map(|c| {
                let lib = corner_library(self.lib, c);
                let bounds = self.grid_bounds(&lib)?;
                Ok((lib, bounds))
            })
            .collect();
        let mut libs = Vec::with_capacity(corners.len());
        let mut tight = f64::NEG_INFINITY;
        let mut loose = f64::NEG_INFINITY;
        for r in prep {
            let (lib, (t, l)) = r?;
            tight = tight.max(t);
            loose = loose.max(l);
            libs.push(lib);
        }
        // A shared grid covering the worst corner; looser corners simply
        // get slack at the tight end (possibly infeasible prefix points).
        let grid = self.grid_from_bounds(tight, loose.max(tight));
        let traced: Vec<Result<Frontier, SizeError>> = libs
            .par_iter()
            .map(|lib| self.walk(lib, &grid, 0))
            .collect();
        let mut traces = Vec::with_capacity(corners.len());
        for (corner, t) in corners.iter().zip(traced) {
            traces.push(CornerTrace {
                corner: corner.clone(),
                frontier: t?,
            });
        }
        let merged = merge_worst_corner(&traces);
        Ok(CornerFrontier {
            corners: traces,
            merged,
        })
    }

    /// The shared walk: solve each deadline in order on one warm session,
    /// then bisect the largest relative area jumps up to `refine_max`
    /// extra points. Returns the points sorted ascending by deadline.
    fn walk(
        &self,
        lib: &Library,
        deadlines: &[f64],
        refine_max: usize,
    ) -> Result<Frontier, SizeError> {
        assert!(!deadlines.is_empty(), "sweep needs at least one deadline");
        for &d in deadlines {
            assert!(d.is_finite(), "sweep deadline must be finite, got {d}");
        }
        let _sweep = sgs_metrics::phase(sgs_metrics::Phase::Sweep);
        let mut resolver = Sizer::new(self.circuit, lib)
            .objective(self.objective.clone())
            .delay_spec(self.spec_for(deadlines[0]))
            .resolver();
        let mut points: Vec<FrontierPoint> = Vec::with_capacity(deadlines.len());
        for (i, &d) in deadlines.iter().enumerate() {
            if let Some(prev) = points.last() {
                if prev.deadline.to_bits() == d.to_bits() {
                    sgs_metrics::incr(sgs_metrics::Counter::SweepPoints);
                    sgs_metrics::incr(sgs_metrics::Counter::SweepCacheHits);
                    let mut p = prev.clone();
                    p.cache_hit = true;
                    p.outer_iterations = 0;
                    p.inner_iterations = 0;
                    p.evals = EvalCounts::default();
                    p.clark_var_clamps = 0;
                    p.seconds = 0.0;
                    points.push(p);
                    continue;
                }
            }
            let point = self.solve_point(&mut resolver, d, i == 0, false);
            if i == 0 && !point.feasible {
                // The anchor failing means there is nothing to warm-chain
                // from; surface the failure instead of an all-NaN curve.
                return Err(SizeError::SolverFailed {
                    status: "sweep anchor infeasible".to_string(),
                    c_norm: f64::NAN,
                });
            }
            points.push(point);
        }
        // Adaptive knee refinement: repeatedly bisect the adjacent
        // feasible pair with the largest relative area jump above the
        // trigger. The resolver stays warm from the last accepted point.
        let mut inserted = 0;
        while inserted < refine_max {
            points.sort_by(|a, b| a.deadline.total_cmp(&b.deadline));
            let Some((lo, hi)) = self.knee_pair(&points) else {
                break;
            };
            let mid = 0.5 * (lo + hi);
            let point = self.solve_point(&mut resolver, mid, false, true);
            points.push(point);
            inserted += 1;
        }
        points.sort_by(|a, b| a.deadline.total_cmp(&b.deadline));
        Ok(Frontier { points })
    }

    /// The adjacent feasible pair with the largest relative area jump
    /// above [`SweepConfig::knee_rel`], if any (`points` ascending).
    fn knee_pair(&self, points: &[FrontierPoint]) -> Option<(f64, f64)> {
        let mut best: Option<(f64, (f64, f64))> = None;
        for w in points.windows(2) {
            if !(w[0].feasible && w[1].feasible) {
                continue;
            }
            let gap = w[1].deadline - w[0].deadline;
            if gap <= 1e-6 * (1.0 + w[0].deadline.abs()) {
                continue; // already bisected down to numerical dust
            }
            let jump = (w[0].area - w[1].area) / (1.0 + w[1].area.abs());
            if jump > self.config.knee_rel && best.is_none_or(|(j, _)| jump > j) {
                best = Some((jump, (w[0].deadline, w[1].deadline)));
            }
        }
        best.map(|(_, pair)| pair)
    }

    /// Solves one point on the session, recording metrics and provenance.
    /// Infeasibility becomes an infeasible point, never an error: per the
    /// [`Resolver`] contract a rejected solve leaves the warm start (the
    /// last *accepted* solution) untouched, so the walk continues from
    /// the last good point.
    fn solve_point(
        &self,
        resolver: &mut Resolver<'_>,
        d: f64,
        first: bool,
        refined: bool,
    ) -> FrontierPoint {
        let _point = sgs_metrics::phase(sgs_metrics::Phase::SweepPoint);
        let _timer = sgs_metrics::time_hist(sgs_metrics::HistId::SweepPointSeconds);
        sgs_metrics::incr(sgs_metrics::Counter::SweepPoints);
        if refined {
            sgs_metrics::incr(sgs_metrics::Counter::SweepRefinements);
        }
        let start = Instant::now();
        let outcome = if first {
            resolver.solve()
        } else {
            resolver.resolve_spec(d)
        };
        match outcome {
            Ok(out) => {
                if out.warm_start_hit {
                    sgs_metrics::incr(sgs_metrics::Counter::SweepWarmHits);
                }
                FrontierPoint::from_result(
                    d,
                    &out.result,
                    out.warm_start_hit,
                    refined,
                    start.elapsed().as_secs_f64(),
                )
            }
            Err(_) => {
                sgs_metrics::incr(sgs_metrics::Counter::SweepInfeasible);
                FrontierPoint::infeasible(d, refined, start.elapsed().as_secs_f64())
            }
        }
    }
}

/// Point-wise worst-corner merge of per-corner frontiers traced over the
/// same grid: feasible iff all corners are feasible, carrying the
/// maximum-area corner's full solution (seconds summed across corners so
/// the merged provenance reflects total cost).
fn merge_worst_corner(traces: &[CornerTrace]) -> Frontier {
    let n = traces[0].frontier.points.len();
    debug_assert!(
        traces.iter().all(|t| t.frontier.points.len() == n),
        "corner frontiers must share the grid"
    );
    let mut merged = Vec::with_capacity(n);
    for i in 0..n {
        let at: Vec<&FrontierPoint> = traces.iter().map(|t| &t.frontier.points[i]).collect();
        let seconds: f64 = at.iter().map(|p| p.seconds).sum();
        let deadline = at[0].deadline;
        debug_assert!(
            at.iter()
                .all(|p| p.deadline.to_bits() == deadline.to_bits()),
            "corner frontiers must share deadlines point-wise"
        );
        if at.iter().all(|p| p.feasible) {
            let worst = at
                .iter()
                .max_by(|a, b| a.area.total_cmp(&b.area))
                .expect("at least one corner");
            let mut p = (*worst).clone();
            p.warm_start_hit = at.iter().all(|q| q.warm_start_hit || q.cache_hit);
            p.cache_hit = at.iter().all(|q| q.cache_hit);
            p.seconds = seconds;
            merged.push(p);
        } else {
            merged.push(FrontierPoint::infeasible(deadline, false, seconds));
        }
    }
    Frontier { points: merged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn deadline_frontier_is_dominant_with_one_transition() {
        let c = generate::tree7();
        let l = lib();
        let f = SweepEngine::new(&c, &l)
            .config(SweepConfig {
                points: 6,
                refine_max: 2,
                ..SweepConfig::default()
            })
            .deadline_frontier()
            .unwrap();
        assert!(f.points.len() >= 7, "6 grid points + infeasible probe");
        f.check_dominance(1e-6).unwrap();
        f.verify_evaluation(&c, &l).unwrap();
        assert_eq!(
            f.transitions(),
            1,
            "the probe below min delay must be the only infeasible prefix"
        );
        assert!(f.warm_interior_fraction() >= 0.75);
    }

    #[test]
    fn repeated_deadline_is_served_from_cache_bit_identically() {
        let c = generate::tree7();
        let l = lib();
        let engine = SweepEngine::new(&c, &l);
        let d = 6.8;
        let f = engine.trace(&[7.0, d, d, 6.5]).unwrap();
        // Walk order descends, ascending sort keeps the repeat adjacent.
        let repeats: Vec<&FrontierPoint> = f
            .points
            .iter()
            .filter(|p| p.deadline.to_bits() == d.to_bits())
            .collect();
        assert_eq!(repeats.len(), 2);
        assert_eq!(repeats.iter().filter(|p| p.cache_hit).count(), 1);
        let bits = |p: &FrontierPoint| p.s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(repeats[0]), bits(repeats[1]), "no-op step moved sizes");
        assert_eq!(repeats[0].area.to_bits(), repeats[1].area.to_bits());
    }

    #[test]
    fn k_sweep_value_is_non_decreasing_and_warm() {
        let c = generate::tree7();
        let l = lib();
        let points = SweepEngine::new(&c, &l)
            .k_sweep(&[0.0, 1.0, 1.0, 2.0, 3.0])
            .unwrap();
        assert_eq!(points.len(), 5);
        assert!(points[2].cache_hit, "repeated k must be cache-served");
        for w in points.windows(2) {
            assert!(
                w[1].objective >= w[0].objective - 1e-6 * (1.0 + w[0].objective.abs()),
                "V(k) dropped from {} (k {}) to {} (k {})",
                w[0].objective,
                w[0].k,
                w[1].objective,
                w[1].k
            );
        }
        assert!(points[1..].iter().all(|p| p.warm_start_hit || p.cache_hit));
    }

    #[test]
    fn corner_frontier_merges_to_the_worst_corner() {
        let c = generate::tree7();
        let l = lib();
        let corners = [
            Corner::nominal(),
            Corner::scaled("slow", 1.15, 1.10),
            Corner::scaled("fast", 0.90, 0.95),
        ];
        let cf = SweepEngine::new(&c, &l)
            .config(SweepConfig {
                points: 5,
                refine_max: 0,
                ..SweepConfig::default()
            })
            .corner_frontier(&corners)
            .unwrap();
        assert_eq!(cf.corners.len(), 3);
        let n = cf.merged.points.len();
        assert!(cf.corners.iter().all(|t| t.frontier.points.len() == n));
        cf.merged.check_dominance(1e-6).unwrap();
        for (i, p) in cf.merged.points.iter().enumerate() {
            let per: Vec<&FrontierPoint> =
                cf.corners.iter().map(|t| &t.frontier.points[i]).collect();
            assert_eq!(p.feasible, per.iter().all(|q| q.feasible));
            if p.feasible {
                let worst = per.iter().map(|q| q.area).fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(p.area.to_bits(), worst.to_bits());
            }
        }
        // The slow corner must bind somewhere on the feasible segment.
        let slow = &cf.corners[1].frontier;
        assert!(cf
            .merged
            .points
            .iter()
            .zip(&slow.points)
            .any(|(m, s)| m.feasible && m.area.to_bits() == s.area.to_bits()));
    }

    #[test]
    fn corner_library_scales_every_kind() {
        let l = lib();
        let corner = Corner::scaled("slow", 1.2, 1.1);
        let scaled = corner_library(&l, &corner);
        for &kind in GateKind::all() {
            let base = l.params(kind);
            let got = scaled.params(kind);
            assert!((got.t_int - base.t_int * 1.2).abs() < 1e-12);
            assert!((got.c_in - base.c_in * 1.1).abs() < 1e-12);
        }
        assert_eq!(scaled.s_limit, l.s_limit);
    }

    #[test]
    fn sweep_emits_point_and_warm_metrics() {
        sgs_metrics::reset();
        sgs_metrics::enable();
        let c = generate::tree7();
        let l = lib();
        let f = SweepEngine::new(&c, &l)
            .config(SweepConfig {
                points: 4,
                refine_max: 1,
                ..SweepConfig::default()
            })
            .deadline_frontier()
            .unwrap();
        let snap = sgs_metrics::snapshot(sgs_metrics::Metadata::default());
        sgs_metrics::reset();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        assert_eq!(counter("sweep_points"), f.points.len() as u64);
        assert!(counter("sweep_warm_hits") >= f.points.len() as u64 - 2);
        assert!(counter("sweep_infeasible_points") >= 1, "probe must count");
        let refined = f.points.iter().filter(|p| p.refined).count() as u64;
        assert_eq!(counter("sweep_refinements"), refined);
        assert!(
            snap.phases.contains_key("sweep") && snap.phases.contains_key("sweep_point"),
            "sweep phases missing from snapshot"
        );
    }
}
