//! Incremental re-solve driver: what-if queries and warm-started
//! re-optimisation after a spec or size perturbation.
//!
//! A [`Resolver`] is the stateful counterpart of the one-shot
//! [`crate::Sizer`]. It keeps three things alive across queries:
//!
//! * the built [`SizingProblem`] (rebuilt never — a deadline change only
//!   rewrites the cap constants via [`SizingProblem::set_deadline`]),
//! * an [`IncrementalSsta`] engine holding the last per-gate arrivals, so
//!   every constraint/violation evaluation after a perturbation touches
//!   only the dirty indices (the changed gates' cones) instead of the
//!   whole circuit, and
//! * the last solve's `(x, lambda, rho)` as a [`WarmStart`], so a
//!   re-solve verifies or repairs the previous optimum instead of
//!   starting cold.
//!
//! The split between [`Resolver::what_if`] (evaluate only — microseconds,
//! dirty cone only) and [`Resolver::resolve_spec`] /
//! [`Resolver::resolve_sizes`] (re-optimise warm) is the paper's intended
//! usage loop: sweep deadlines or probe single-gate changes cheaply, only
//! paying for an NLP solve when the answer matters.

use crate::problem::SizingProblem;
use crate::sizer::{self, SizeError, SizingResult};
use crate::spec::{DelaySpec, Objective};
use sgs_netlist::{Circuit, GateId, Library};
use sgs_nlp::auglag::{self, AugLagOptions, WarmStart};
use sgs_nlp::NlpProblem;
use sgs_ssta::{IncrementalSsta, UpdateStats};
use sgs_statmath::Normal;
use sgs_trace::{RequestContext, TraceEvent, TraceSink, Tracer};
use std::time::Instant;

/// Result of an evaluation-only what-if query ([`Resolver::what_if`]).
#[derive(Debug, Clone, Copy)]
pub struct WhatIfReport {
    /// Circuit delay distribution at the perturbed sizes.
    pub delay: Normal,
    /// Objective value at the perturbed sizes.
    pub objective: f64,
    /// Delay-spec violation at the perturbed sizes (`0` when met).
    pub spec_violation: f64,
    /// Dirty-cone work accounting for this query.
    pub stats: UpdateStats,
}

/// Result of a (re-)solve through the [`Resolver`].
#[derive(Debug, Clone)]
pub struct ResolveOutcome {
    /// The sizing result, fields exactly as [`crate::Sizer::solve`]
    /// reports them (delay/objective from the engine's clean arrivals).
    pub result: SizingResult,
    /// Whether a previous solution's `(x, lambda, rho)` was offered *and
    /// accepted* as the warm start for this solve.
    pub warm_start_hit: bool,
    /// Gates whose arrival the incremental engine recomputed during this
    /// call (perturbation + post-solve sync), also emitted as the
    /// `gates_recomputed` trace counter.
    pub gates_recomputed: usize,
}

/// How the previous solution seeds the next solve.
enum Seed {
    /// Carry `(x, lambda, rho)` verbatim (spec changes; plain re-solve).
    Carry,
    /// Keep `(lambda, rho)` but restart `x` from the exactly feasible
    /// point at the engine's current (perturbed) sizes.
    Reseed,
}

/// Stateful incremental re-solve driver. Construct via
/// [`crate::Sizer::resolver`] (carrying the sizer's configuration) or
/// [`Resolver::new`] (defaults), then alternate [`Resolver::what_if`]
/// probes with warm [`Resolver::resolve_spec`] /
/// [`Resolver::resolve_sizes`] re-optimisations.
///
/// ```
/// use sgs_core::{DelaySpec, Objective, Sizer};
/// use sgs_netlist::{generate, Library};
///
/// let circuit = generate::tree7();
/// let lib = Library::paper_default();
/// let mut resolver = Sizer::new(&circuit, &lib)
///     .objective(Objective::Area)
///     .delay_spec(DelaySpec::MaxMean(6.5))
///     .resolver();
/// let first = resolver.solve()?;
/// // Tighten the deadline and re-solve warm: same structure, new cap.
/// let tightened = resolver.resolve_spec(6.3)?;
/// assert!(tightened.warm_start_hit);
/// assert!(tightened.result.delay.mean() <= 6.3 + 1e-3);
/// assert!(tightened.result.area >= first.result.area - 1e-6);
/// # Ok::<(), sgs_core::SizeError>(())
/// ```
pub struct Resolver<'a> {
    circuit: &'a Circuit,
    lib: &'a Library,
    objective: Objective,
    delay_spec: DelaySpec,
    al_options: AugLagOptions,
    trace: Option<&'a dyn TraceSink>,
    problem: SizingProblem,
    inc: IncrementalSsta<'a>,
    warm: Option<WarmStart>,
}

impl<'a> Resolver<'a> {
    /// Builds a resolver with the [`crate::Sizer::new`] defaults
    /// (minimise mean delay, no delay constraint).
    pub fn new(circuit: &'a Circuit, lib: &'a Library) -> Self {
        crate::Sizer::new(circuit, lib).resolver()
    }

    pub(crate) fn from_parts(
        circuit: &'a Circuit,
        lib: &'a Library,
        objective: Objective,
        delay_spec: DelaySpec,
        al_options: AugLagOptions,
        input_arrivals: Option<Vec<Normal>>,
        trace: Option<&'a dyn TraceSink>,
    ) -> Self {
        let problem = SizingProblem::build_with_arrivals(
            circuit,
            lib,
            objective.clone(),
            delay_spec.clone(),
            input_arrivals.as_deref(),
        );
        let inc = IncrementalSsta::with_arrivals(
            circuit,
            lib,
            &vec![1.0; circuit.num_gates()],
            input_arrivals.as_deref(),
        );
        Resolver {
            circuit,
            lib,
            objective,
            delay_spec,
            al_options,
            trace,
            problem,
            inc,
            warm: None,
        }
    }

    /// Solves the current formulation. The first call is a cold solve;
    /// later calls re-verify warm from the previous solution.
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] when the solve produces a non-finite
    /// iterate or misses the delay spec.
    pub fn solve(&mut self) -> Result<ResolveOutcome, SizeError> {
        self.solve_traced(None)
    }

    /// [`Resolver::solve`], additionally attributing solver phases and
    /// counters to a request context (the daemon's request-scoped
    /// tracing path; `None` behaves exactly like [`Resolver::solve`]).
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] as for [`Resolver::solve`].
    pub fn solve_traced(
        &mut self,
        req: Option<&RequestContext>,
    ) -> Result<ResolveOutcome, SizeError> {
        self.run(Seed::Carry, 0, req)
    }

    /// Moves the deadline of the current single-deadline spec to `d` and
    /// re-solves warm from the previous solution. Only the cap constants
    /// inside the existing formulation change
    /// ([`SizingProblem::set_deadline`]), so the previous `(x, lambda,
    /// rho)` stays dimension-compatible and is carried verbatim.
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] as for [`Resolver::solve`] — e.g. when
    /// `d` is tighter than the circuit can meet.
    ///
    /// # Panics
    ///
    /// Panics if the configured spec is not one of [`DelaySpec::MaxMean`],
    /// [`DelaySpec::MaxMeanPlusKSigma`] or [`DelaySpec::ExactMean`] (the
    /// single-deadline forms), or if `d` is not finite.
    pub fn resolve_spec(&mut self, d: f64) -> Result<ResolveOutcome, SizeError> {
        self.resolve_spec_traced(d, None)
    }

    /// [`Resolver::resolve_spec`] with request-scoped tracing attached.
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] as for [`Resolver::resolve_spec`].
    ///
    /// # Panics
    ///
    /// As for [`Resolver::resolve_spec`].
    pub fn resolve_spec_traced(
        &mut self,
        d: f64,
        req: Option<&RequestContext>,
    ) -> Result<ResolveOutcome, SizeError> {
        match &mut self.delay_spec {
            DelaySpec::MaxMean(cap)
            | DelaySpec::ExactMean(cap)
            | DelaySpec::MaxMeanPlusKSigma { d: cap, .. } => *cap = d,
            other => panic!("resolve_spec needs a single-deadline spec, got {other:?}"),
        }
        let updated = self.problem.set_deadline(d);
        debug_assert!(updated > 0, "single-deadline spec must have a cap");
        self.run(Seed::Carry, 0, req)
    }

    /// Moves the sigma multiplier of a [`Objective::MeanPlusKSigma`]
    /// objective to `k` and re-solves warm from the previous solution.
    /// Only the scalar inside the existing formulation changes
    /// ([`SizingProblem::set_objective_k`] — the objective's Hessian slot
    /// is keyed on the variant, not the value, so the sparsity pattern is
    /// identical for every `k`), and the previous `(x, lambda, rho)` is
    /// carried verbatim. This is the robustness-sweep twin of
    /// [`Resolver::resolve_spec`].
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] as for [`Resolver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if the configured objective is not
    /// [`Objective::MeanPlusKSigma`], or if `k` is not finite.
    pub fn resolve_objective_k(&mut self, k: f64) -> Result<ResolveOutcome, SizeError> {
        match &mut self.objective {
            Objective::MeanPlusKSigma(cur) => *cur = k,
            other => panic!("resolve_objective_k needs a mu + k sigma objective, got {other}"),
        }
        self.problem.set_objective_k(k);
        self.run(Seed::Carry, 0, None)
    }

    /// Applies size changes through the incremental engine (dirty cone
    /// only), then re-solves warm: the previous multipliers and penalty
    /// are kept while the iterate restarts from the exactly feasible
    /// point at the perturbed sizes. Useful after externally pinning or
    /// snapping gates (e.g. discretisation) to let the optimiser repair
    /// the rest.
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] as for [`Resolver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if a gate id is out of range.
    pub fn resolve_sizes(
        &mut self,
        changes: &[(GateId, f64)],
    ) -> Result<ResolveOutcome, SizeError> {
        self.resolve_sizes_traced(changes, None)
    }

    /// [`Resolver::resolve_sizes`] with request-scoped tracing attached.
    ///
    /// # Errors
    ///
    /// [`SizeError::SolverFailed`] as for [`Resolver::resolve_sizes`].
    ///
    /// # Panics
    ///
    /// Panics if a gate id is out of range.
    pub fn resolve_sizes_traced(
        &mut self,
        changes: &[(GateId, f64)],
        req: Option<&RequestContext>,
    ) -> Result<ResolveOutcome, SizeError> {
        let stats = self.inc.apply(changes);
        self.run(Seed::Reseed, stats.gates_recomputed, req)
    }

    /// Evaluation-only what-if: applies the size changes to the
    /// incremental engine and reports delay, objective and spec violation
    /// at the perturbed point **without** re-optimising. Only the dirty
    /// cone is recomputed; a no-op perturbation recomputes nothing.
    ///
    /// # Panics
    ///
    /// Panics if a gate id is out of range.
    pub fn what_if(&mut self, changes: &[(GateId, f64)]) -> WhatIfReport {
        self.what_if_traced(changes, None)
    }

    /// [`Resolver::what_if`] with request-scoped tracing attached.
    ///
    /// # Panics
    ///
    /// Panics if a gate id is out of range.
    pub fn what_if_traced(
        &mut self,
        changes: &[(GateId, f64)],
        req: Option<&RequestContext>,
    ) -> WhatIfReport {
        sgs_metrics::incr(sgs_metrics::Counter::ResolveWhatIfQueries);
        let _timer = sgs_metrics::time_hist(sgs_metrics::HistId::WhatIfSeconds);
        let stats = self.inc.apply(changes);
        let delay = self.inc.delay();
        let report = WhatIfReport {
            delay,
            objective: sizer::objective_value(&self.objective, self.inc.sizes(), delay),
            spec_violation: sizer::spec_violation(
                &self.delay_spec,
                self.circuit,
                self.inc.arrivals(),
                delay,
            ),
            stats,
        };
        self.tracer().attach(req).emit(|| TraceEvent::Counter {
            name: "gates_recomputed",
            value: stats.gates_recomputed as u64,
        });
        report
    }

    /// The warm-started solve shared by [`Resolver::solve`],
    /// [`Resolver::resolve_spec`] and [`Resolver::resolve_sizes`].
    fn run(
        &mut self,
        seed: Seed,
        pre_recomputed: usize,
        req: Option<&RequestContext>,
    ) -> Result<ResolveOutcome, SizeError> {
        let start = Instant::now();
        let _solve_phase = sgs_metrics::phase(sgs_metrics::Phase::Solve);
        sgs_metrics::incr(sgs_metrics::Counter::ResolveSolves);
        let tracer = self.tracer().attach(req);
        let clamps_before = sgs_statmath::clark::var_clamp_count();
        let x0 = self.problem.initial_point(self.inc.sizes());
        let warm = match seed {
            Seed::Carry => self.warm.clone(),
            Seed::Reseed => self.warm.clone().map(|w| WarmStart { x: x0.clone(), ..w }),
        };
        let hit = warm
            .as_ref()
            .is_some_and(|w| w.is_usable(self.problem.num_vars(), self.problem.num_constraints()));
        let result = {
            let _sp = tracer.span("auglag");
            let _ph = sgs_metrics::phase(sgs_metrics::Phase::Auglag);
            auglag::solve_warm_traced(&self.problem, &x0, warm.as_ref(), &self.al_options, tracer)
        };
        let s = self.problem.extract_s(&result.x);
        if s.iter().any(|v| !v.is_finite()) {
            return Err(SizeError::SolverFailed {
                status: result.status.as_str().to_string(),
                c_norm: result.c_norm,
            });
        }
        // Sync the engine to the solver's point — again dirty-cone only;
        // near-converged warm re-solves move few gates.
        let gates_recomputed = pre_recomputed + self.inc.set_sizes(&s).gates_recomputed;
        tracer.emit(|| TraceEvent::Counter {
            name: "gates_recomputed",
            value: gates_recomputed as u64,
        });
        let delay = self.inc.delay();
        let objective = sizer::objective_value(&self.objective, &s, delay);
        let viol =
            sizer::spec_violation(&self.delay_spec, self.circuit, self.inc.arrivals(), delay);
        if viol > sizer::spec_tolerance(&self.delay_spec) {
            // The engine now reflects the rejected iterate; the warm start
            // (last *accepted* solution) is deliberately left untouched.
            return Err(SizeError::SolverFailed {
                status: result.status.as_str().to_string(),
                c_norm: viol,
            });
        }
        self.warm = Some(WarmStart::from_result(&result));
        // Trace-only delta: the metrics-registry total is maintained at the
        // clamp sites themselves (see `sgs_statmath::clark::var_clamp_count`),
        // so concurrent solves cannot double-count each other's clamps.
        let clark_var_clamps = sgs_statmath::clark::var_clamp_count().saturating_sub(clamps_before);
        tracer.emit(|| TraceEvent::Counter {
            name: "clark_var_clamped",
            value: clark_var_clamps,
        });
        Ok(ResolveOutcome {
            warm_start_hit: hit,
            gates_recomputed,
            result: SizingResult {
                area: s.iter().sum(),
                objective,
                s,
                delay,
                outer_iterations: result.outer_iterations,
                inner_iterations: result.inner_iterations,
                c_norm: result.c_norm,
                seconds: start.elapsed().as_secs_f64(),
                evals: result.evals,
                clark_var_clamps,
            },
        })
    }

    /// The library the formulation was built against.
    pub fn library(&self) -> &'a Library {
        self.lib
    }

    /// Current speed factors held by the incremental engine (the last
    /// accepted solution, or the last perturbation applied on top of it).
    pub fn sizes(&self) -> &[f64] {
        self.inc.sizes()
    }

    /// Current circuit delay distribution at [`Resolver::sizes`].
    pub fn delay(&self) -> Normal {
        self.inc.delay()
    }

    /// The underlying incremental engine (arrivals, work counters).
    pub fn engine(&self) -> &IncrementalSsta<'a> {
        &self.inc
    }

    /// The currently configured delay spec (deadline moves with
    /// [`Resolver::resolve_spec`]).
    pub fn delay_spec(&self) -> &DelaySpec {
        &self.delay_spec
    }

    fn tracer(&self) -> Tracer<'a> {
        match self.trace {
            Some(sink) => Tracer::new(sink),
            None => Tracer::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sizer;
    use sgs_netlist::generate;
    use sgs_ssta::ssta;
    use sgs_trace::MemorySink;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn cold_solve_matches_sizer_candidate_quality() {
        let c = generate::tree7();
        let l = lib();
        let mut r = Sizer::new(&c, &l)
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(6.5))
            .resolver();
        let out = r.solve().unwrap();
        assert!(!out.warm_start_hit, "first solve has no warm start");
        assert!(out.result.delay.mean() <= 6.5 + 1e-3);
        // The engine's state is bit-identical to a fresh SSTA at the
        // reported sizes.
        let fresh = ssta(&c, &l, &out.result.s);
        assert_eq!(r.delay().mean().to_bits(), fresh.delay.mean().to_bits());
        assert_eq!(r.delay().var().to_bits(), fresh.delay.var().to_bits());
    }

    #[test]
    fn warm_resolve_spec_sweeps_deadlines() {
        let c = generate::tree7();
        let l = lib();
        let mut r = Sizer::new(&c, &l)
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(7.0))
            .resolver();
        let cold = r.solve().unwrap();
        let mut last_area = cold.result.area;
        for d in [6.8, 6.5, 6.3] {
            let out = r.resolve_spec(d).unwrap();
            assert!(out.warm_start_hit, "deadline {d} should re-solve warm");
            assert!(out.result.delay.mean() <= d + 1e-3, "deadline {d} missed");
            // Tighter deadline costs area (monotone trade-off).
            assert!(out.result.area >= last_area - 1e-6);
            last_area = out.result.area;
        }
    }

    #[test]
    fn warm_resolve_same_spec_verifies_in_one_outer_iteration() {
        let c = generate::tree7();
        let l = lib();
        let mut r = Sizer::new(&c, &l)
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(6.5))
            .resolver();
        let cold = r.solve().unwrap();
        let rerun = r.solve().unwrap();
        assert!(rerun.warm_start_hit);
        assert!(
            rerun.result.outer_iterations <= 1,
            "warm rerun took {} outer iterations",
            rerun.result.outer_iterations
        );
        assert!((rerun.result.objective - cold.result.objective).abs() <= 1e-6);
        assert!(rerun.result.inner_iterations <= cold.result.inner_iterations);
    }

    #[test]
    fn what_if_is_evaluation_only_and_bit_identical() {
        let c = generate::ripple_carry_adder(8);
        let l = lib();
        let n = c.num_gates();
        let mut r = Sizer::new(&c, &l).objective(Objective::Area).resolver();
        let probe = r.what_if(&[(GateId(1), 2.0)]);
        assert!(probe.stats.gates_recomputed < n, "whole circuit recomputed");
        let mut s = vec![1.0; n];
        s[1] = 2.0;
        let fresh = ssta(&c, &l, &s);
        assert_eq!(probe.delay.mean().to_bits(), fresh.delay.mean().to_bits());
        assert_eq!(probe.delay.var().to_bits(), fresh.delay.var().to_bits());
        // No-op probe touches nothing.
        let noop = r.what_if(&[(GateId(1), 2.0)]);
        assert_eq!(noop.stats.gates_recomputed, 0);
    }

    #[test]
    fn resolve_sizes_repairs_a_pinned_gate() {
        let c = generate::tree7();
        let l = lib();
        let mut r = Sizer::new(&c, &l)
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(6.5))
            .resolver();
        let first = r.solve().unwrap();
        // Pin gate 0 off its optimum and let the warm re-solve repair the
        // rest of the circuit around it.
        let pinned = (first.result.s[0] * 1.3).min(r.library().s_limit);
        let out = r.resolve_sizes(&[(GateId(0), pinned)]).unwrap();
        assert!(out.warm_start_hit);
        assert!(out.gates_recomputed >= 1);
        assert!(out.result.delay.mean() <= 6.5 + 1e-3);
    }

    #[test]
    fn counters_reach_the_trace_sink() {
        let c = generate::tree7();
        let l = lib();
        let sink = MemorySink::new();
        let mut r = Sizer::new(&c, &l)
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(6.5))
            .trace(&sink)
            .resolver();
        r.solve().unwrap();
        r.what_if(&[(GateId(2), 1.4)]);
        let recomputed: Vec<u64> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Counter {
                    name: "gates_recomputed",
                    value,
                } => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(recomputed.len(), 2, "one per solve, one per what-if");
        assert!(recomputed[1] > 0 && recomputed[1] < c.num_gates() as u64);
        assert_eq!(
            sink.events()
                .iter()
                .filter(|e| matches!(
                    e,
                    TraceEvent::Counter {
                        name: "warm_start_hit",
                        ..
                    }
                ))
                .count(),
            0,
            "cold solve must not emit a warm_start_hit counter"
        );
    }

    #[test]
    fn warm_resolve_objective_k_sweeps_robustness() {
        let c = generate::tree7();
        let l = lib();
        let mut r = Sizer::new(&c, &l)
            .objective(Objective::MeanPlusKSigma(0.0))
            .resolver();
        let cold = r.solve().unwrap();
        // V(k) = min mu + k sigma is non-decreasing in k: the optimum at
        // a larger k upper-bounds the smaller-k objective at its point.
        let mut last = cold.result.objective;
        for k in [0.5, 1.0, 2.0, 3.0] {
            let out = r.resolve_objective_k(k).unwrap();
            assert!(out.warm_start_hit, "k {k} should re-solve warm");
            assert!(
                out.result.objective >= last - 1e-6 * (1.0 + last.abs()),
                "V({k}) = {} dropped below {last}",
                out.result.objective
            );
            last = out.result.objective;
        }
    }

    #[test]
    #[should_panic(expected = "mu + k sigma objective")]
    fn resolve_objective_k_rejects_other_objectives() {
        let c = generate::tree7();
        let l = lib();
        let mut r = Sizer::new(&c, &l).objective(Objective::Area).resolver();
        let _ = r.resolve_objective_k(1.0);
    }

    #[test]
    #[should_panic(expected = "single-deadline spec")]
    fn resolve_spec_rejects_unconstrained_formulations() {
        let c = generate::tree7();
        let l = lib();
        let mut r = Resolver::new(&c, &l);
        let _ = r.resolve_spec(6.5);
    }
}
