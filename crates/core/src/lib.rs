//! Gate sizing under a statistical delay model — the primary contribution
//! of *"Gate Sizing Using a Statistical Delay Model"* (Jacobs & Berkelaar,
//! DATE 2000), reimplemented in full.
//!
//! Given a combinational circuit, a sizable-gate library and an objective,
//! the crate assembles the paper's nonlinear program (Eq. 17/18):
//!
//! * one speed factor `S`, gate-delay moments `(mu_t, var_t)` and arrival
//!   moments `(mu_T, var_T)` per gate, plus one `(mu_U, var_U)` pair per
//!   internal node of each fan-in max tree,
//! * the multiplied-through delay equation `mu_t S = t_int S + c (C_load +
//!   sum C_in,j S_j)` (Eq. 15, kept this way to maximise linearity),
//! * the sigma model `var_t = (0.25 mu_t)^2` (Eq. 18e),
//! * stochastic-max equality constraints built on the analytical Clark
//!   moments with **exact first and second derivatives** (Eq. 18a/b),
//! * linear arrival-time additions (Eq. 18c),
//! * optional delay bounds or pins on `mu_Tmax` or `mu_Tmax + k
//!   sigma_Tmax` (slack variables turn inequalities into the
//!   bound-constrained equality form LANCELOT expects),
//!
//! and solves it with the augmented-Lagrangian / trust-region Newton-CG
//! solver of [`sgs_nlp`] — the same algorithm family as LANCELOT, which the
//! paper used. A reduced-space adjoint evaluator ([`reduced`]) provides
//! warm starts and an independent baseline, and a TILOS-style greedy
//! sensitivity sizer ([`greedy`]) supplies the classic pre-NLP comparison
//! point.
//!
//! # Quickstart
//!
//! ```
//! use sgs_core::{Objective, Sizer};
//! use sgs_netlist::{generate, Library};
//!
//! let circuit = generate::tree7();
//! let lib = Library::paper_default();
//! let result = Sizer::new(&circuit, &lib)
//!     .objective(Objective::MeanPlusKSigma(3.0))
//!     .solve()
//!     .expect("tree circuit sizing converges");
//! // Sizing for minimum mu + 3 sigma speeds the circuit up well below its
//! // unsized delay.
//! assert!(result.delay.mean() < 7.0);
//! ```

pub mod discrete;
pub mod greedy;
pub mod plan;
pub mod problem;
pub mod reduced;
pub mod resolve;
pub mod sizer;
pub mod spec;
pub mod sweep;

pub use plan::{
    merge_whitelisted, ArrayPlan, KernelPlan, MergeKind, ReductionDecl, WritePlan, WriteUnit,
};
pub use problem::SizingProblem;
pub use resolve::{ResolveOutcome, Resolver, WhatIfReport};
pub use sizer::{Preflight, SizeError, Sizer, SizingResult, SolverChoice};
pub use spec::{DelaySpec, Objective};
pub use sweep::{
    corner_library, Corner, CornerFrontier, CornerTrace, Frontier, FrontierPoint, KPoint,
    SweepConfig, SweepEngine,
};
