//! Discrete sizing: snapping the continuous NLP solution to a cell grid.
//!
//! The paper (like its LP predecessor) solves a *continuous* sizing
//! problem; real libraries offer discrete drive strengths (X1, X1.4, X2,
//! X2.8, ...). This module post-processes a continuous solution:
//!
//! 1. snap every speed factor to the nearest grid point,
//! 2. **repair**: while the delay spec is violated, upsize the gate with
//!    the best violation reduction per area increment,
//! 3. **recover**: try downsizing gates one grid step wherever the spec
//!    stays satisfied, largest area saving first.
//!
//! The result is guaranteed feasible when repair succeeds, and the tests
//! bound its area against the continuous optimum (the usual measure of
//! discretisation loss).

use crate::spec::DelaySpec;
use sgs_netlist::{Circuit, Library};
use sgs_ssta::{ssta_with_model, DelayModel};

/// A discrete size grid (sorted ascending, within `[1, s_limit]`).
#[derive(Debug, Clone, PartialEq)]
pub struct SizeGrid {
    points: Vec<f64>,
}

impl SizeGrid {
    /// Builds a grid from explicit points.
    ///
    /// # Panics
    ///
    /// Panics if the points are empty, unsorted, or below 1.
    pub fn new(points: Vec<f64>) -> Self {
        assert!(!points.is_empty(), "grid needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0] < w[1]),
            "grid must be sorted"
        );
        assert!(points[0] >= 1.0, "grid points must be >= 1");
        SizeGrid { points }
    }

    /// The classic geometric drive-strength ladder `1, r, r^2, ...` capped
    /// at `limit` (e.g. `r = sqrt 2` gives X1/X1.4/X2/X2.8).
    ///
    /// # Panics
    ///
    /// Panics if `ratio <= 1` or `limit < 1`.
    pub fn geometric(ratio: f64, limit: f64) -> Self {
        assert!(ratio > 1.0, "ratio must exceed 1");
        assert!(limit >= 1.0, "limit must be >= 1");
        let mut points = vec![1.0];
        loop {
            let next = points.last().expect("nonempty") * ratio;
            if next > limit * (1.0 + 1e-12) {
                break;
            }
            points.push(next.min(limit));
        }
        if *points.last().expect("nonempty") < limit - 1e-12 {
            points.push(limit);
        }
        SizeGrid { points }
    }

    /// The grid points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Nearest grid point to `s`.
    pub fn snap(&self, s: f64) -> f64 {
        *self
            .points
            .iter()
            .min_by(|a, b| (*a - s).abs().total_cmp(&(*b - s).abs()))
            .expect("nonempty grid")
    }

    fn index_of(&self, s: f64) -> usize {
        self.points
            .iter()
            .position(|&p| (p - s).abs() < 1e-12)
            .expect("value is a grid point")
    }

    fn up(&self, s: f64) -> Option<f64> {
        let i = self.index_of(s);
        self.points.get(i + 1).copied()
    }

    fn down(&self, s: f64) -> Option<f64> {
        let i = self.index_of(s);
        i.checked_sub(1).map(|j| self.points[j])
    }
}

/// Result of [`discretize`].
#[derive(Debug, Clone)]
pub struct DiscreteResult {
    /// Snapped (and repaired) speed factors; every entry is a grid point.
    pub s: Vec<f64>,
    /// Whether the delay spec holds at the result.
    pub feasible: bool,
    /// Area at the result.
    pub area: f64,
    /// Upsizing moves spent in repair.
    pub repair_moves: usize,
    /// Downsizing moves recovered.
    pub recovered_moves: usize,
}

fn violation(circuit: &Circuit, model: &DelayModel, s: &[f64], spec: &DelaySpec) -> f64 {
    let report = ssta_with_model(circuit, model, s);
    let mu = report.delay.mean();
    let sigma = report.delay.sigma();
    match spec {
        DelaySpec::None => 0.0,
        DelaySpec::MaxMean(d) => (mu - d).max(0.0),
        DelaySpec::MaxMeanPlusKSigma { k, d } => (mu + k * sigma - d).max(0.0),
        // An exact pin cannot be held on a grid; treat it as an upper
        // bound for discretisation purposes.
        DelaySpec::ExactMean(d) => (mu - d).max(0.0),
        DelaySpec::PerOutput { k, d } => circuit
            .outputs()
            .iter()
            .zip(d)
            .map(|(&o, &d_o)| {
                let a = report.arrivals[o.index()];
                (a.mean() + k * a.sigma() - d_o).max(0.0)
            })
            .fold(0.0, f64::max),
    }
}

/// Discretises a continuous sizing onto `grid`, repairing and recovering
/// against `spec`.
///
/// # Panics
///
/// Panics if `s_cont.len() != circuit.num_gates()`.
pub fn discretize(
    circuit: &Circuit,
    lib: &Library,
    spec: &DelaySpec,
    s_cont: &[f64],
    grid: &SizeGrid,
) -> DiscreteResult {
    let n = circuit.num_gates();
    assert_eq!(s_cont.len(), n, "one speed factor per gate");
    // One model build serves every repair/recover evaluation below.
    let model = DelayModel::new(circuit, lib);
    let mut s: Vec<f64> = s_cont.iter().map(|&v| grid.snap(v)).collect();

    // Without a delay spec there is nothing to repair against and the
    // recovery pass would simply drain every gate to minimum size (losing
    // whatever objective produced `s_cont`): plain snapping is the right
    // semantics.
    if matches!(spec, DelaySpec::None) {
        return DiscreteResult {
            feasible: true,
            area: s.iter().sum(),
            s,
            repair_moves: 0,
            recovered_moves: 0,
        };
    }

    // Repair: greedy upsizing until feasible.
    let mut repair_moves = 0usize;
    let mut viol = violation(circuit, &model, &s, spec);
    while viol > 1e-9 && repair_moves < 20 * n {
        let mut best: Option<(usize, f64, f64)> = None; // (gate, new_s, score)
        for g in 0..n {
            let Some(up) = grid.up(s[g]) else { continue };
            let old = s[g];
            s[g] = up;
            let v = violation(circuit, &model, &s, spec);
            s[g] = old;
            let gain = viol - v;
            if gain > 1e-12 {
                let score = gain / (up - old);
                if best.is_none_or(|(_, _, bs)| score > bs) {
                    best = Some((g, up, score));
                }
            }
        }
        match best {
            Some((g, up, _)) => {
                s[g] = up;
                viol = violation(circuit, &model, &s, spec);
                repair_moves += 1;
            }
            None => break,
        }
    }

    // Recover: downsizing passes while the spec holds.
    let mut recovered_moves = 0usize;
    if viol <= 1e-9 {
        let mut changed = true;
        while changed {
            changed = false;
            // Largest area first.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| s[b].total_cmp(&s[a]));
            for g in order {
                let Some(down) = grid.down(s[g]) else {
                    continue;
                };
                let old = s[g];
                s[g] = down;
                if violation(circuit, &model, &s, spec) <= 1e-9 {
                    recovered_moves += 1;
                    changed = true;
                } else {
                    s[g] = old;
                }
            }
        }
        viol = violation(circuit, &model, &s, spec);
    }

    DiscreteResult {
        feasible: viol <= 1e-9,
        area: s.iter().sum(),
        s,
        repair_moves,
        recovered_moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Objective, Sizer};
    use sgs_netlist::generate;
    use sgs_ssta::ssta;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn geometric_grid_shape() {
        let g = SizeGrid::geometric(std::f64::consts::SQRT_2, 3.0);
        assert_eq!(g.points().first(), Some(&1.0));
        assert_eq!(g.points().last(), Some(&3.0));
        assert!(g.points().len() >= 4);
        assert!((g.snap(1.45) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(g.snap(0.9), 1.0);
        assert_eq!(g.snap(10.0), 3.0);
    }

    #[test]
    fn snapped_solution_is_on_grid_and_feasible() {
        let circuit = generate::tree7();
        let l = lib();
        let d = 6.3;
        let spec = DelaySpec::MaxMean(d);
        let cont = Sizer::new(&circuit, &l)
            .objective(Objective::Area)
            .delay_spec(spec.clone())
            .solve()
            .expect("sizes");
        let grid = SizeGrid::geometric(std::f64::consts::SQRT_2, 3.0);
        let disc = discretize(&circuit, &l, &spec, &cont.s, &grid);
        assert!(disc.feasible, "{disc:?}");
        for &si in &disc.s {
            assert!(
                grid.points().iter().any(|&p| (p - si).abs() < 1e-12),
                "S {si} off grid"
            );
        }
        // Discretisation loss bounded: within one grid ratio of continuous.
        assert!(
            disc.area <= cont.area * std::f64::consts::SQRT_2 + 1e-9,
            "area {} vs continuous {}",
            disc.area,
            cont.area
        );
        let check = ssta(&circuit, &l, &disc.s);
        assert!(check.delay.mean() <= d + 1e-6);
    }

    #[test]
    fn repair_fixes_infeasible_snap() {
        // A tight deadline where naive rounding lands infeasible forces
        // the repair loop to act.
        let circuit = generate::ripple_carry_adder(4);
        let l = lib();
        let fast = Sizer::new(&circuit, &l)
            .objective(Objective::MeanDelay)
            .solve()
            .expect("sizes");
        let d = fast.delay.mean() * 1.05;
        let spec = DelaySpec::MaxMean(d);
        let cont = Sizer::new(&circuit, &l)
            .objective(Objective::Area)
            .delay_spec(spec.clone())
            .solve()
            .expect("sizes");
        // Coarse grid: rounding error is large.
        let grid = SizeGrid::new(vec![1.0, 2.0, 3.0]);
        let disc = discretize(&circuit, &l, &spec, &cont.s, &grid);
        assert!(disc.feasible, "{disc:?}");
    }

    #[test]
    fn finer_grids_cost_less_area() {
        let circuit = generate::tree7();
        let l = lib();
        let spec = DelaySpec::MaxMean(6.2);
        let cont = Sizer::new(&circuit, &l)
            .objective(Objective::Area)
            .delay_spec(spec.clone())
            .solve()
            .expect("sizes");
        let coarse = discretize(
            &circuit,
            &l,
            &spec,
            &cont.s,
            &SizeGrid::new(vec![1.0, 2.0, 3.0]),
        );
        let fine = discretize(
            &circuit,
            &l,
            &spec,
            &cont.s,
            &SizeGrid::geometric(2.0f64.powf(0.25), 3.0),
        );
        assert!(coarse.feasible && fine.feasible);
        assert!(
            fine.area <= coarse.area + 1e-9,
            "fine {} vs coarse {}",
            fine.area,
            coarse.area
        );
        assert!(fine.area >= cont.area - 1e-9);
    }

    #[test]
    fn unconstrained_spec_just_snaps() {
        let circuit = generate::fig2();
        let l = lib();
        let grid = SizeGrid::new(vec![1.0, 1.5, 2.0, 3.0]);
        let disc = discretize(&circuit, &l, &DelaySpec::None, &[1.2, 1.6, 2.4, 2.9], &grid);
        assert!(disc.feasible);
        assert_eq!(disc.s, vec![1.0, 1.5, 2.0, 3.0]);
        assert_eq!(disc.repair_moves, 0);
    }

    #[test]
    #[should_panic(expected = "grid must be sorted")]
    fn unsorted_grid_rejected() {
        let _ = SizeGrid::new(vec![2.0, 1.0]);
    }
}
