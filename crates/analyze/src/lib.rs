//! Pre-solve static analyzer for statistical gate sizing (`sgs-analyze`).
//!
//! Before the NLP solver of [`sgs_core`] takes a single iteration, this
//! crate proves — or refutes — four families of properties about a
//! sizing task, reporting structured [`Diagnostic`]s:
//!
//! 1. **Structural lints** ([`stage1`]): combinational cycles (with a
//!    cycle witness), dangling/undriven nets, multiply-driven nets,
//!    duplicate gate names, gates unreachable from any primary input or
//!    unobservable at any primary output, zero-fanout internal gates, and
//!    library entries with non-positive `c` / `C_in` coefficients.
//! 2. **Numerical safety** ([`stage2`]): interval arithmetic with outward
//!    rounding ([`sgs_statmath::interval`]) propagates the feasible size
//!    box `[S_min, S_max]` through the delay model and the arrival-time
//!    recurrences, proving that no reachable point divides by (near)
//!    zero, feeds a negative variance into a square root, or overflows
//!    the NLP's scaling assumptions.
//! 3. **Derivative structure** ([`stage3`]): the Jacobian and Hessian
//!    sparsity patterns *declared* by [`sgs_core::SizingProblem`] are
//!    cross-checked against the nonzeros actually discovered by
//!    finite-difference probing at deterministic sample points.
//! 4. **Parallel determinism** ([`stage4`]): the write plans declared by
//!    every parallel kernel via [`sgs_core::WritePlan`] — grouped NLP
//!    assembly, levelized SSTA sweep, Monte Carlo sample partition — are
//!    proven *disjoint* (no index written by two units) and *covering*
//!    (every output index written exactly once), and their cross-unit
//!    reductions are linted against the bit-commutative merge whitelist.
//!    Under the `shadow-write` feature the same codes also surface
//!    runtime shadow-ledger violations ([`stage4::shadow_diagnostics`]).
//!
//! The analyzer is surfaced three ways: the `analyze_blif` binary in
//! `sgs-bench`, the `--analyze[=deny]` pre-solve gate of `size_blif`
//! (wired through [`AnalyzerGate`], an implementation of
//! [`sgs_core::Preflight`]), and a CI step that fails on any
//! [`Severity::Error`] finding over the committed benchmarks.
//!
//! # Diagnostic codes
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `SGS-S001` | Error | combinational cycle (witness attached) |
//! | `SGS-S002` | Error | undriven net feeds a gate |
//! | `SGS-S003` | Error | multiply-driven net |
//! | `SGS-S004` | Error | duplicate gate / net name |
//! | `SGS-S005` | Error | primary output never defined |
//! | `SGS-S006` | Warning | gate unreachable from every primary input |
//! | `SGS-S007` | Warning | gate not observable at any primary output |
//! | `SGS-S008` | Warning | zero-fanout internal gate |
//! | `SGS-S009` | Error | non-positive library `c` / `C_in` coefficient |
//! | `SGS-S010` | Error | netlist failed to parse (unsupported construct) |
//! | `SGS-N001` | Error | size lower bound within `div_eps` of zero — division unsafe |
//! | `SGS-N002` | Error | variance interval reaching below zero feeds a `sqrt` |
//! | `SGS-N003` | Error/Warning/Info | `mu`/`sigma` enclosure non-finite (Error) or exceeding scaling thresholds (Warning/Info) |
//! | `SGS-N004` | Info | Clark variance clamp reachable inside the size box |
//! | `SGS-D001` | Warning | declared Jacobian entry identically zero at all probes |
//! | `SGS-D002` | Error | actual Jacobian nonzero missing from declared pattern |
//! | `SGS-D003` | Error | actual Hessian nonzero missing from declared pattern |
//! | `SGS-D004` | Warning | declared Hessian entry identically zero at all probes |
//! | `SGS-D005` | Info | derivative verification skipped (problem above `max_derivative_vars`) |
//! | `SGS-P001` | Error | index written by two parallel units (cross-unit overlap) |
//! | `SGS-P002` | Error | declared output index never written (coverage gap) |
//! | `SGS-P003` | Error | one unit writes an index twice (intra-unit double write) |
//! | `SGS-P004` | Error | write interval outside the declared array bounds |
//! | `SGS-P005` | Error | parallel reduction not on the bit-commutative merge whitelist |
//! | `SGS-P006` | Error | shadow-write ledger recorded a runtime overlap or unwritten index |
//!
//! Severity policy: **Error** means *provably broken* — the finding
//! holds at every point of the size box (a cycle, an undriven net, a
//! division by zero, a missing Jacobian entry). A failed proof that is
//! not a proven failure — e.g. a magnitude enclosure inflated by
//! interval dependency widening on deep reconvergent circuits — is at
//! most a **Warning**. Only Errors block a denying [`AnalyzerGate`].

use sgs_core::{DelaySpec, Objective, Preflight};
use sgs_netlist::{blif, Circuit, Library, NetlistError};
use std::fmt;

pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod stage4;

pub use stage2::IntervalSsta;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never blocks a solve.
    Info,
    /// Suspicious but not provably wrong; never blocks a solve.
    Warning,
    /// Provably broken input or formulation; a denying gate refuses it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-readable code (`SGS-S001` ...), see the crate docs.
    pub code: &'static str,
    /// Where: a gate, net, constraint index or library entry.
    pub location: String,
    /// Human-readable one-line description.
    pub message: String,
    /// Structured key/value payload (intervals, indices, witnesses).
    pub data: Vec<(&'static str, String)>,
}

impl Diagnostic {
    /// Serialises the diagnostic as a single JSON object (one JSONL line,
    /// following the `sgs-trace` convention of a top-level `"event"` tag).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"event\":\"diagnostic\"");
        let field = |s: &mut String, k: &str, v: &str| {
            s.push_str(",\"");
            s.push_str(k);
            s.push_str("\":");
            push_json_string(s, v);
        };
        field(&mut s, "severity", &self.severity.to_string());
        field(&mut s, "code", self.code);
        field(&mut s, "location", &self.location);
        field(&mut s, "message", &self.message);
        s.push_str(",\"data\":{");
        for (i, (k, v)) in self.data.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_string(&mut s, k);
            s.push(':');
            push_json_string(&mut s, v);
        }
        s.push_str("}}");
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )?;
        for (k, v) in &self.data {
            write!(f, "\n    {k}: {v}")?;
        }
        Ok(())
    }
}

/// Minimal JSON string escaping (mirrors `sgs-trace`'s writer).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The full result of an analyzer run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in stage order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Number of error findings.
    pub fn num_errors(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning findings.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether the task is clean: **no Error findings** (warnings and
    /// infos are allowed — e.g. `SGS-N004` fires on most circuits because
    /// interval enclosures cannot rule the runtime variance clamp out).
    pub fn is_clean(&self) -> bool {
        self.num_errors() == 0
    }

    /// Whether any finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// One JSONL line per diagnostic (parseable by
    /// `sgs_trace::json::validate_jsonl`).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.to_json());
            s.push('\n');
        }
        s
    }

    /// Short one-line summary, used by [`AnalyzerGate`] as the refusal
    /// reason.
    pub fn summary(&self) -> String {
        let first = self
            .errors()
            .next()
            .map(|d| format!("; first: [{}] {}", d.code, d.message))
            .unwrap_or_default();
        format!(
            "{} error(s), {} warning(s){}",
            self.num_errors(),
            self.num_warnings(),
            first
        )
    }

    fn extend(&mut self, more: Vec<Diagnostic>) {
        self.diagnostics.extend(more);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "{}", self.summary())
    }
}

/// Tuning knobs for an analyzer run.
#[derive(Debug, Clone)]
pub struct AnalyzerOptions {
    /// Lower end of the size box (the paper fixes `S >= 1`).
    pub s_min: f64,
    /// Upper end of the size box; `None` uses the library's `s_limit`.
    pub s_max: Option<f64>,
    /// A size lower bound at or below this raises `SGS-N001`.
    pub div_eps: f64,
    /// `mu`/`sigma` enclosure magnitude raising an `SGS-N003` info note.
    pub mag_warn: f64,
    /// `mu`/`sigma` enclosure magnitude raising an `SGS-N003` warning
    /// (non-finite enclosures are the Error case).
    pub mag_err: f64,
    /// Smoothing floor of the Clark max, mirroring the solver's.
    pub clark_eps: f64,
    /// Model the runtime non-negativity clamp on Clark variances. With
    /// `false` the analyzer must prove `theta^2 > 0` from the raw
    /// enclosures alone, which surfaces `SGS-N002` on reconvergent logic.
    pub assume_runtime_clamps: bool,
    /// Run stage 1 (structural lints).
    pub structural: bool,
    /// Run stage 2 (interval safety proofs).
    pub intervals: bool,
    /// Run stage 3 (derivative-structure probing).
    pub derivatives: bool,
    /// Run stage 4 (parallel write-plan race analysis).
    pub plans: bool,
    /// Sample count used to instantiate the Monte Carlo partition plan
    /// certified by stage 4 (matches the benchmark binaries' default).
    pub mc_plan_samples: usize,
    /// Number of deterministic sample points for stage 3.
    pub probe_points: usize,
    /// Skip stage 3 — with an `SGS-D005` note — when the NLP has more
    /// variables than this: blind finite-difference probing is
    /// `O(vars * constraints)` per point by design (independence from the
    /// declared pattern is the whole guarantee) and takes minutes on
    /// 1000+-gate circuits.
    pub max_derivative_vars: usize,
}

impl Default for AnalyzerOptions {
    fn default() -> Self {
        AnalyzerOptions {
            s_min: 1.0,
            s_max: None,
            div_eps: 1e-9,
            mag_warn: 1e8,
            mag_err: 1e12,
            clark_eps: sgs_statmath::clark::DEFAULT_EPS,
            assume_runtime_clamps: true,
            structural: true,
            intervals: true,
            derivatives: true,
            plans: true,
            mc_plan_samples: 20_000,
            probe_points: 3,
            max_derivative_vars: 1500,
        }
    }
}

/// Runs all enabled stages over an already-elaborated circuit.
///
/// Stage 2 and stage 3 build the same [`sgs_core::SizingProblem`] the
/// solver would, so constraint indices in the diagnostics match the
/// solver's formulation exactly.
pub fn analyze(
    circuit: &Circuit,
    lib: &Library,
    objective: &Objective,
    delay_spec: &DelaySpec,
    opts: &AnalyzerOptions,
) -> Report {
    let _phase = sgs_metrics::phase(sgs_metrics::Phase::Analyze);
    sgs_metrics::incr(sgs_metrics::Counter::AnalyzeRuns);
    let mut report = Report::default();
    if opts.structural {
        let _ph = sgs_metrics::phase(sgs_metrics::Phase::AnalyzeLints);
        report.extend(stage1::circuit_lints(circuit, lib));
    }
    // A structurally broken library would poison the numeric stages with
    // the very non-finite values they exist to flag; stop at the lints.
    if !report.is_clean() {
        record_findings(&report);
        return report;
    }
    let problem =
        sgs_core::SizingProblem::build(circuit, lib, objective.clone(), delay_spec.clone());
    if opts.intervals {
        let _ph = sgs_metrics::phase(sgs_metrics::Phase::AnalyzeIntervals);
        report.extend(stage2::interval_checks(circuit, lib, &problem, opts));
    }
    if opts.derivatives {
        let _ph = sgs_metrics::phase(sgs_metrics::Phase::AnalyzeDerivatives);
        let nv = sgs_nlp::NlpProblem::num_vars(&problem);
        if nv > opts.max_derivative_vars {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Info,
                code: "SGS-D005",
                location: "derivative verification".to_string(),
                message: format!(
                    "skipped: {nv} variables exceed max_derivative_vars = {}",
                    opts.max_derivative_vars
                ),
                data: vec![("vars", nv.to_string())],
            });
        } else {
            report.extend(stage3::verify_derivatives(&problem, opts));
        }
    }
    if opts.plans {
        let _ph = sgs_metrics::phase(sgs_metrics::Phase::AnalyzePlans);
        report.extend(stage4::verify_plans(circuit, &problem, opts));
    }
    record_findings(&report);
    report
}

/// Folds a finished report's finding counts into the metrics registry.
fn record_findings(report: &Report) {
    sgs_metrics::add(
        sgs_metrics::Counter::AnalyzeErrors,
        report.num_errors() as u64,
    );
    sgs_metrics::add(
        sgs_metrics::Counter::AnalyzeWarnings,
        report.num_warnings() as u64,
    );
}

/// Runs the analyzer over raw BLIF text: the tolerant stage-1 scanner
/// first (it reports *all* structural issues, not just the first), then —
/// if the netlist elaborates — the circuit-level stages of [`analyze`].
pub fn analyze_blif_text(
    text: &str,
    lib: &Library,
    objective: &Objective,
    delay_spec: &DelaySpec,
    opts: &AnalyzerOptions,
) -> Report {
    let mut report = Report::default();
    if opts.structural {
        report.extend(stage1::raw_netlist_lints(text));
    }
    match blif::parse(text) {
        Ok(circuit) => {
            let mut inner = analyze(&circuit, lib, objective, delay_spec, opts);
            report.diagnostics.append(&mut inner.diagnostics);
        }
        Err(err) => {
            // The raw scanner covers the common structural failures with
            // richer context; only surface a parse error it did not.
            if report.is_clean() {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    code: "SGS-S010",
                    location: "netlist".to_string(),
                    message: format!("netlist failed to parse: {err}"),
                    data: vec![("error", parse_error_kind(&err).to_string())],
                });
            }
        }
    }
    report
}

fn parse_error_kind(err: &NetlistError) -> &'static str {
    match err {
        NetlistError::Cycle(_) => "cycle",
        NetlistError::Parse(_) => "parse",
        NetlistError::DuplicateName(_) => "duplicate",
        _ => "other",
    }
}

/// A [`Preflight`] implementation wiring the analyzer in front of
/// [`sgs_core::Sizer::solve`]: with `deny` set, any Error finding makes
/// the sizer refuse to start
/// ([`sgs_core::SizeError::PreflightFailed`]); otherwise findings are
/// only printed (to stderr, when `verbose`).
#[derive(Debug, Clone, Default)]
pub struct AnalyzerGate {
    /// Analyzer tuning.
    pub options: AnalyzerOptions,
    /// Refuse the solve on Error findings.
    pub deny: bool,
    /// Print every finding to stderr.
    pub verbose: bool,
}

impl AnalyzerGate {
    /// A denying gate with default options.
    pub fn denying() -> Self {
        AnalyzerGate {
            deny: true,
            ..Self::default()
        }
    }
}

impl Preflight for AnalyzerGate {
    fn check(
        &self,
        circuit: &Circuit,
        lib: &Library,
        objective: &Objective,
        delay_spec: &DelaySpec,
    ) -> Result<(), String> {
        let report = analyze(circuit, lib, objective, delay_spec, &self.options);
        if self.verbose && !report.diagnostics.is_empty() {
            eprintln!("{report}");
        }
        if self.deny && !report.is_clean() {
            return Err(report.summary());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code: "SGS-S001",
            location: "gate `a`".into(),
            message: "combinational cycle".into(),
            data: vec![("cycle", "a -> b -> a".into())],
        }
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn diagnostic_json_shape() {
        let j = diag().to_json();
        assert!(j.starts_with("{\"event\":\"diagnostic\""));
        assert!(j.contains("\"code\":\"SGS-S001\""));
        assert!(j.contains("\"cycle\":\"a -> b -> a\""));
    }

    #[test]
    fn jsonl_passes_trace_validator() {
        let mut r = Report::default();
        r.diagnostics.push(diag());
        r.diagnostics.push(Diagnostic {
            severity: Severity::Info,
            code: "SGS-N004",
            location: "gate `g\"q\"`".into(),
            message: "quote \"escaping\"\nworks".into(),
            data: vec![],
        });
        let summary = sgs_trace::json::validate_jsonl(&r.to_jsonl()).unwrap();
        assert_eq!(summary.count("diagnostic"), 2);
    }

    #[test]
    fn report_counts_and_summary() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.diagnostics.push(diag());
        r.diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            code: "SGS-S008",
            location: "gate `z`".into(),
            message: "zero fan-out".into(),
            data: vec![],
        });
        assert!(!r.is_clean());
        assert_eq!(r.num_errors(), 1);
        assert_eq!(r.num_warnings(), 1);
        assert!(r.summary().contains("1 error(s)"));
        assert!(r.summary().contains("SGS-S001"));
        assert!(r.has_code("SGS-S008"));
        assert!(!r.has_code("SGS-D002"));
        assert!(format!("{r}").contains("combinational cycle"));
    }
}
