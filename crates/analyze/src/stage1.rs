//! Stage 1: structural netlist lints.
//!
//! Two entry points at two abstraction levels:
//!
//! * [`raw_netlist_lints`] scans BLIF text *tolerantly* — unlike
//!   [`sgs_netlist::blif::parse`], which stops at the first error, the
//!   scanner keeps going and reports every structural problem it can
//!   find, including a concrete witness path for each combinational
//!   cycle.
//! * [`circuit_lints`] checks an already-elaborated [`Circuit`] (e.g. a
//!   generated paper circuit) plus its [`Library`] for the findings that
//!   survive elaboration: observability/reachability warnings and
//!   non-positive electrical coefficients.

use crate::{Diagnostic, Severity};
use sgs_netlist::{Circuit, GateKind, Library, Signal};
use std::collections::{HashMap, HashSet};

fn diag(
    severity: Severity,
    code: &'static str,
    location: String,
    message: String,
    data: Vec<(&'static str, String)>,
) -> Diagnostic {
    Diagnostic {
        severity,
        code,
        location,
        message,
        data,
    }
}

/// One `.names` block as scanned from raw text.
struct RawNode {
    name: String,
    fanins: Vec<String>,
    line: usize,
}

/// Tolerant structural scan of BLIF text (codes `SGS-S001`..`SGS-S005`).
pub fn raw_netlist_lints(text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut nodes: Vec<RawNode> = Vec::new();

    // Join continuation lines, tracking the starting line number of each.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut acc = String::new();
    let mut acc_start = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if acc.is_empty() {
            acc_start = lineno + 1;
        }
        if let Some(stripped) = line.strip_suffix('\\') {
            acc.push_str(stripped);
            acc.push(' ');
        } else {
            acc.push_str(line);
            logical.push((acc_start, std::mem::take(&mut acc)));
        }
    }
    if !acc.trim().is_empty() {
        logical.push((acc_start, acc));
    }

    for (lineno, line) in &logical {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("non-empty line has a token");
        match head {
            ".inputs" => inputs.extend(tokens.map(str::to_string)),
            ".outputs" => outputs.extend(tokens.map(|t| (t.to_string(), *lineno))),
            ".names" => {
                let names: Vec<String> = tokens.map(str::to_string).collect();
                if let Some((out_name, fanins)) = names.split_last() {
                    nodes.push(RawNode {
                        name: out_name.clone(),
                        fanins: fanins.to_vec(),
                        line: *lineno,
                    });
                }
            }
            ".end" => break,
            _ => {}
        }
    }

    let input_set: HashSet<&str> = inputs.iter().map(String::as_str).collect();

    // Duplicate input names (SGS-S004).
    let mut seen_inputs: HashSet<&str> = HashSet::new();
    for i in &inputs {
        if !seen_inputs.insert(i) {
            out.push(diag(
                Severity::Error,
                "SGS-S004",
                format!("input `{i}`"),
                format!("primary input `{i}` is declared more than once"),
                vec![],
            ));
        }
    }

    // Duplicate gate names (SGS-S004) and multiply-driven nets (SGS-S003).
    let mut driver_count: HashMap<&str, usize> = HashMap::new();
    for n in &nodes {
        *driver_count.entry(n.name.as_str()).or_insert(0) += 1;
    }
    for (name, count) in &driver_count {
        if *count > 1 {
            out.push(diag(
                Severity::Error,
                "SGS-S004",
                format!("gate `{name}`"),
                format!("gate name `{name}` is defined by {count} .names blocks"),
                vec![("drivers", count.to_string())],
            ));
        }
        if input_set.contains(name) {
            out.push(diag(
                Severity::Error,
                "SGS-S003",
                format!("net `{name}`"),
                format!("net `{name}` is driven by both a primary input and a gate"),
                vec![],
            ));
        }
    }

    // Undriven fan-ins (SGS-S002).
    let node_set: HashSet<&str> = nodes.iter().map(|n| n.name.as_str()).collect();
    let mut reported_undriven: HashSet<&str> = HashSet::new();
    for n in &nodes {
        for f in &n.fanins {
            if !input_set.contains(f.as_str())
                && !node_set.contains(f.as_str())
                && reported_undriven.insert(f.as_str())
            {
                out.push(diag(
                    Severity::Error,
                    "SGS-S002",
                    format!("net `{f}`"),
                    format!("net `{f}` feeding gate `{}` has no driver", n.name),
                    vec![("consumer", n.name.clone()), ("line", n.line.to_string())],
                ));
            }
        }
    }

    // Undefined primary outputs (SGS-S005).
    for (o, lineno) in &outputs {
        if !node_set.contains(o.as_str()) && !input_set.contains(o.as_str()) {
            out.push(diag(
                Severity::Error,
                "SGS-S005",
                format!("output `{o}`"),
                format!("primary output `{o}` is never defined"),
                vec![("line", lineno.to_string())],
            ));
        }
    }

    // Combinational cycles with witness (SGS-S001): iterative DFS over the
    // node graph, extracting the cycle path from the DFS stack on each
    // back edge. One report per distinct cycle entry node.
    let index_of: HashMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.name.as_str(), i))
        .collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| {
            n.fanins
                .iter()
                .filter_map(|f| index_of.get(f.as_str()).copied())
                .collect()
        })
        .collect();
    let mut color = vec![0u8; nodes.len()]; // 0 white, 1 on stack, 2 done
    let mut in_reported_cycle = vec![false; nodes.len()];
    for start in 0..nodes.len() {
        if color[start] != 0 {
            continue;
        }
        // Stack of (node, next-edge-index); `path` mirrors the grey chain.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        let mut path: Vec<usize> = vec![start];
        color[start] = 1;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < adj[v].len() {
                let w = adj[v][*ei];
                *ei += 1;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        stack.push((w, 0));
                        path.push(w);
                    }
                    1 => {
                        let pos = path.iter().position(|&p| p == w).expect("grey is on path");
                        let cycle: Vec<usize> = path[pos..].to_vec();
                        if !cycle.iter().any(|&c| in_reported_cycle[c]) {
                            for &c in &cycle {
                                in_reported_cycle[c] = true;
                            }
                            let mut witness: Vec<&str> =
                                cycle.iter().map(|&c| nodes[c].name.as_str()).collect();
                            witness.push(nodes[w].name.as_str());
                            out.push(diag(
                                Severity::Error,
                                "SGS-S001",
                                format!("gate `{}`", nodes[w].name),
                                format!(
                                    "combinational cycle of {} gate(s) through `{}`",
                                    cycle.len(),
                                    nodes[w].name
                                ),
                                vec![
                                    ("cycle", witness.join(" -> ")),
                                    ("length", cycle.len().to_string()),
                                ],
                            ));
                        }
                    }
                    _ => {}
                }
            } else {
                color[v] = 2;
                stack.pop();
                path.pop();
            }
        }
    }

    // Reachability from primary inputs (SGS-S006): a node is fed if every
    // path below it bottoms out in an input. Cyclic nodes are already
    // errors; flag only acyclic nodes whose cone never reaches an input.
    let mut reaches_input = vec![false; nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        if n.fanins.iter().any(|f| input_set.contains(f.as_str())) {
            reaches_input[i] = true;
        }
    }
    // Propagate forward until fixpoint (node graph is small; O(V*E) fine).
    let mut changed = true;
    while changed {
        changed = false;
        for (i, edges) in adj.iter().enumerate() {
            if !reaches_input[i] && edges.iter().any(|&w| reaches_input[w]) {
                reaches_input[i] = true;
                changed = true;
            }
        }
    }
    for (i, n) in nodes.iter().enumerate() {
        if !reaches_input[i] && !in_reported_cycle[i] {
            out.push(diag(
                Severity::Warning,
                "SGS-S006",
                format!("gate `{}`", n.name),
                format!("gate `{}` is unreachable from every primary input", n.name),
                vec![("line", n.line.to_string())],
            ));
        }
    }

    // Observability (SGS-S007) and zero fan-out (SGS-S008).
    let output_set: HashSet<&str> = outputs.iter().map(|(o, _)| o.as_str()).collect();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, edges) in adj.iter().enumerate() {
        for &w in edges {
            consumers[w].push(i);
        }
    }
    let mut observable = vec![false; nodes.len()];
    let mut work: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| output_set.contains(n.name.as_str()))
        .map(|(i, _)| i)
        .collect();
    for &i in &work {
        observable[i] = true;
    }
    while let Some(i) = work.pop() {
        for &w in &adj[i] {
            if !observable[w] {
                observable[w] = true;
                work.push(w);
            }
        }
    }
    for (i, n) in nodes.iter().enumerate() {
        if output_set.contains(n.name.as_str()) {
            continue;
        }
        if consumers[i].is_empty() {
            out.push(diag(
                Severity::Warning,
                "SGS-S008",
                format!("gate `{}`", n.name),
                format!(
                    "gate `{}` drives nothing and is not a primary output",
                    n.name
                ),
                vec![("line", n.line.to_string())],
            ));
        } else if !observable[i] {
            out.push(diag(
                Severity::Warning,
                "SGS-S007",
                format!("gate `{}`", n.name),
                format!("gate `{}` is not observable at any primary output", n.name),
                vec![("line", n.line.to_string())],
            ));
        }
    }

    out
}

/// Structural lints over an elaborated circuit and its library (codes
/// `SGS-S006`..`SGS-S009`; the parse-level codes cannot occur here —
/// [`Circuit`] is acyclic and uniquely named by construction).
pub fn circuit_lints(circuit: &Circuit, lib: &Library) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Library coefficients (SGS-S009): the delay model divides by `S` and
    // multiplies by `c` and `C_in`; non-positive values invert the
    // size/delay trade-off the whole NLP is built on.
    if lib.c <= 0.0 {
        out.push(diag(
            Severity::Error,
            "SGS-S009",
            "library".to_string(),
            format!("technology constant c = {} is not positive", lib.c),
            vec![("c", lib.c.to_string())],
        ));
    }
    let used_kinds: HashSet<GateKind> = circuit.gates().map(|(_, g)| g.kind).collect();
    let mut kinds: Vec<GateKind> = used_kinds.into_iter().collect();
    kinds.sort();
    for kind in kinds {
        let p = lib.params(kind);
        if p.c_in <= 0.0 {
            out.push(diag(
                Severity::Error,
                "SGS-S009",
                format!("library entry {kind}"),
                format!("gate kind {kind} has non-positive C_in = {}", p.c_in),
                vec![("c_in", p.c_in.to_string())],
            ));
        }
        if p.t_int <= 0.0 {
            // Zero internal delay keeps the model well-posed (delay is
            // then purely load-driven), so this is suspicious, not fatal.
            out.push(diag(
                Severity::Warning,
                "SGS-S009",
                format!("library entry {kind}"),
                format!("gate kind {kind} has non-positive t_int = {}", p.t_int),
                vec![("t_int", p.t_int.to_string())],
            ));
        }
    }

    // Reachability from primary inputs (SGS-S006). Topological storage
    // makes every gate reachable in practice; this is a defensive check
    // for hand-built `from_parts` circuits.
    let n = circuit.num_gates();
    let mut reaches_input = vec![false; n];
    for (id, gate) in circuit.gates() {
        reaches_input[id.index()] = gate.inputs.iter().any(|&s| match s {
            Signal::Pi(_) => true,
            Signal::Gate(src) => reaches_input[src.index()],
        });
        if !reaches_input[id.index()] {
            out.push(diag(
                Severity::Warning,
                "SGS-S006",
                format!("gate `{}`", gate.name),
                format!(
                    "gate `{}` is unreachable from every primary input",
                    gate.name
                ),
                vec![("gate", id.index().to_string())],
            ));
        }
    }

    // Observability (SGS-S007) and zero fan-out (SGS-S008).
    let fanouts = circuit.fanouts();
    let mut observable = vec![false; n];
    let mut work: Vec<usize> = circuit.outputs().iter().map(|o| o.index()).collect();
    for &i in &work {
        observable[i] = true;
    }
    while let Some(i) = work.pop() {
        for &s in &circuit.gate(sgs_netlist::GateId(i)).inputs {
            if let Signal::Gate(src) = s {
                if !observable[src.index()] {
                    observable[src.index()] = true;
                    work.push(src.index());
                }
            }
        }
    }
    for (id, gate) in circuit.gates() {
        if circuit.is_output(id) {
            continue;
        }
        if fanouts[id.index()].is_empty() {
            out.push(diag(
                Severity::Warning,
                "SGS-S008",
                format!("gate `{}`", gate.name),
                format!(
                    "gate `{}` drives nothing and is not a primary output",
                    gate.name
                ),
                vec![("gate", id.index().to_string())],
            ));
        } else if !observable[id.index()] {
            out.push(diag(
                Severity::Warning,
                "SGS-S007",
                format!("gate `{}`", gate.name),
                format!(
                    "gate `{}` is not observable at any primary output",
                    gate.name
                ),
                vec![("gate", id.index().to_string())],
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::{generate, CircuitBuilder, GateParams};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_blif_has_no_findings() {
        let text = sgs_netlist::blif::to_blif(&generate::tree7());
        assert!(raw_netlist_lints(&text).is_empty());
    }

    #[test]
    fn cycle_reported_with_witness() {
        let text = "\
.model loopy
.inputs a
.outputs y
.names a x y
11 1
.names y z x
11 1
.names x z
1 1
.end
";
        let diags = raw_netlist_lints(text);
        let cycle = diags.iter().find(|d| d.code == "SGS-S001").expect("cycle");
        assert_eq!(cycle.severity, Severity::Error);
        let witness = &cycle.data.iter().find(|(k, _)| *k == "cycle").unwrap().1;
        // The witness walks fan-in edges, so it names each cycle member
        // once plus the closing repeat.
        assert!(witness.matches("->").count() >= 2, "witness {witness}");
    }

    #[test]
    fn undriven_multiply_driven_duplicate_and_undefined_output() {
        let text = "\
.model bad
.inputs a b
.outputs y zz
.names a ghost y
11 1
.names a b
1 1
.names a dup
1 1
.names b dup
1 1
.end
";
        let diags = raw_netlist_lints(text);
        let c = codes(&diags);
        assert!(c.contains(&"SGS-S002"), "undriven: {diags:?}"); // ghost
        assert!(c.contains(&"SGS-S003"), "multiply-driven: {diags:?}"); // b
        assert!(c.contains(&"SGS-S004"), "duplicate: {diags:?}"); // dup
        assert!(c.contains(&"SGS-S005"), "undefined output: {diags:?}"); // zz
    }

    #[test]
    fn zero_fanout_and_unobservable_warned() {
        let text = "\
.model w
.inputs a b
.outputs y
.names a b y
11 1
.names a b dead
11 1
.names dead deadder
1 1
.names deadder sink
1 1
.end
";
        let diags = raw_netlist_lints(text);
        let c = codes(&diags);
        assert!(c.contains(&"SGS-S008"), "{diags:?}"); // sink: no consumers
        assert!(c.contains(&"SGS-S007"), "{diags:?}"); // dead/deadder feed only sink
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn circuit_lints_clean_on_generated() {
        let lib = Library::paper_default();
        for c in [generate::tree7(), generate::fig2()] {
            assert!(circuit_lints(&c, &lib).is_empty(), "{}", c.name());
        }
    }

    #[test]
    fn negative_c_in_is_error() {
        let lib = Library::paper_default().with_params(
            sgs_netlist::GateKind::Nand2,
            GateParams {
                t_int: 0.9,
                c_in: -0.6,
            },
        );
        let diags = circuit_lints(&generate::tree7(), &lib);
        assert!(codes(&diags).contains(&"SGS-S009"), "{diags:?}");
        assert!(diags.iter().any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn unobservable_gate_in_circuit_warned() {
        let mut b = CircuitBuilder::new("dangling");
        let a = b.add_input("a");
        let g1 = b.add_gate(GateKind::Inv, "g1", &[a]).unwrap();
        let _dead = b.add_gate(GateKind::Inv, "dead", &[g1]).unwrap();
        let g2 = b.add_gate(GateKind::Inv, "g2", &[g1]).unwrap();
        b.mark_output(g2).unwrap();
        let c = b.build().unwrap();
        let diags = circuit_lints(&c, &Library::paper_default());
        assert!(codes(&diags).contains(&"SGS-S008"), "{diags:?}");
    }
}
