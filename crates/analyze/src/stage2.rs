//! Stage 2: numerical-safety proofs by abstract interpretation.
//!
//! The concrete solver evaluates the delay model and the arrival
//! recurrence at *points*; this stage evaluates the same formulas over
//! the whole feasible size box `[S_min, S_max]^n` using the
//! outward-rounded interval arithmetic of [`sgs_statmath::interval`].
//! Because every enclosure contains every concrete evaluation (the
//! containment property the proptest suite checks), a property proved on
//! the enclosure — "this divisor never reaches zero", "this `sqrt`
//! argument stays positive", "this mean stays below the scaling limit" —
//! holds for every point the solver can visit.
//!
//! The interval recurrence mirrors [`sgs_ssta::ssta`] operation for
//! operation: per-gate load and delay (paper Eq. 14), the sigma model
//! `var_t = (sigma_factor * mu_t)^2`, a left fold of the interval Clark
//! max over fan-in arrivals (Eq. 18b) and the final fold over primary
//! outputs.

use crate::{AnalyzerOptions, Diagnostic, Severity};
use sgs_core::SizingProblem;
use sgs_netlist::{Circuit, Library, Signal};
use sgs_ssta::DelayModel;
use sgs_statmath::interval::{clark_max, Interval};

/// Interval enclosures of every quantity the SSTA recurrence computes,
/// one entry per gate. Produced by [`interval_ssta`]; consumed by the
/// stage-2 checks and by the containment test-suite.
#[derive(Debug, Clone)]
pub struct IntervalSsta {
    /// The size box each speed factor ranges over.
    pub s: Vec<Interval>,
    /// Enclosure of the capacitive load `C_load + sum C_in,j S_j`.
    pub load: Vec<Interval>,
    /// Enclosure of the mean gate delay `mu_t` (Eq. 14).
    pub mu_t: Vec<Interval>,
    /// Enclosure of the gate-delay variance `(sigma_factor * mu_t)^2`.
    pub var_t: Vec<Interval>,
    /// Enclosure of the arrival mean `mu_T` at each gate output.
    pub arr_mu: Vec<Interval>,
    /// Enclosure of the (clamped) arrival variance `var_T`.
    pub arr_var: Vec<Interval>,
    /// Gates whose fan-in fold produced a raw Clark variance enclosure
    /// reaching below zero (the runtime clamp is reachable there).
    pub clamp_reachable: Vec<bool>,
    /// Gates whose fan-in fold could not prove `theta^2 > 0` from the raw
    /// enclosures (only reachable with `assume_runtime_clamps` off).
    pub sqrt_unsafe: Vec<bool>,
    /// Enclosure of the circuit delay mean `mu_Tmax`.
    pub delay_mu: Interval,
    /// Enclosure of the circuit delay variance `var_Tmax`.
    pub delay_var: Interval,
}

impl IntervalSsta {
    /// Enclosure of the multiplied-through delay-constraint residual for
    /// gate `g` (problem Eq. 15): `mu_t S - t_int S - c C_static - sum_j
    /// c C_in,j S_j`, evaluated with `mu_t` ranging over `mu_t_iv` and
    /// every size over its box. Any concrete residual built from sizes in
    /// the box and a `mu_t` inside the enclosure lies inside this
    /// interval.
    pub fn delay_residual(&self, model: &DelayModel, g: usize, mu_t_iv: Interval) -> Interval {
        let id = sgs_netlist::GateId(g);
        let mut r = mu_t_iv * self.s[g]
            - self.s[g] * model.t_int(id)
            - Interval::point(model.c() * model.static_load(id));
        for &j in model.fanouts(id) {
            r = r - self.s[j.index()] * (model.c() * model.c_in(j));
        }
        r
    }

    /// Enclosure of the sigma-model residual for gate `g` (Eq. 18e):
    /// `var_t - kappa^2 mu_t^2` with both operands ranging over their
    /// enclosures.
    pub fn var_t_residual(&self, kappa2: f64, g: usize, mu_t_iv: Interval) -> Interval {
        self.var_t[g] - mu_t_iv.sqr() * kappa2
    }
}

/// Propagates the size box through the delay model and the arrival
/// recurrence, mirroring the concrete left-fold order of
/// [`sgs_ssta::ssta`] exactly.
///
/// # Panics
///
/// Panics if the analyzer options describe an empty size box.
pub fn interval_ssta(circuit: &Circuit, lib: &Library, opts: &AnalyzerOptions) -> IntervalSsta {
    let model = DelayModel::new(circuit, lib);
    let n = circuit.num_gates();
    let s_max = opts.s_max.unwrap_or(lib.s_limit);
    let s_box = Interval::new(opts.s_min, s_max);
    let s = vec![s_box; n];

    let mut load = Vec::with_capacity(n);
    let mut mu_t = Vec::with_capacity(n);
    let mut var_t = Vec::with_capacity(n);
    for g in 0..n {
        let id = sgs_netlist::GateId(g);
        let mut cap = Interval::point(model.static_load(id));
        for &j in model.fanouts(id) {
            cap = cap + s[j.index()] * model.c_in(j);
        }
        load.push(cap);
        let mu = (cap * model.c()) / s[g] + model.t_int(id);
        mu_t.push(mu);
        var_t.push((mu * model.sigma_factor()).sqr());
    }

    let mut arr_mu = Vec::with_capacity(n);
    let mut arr_var = Vec::with_capacity(n);
    let mut clamp_reachable = vec![false; n];
    let mut sqrt_unsafe = vec![false; n];
    let zero = Interval::point(0.0);
    for (id, gate) in circuit.gates() {
        let g = id.index();
        let arrivals: Vec<(Interval, Interval)> = gate
            .inputs
            .iter()
            .map(|&sig| match sig {
                Signal::Pi(_) => (zero, zero),
                Signal::Gate(src) => (arr_mu[src.index()], arr_var[src.index()]),
            })
            .collect();
        let (u_mu, u_var) = fold_max(
            &arrivals,
            opts,
            &mut clamp_reachable[g],
            &mut sqrt_unsafe[g],
        );
        arr_mu.push(u_mu + mu_t[g]);
        arr_var.push(u_var + var_t[g]);
    }

    let out_arrivals: Vec<(Interval, Interval)> = circuit
        .outputs()
        .iter()
        .map(|&o| (arr_mu[o.index()], arr_var[o.index()]))
        .collect();
    let mut out_clamped = false;
    let mut out_unsafe = false;
    let (delay_mu, delay_var) = fold_max(&out_arrivals, opts, &mut out_clamped, &mut out_unsafe);

    IntervalSsta {
        s,
        load,
        mu_t,
        var_t,
        arr_mu,
        arr_var,
        clamp_reachable,
        sqrt_unsafe,
        delay_mu,
        delay_var,
    }
}

/// Interval mirror of [`sgs_statmath::clark::max_n`]: a left fold of the
/// interval Clark max. Sets `clamped` when any raw variance enclosure in
/// the fold reaches below zero, and `sqrt_unsafe` when the raw operand
/// enclosures cannot prove `theta^2 > 0` for a fold step. The `clark_max`
/// call itself always receives clamped (non-negative) variance operands —
/// with `assume_runtime_clamps` that models the concrete code exactly;
/// without it, it merely keeps the detection pass running after the
/// unprovable step has been recorded.
fn fold_max(
    operands: &[(Interval, Interval)],
    opts: &AnalyzerOptions,
    clamped: &mut bool,
    sqrt_unsafe: &mut bool,
) -> (Interval, Interval) {
    let (mut mu, mut var) = operands[0];
    for &(m, v) in &operands[1..] {
        let eps2 = opts.clark_eps * opts.clark_eps;
        if var.lo() + v.lo() + eps2 <= 0.0 {
            *sqrt_unsafe = true;
        }
        let (va, vb) = (var.max_const(0.0), v.max_const(0.0));
        // A zero smoothing floor with zero-variance operands would make
        // even the clamped theta^2 unprovable (already recorded above);
        // substitute the default floor so the detection pass can go on.
        let eps_eff = if va.lo() + vb.lo() + eps2 > 0.0 {
            opts.clark_eps
        } else {
            sgs_statmath::clark::DEFAULT_EPS
        };
        let bounds = clark_max(mu, va, m, vb, eps_eff);
        if bounds.var_raw.lo() < 0.0 {
            *clamped = true;
        }
        mu = bounds.mu;
        var = if opts.assume_runtime_clamps {
            bounds.var_clamped()
        } else {
            bounds.var_raw
        };
    }
    (mu, var)
}

fn fmt_iv(iv: Interval) -> String {
    format!("[{:.6e}, {:.6e}]", iv.lo(), iv.hi())
}

/// Runs the stage-2 checks, attributing each finding to a gate and to
/// the matching constraint index of `problem`.
pub fn interval_checks(
    circuit: &Circuit,
    lib: &Library,
    problem: &SizingProblem,
    opts: &AnalyzerOptions,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = circuit.num_gates();
    let s_max = opts.s_max.unwrap_or(lib.s_limit);
    if opts.s_min > s_max {
        out.push(Diagnostic {
            severity: Severity::Error,
            code: "SGS-N001",
            location: "size box".to_string(),
            message: format!("empty size box [{}, {s_max}]", opts.s_min),
            data: vec![],
        });
        return out;
    }

    // Reverse map: gate -> constraint index per constraint kind.
    let mut delay_con = vec![None; n];
    let mut var_t_con = vec![None; n];
    let mut arr_mu_con = vec![None; n];
    let mut arr_var_con = vec![None; n];
    for ci in 0..sgs_nlp::NlpProblem::num_constraints(problem) {
        if let Some(g) = problem.constraint_gate(ci) {
            let slot = match problem.constraint_kind(ci) {
                "delay" => &mut delay_con[g],
                "var_t" => &mut var_t_con[g],
                "arr_mu" => &mut arr_mu_con[g],
                "arr_var" => &mut arr_var_con[g],
                _ => continue,
            };
            if slot.is_none() {
                *slot = Some(ci);
            }
        }
    }
    let con_str = |c: Option<usize>| c.map_or_else(|| "-".to_string(), |ci| ci.to_string());

    // Division safety (SGS-N001): the only division in the recurrence is
    // by `S` (Eq. 14); the NLP keeps its multiplied-through form, but the
    // reduced-space evaluator and SSTA divide directly.
    let s_box = Interval::new(opts.s_min, s_max);
    if s_box.lo() <= opts.div_eps {
        for (g, dc) in delay_con.iter().enumerate() {
            let gate = circuit.gate(sgs_netlist::GateId(g));
            out.push(Diagnostic {
                severity: Severity::Error,
                code: "SGS-N001",
                location: format!("gate `{}`", gate.name),
                message: format!(
                    "size lower bound {} is within div_eps = {} of zero; the delay \
                     recurrence divides by S",
                    s_box.lo(),
                    opts.div_eps
                ),
                data: vec![
                    ("gate", g.to_string()),
                    ("constraint", con_str(*dc)),
                    ("interval", fmt_iv(s_box)),
                ],
            });
        }
        // An unsafe divisor makes every downstream enclosure the whole
        // line; further findings would be noise.
        return out;
    }

    let iv = interval_ssta(circuit, lib, opts);

    // Magnitude checks (SGS-N003) over mu_t and the arrival moments: the
    // augmented-Lagrangian scaling assumes constraint residuals and
    // multipliers of moderate magnitude. A *proven* non-finite value is an
    // Error; a finite enclosure merely exceeding the thresholds is a
    // failed boundedness proof, not a proven overflow — interval
    // dependency widening inflates deep reconvergent circuits by orders
    // of magnitude (apex1's depth-47 variance enclosures reach 1e13 while
    // every concrete value stays below 1e3) — so it warns at most.
    let mut check_mag = |what: &str, g: usize, con: Option<usize>, e: Interval| {
        let worst = e.lo().abs().max(e.hi().abs());
        let severity = if !e.is_finite() {
            Severity::Error
        } else if worst > opts.mag_err {
            Severity::Warning
        } else if worst > opts.mag_warn {
            Severity::Info
        } else {
            return;
        };
        let gate = circuit.gate(sgs_netlist::GateId(g));
        let message = if severity == Severity::Error {
            format!("{what} enclosure {} is not finite", fmt_iv(e))
        } else {
            format!(
                "{what} enclosure {} exceeds the NLP scaling assumption ({:.0e})",
                fmt_iv(e),
                if severity == Severity::Warning {
                    opts.mag_err
                } else {
                    opts.mag_warn
                }
            )
        };
        out.push(Diagnostic {
            severity,
            code: "SGS-N003",
            location: format!("gate `{}`", gate.name),
            message,
            data: vec![
                ("gate", g.to_string()),
                ("constraint", con_str(con)),
                ("interval", fmt_iv(e)),
            ],
        });
    };
    for g in 0..n {
        check_mag("mu_t", g, delay_con[g], iv.mu_t[g]);
        check_mag("var_t", g, var_t_con[g], iv.var_t[g]);
        check_mag("arrival mu_T", g, arr_mu_con[g], iv.arr_mu[g]);
        check_mag("arrival var_T", g, arr_var_con[g], iv.arr_var[g]);
    }

    // Negative variance into sqrt (SGS-N002): with the runtime clamps
    // modelled, every theta^2 is positive by construction; without them
    // the analyzer must prove it from the raw enclosures, and a variance
    // enclosure reaching below zero is exactly the unprovable case.
    if !opts.assume_runtime_clamps {
        for (g, _) in iv.sqrt_unsafe.iter().enumerate().filter(|(_, &u)| u) {
            let gate = circuit.gate(sgs_netlist::GateId(g));
            out.push(Diagnostic {
                severity: Severity::Error,
                code: "SGS-N002",
                location: format!("gate `{}`", gate.name),
                message: format!(
                    "a fan-in variance enclosure reaching below zero feeds this \
                     gate's Clark max sqrt(theta^2) (arrival variance {})",
                    fmt_iv(iv.arr_var[g])
                ),
                data: vec![
                    ("gate", g.to_string()),
                    ("constraint", con_str(arr_var_con[g])),
                    ("interval", fmt_iv(iv.arr_var[g])),
                ],
            });
        }
        if iv.delay_var.lo() < 0.0 {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: "SGS-N002",
                location: "circuit delay".to_string(),
                message: format!(
                    "delay variance enclosure {} reaches below zero and feeds \
                     sigma_Tmax = sqrt(var_Tmax)",
                    fmt_iv(iv.delay_var)
                ),
                data: vec![("interval", fmt_iv(iv.delay_var))],
            });
        }
    }

    // Clamp reachability (SGS-N004, informational): interval dependency
    // widening means this fires on most circuits with reconvergent
    // fan-in; it documents that the runtime clamp (and its
    // `clark_var_clamped` counter) may be exercised, nothing more.
    let reachable: Vec<usize> = (0..n).filter(|&g| iv.clamp_reachable[g]).collect();
    if !reachable.is_empty() {
        out.push(Diagnostic {
            severity: Severity::Info,
            code: "SGS-N004",
            location: format!("{} gate(s)", reachable.len()),
            message: "Clark variance clamp is reachable inside the size box (raw variance \
                      enclosure dips below zero); the solver counts actual firings in \
                      `clark_var_clamps`"
                .to_string(),
            data: vec![(
                "gates",
                reachable
                    .iter()
                    .take(8)
                    .map(|g| circuit.gate(sgs_netlist::GateId(*g)).name.clone())
                    .collect::<Vec<_>>()
                    .join(", "),
            )],
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_core::{DelaySpec, Objective};
    use sgs_netlist::generate;

    fn problem(c: &Circuit, lib: &Library) -> SizingProblem {
        SizingProblem::build(c, lib, Objective::Area, DelaySpec::None)
    }

    #[test]
    fn enclosures_contain_concrete_ssta_at_box_corners() {
        let c = generate::ripple_carry_adder(4);
        let lib = Library::paper_default();
        let opts = AnalyzerOptions::default();
        let iv = interval_ssta(&c, &lib, &opts);
        for s_val in [1.0, 1.7, 3.0] {
            let s = vec![s_val; c.num_gates()];
            let model = DelayModel::new(&c, &lib);
            let report = sgs_ssta::ssta(&c, &lib, &s);
            for (id, _) in c.gates() {
                let g = id.index();
                assert!(iv.mu_t[g].contains(model.mu_t(id, &s)), "mu_t gate {g}");
                assert!(
                    iv.arr_mu[g].contains(report.arrivals[g].mean()),
                    "arr_mu gate {g}"
                );
                assert!(
                    iv.arr_var[g].contains(report.arrivals[g].var()),
                    "arr_var gate {g}"
                );
            }
            assert!(iv.delay_mu.contains(report.delay.mean()));
            assert!(iv.delay_var.contains(report.delay.var()));
        }
    }

    #[test]
    fn healthy_circuit_has_no_stage2_errors() {
        let c = generate::tree7();
        let lib = Library::paper_default();
        let p = problem(&c, &lib);
        let diags = interval_checks(&c, &lib, &p, &AnalyzerOptions::default());
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn near_zero_size_bound_raises_n001() {
        let c = generate::tree7();
        let lib = Library::paper_default();
        let p = problem(&c, &lib);
        let opts = AnalyzerOptions {
            s_min: 1e-12,
            ..AnalyzerOptions::default()
        };
        let diags = interval_checks(&c, &lib, &p, &opts);
        assert!(diags.iter().any(|d| d.code == "SGS-N001"), "{diags:?}");
        // The finding names the delay constraint of its gate.
        let d = diags.iter().find(|d| d.code == "SGS-N001").unwrap();
        assert!(d.data.iter().any(|(k, v)| *k == "constraint" && v != "-"));
    }

    #[test]
    fn raw_variance_mode_raises_n002_on_reconvergence() {
        // The adder has reconvergent fan-in, so raw (unclamped) variance
        // enclosures dip below zero somewhere along the carry chain.
        let c = generate::ripple_carry_adder(6);
        let lib = Library::paper_default();
        let p = problem(&c, &lib);
        let opts = AnalyzerOptions {
            assume_runtime_clamps: false,
            ..AnalyzerOptions::default()
        };
        let diags = interval_checks(&c, &lib, &p, &opts);
        assert!(diags.iter().any(|d| d.code == "SGS-N002"), "{diags:?}");
    }

    #[test]
    fn residual_enclosures_contain_sampled_residuals() {
        let c = generate::fig2();
        let lib = Library::paper_default();
        let model = DelayModel::new(&c, &lib);
        let opts = AnalyzerOptions::default();
        let iv = interval_ssta(&c, &lib, &opts);
        let kappa2 = lib.sigma_factor * lib.sigma_factor;
        for s_val in [1.0, 2.0, 3.0] {
            let s = vec![s_val; c.num_gates()];
            for (id, _) in c.gates() {
                let g = id.index();
                // Concrete residual with mu_t perturbed inside its
                // enclosure (nonzero residual, still contained).
                let mu_pert = iv.mu_t[g].lo() + 0.25 * iv.mu_t[g].width();
                let mut want =
                    mu_pert * s[g] - model.t_int(id) * s[g] - model.c() * model.static_load(id);
                for &j in model.fanouts(id) {
                    want -= model.c() * model.c_in(j) * s[j.index()];
                }
                let enc = iv.delay_residual(&model, g, iv.mu_t[g]);
                assert!(
                    enc.contains(want),
                    "delay residual gate {g}: {want} vs {enc:?}"
                );
                let vres = iv.var_t_residual(kappa2, g, iv.mu_t[g]);
                let concrete_v = (lib.sigma_factor * mu_pert).powi(2) - kappa2 * mu_pert * mu_pert;
                assert!(vres.contains(concrete_v), "var_t residual gate {g}");
            }
        }
    }
}
