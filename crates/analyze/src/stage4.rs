//! Stage 4: parallel write-plan race analysis.
//!
//! The determinism contract of this reproduction — bit-identical results
//! at any thread count — holds only if every parallel kernel (a) writes
//! each output index from exactly one parallel unit and (b) merges
//! cross-unit partial results bit-commutatively. Stage 4 certifies both
//! statically from the [`sgs_core::WritePlan`] declarations:
//!
//! * **Disjointness** (`SGS-P001`): no index is claimed by two different
//!   units — a write-write race, undefined merge order, and on the
//!   real (non-shim) rayon a data race.
//! * **Coverage** (`SGS-P002`): every declared output index is written —
//!   a gap leaves stale memory in the result, which is a correctness bug
//!   even single-threaded.
//! * **Intra-unit double writes** (`SGS-P003`): one unit claiming an
//!   index twice — deterministic but still a declaration bug that would
//!   mask real races from the shadow detector.
//! * **Bounds** (`SGS-P004`): claims reaching past the declared array
//!   length, or malformed (start > end) intervals.
//! * **Merge whitelist** (`SGS-P005`): a parallel reduction whose
//!   [`MergeKind`] is not on
//!   [`sgs_core::plan::PARALLEL_MERGE_WHITELIST`] — float accumulation
//!   whose operand order depends on the schedule cannot be bit-stable.
//!
//! The companion dynamic check (`SGS-P006`, [`shadow_diagnostics`])
//! converts `sgs_trace::shadow` ledger reports — stamped by the kernels
//! themselves under the `shadow-write` feature — into the same
//! diagnostic stream, so planted races caught at runtime surface next to
//! the ones caught on paper.
//!
//! All P-codes are Error severity: each finding is provable from the
//! declaration (or an observed runtime stamp), never a failed proof.

use crate::{AnalyzerOptions, Diagnostic, Severity};
use sgs_core::{merge_whitelisted, ArrayPlan, KernelPlan, SizingProblem, WritePlan};
use sgs_netlist::Circuit;
use sgs_ssta::{LevelSweeper, McPartition};
use sgs_trace::shadow::ShadowReport;

/// Cap on per-array overlap diagnostics, mirroring
/// `sgs_trace::shadow::MAX_OVERLAPS_PER_REPORT`: one diagnostic per
/// offending index is wanted for pinpointing, unbounded streams are not.
const MAX_OVERLAP_DIAGS: usize = 16;

/// Builds the three plan families the solver stack executes and checks
/// each: the grouped NLP assembly of `problem`, the levelized SSTA sweep
/// of `circuit`, and a Monte Carlo partition of
/// [`AnalyzerOptions::mc_plan_samples`] samples with criticality
/// tallying (the configuration with the parallel merge).
pub fn verify_plans(
    circuit: &Circuit,
    problem: &SizingProblem,
    opts: &AnalyzerOptions,
) -> Vec<Diagnostic> {
    let sweeper = LevelSweeper::new(circuit);
    let mc = McPartition::new(opts.mc_plan_samples, true);
    let plans = [problem.write_plan(), sweeper.write_plan(), mc.write_plan()];
    let mut out = Vec::new();
    for plan in &plans {
        sgs_metrics::incr(sgs_metrics::Counter::AnalyzePlans);
        let units: usize = plan.arrays.iter().map(|a| a.units.len()).sum();
        sgs_metrics::add(sgs_metrics::Counter::AnalyzePlanUnits, units as u64);
        out.extend(check_plan(plan));
    }
    out
}

/// Statically checks one kernel's declared plan: every array partition
/// for bounds, disjointness and coverage, every reduction against the
/// parallel-merge whitelist.
pub fn check_plan(plan: &KernelPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for array in &plan.arrays {
        check_array(plan.kernel, array, &mut out);
    }
    for r in &plan.reductions {
        if r.parallel && !merge_whitelisted(r.kind) {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: "SGS-P005",
                location: format!("kernel `{}`, reduction `{}`", plan.kernel, r.name),
                message: format!(
                    "parallel reduction merges partial results by {:?}, which is not \
                     bit-commutative: merge order would change result bits",
                    r.kind
                ),
                data: vec![("kind", format!("{:?}", r.kind))],
            });
        }
    }
    out
}

/// One unit's interval tagged with its owning unit index, for the sweeps.
struct Claim {
    start: usize,
    end: usize,
    unit: usize,
}

fn check_array(kernel: &'static str, array: &ArrayPlan, out: &mut Vec<Diagnostic>) {
    let loc = |detail: &str| format!("kernel `{}`, array `{}`{detail}", kernel, array.array);

    // Pass 1: bounds / well-formedness (SGS-P004) and intra-unit double
    // writes (SGS-P003). Out-of-bounds claims are clamped to the array —
    // not dropped — so one bad end does not cascade into a phantom
    // coverage gap; inverted (start > end) intervals carry no usable
    // extent and are excluded.
    let mut claims: Vec<Claim> = Vec::new();
    for (u, unit) in array.units.iter().enumerate() {
        let mut own: Vec<(usize, usize)> = Vec::new();
        for &(start, end) in &unit.writes {
            if start > end || end > array.len {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    code: "SGS-P004",
                    location: loc(&format!(", unit `{}`", unit.label)),
                    message: format!(
                        "write interval [{start}, {end}) is outside the declared \
                         array bounds 0..{}",
                        array.len
                    ),
                    data: vec![
                        ("start", start.to_string()),
                        ("end", end.to_string()),
                        ("len", array.len.to_string()),
                    ],
                });
                if start > end {
                    continue;
                }
            }
            let (start, end) = (start.min(array.len), end.min(array.len));
            if start < end {
                own.push((start, end));
                claims.push(Claim {
                    start,
                    end,
                    unit: u,
                });
            }
        }
        own.sort_unstable();
        for w in own.windows(2) {
            if w[1].0 < w[0].1 {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    code: "SGS-P003",
                    location: loc(&format!(", unit `{}`", unit.label)),
                    message: format!(
                        "unit writes index {} more than once (intervals [{}, {}) \
                         and [{}, {}))",
                        w[1].0, w[0].0, w[0].1, w[1].0, w[1].1
                    ),
                    data: vec![("index", w[1].0.to_string())],
                });
            }
        }
    }

    // Pass 2: cross-unit sweep over all valid claims sorted by start —
    // disjointness (SGS-P001) and coverage (SGS-P002) in one scan.
    claims.sort_unstable_by_key(|c| (c.start, c.end, c.unit));
    let mut cursor = 0usize; // lowest index not yet proven written
    let mut cursor_unit = usize::MAX; // unit whose claim reaches `cursor`
    let mut first_missing: Option<usize> = None;
    let mut missing = 0usize;
    let mut overlap_diags = 0usize;
    let mut overlap_total = 0usize;
    for c in &claims {
        if c.start > cursor {
            if first_missing.is_none() {
                first_missing = Some(cursor);
            }
            missing += c.start - cursor;
        } else if c.start < cursor && c.unit != cursor_unit {
            overlap_total += 1;
            if overlap_diags < MAX_OVERLAP_DIAGS {
                overlap_diags += 1;
                let a = &array.units[cursor_unit].label;
                let b = &array.units[c.unit].label;
                out.push(Diagnostic {
                    severity: Severity::Error,
                    code: "SGS-P001",
                    location: loc(""),
                    message: format!(
                        "index {} is written by two parallel units: `{a}` and `{b}`",
                        c.start
                    ),
                    data: vec![
                        ("index", c.start.to_string()),
                        ("unit_a", a.clone()),
                        ("unit_b", b.clone()),
                    ],
                });
            }
        }
        if c.end > cursor {
            cursor = c.end;
            cursor_unit = c.unit;
        }
    }
    if overlap_total > overlap_diags {
        out.push(Diagnostic {
            severity: Severity::Error,
            code: "SGS-P001",
            location: loc(""),
            message: format!(
                "{} further cross-unit overlaps suppressed after the first {overlap_diags}",
                overlap_total - overlap_diags
            ),
            data: vec![("suppressed", (overlap_total - overlap_diags).to_string())],
        });
    }
    if cursor < array.len {
        if first_missing.is_none() {
            first_missing = Some(cursor);
        }
        missing += array.len - cursor;
    }
    if missing > 0 {
        let first = first_missing.unwrap_or(0);
        out.push(Diagnostic {
            severity: Severity::Error,
            code: "SGS-P002",
            location: loc(""),
            message: format!(
                "{missing} of {} declared output indices are never written \
                 (first gap at index {first})",
                array.len
            ),
            data: vec![
                ("missing", missing.to_string()),
                ("first_missing", first.to_string()),
            ],
        });
    }
}

/// Converts shadow-write ledger reports (runtime stamps collected under
/// the `shadow-write` feature) into `SGS-P006` diagnostics: one per
/// observed cross-unit overlap, plus one per kernel whose ledger shows
/// unwritten indices.
pub fn shadow_diagnostics(reports: &[ShadowReport]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in reports {
        for o in &r.overlaps {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: "SGS-P006",
                location: format!("kernel `{}` (shadow ledger, len {})", r.kernel, r.len),
                message: format!(
                    "runtime shadow stamps show index {} written by units {} and {}",
                    o.index, o.unit_a, o.unit_b
                ),
                data: vec![
                    ("index", o.index.to_string()),
                    ("unit_a", o.unit_a.to_string()),
                    ("unit_b", o.unit_b.to_string()),
                ],
            });
        }
        if r.missing > 0 {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: "SGS-P006",
                location: format!("kernel `{}` (shadow ledger, len {})", r.kernel, r.len),
                message: format!(
                    "runtime shadow stamps left {} of {} indices unwritten \
                     (sample: {:?})",
                    r.missing, r.len, r.missing_sample
                ),
                data: vec![("missing", r.missing.to_string())],
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_core::plan::{MergeKind, ReductionDecl, WriteUnit};
    use sgs_trace::shadow::ShadowOverlap;

    fn unit(label: &str, writes: Vec<(usize, usize)>) -> WriteUnit {
        WriteUnit {
            label: label.to_string(),
            writes,
        }
    }

    fn plan_of(len: usize, units: Vec<WriteUnit>) -> KernelPlan {
        KernelPlan {
            kernel: "test_kernel",
            arrays: vec![ArrayPlan {
                array: "out",
                len,
                units,
            }],
            reductions: Vec::new(),
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_partition_has_no_findings() {
        let plan = plan_of(
            10,
            vec![
                unit("a", vec![(0, 4)]),
                unit("b", vec![(4, 7)]),
                unit("c", vec![(7, 10)]),
            ],
        );
        assert!(check_plan(&plan).is_empty());
    }

    #[test]
    fn empty_array_is_trivially_covered() {
        let plan = plan_of(0, vec![]);
        assert!(check_plan(&plan).is_empty());
    }

    #[test]
    fn cross_unit_overlap_is_p001_with_index_and_labels() {
        let plan = plan_of(10, vec![unit("a", vec![(0, 6)]), unit("b", vec![(5, 10)])]);
        let d = check_plan(&plan);
        assert_eq!(codes(&d), vec!["SGS-P001"]);
        assert!(d[0].data.contains(&("index", "5".to_string())));
        assert!(d[0].data.contains(&("unit_a", "a".to_string())));
        assert!(d[0].data.contains(&("unit_b", "b".to_string())));
    }

    #[test]
    fn coverage_gap_is_p002_with_first_missing() {
        let plan = plan_of(10, vec![unit("a", vec![(0, 3)]), unit("b", vec![(5, 9)])]);
        let d = check_plan(&plan);
        assert_eq!(codes(&d), vec!["SGS-P002"]);
        assert!(d[0].data.contains(&("missing", "3".to_string())));
        assert!(d[0].data.contains(&("first_missing", "3".to_string())));
    }

    #[test]
    fn intra_unit_double_write_is_p003_not_p001() {
        let plan = plan_of(
            10,
            vec![unit("a", vec![(0, 5), (3, 5)]), unit("b", vec![(5, 10)])],
        );
        let d = check_plan(&plan);
        assert_eq!(codes(&d), vec!["SGS-P003"]);
        assert!(d[0].data.contains(&("index", "3".to_string())));
    }

    #[test]
    fn out_of_bounds_and_malformed_are_p004() {
        let plan = plan_of(10, vec![unit("a", vec![(0, 11)]), unit("b", vec![(5, 3)])]);
        let d = check_plan(&plan);
        // Both P004s; the clamped first claim still covers the array, so
        // no cascading P002.
        assert_eq!(codes(&d), vec!["SGS-P004", "SGS-P004"]);
    }

    #[test]
    fn float_parallel_merge_is_p005() {
        let mut plan = plan_of(4, vec![unit("a", vec![(0, 4)])]);
        plan.reductions = vec![
            ReductionDecl {
                name: "ok_tally",
                parallel: true,
                kind: MergeKind::ExactU64Sum,
            },
            ReductionDecl {
                name: "seq_fold",
                parallel: false,
                kind: MergeKind::FloatSum,
            },
            ReductionDecl {
                name: "bad_merge",
                parallel: true,
                kind: MergeKind::FloatSum,
            },
        ];
        let d = check_plan(&plan);
        assert_eq!(codes(&d), vec!["SGS-P005"]);
        assert!(d[0].location.contains("bad_merge"));
    }

    #[test]
    fn overlap_flood_is_capped() {
        // 40 units all claiming the same interval: 39 overlap events, only
        // MAX_OVERLAP_DIAGS itemised plus one suppression note.
        let units = (0..40)
            .map(|i| unit(&format!("u{i}"), vec![(0, 10)]))
            .collect();
        let d = check_plan(&plan_of(10, units));
        let p001 = d.iter().filter(|d| d.code == "SGS-P001").count();
        assert_eq!(p001, MAX_OVERLAP_DIAGS + 1);
        assert!(d.last().unwrap().message.contains("suppressed"));
    }

    #[test]
    fn shadow_reports_become_p006() {
        let clean = ShadowReport {
            kernel: "k".into(),
            len: 8,
            invocations: 1,
            writes: 8,
            overlaps: vec![],
            missing: 0,
            missing_sample: vec![],
        };
        assert!(shadow_diagnostics(std::slice::from_ref(&clean)).is_empty());

        let dirty = ShadowReport {
            overlaps: vec![ShadowOverlap {
                index: 3,
                unit_a: 0,
                unit_b: 1,
            }],
            missing: 2,
            missing_sample: vec![6, 7],
            ..clean
        };
        let d = shadow_diagnostics(&[dirty]);
        assert_eq!(codes(&d), vec!["SGS-P006", "SGS-P006"]);
        assert!(d[0].data.contains(&("index", "3".to_string())));
        assert!(d[1].message.contains("2 of 8"));
    }
}
