//! Stage 3: derivative-structure verification.
//!
//! [`sgs_core::SizingProblem`] declares fixed Jacobian and Hessian
//! sparsity patterns that the augmented-Lagrangian solver trusts blindly:
//! an entry missing from the declared pattern is silently treated as
//! zero, which bends search directions without ever failing loudly. This
//! stage probes the *actual* derivative structure by central finite
//! differences at a few deterministic sample points and cross-checks it
//! against the declaration:
//!
//! * a nonzero discovered where no entry is declared is **fatal**
//!   (`SGS-D002` for the Jacobian, `SGS-D003` for the Hessian of the
//!   Lagrangian) — the solver would optimise the wrong model;
//! * a declared entry whose value is identically `0.0` at every probe is
//!   a **warning** (`SGS-D001` / `SGS-D004`) — harmless but bloats the
//!   sparse structures.
//!
//! Probing is independent of the declaration (it perturbs every variable
//! column), so a corrupted declaration cannot hide from it; the
//! `corrupt_drop_*` test hooks on [`SizingProblem`] exist precisely to
//! prove that end to end.

use crate::{AnalyzerOptions, Diagnostic, Severity};
use sgs_core::SizingProblem;
use sgs_nlp::NlpProblem;
use std::collections::{HashMap, HashSet};

/// Relative step for central differences.
const FD_STEP: f64 = 1e-6;

/// An FD Jacobian entry larger than this (relative to the constraint
/// scale) is considered an actual nonzero. FD noise is ~1e-10 relative
/// here (smooth low-order formulas), so this has five orders of margin
/// while still catching real coefficients (smallest library coefficient
/// is ~0.45).
const JAC_TOL: f64 = 1e-5;

/// Same for FD-of-gradient Hessian entries (one more difference, one
/// less digit).
const HESS_TOL: f64 = 1e-4;

/// Deterministic multiplier stream for the Lagrangian probe.
fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn constraint_label(problem: &SizingProblem, ci: usize) -> String {
    match problem.constraint_gate(ci) {
        Some(g) => format!(
            "constraint {ci} ({}, gate {g})",
            problem.constraint_kind(ci)
        ),
        None => format!("constraint {ci} ({})", problem.constraint_kind(ci)),
    }
}

/// Deterministic sample points spread over the size box: interior points
/// of `[1, s_limit]`, elaborated to exactly feasible full vectors by
/// [`SizingProblem::initial_point`] so probing happens where the solver
/// actually iterates.
fn probe_points(problem: &SizingProblem, count: usize) -> Vec<Vec<f64>> {
    let n = problem.num_gates();
    (0..count.max(1))
        .map(|k| {
            let t = (k as f64 + 0.5) / count.max(1) as f64;
            // Vary sizes per gate as well so no two columns are probed at
            // identical values.
            let s: Vec<f64> = (0..n)
                .map(|g| {
                    let wiggle = 0.07 * ((g % 5) as f64 - 2.0);
                    (1.0 + t * 1.8 + wiggle).clamp(1.0, 2.95)
                })
                .collect();
            problem.initial_point(&s)
        })
        .collect()
}

/// Cross-checks declared against probed derivative structure.
pub fn verify_derivatives(problem: &SizingProblem, opts: &AnalyzerOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let points = probe_points(problem, opts.probe_points);

    // ---- Jacobian ----------------------------------------------------
    let jac_structure = problem.jacobian_structure();
    let declared: HashSet<(usize, usize)> = jac_structure.iter().copied().collect();
    let mut declared_seen_nonzero = vec![false; jac_structure.len()];
    // (ci, j) -> largest FD estimate, for undeclared nonzeros.
    let mut undeclared: HashMap<(usize, usize), f64> = HashMap::new();

    let mut vals = vec![0.0; jac_structure.len()];
    let mut cp = vec![0.0; m];
    let mut cm = vec![0.0; m];
    let mut c0 = vec![0.0; m];
    for x in &points {
        problem.jacobian_values(x, &mut vals);
        for (k, &v) in vals.iter().enumerate() {
            if v != 0.0 {
                declared_seen_nonzero[k] = true;
            }
        }
        problem.constraints(x, &mut c0);
        let mut xp = x.clone();
        for j in 0..n {
            let h = FD_STEP * (1.0 + x[j].abs());
            xp[j] = x[j] + h;
            problem.constraints(&xp, &mut cp);
            xp[j] = x[j] - h;
            problem.constraints(&xp, &mut cm);
            xp[j] = x[j];
            for ci in 0..m {
                let d = (cp[ci] - cm[ci]) / (2.0 * h);
                let scale = 1.0 + c0[ci].abs();
                if d.abs() > JAC_TOL * scale && !declared.contains(&(ci, j)) {
                    let e = undeclared.entry((ci, j)).or_insert(0.0);
                    if d.abs() > e.abs() {
                        *e = d;
                    }
                }
            }
        }
    }
    let mut missing: Vec<((usize, usize), f64)> = undeclared.into_iter().collect();
    missing.sort_by_key(|&((ci, j), _)| (ci, j));
    for ((ci, j), d) in missing {
        out.push(Diagnostic {
            severity: Severity::Error,
            code: "SGS-D002",
            location: constraint_label(problem, ci),
            message: format!(
                "Jacobian entry (constraint {ci}, variable {j}) is nonzero (~{d:.3e}) \
                 but missing from the declared sparsity pattern"
            ),
            data: vec![
                ("constraint", ci.to_string()),
                ("variable", j.to_string()),
                ("fd_value", format!("{d:.6e}")),
            ],
        });
    }
    for (k, seen) in declared_seen_nonzero.iter().enumerate() {
        if !seen {
            let (ci, j) = jac_structure[k];
            out.push(Diagnostic {
                severity: Severity::Warning,
                code: "SGS-D001",
                location: constraint_label(problem, ci),
                message: format!(
                    "declared Jacobian entry {k} (constraint {ci}, variable {j}) is \
                     identically zero at every probe point"
                ),
                data: vec![
                    ("entry", k.to_string()),
                    ("constraint", ci.to_string()),
                    ("variable", j.to_string()),
                ],
            });
        }
    }

    // ---- Hessian of the Lagrangian -----------------------------------
    let hess_structure = problem.hessian_structure();
    let declared_h: HashSet<(usize, usize)> = hess_structure.iter().copied().collect();
    let mut declared_h_nonzero = vec![false; hess_structure.len()];
    let mut hvals = vec![0.0; hess_structure.len()];
    let mut state = 0x5EED_0001u64;
    let lambda: Vec<f64> = (0..m).map(|_| 0.5 + splitmix(&mut state)).collect();

    // grad L(x) = grad f(x) + J(x)^T lambda.
    let grad_l = |x: &[f64], grad: &mut Vec<f64>, jv: &mut Vec<f64>| {
        grad.clear();
        grad.resize(n, 0.0);
        problem.gradient(x, grad);
        jv.resize(jac_structure.len(), 0.0);
        problem.jacobian_values(x, jv);
        for (k, &(ci, j)) in jac_structure.iter().enumerate() {
            grad[j] += lambda[ci] * jv[k];
        }
    };

    let mut undeclared_h: HashMap<(usize, usize), f64> = HashMap::new();
    let mut gp = Vec::new();
    let mut gm = Vec::new();
    let mut jbuf = Vec::new();
    for x in &points {
        problem.hessian_values(x, 1.0, &lambda, &mut hvals);
        for (k, &v) in hvals.iter().enumerate() {
            if v != 0.0 {
                declared_h_nonzero[k] = true;
            }
        }
        let mut xp = x.clone();
        for j in 0..n {
            let h = FD_STEP.sqrt() * 1e-2 * (1.0 + x[j].abs());
            xp[j] = x[j] + h;
            grad_l(&xp, &mut gp, &mut jbuf);
            xp[j] = x[j] - h;
            grad_l(&xp, &mut gm, &mut jbuf);
            xp[j] = x[j];
            for i in j..n {
                let d = (gp[i] - gm[i]) / (2.0 * h);
                if d.abs() > HESS_TOL
                    && !declared_h.contains(&(i, j))
                    && !declared_h.contains(&(j, i))
                {
                    let e = undeclared_h.entry((i, j)).or_insert(0.0);
                    if d.abs() > e.abs() {
                        *e = d;
                    }
                }
            }
        }
    }
    let mut missing_h: Vec<((usize, usize), f64)> = undeclared_h.into_iter().collect();
    missing_h.sort_by_key(|&((i, j), _)| (i, j));
    for ((i, j), d) in missing_h {
        out.push(Diagnostic {
            severity: Severity::Error,
            code: "SGS-D003",
            location: format!("Hessian entry ({i}, {j})"),
            message: format!(
                "Hessian of the Lagrangian is nonzero (~{d:.3e}) at ({i}, {j}) but the \
                 entry is missing from the declared lower-triangle pattern"
            ),
            data: vec![
                ("row", i.to_string()),
                ("col", j.to_string()),
                ("fd_value", format!("{d:.6e}")),
            ],
        });
    }
    for (k, seen) in declared_h_nonzero.iter().enumerate() {
        if !seen {
            let (i, j) = hess_structure[k];
            out.push(Diagnostic {
                severity: Severity::Warning,
                code: "SGS-D004",
                location: format!("Hessian entry ({i}, {j})"),
                message: format!(
                    "declared Hessian entry {k} at ({i}, {j}) is identically zero at \
                     every probe point"
                ),
                data: vec![
                    ("entry", k.to_string()),
                    ("row", i.to_string()),
                    ("col", j.to_string()),
                ],
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_core::{DelaySpec, Objective};
    use sgs_netlist::{generate, Library};

    fn build(obj: Objective, spec: DelaySpec) -> SizingProblem {
        SizingProblem::build(&generate::tree7(), &Library::paper_default(), obj, spec)
    }

    #[test]
    fn healthy_problem_has_no_fatal_findings() {
        for (obj, spec) in [
            (
                Objective::Area,
                DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 6.5 },
            ),
            (Objective::MeanPlusKSigma(3.0), DelaySpec::None),
            (Objective::Sigma, DelaySpec::ExactMean(6.9)),
        ] {
            let p = build(obj, spec);
            let diags = verify_derivatives(&p, &AnalyzerOptions::default());
            assert!(
                diags.iter().all(|d| d.severity != Severity::Error),
                "{diags:?}"
            );
        }
    }

    #[test]
    fn dropped_jacobian_entry_is_fatal_d002() {
        let mut p = build(Objective::Area, DelaySpec::None);
        p.corrupt_drop_jacobian_entry(3);
        let diags = verify_derivatives(&p, &AnalyzerOptions::default());
        assert!(
            diags
                .iter()
                .any(|d| d.code == "SGS-D002" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn dropped_hessian_entry_is_fatal_d003() {
        let mut p = build(Objective::MeanPlusKSigma(3.0), DelaySpec::None);
        // Skip the objective block (dropping there is caught too, but the
        // constraint block is the harder case).
        p.corrupt_drop_hessian_entry(1);
        let diags = verify_derivatives(&p, &AnalyzerOptions::default());
        assert!(
            diags
                .iter()
                .any(|d| d.code == "SGS-D003" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }
}
