//! End-to-end wiring of [`AnalyzerGate`] into [`Sizer`]: a denying gate
//! must refuse a provably broken task with
//! [`SizeError::PreflightFailed`] before any solver iteration, must let a
//! clean task solve, and a non-denying gate must never block.

use sgs_analyze::AnalyzerGate;
use sgs_core::{DelaySpec, Objective, Preflight, SizeError, Sizer};
use sgs_netlist::{generate, Library};

#[test]
fn denying_gate_blocks_broken_library() {
    let circuit = generate::tree7();
    let mut lib = Library::paper_default();
    lib.c = -1.0; // SGS-S009: the delay model loses positivity.
    let gate = AnalyzerGate::denying();
    let err = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanPlusKSigma(3.0))
        .preflight(&gate)
        .solve()
        .unwrap_err();
    match err {
        SizeError::PreflightFailed { summary } => {
            assert!(summary.contains("SGS-S009"), "{summary}");
        }
        other => panic!("expected PreflightFailed, got {other:?}"),
    }
}

#[test]
fn non_denying_gate_reports_but_solves() {
    let circuit = generate::tree7();
    let lib = Library::paper_default();
    let gate = AnalyzerGate::default();
    let result = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanPlusKSigma(3.0))
        .preflight(&gate)
        .solve()
        .expect("clean circuit must pass a non-denying gate and solve");
    assert!(result.delay.mean() > 0.0);
}

#[test]
fn denying_gate_passes_clean_circuit() {
    let circuit = generate::fig2();
    let lib = Library::paper_default();
    let gate = AnalyzerGate::denying();
    let result = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanPlusKSigma(3.0))
        .delay_spec(DelaySpec::None)
        .preflight(&gate)
        .solve()
        .expect("paper circuit is clean; the gate must not block it");
    assert!(result.area >= circuit.num_gates() as f64);
}

#[test]
fn gate_check_surfaces_error_summary_directly() {
    // The Preflight trait itself, without a Sizer: the summary line names
    // the first finding so `size_blif --analyze=deny` users see the cause.
    let circuit = generate::tree7();
    let mut lib = Library::paper_default();
    lib.c = 0.0;
    let gate = AnalyzerGate::denying();
    let err = gate
        .check(
            &circuit,
            &lib,
            &Objective::Area,
            &DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 10.0 },
        )
        .unwrap_err();
    assert!(err.contains("error"), "{err}");
}
