//! Property-based proof of the analyzer's core soundness claim: every
//! concrete evaluation at any size vector inside the analyzed box lies
//! inside the corresponding stage-2 interval enclosure.
//!
//! Random DAGs and random size vectors are drawn; for each gate the
//! concrete gate-delay mean, arrival mean/variance and the two
//! constraint residual forms are checked against [`IntervalSsta`], and
//! the circuit delay distribution against the top-level enclosure.

use proptest::prelude::*;
use sgs_analyze::stage2::{interval_ssta, IntervalSsta};
use sgs_analyze::AnalyzerOptions;
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::{Circuit, GateId, Library};
use sgs_ssta::DelayModel;

fn small_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..7, 2usize..8, any::<u64>()).prop_flat_map(|(depth, inputs, seed)| {
        (depth..depth + 30).prop_map(move |cells| {
            generate::random_dag(&RandomDagSpec {
                name: "prop".into(),
                cells,
                inputs,
                depth,
                seed,
                ..Default::default()
            })
        })
    })
}

/// Concrete size vector inside `[1, s_limit]` from per-gate unit draws.
fn sizes(circuit: &Circuit, lib: &Library, u: &[f64]) -> Vec<f64> {
    (0..circuit.num_gates())
        .map(|g| 1.0 + u[g % u.len()] * (lib.s_limit - 1.0))
        .collect()
}

fn check_containment(circuit: &Circuit, lib: &Library, s: &[f64], enc: &IntervalSsta) {
    let model = DelayModel::new(circuit, lib);
    let report = sgs_ssta::ssta(circuit, lib, s);
    let kappa2 = lib.sigma_factor * lib.sigma_factor;
    for g in 0..circuit.num_gates() {
        let id = GateId(g);
        let mu_t = model.mu_t(id, s);
        let var_t = (lib.sigma_factor * mu_t).powi(2);
        assert!(
            enc.load[g].contains(model.load_cap(id, s)),
            "load[{g}] {:?} !~ {}",
            enc.load[g],
            model.load_cap(id, s)
        );
        assert!(enc.mu_t[g].contains(mu_t), "mu_t[{g}]");
        assert!(enc.var_t[g].contains(var_t), "var_t[{g}]");
        let a = report.arrivals[g];
        assert!(
            enc.arr_mu[g].contains(a.mean()),
            "arr_mu[{g}] {:?} !~ {}",
            enc.arr_mu[g],
            a.mean()
        );
        assert!(
            enc.arr_var[g].contains(a.var()),
            "arr_var[{g}] {:?} !~ {}",
            enc.arr_var[g],
            a.var()
        );
        // Constraint residuals at the model-consistent mu_t are exactly
        // zero (Eq. 15 multiplied through) and must be enclosed; so must
        // residuals at a perturbed mu_t drawn from inside the enclosure.
        let zero_res = enc.delay_residual(&model, g, enc.mu_t[g]);
        assert!(zero_res.contains(0.0), "delay residual[{g}]");
        let mid =
            sgs_statmath::interval::Interval::point(enc.mu_t[g].lo() + 0.5 * enc.mu_t[g].width());
        let concrete_mid = {
            let mut r =
                mid.lo() * s[g] - model.t_int(id) * s[g] - model.c() * model.static_load(id);
            for &j in model.fanouts(id) {
                r -= model.c() * model.c_in(j) * s[j.index()];
            }
            r
        };
        assert!(
            enc.delay_residual(&model, g, mid).contains(concrete_mid),
            "perturbed delay residual[{g}]"
        );
        assert!(
            enc.var_t_residual(kappa2, g, enc.mu_t[g]).contains(0.0),
            "var_t residual[{g}]"
        );
    }
    assert!(
        enc.delay_mu.contains(report.delay.mean()),
        "delay mu {:?} !~ {}",
        enc.delay_mu,
        report.delay.mean()
    );
    assert!(
        enc.delay_var.contains(report.delay.var()),
        "delay var {:?} !~ {}",
        enc.delay_var,
        report.delay.var()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn concrete_evaluations_lie_inside_enclosures(
        circuit in small_circuit(),
        u in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let lib = Library::paper_default();
        let enc = interval_ssta(&circuit, &lib, &AnalyzerOptions::default());
        let s = sizes(&circuit, &lib, &u);
        check_containment(&circuit, &lib, &s, &enc);
    }

    #[test]
    fn containment_holds_at_box_corners_and_edges(
        circuit in small_circuit(),
        corner in 0.0f64..1.0,
    ) {
        let lib = Library::paper_default();
        let enc = interval_ssta(&circuit, &lib, &AnalyzerOptions::default());
        // All-min, all-max and a uniform interior slice — the extreme
        // points where outward rounding is most likely to be off by an ulp.
        for s_val in [1.0, lib.s_limit, 1.0 + corner * (lib.s_limit - 1.0)] {
            let s = vec![s_val; circuit.num_gates()];
            check_containment(&circuit, &lib, &s, &enc);
        }
    }
}

#[test]
fn containment_on_paper_circuits() {
    let lib = Library::paper_default();
    for circuit in [generate::tree7(), generate::fig2()]
        .into_iter()
        .chain(generate::benchmark_suite())
    {
        let enc = interval_ssta(&circuit, &lib, &AnalyzerOptions::default());
        for s_val in [1.0, 1.61803398875, 3.0] {
            let s = vec![s_val; circuit.num_gates()];
            check_containment(&circuit, &lib, &s, &enc);
        }
    }
}
