//! Every committed BLIF benchmark and every generated paper circuit must
//! pass the full analyzer with zero Error-severity findings — the
//! guarantee behind the CI gate (`analyze_blif` exits 1 on Errors).

use sgs_analyze::{analyze, analyze_blif_text, AnalyzerOptions};
use sgs_core::{DelaySpec, Objective};
use sgs_netlist::{generate, Library};

fn opts() -> AnalyzerOptions {
    AnalyzerOptions::default()
}

#[test]
fn committed_blif_benchmarks_are_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("benchmarks/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("blif") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let report = analyze_blif_text(
            &text,
            &Library::paper_default(),
            &Objective::MeanPlusKSigma(3.0),
            &DelaySpec::None,
            &opts(),
        );
        assert!(
            report.is_clean(),
            "{}: {}",
            path.display(),
            report.summary()
        );
    }
    assert!(seen >= 2, "expected at least rdag40 + tree7, saw {seen}");
}

#[test]
fn generated_paper_circuits_are_clean() {
    let lib = Library::paper_default();
    for circuit in [generate::tree7(), generate::fig2()]
        .into_iter()
        .chain(generate::benchmark_suite())
    {
        // Under both an unconstrained and a deadline formulation: the
        // constraint layout (and hence stages 2/3) differs between them.
        for spec in [
            DelaySpec::None,
            DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 50.0 },
        ] {
            let report = analyze(
                &circuit,
                &lib,
                &Objective::MeanPlusKSigma(3.0),
                &spec,
                &opts(),
            );
            assert!(
                report.is_clean(),
                "{} ({spec:?}): {}",
                circuit.name(),
                report.summary()
            );
        }
    }
}
