//! Property-based differential battery for the stage-4 plan checker:
//! every randomly generated well-formed partition must certify clean,
//! and every planted defect — cross-unit overlap, coverage gap,
//! intra-unit double write, out-of-bounds claim, float parallel merge —
//! must be caught with the exact P-code naming the offending indices.

use proptest::prelude::*;
use sgs_analyze::stage4::check_plan;
use sgs_core::plan::{ArrayPlan, KernelPlan, MergeKind, ReductionDecl, WriteUnit};

/// Random contiguous partition as segment lengths; prefix sums turn them
/// into half-open intervals tiling `0..len`.
fn segments() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..8, 2..12)
}

fn intervals_of(segs: &[usize]) -> (usize, Vec<(usize, usize)>) {
    let mut ivs = Vec::with_capacity(segs.len());
    let mut pos = 0;
    for &s in segs {
        ivs.push((pos, pos + s));
        pos += s;
    }
    (pos, ivs)
}

/// One unit per interval — adjacent intervals always belong to different
/// units, so a planted boundary overlap is a *cross-unit* race.
fn one_per_interval(ivs: &[(usize, usize)]) -> Vec<WriteUnit> {
    ivs.iter()
        .enumerate()
        .map(|(i, &(s, e))| WriteUnit {
            label: format!("unit {i}"),
            writes: vec![(s, e)],
        })
        .collect()
}

/// Round-robin interval assignment into `k` units — exercises units
/// owning several non-adjacent intervals.
fn round_robin(ivs: &[(usize, usize)], k: usize) -> Vec<WriteUnit> {
    let mut units: Vec<WriteUnit> = (0..k.min(ivs.len()).max(1))
        .map(|i| WriteUnit {
            label: format!("unit {i}"),
            writes: Vec::new(),
        })
        .collect();
    for (i, &iv) in ivs.iter().enumerate() {
        let k = units.len();
        units[i % k].writes.push(iv);
    }
    units
}

fn plan_of(len: usize, units: Vec<WriteUnit>) -> KernelPlan {
    KernelPlan {
        kernel: "proptest_kernel",
        arrays: vec![ArrayPlan {
            array: "out",
            len,
            units,
        }],
        reductions: Vec::new(),
    }
}

fn codes(plan: &KernelPlan) -> Vec<&'static str> {
    check_plan(plan).iter().map(|d| d.code).collect()
}

fn has_datum(plan: &KernelPlan, code: &str, key: &'static str, value: usize) -> bool {
    check_plan(plan)
        .iter()
        .any(|d| d.code == code && d.data.contains(&(key, value.to_string())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Any partition of 0..len into disjoint covering intervals passes,
    // whatever the unit assignment.
    #[test]
    fn well_formed_partitions_certify_clean(
        segs in segments(),
        k in 1usize..5,
    ) {
        let (len, ivs) = intervals_of(&segs);
        prop_assert!(check_plan(&plan_of(len, one_per_interval(&ivs))).is_empty());
        prop_assert!(check_plan(&plan_of(len, round_robin(&ivs, k))).is_empty());
    }

    // Extending interval `i` one index into its right neighbour is a
    // cross-unit overlap at exactly the neighbour's first index.
    #[test]
    fn planted_overlap_is_p001_at_the_stolen_index(
        (segs, i) in segments().prop_flat_map(|s| {
            let n = s.len();
            (Just(s), 0..n - 1)
        }),
    ) {
        let (len, mut ivs) = intervals_of(&segs);
        let stolen = ivs[i].1;
        ivs[i].1 += 1;
        let plan = plan_of(len, one_per_interval(&ivs));
        prop_assert_eq!(codes(&plan), vec!["SGS-P001"]);
        prop_assert!(has_datum(&plan, "SGS-P001", "index", stolen));
    }

    // Shrinking interval `i` by one leaves exactly one index unwritten.
    #[test]
    fn planted_gap_is_p002_at_the_dropped_index(
        (segs, i) in segments().prop_flat_map(|s| {
            let n = s.len();
            (Just(s), 0..n)
        }),
    ) {
        let (len, mut ivs) = intervals_of(&segs);
        ivs[i].1 -= 1; // length-1 intervals become empty and are skipped
        let dropped = ivs[i].1;
        let plan = plan_of(len, one_per_interval(&ivs));
        prop_assert_eq!(codes(&plan), vec!["SGS-P002"]);
        prop_assert!(has_datum(&plan, "SGS-P002", "missing", 1));
        prop_assert!(has_datum(&plan, "SGS-P002", "first_missing", dropped));
    }

    // Duplicating an interval inside its own unit is an intra-unit
    // double write, not a cross-unit race.
    #[test]
    fn planted_double_write_is_p003(
        (segs, i) in segments().prop_flat_map(|s| {
            let n = s.len();
            (Just(s), 0..n)
        }),
    ) {
        let (len, ivs) = intervals_of(&segs);
        let mut units = one_per_interval(&ivs);
        let dup = units[i].writes[0];
        units[i].writes.push(dup);
        let plan = plan_of(len, units);
        prop_assert_eq!(codes(&plan), vec!["SGS-P003"]);
        prop_assert!(has_datum(&plan, "SGS-P003", "index", dup.0));
    }

    // A claim past the declared length is out of bounds, with the
    // offending interval named.
    #[test]
    fn planted_out_of_bounds_is_p004(
        segs in segments(),
        extra in 1usize..5,
    ) {
        let (len, ivs) = intervals_of(&segs);
        let mut units = one_per_interval(&ivs);
        units[0].writes.push((len, len + extra));
        let plan = plan_of(len, units);
        prop_assert_eq!(codes(&plan), vec!["SGS-P004"]);
        prop_assert!(has_datum(&plan, "SGS-P004", "start", len));
        prop_assert!(has_datum(&plan, "SGS-P004", "end", len + extra));
    }

    // A float-sum reduction is fine sequentially and an error in
    // parallel, independent of the (clean) write partition.
    #[test]
    fn float_merge_is_p005_only_when_parallel(
        segs in segments(),
        parallel in any::<bool>(),
    ) {
        let (len, ivs) = intervals_of(&segs);
        let mut plan = plan_of(len, one_per_interval(&ivs));
        plan.reductions = vec![ReductionDecl {
            name: "probe_merge",
            parallel,
            kind: MergeKind::FloatSum,
        }];
        let got = codes(&plan);
        if parallel {
            prop_assert_eq!(got, vec!["SGS-P005"]);
        } else {
            prop_assert!(got.is_empty());
        }
    }
}
