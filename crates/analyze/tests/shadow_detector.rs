//! Dynamic shadow-write detection end to end (`--features shadow-write`):
//! the levelized sweep stamps the shadow ledger as it writes, a planted
//! `corrupt_overlap_gate` stamp shows up as a runtime overlap, and
//! [`sgs_analyze::stage4::shadow_diagnostics`] turns the ledger report
//! into an `SGS-P006` Error naming the gate and both units.
#![cfg(feature = "shadow-write")]

use sgs_analyze::stage4::shadow_diagnostics;
use sgs_netlist::{generate, Library};
use sgs_ssta::{ArrivalSoa, DelayModel, LevelSweeper};
use sgs_trace::shadow;
use std::sync::Mutex;

/// The shadow registry is process-global; tests must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn sweep_once(sweeper: &mut LevelSweeper, c: &sgs_netlist::Circuit) {
    let lib = Library::paper_default();
    let model = DelayModel::new(c, &lib);
    let s = vec![1.25; c.num_gates()];
    let mut arrivals = ArrivalSoa::zeroed(c.num_gates());
    sweeper.sweep(c, &model, &s, None, &mut arrivals);
}

#[test]
fn clean_sweep_yields_no_p006() {
    let _g = LOCK.lock().unwrap();
    shadow::reset();
    let c = generate::ripple_carry_adder(16);
    sweep_once(&mut LevelSweeper::new(&c), &c);
    let reports = shadow::take_reports();
    assert!(!reports.is_empty(), "sweep must stamp the ledger");
    assert!(reports.iter().all(|r| r.is_clean()));
    assert!(shadow_diagnostics(&reports).is_empty());
}

#[test]
fn planted_runtime_overlap_becomes_p006() {
    let _g = LOCK.lock().unwrap();
    shadow::reset();
    let c = generate::ripple_carry_adder(16);
    let mut sweeper = LevelSweeper::new(&c);
    let pos = c.num_gates() / 2;
    sweeper.corrupt_overlap_gate(pos);
    sweep_once(&mut sweeper, &c);
    let reports = shadow::take_reports();
    let d = shadow_diagnostics(&reports);
    assert!(
        d.iter().any(|d| d.code == "SGS-P006"),
        "planted overlap not caught: {reports:?}"
    );
    let sweeper2 = LevelSweeper::new(&c);
    let g = sweeper2.schedule().order()[pos];
    assert!(d.iter().any(|d| d.data.contains(&("index", g.to_string()))));
}
