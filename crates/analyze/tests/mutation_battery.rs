//! Mutation battery for the stage-4 certifier: every `corrupt_overlap_*`
//! hook on the real kernels plants a race in the *declared* plan, and the
//! static checker must catch each one with the right P-code — while the
//! uncorrupted kernels certify clean on real circuits (zero false
//! Errors). The JSONL emitted for P-diagnostics must round-trip through
//! the `sgs-trace` validator like every other code family.

use sgs_analyze::stage4::check_plan;
use sgs_analyze::{analyze, AnalyzerOptions, Report};
use sgs_core::{DelaySpec, Objective, SizingProblem, WritePlan};
use sgs_netlist::{generate, Library};
use sgs_ssta::{LevelSweeper, McPartition};

fn lib() -> Library {
    Library::paper_default()
}

fn problem() -> SizingProblem {
    SizingProblem::build(
        &generate::ripple_carry_adder(8),
        &lib(),
        Objective::Area,
        DelaySpec::MaxMean(40.0),
    )
}

fn codes(diags: &[sgs_analyze::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn corrupt_jacobian_group_is_caught_as_p001() {
    let mut p = problem();
    p.corrupt_overlap_jacobian_group(0);
    let d = check_plan(&p.write_plan());
    assert_eq!(codes(&d), vec!["SGS-P001"]);
    assert!(d[0].location.contains("jacobian_vals"));
    assert!(d[0].message.contains("group 0") && d[0].message.contains("group 1"));
}

#[test]
fn corrupt_hessian_group_is_caught_as_p001() {
    let mut p = problem();
    p.corrupt_overlap_hessian_group(0);
    let d = check_plan(&p.write_plan());
    assert_eq!(codes(&d), vec!["SGS-P001"]);
    assert!(d[0].location.contains("hessian_vals"));
}

#[test]
fn corrupt_last_group_is_caught_as_p004() {
    // The last group's end+1 claim reaches past the array instead of
    // into a neighbour: out of bounds rather than overlap.
    let mut p = problem();
    let last = p.write_plan().arrays[1].units.len() - 1;
    p.corrupt_overlap_jacobian_group(last);
    let d = check_plan(&p.write_plan());
    assert_eq!(codes(&d), vec!["SGS-P004"]);
}

#[test]
fn corrupt_sweep_gate_is_caught_as_p001() {
    let c = generate::ripple_carry_adder(16);
    let mut sweeper = LevelSweeper::new(&c);
    sweeper.corrupt_overlap_gate(c.num_gates() / 2);
    let d = check_plan(&sweeper.write_plan());
    assert_eq!(codes(&d), vec!["SGS-P001"]);
    assert!(d[0].message.contains("phantom duplicate"));
}

#[test]
fn corrupt_mc_chunk_is_caught_as_p001_interior_p004_last() {
    let mut mc = McPartition::new(4096, true);
    assert!(mc.chunk_bounds().len() >= 2);
    mc.corrupt_overlap_chunk(0);
    assert_eq!(codes(&check_plan(&mc.write_plan())), vec!["SGS-P001"]);

    let mut mc = McPartition::new(4096, true);
    let last = mc.chunk_bounds().len() - 1;
    mc.corrupt_overlap_chunk(last);
    assert_eq!(codes(&check_plan(&mc.write_plan())), vec!["SGS-P004"]);
}

#[test]
fn corrupt_float_merge_is_caught_as_p005() {
    let mut mc = McPartition::new(2048, true);
    mc.corrupt_float_merge();
    let d = check_plan(&mc.write_plan());
    assert_eq!(codes(&d), vec!["SGS-P005"]);
    assert!(d[0].location.contains("mc_criticality_merge"));
}

#[test]
fn uncorrupted_kernels_certify_clean_end_to_end() {
    // Full analyzer run with stage 4 enabled: the real plans of a real
    // circuit must produce zero P-class findings.
    let c = generate::ripple_carry_adder(16);
    let opts = AnalyzerOptions {
        derivatives: false, // probing is slow and irrelevant here
        ..AnalyzerOptions::default()
    };
    let report = analyze(
        &c,
        &lib(),
        &Objective::MeanPlusKSigma(3.0),
        &DelaySpec::None,
        &opts,
    );
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code.starts_with("SGS-P")),
        "false positive: {report}"
    );
}

#[test]
fn stage4_diagnostics_round_trip_as_jsonl() {
    let mut p = problem();
    p.corrupt_overlap_jacobian_group(0);
    let mut mc = McPartition::new(4096, true);
    mc.corrupt_float_merge();
    let mut report = Report::default();
    report.diagnostics.extend(check_plan(&p.write_plan()));
    report.diagnostics.extend(check_plan(&mc.write_plan()));
    assert_eq!(report.num_errors(), 2);
    let summary = sgs_trace::json::validate_jsonl(&report.to_jsonl()).unwrap();
    assert_eq!(summary.count("diagnostic"), 2);
}
