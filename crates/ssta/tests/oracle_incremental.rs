//! Differential oracle battery for the incremental SSTA engine.
//!
//! Every test drives an [`IncrementalSsta`] through a perturbation
//! sequence and, after **every** step, compares the engine's entire state
//! against a from-scratch [`ssta`] run at the same sizes — with
//! `to_bits()` equality, not tolerances. The battery covers random DAG
//! shapes × single-/k-/all-gate perturbations × randomized sequences,
//! the no-op case (`gates_recomputed == 0`), criticality agreement, and
//! the committed `benchmarks/rdag40.blif` netlist, where a single-gate
//! change must recompute strictly fewer gates than the circuit holds.

use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::{blif, Circuit, GateId, Library};
use sgs_ssta::analysis::ssta_with_arrivals;
use sgs_ssta::criticality::criticality;
use sgs_ssta::{ssta, IncrementalSsta, UpdateStats};
use sgs_statmath::Normal;

fn lib() -> Library {
    Library::paper_default()
}

/// splitmix64 step — deterministic stream for sequences and sizes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn random_size(state: &mut u64, s_limit: f64) -> f64 {
    1.0 + unit(state) * (s_limit - 1.0)
}

fn same_bits(a: Normal, b: Normal) -> bool {
    a.mean().to_bits() == b.mean().to_bits() && a.var().to_bits() == b.var().to_bits()
}

/// The oracle: engine arrivals, `Tmax` moments and criticalities must be
/// bit-identical to a fresh analysis at the engine's sizes.
fn assert_oracle(inc: &IncrementalSsta<'_>, circuit: &Circuit, s: &[f64], check_crit: bool) {
    assert_eq!(inc.sizes(), s, "engine size vector drifted");
    let fresh = ssta(circuit, &lib(), s);
    for (i, (a, b)) in inc.arrivals().iter().zip(&fresh.arrivals).enumerate() {
        assert!(same_bits(a, *b), "arrival of gate {i}: {a:?} != {b:?}");
    }
    assert!(
        same_bits(inc.delay(), fresh.delay),
        "Tmax moments: {:?} != {:?}",
        inc.delay(),
        fresh.delay
    );
    if check_crit {
        let from_engine = criticality(circuit, &lib(), inc.sizes());
        let from_scratch = criticality(circuit, &lib(), s);
        for (i, (a, b)) in from_engine
            .criticality
            .iter()
            .zip(&from_scratch.criticality)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "criticality of gate {i}");
        }
        // The criticality pass's own forward arrivals agree with the
        // engine's, pinning that both ride the same left-fold max chain.
        for (i, (a, b)) in inc
            .arrivals()
            .iter()
            .zip(&from_scratch.arrivals)
            .enumerate()
        {
            assert!(same_bits(a, *b), "criticality arrival of gate {i}");
        }
    }
}

fn dag(cells: usize, inputs: usize, depth: usize, seed: u64) -> Circuit {
    generate::random_dag(&RandomDagSpec {
        name: format!("oracle{cells}x{seed}"),
        cells,
        inputs,
        depth,
        seed,
        ..Default::default()
    })
}

#[test]
fn single_gate_perturbations_on_random_dags() {
    for seed in 0..4u64 {
        let circuit = dag(30 + 15 * seed as usize, 6, 5 + seed as usize, seed);
        let n = circuit.num_gates();
        let s_limit = lib().s_limit;
        let mut s = vec![1.0; n];
        let mut inc = IncrementalSsta::new(&circuit, &lib(), &s);
        let mut state = 0xFEED ^ seed;
        for step in 0..12 {
            let g = (splitmix64(&mut state) % n as u64) as usize;
            let v = random_size(&mut state, s_limit);
            s[g] = v;
            let stats = inc.apply(&[(GateId(g), v)]);
            assert!(stats.gates_recomputed >= 1, "step {step} did no work");
            assert_oracle(&inc, &circuit, &s, step == 11);
        }
    }
}

#[test]
fn k_gate_and_all_gate_perturbations() {
    let circuit = dag(80, 10, 8, 99);
    let n = circuit.num_gates();
    let s_limit = lib().s_limit;
    let mut s = vec![1.0; n];
    let mut inc = IncrementalSsta::new(&circuit, &lib(), &s);
    let mut state = 0xAB;
    // k-gate batches of growing size.
    for k in [2usize, 5, 11] {
        let changes: Vec<(GateId, f64)> = (0..k)
            .map(|_| {
                let g = (splitmix64(&mut state) % n as u64) as usize;
                let v = random_size(&mut state, s_limit);
                s[g] = v;
                (GateId(g), v)
            })
            .collect();
        inc.apply(&changes);
        assert_oracle(&inc, &circuit, &s, false);
    }
    // All-gate rewrite through the full-vector entry point.
    for v in &mut s {
        *v = random_size(&mut state, s_limit);
    }
    let stats = inc.set_sizes(&s);
    assert_eq!(stats.gates_recomputed, n, "all-gate rewrite touches all");
    assert_oracle(&inc, &circuit, &s, true);
}

#[test]
fn randomized_sequences_with_interleaved_noops() {
    let circuit = dag(60, 8, 7, 7);
    let n = circuit.num_gates();
    let s_limit = lib().s_limit;
    let mut s = vec![1.0; n];
    let mut inc = IncrementalSsta::new(&circuit, &lib(), &s);
    let mut state = 0x5EED;
    for step in 0..20 {
        if step % 4 == 3 {
            // No-op step: re-apply current sizes; nothing may recompute.
            let g = (splitmix64(&mut state) % n as u64) as usize;
            let stats = inc.apply(&[(GateId(g), s[g])]);
            assert_eq!(stats, UpdateStats::default(), "no-op step {step}");
            assert_eq!(inc.set_sizes(&s), UpdateStats::default());
        } else {
            let k = 1 + (splitmix64(&mut state) % 3) as usize;
            let changes: Vec<(GateId, f64)> = (0..k)
                .map(|_| {
                    let g = (splitmix64(&mut state) % n as u64) as usize;
                    let v = random_size(&mut state, s_limit);
                    s[g] = v;
                    (GateId(g), v)
                })
                .collect();
            inc.apply(&changes);
        }
        assert_oracle(&inc, &circuit, &s, step == 19);
    }
}

#[test]
fn noop_perturbation_recomputes_zero_gates() {
    let circuit = dag(40, 8, 6, 1);
    let n = circuit.num_gates();
    let s: Vec<f64> = (0..n).map(|i| 1.0 + 0.03 * (i % 11) as f64).collect();
    let mut inc = IncrementalSsta::new(&circuit, &lib(), &s);
    let stats = inc.set_sizes(&s);
    assert_eq!(stats.gates_recomputed, 0);
    assert_eq!(stats.frontier_pruned, 0);
    assert!(!stats.delay_refolded);
    assert_eq!(inc.total_recomputed(), 0);
    assert_oracle(&inc, &circuit, &s, false);
}

#[test]
fn rdag40_single_gate_recomputes_strict_subset() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks/rdag40.blif");
    let text = std::fs::read_to_string(path).expect("committed benchmark netlist");
    let circuit = blif::parse(&text).expect("rdag40.blif parses");
    let n = circuit.num_gates();
    let mut s = vec![1.0; n];
    let mut inc = IncrementalSsta::new(&circuit, &lib(), &s);
    let mut state = 0x40;
    let mut max_cone = 0usize;
    for _ in 0..10 {
        let g = (splitmix64(&mut state) % n as u64) as usize;
        let v = random_size(&mut state, lib().s_limit);
        s[g] = v;
        let stats = inc.apply(&[(GateId(g), v)]);
        // The acceptance criterion: a single-gate perturbation recomputes
        // strictly fewer gates than the circuit holds.
        assert!(
            stats.gates_recomputed < n,
            "single-gate change recomputed all {n} gates"
        );
        max_cone = max_cone.max(stats.gates_recomputed);
        assert_oracle(&inc, &circuit, &s, false);
    }
    assert!(max_cone >= 1, "perturbations must do some work");
}

#[test]
fn input_arrival_runs_stay_identical() {
    let circuit = dag(50, 9, 6, 21);
    let n = circuit.num_gates();
    let late: Vec<Normal> = (0..circuit.num_inputs())
        .map(|i| Normal::new(0.3 * i as f64, 0.05 + 0.01 * i as f64))
        .collect();
    let mut s = vec![1.0; n];
    let mut inc = IncrementalSsta::with_arrivals(&circuit, &lib(), &s, Some(&late));
    let mut state = 0xA11;
    for _ in 0..8 {
        let g = (splitmix64(&mut state) % n as u64) as usize;
        let v = random_size(&mut state, lib().s_limit);
        s[g] = v;
        inc.apply(&[(GateId(g), v)]);
        let fresh = ssta_with_arrivals(&circuit, &lib(), &s, Some(&late));
        for (a, b) in inc.arrivals().iter().zip(&fresh.arrivals) {
            assert!(same_bits(a, *b));
        }
        assert!(same_bits(inc.delay(), fresh.delay));
    }
}
