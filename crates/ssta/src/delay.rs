//! The sizable-gate delay model evaluated for concrete speed factors.

use sgs_netlist::{Circuit, GateId, Library};
use sgs_statmath::Normal;

/// Precomputed per-circuit delay-model data: fan-out lists, static loads and
/// per-gate electrical parameters, so repeated delay evaluation (sizing
/// inner loops, Monte Carlo) costs no graph traversal.
#[derive(Debug, Clone)]
pub struct DelayModel {
    t_int: Vec<f64>,
    c_in: Vec<f64>,
    static_load: Vec<f64>,
    fanouts: Vec<Vec<GateId>>,
    c: f64,
    sigma_factor: f64,
    s_limit: f64,
    num_gates: usize,
}

impl DelayModel {
    /// Builds the model for a circuit under a library.
    pub fn new(circuit: &Circuit, lib: &Library) -> Self {
        let n = circuit.num_gates();
        let fanouts = circuit.fanouts();
        let mut t_int = Vec::with_capacity(n);
        let mut c_in = Vec::with_capacity(n);
        let mut static_load = Vec::with_capacity(n);
        for (id, gate) in circuit.gates() {
            let p = lib.params(gate.kind);
            t_int.push(p.t_int);
            c_in.push(p.c_in);
            let mut load = lib.wire_load + gate.extra_load;
            if circuit.is_output(id) {
                load += lib.po_load;
            }
            static_load.push(load);
        }
        DelayModel {
            t_int,
            c_in,
            static_load,
            fanouts,
            c: lib.c,
            sigma_factor: lib.sigma_factor,
            s_limit: lib.s_limit,
            num_gates: n,
        }
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// The library's speed-factor upper bound.
    pub fn s_limit(&self) -> f64 {
        self.s_limit
    }

    /// The library's `sigma_t / mu_t` ratio.
    pub fn sigma_factor(&self) -> f64 {
        self.sigma_factor
    }

    /// The technology constant `c`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Internal delay `t_int` of gate `g`.
    pub fn t_int(&self, g: GateId) -> f64 {
        self.t_int[g.index()]
    }

    /// Unit-size input capacitance `C_in` of gate `g`.
    pub fn c_in(&self, g: GateId) -> f64 {
        self.c_in[g.index()]
    }

    /// Size-independent output load of gate `g` (wiring plus primary-output
    /// load where applicable).
    pub fn static_load(&self, g: GateId) -> f64 {
        self.static_load[g.index()]
    }

    /// Gates driven by `g`.
    pub fn fanouts(&self, g: GateId) -> &[GateId] {
        &self.fanouts[g.index()]
    }

    /// Total capacitive load seen by gate `g` under speed factors `s`:
    /// `C_load + sum_j C_in,j * S_j` over the fan-out gates `j`.
    ///
    /// # Panics
    ///
    /// Panics if `s.len()` differs from the gate count.
    pub fn load_cap(&self, g: GateId, s: &[f64]) -> f64 {
        assert_eq!(s.len(), self.num_gates, "speed vector length mismatch");
        let mut cap = self.static_load[g.index()];
        for &j in &self.fanouts[g.index()] {
            cap += self.c_in[j.index()] * s[j.index()];
        }
        cap
    }

    /// Mean gate delay under speed factors `s` (paper Eq. 14):
    /// `mu_t = t_int + c * load_cap / S`.
    pub fn mu_t(&self, g: GateId, s: &[f64]) -> f64 {
        self.t_int[g.index()] + self.c * self.load_cap(g, s) / s[g.index()]
    }

    /// Full gate delay distribution: `N(mu_t, sigma_factor * mu_t)`.
    pub fn gate_delay(&self, g: GateId, s: &[f64]) -> Normal {
        let mu = self.mu_t(g, s);
        Normal::new(mu, self.sigma_factor * mu)
    }

    /// Sum of speed factors — the paper's area measure.
    ///
    /// # Panics
    ///
    /// Panics if `s.len()` differs from the gate count.
    pub fn area(&self, s: &[f64]) -> f64 {
        assert_eq!(s.len(), self.num_gates, "speed vector length mismatch");
        s.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::generate;

    #[test]
    fn tree7_unsized_delays() {
        let c = generate::tree7();
        let lib = Library::paper_default();
        let m = DelayModel::new(&c, &lib);
        let s = vec![1.0; 7];
        // Leaf gate A (index 0) drives C: load = wire + c_in(NAND2).
        let mu_a = m.mu_t(GateId(0), &s);
        let p = lib.params(sgs_netlist::GateKind::Nand2);
        let want = p.t_int + lib.c * (lib.wire_load + p.c_in * 1.0);
        assert!((mu_a - want).abs() < 1e-12);
        // Output gate G (index 6): load = wire + po_load, no fan-out.
        let mu_g = m.mu_t(GateId(6), &s);
        let want_g = p.t_int + lib.c * (lib.wire_load + lib.po_load);
        assert!((mu_g - want_g).abs() < 1e-12);
    }

    #[test]
    fn speedup_reduces_delay() {
        let c = generate::tree7();
        let lib = Library::paper_default();
        let m = DelayModel::new(&c, &lib);
        let s1 = vec![1.0; 7];
        let mut s3 = vec![1.0; 7];
        s3[6] = 3.0;
        // Speeding G up reduces G's delay...
        assert!(m.mu_t(GateId(6), &s3) < m.mu_t(GateId(6), &s1));
        // ...but increases the load-dependent delay of its fan-in C.
        assert!(m.mu_t(GateId(2), &s3) > m.mu_t(GateId(2), &s1));
    }

    #[test]
    fn sigma_tracks_mean() {
        let c = generate::fig2();
        let lib = Library::paper_default();
        let m = DelayModel::new(&c, &lib);
        let s = vec![1.5; 4];
        for (id, _) in c.gates() {
            let d = m.gate_delay(id, &s);
            assert!((d.sigma() - 0.25 * d.mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn po_with_fanout_gets_both_loads() {
        // fig2's gate C is both a primary output and a fan-in of D.
        let c = generate::fig2();
        let lib = Library::paper_default();
        let m = DelayModel::new(&c, &lib);
        let gc = c.gates().find(|(_, g)| g.name == "C").unwrap().0;
        let gd = c.gates().find(|(_, g)| g.name == "D").unwrap().0;
        let s = vec![1.0; 4];
        let load = m.load_cap(gc, &s);
        let want = lib.wire_load + lib.po_load + lib.params(c.gate(gd).kind).c_in;
        assert!((load - want).abs() < 1e-12);
    }

    #[test]
    fn area_is_sum() {
        let c = generate::tree7();
        let m = DelayModel::new(&c, &Library::paper_default());
        assert!((m.area(&[1.0, 2.0, 3.0, 1.0, 1.0, 1.0, 1.0]) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_s_len_rejected() {
        let c = generate::tree7();
        let m = DelayModel::new(&c, &Library::paper_default());
        let _ = m.mu_t(GateId(0), &[1.0, 1.0]);
    }
}
